//! # parsim — Parallel Logic Simulation on General Purpose Machines
//!
//! A from-scratch Rust reproduction of *Soule & Blank, "Parallel Logic
//! Simulation on General Purpose Machines" (DAC 1988)*: three parallel
//! gate/RTL/functional logic-simulation algorithms for shared-memory
//! multiprocessors —
//!
//! 1. a **synchronous event-driven** simulator with distributed
//!    per-processor queues and end-of-phase work stealing,
//! 2. a **unit-delay compiled-mode** simulator with static partitioning,
//!    and
//! 3. a fully **asynchronous, lock-free** simulator with no barriers, no
//!    rollbacks, and incremental per-node valid times.
//!
//! This facade crate re-exports the public API of the component crates:
//!
//! - [`logic`]: four-state values, element models, the evaluation kernel
//! - [`netlist`]: circuit graph, builder, text format, analyses
//! - [`queue`]: the lock-free SPSC grid and synchronization primitives
//! - [`circuits`]: the paper's benchmark circuits and stimulus
//! - [`engine`]: the four simulation engines, waveforms, metrics
//! - [`machine`]: the virtual Encore-Multimax cost model used to reproduce
//!   the paper's speed-up figures on any host
//! - [`harness`]: experiment definitions regenerating every figure
//!
//! # Quickstart
//!
//! ```
//! use parsim::logic::{Delay, ElementKind, Time};
//! use parsim::netlist::Builder;
//! use parsim::engine::{EventDriven, SimConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A clock driving an inverter.
//! let mut b = Builder::new();
//! let clk = b.node("clk", 1);
//! let out = b.node("out", 1);
//! b.element(
//!     "osc",
//!     ElementKind::Clock { half_period: 5, offset: 5 },
//!     Delay(1),
//!     &[],
//!     &[clk],
//! )?;
//! b.element("inv", ElementKind::Not, Delay(1), &[clk], &[out])?;
//! let netlist = b.finish()?;
//!
//! let config = SimConfig::new(Time(40)).watch(out);
//! let result = EventDriven::run(&netlist, &config)?;
//! assert!(result.waveform(out).unwrap().changes().len() > 2);
//! # Ok(())
//! # }
//! ```

/// One-stop imports for typical simulation programs.
///
/// ```
/// use parsim::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Builder::new();
/// let clk = b.node("clk", 1);
/// b.element("osc", ElementKind::Clock { half_period: 2, offset: 2 },
///           Delay(1), &[], &[clk])?;
/// let n = b.finish()?;
/// let r = EventDriven::run(&n, &SimConfig::new(Time(10)).watch(clk))?;
/// assert!(r.waveform(clk).is_some());
/// # Ok(())
/// # }
/// ```
pub mod prelude {
    pub use parsim_core::{
        assert_equivalent, checkpoint, ActivityReport, BatchResult, ChaoticAsync,
        CheckpointError, CompiledMode, EngineKind, EventDriven, FaultPlan, LaneStimulus,
        SimConfig, SimError, SimResult, StorageFault, SyncEventDriven, TestBench, TestRun,
        TraceConfig, Waveform, WaveformStats,
    };
    pub use parsim_trace::{RunReport, Trace};
    pub use parsim_logic::{Bit, Delay, ElementKind, Time, Value};
    pub use parsim_netlist::{Builder, ElemId, Netlist, NetlistStats, NodeId};
}

pub use parsim_circuits as circuits;
pub use parsim_core as engine;
pub use parsim_harness as harness;
pub use parsim_logic as logic;
pub use parsim_machine as machine;
pub use parsim_netlist as netlist;
pub use parsim_queue as queue;
pub use parsim_trace as trace;
