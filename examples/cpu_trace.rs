//! Simulate the gate-level pipelined microprocessor and print its
//! architectural trace (program counter and writeback values per cycle).
//!
//! ```text
//! cargo run --release --example cpu_trace
//! ```

use parsim::circuits::pipelined_cpu;
use parsim::engine::{ChaoticAsync, EventDriven, SimConfig};
use parsim::logic::Time;
use parsim::netlist::NetlistStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cpu = pipelined_cpu(16, 128)?;
    println!("{}", NetlistStats::compute(&cpu.netlist));

    let cycles = 16u64;
    let end = Time(cpu.half_period * 2 * (cycles + 1));
    let config = SimConfig::new(end)
        .watch_all(cpu.pc.iter().copied())
        .watch_all(cpu.wb_result.iter().copied());
    let result = EventDriven::run(&cpu.netlist, &config).unwrap();

    println!("{:>6} {:>8} {:>12}", "cycle", "pc", "writeback");
    for k in 0..cycles {
        // Sample well after each rising edge settles.
        let t = Time(cpu.half_period + 2 * cpu.half_period * k + cpu.half_period - 8);
        let pc = result.bus_value_at(&cpu.pc, t);
        let wb = result.bus_value_at(&cpu.wb_result, t);
        match (pc, wb) {
            (Some(pc), Some(wb)) => println!("{k:>6} {pc:>8} {wb:>12}"),
            (pc, wb) => println!("{k:>6} {pc:>8?} {wb:>12?} (still settling)"),
        }
    }

    // Cross-check with the lock-free engine under oversubscription.
    let par = ChaoticAsync::run(&cpu.netlist, &config.clone().threads(4)).unwrap();
    parsim::engine::assert_equivalent(&result, &par, "cpu");
    println!("\nsequential and asynchronous engines agree over {} watched nodes ✓", config.watch.len());
    println!("sequential metrics: {}", result.metrics);
    println!("async (4 threads):  {}", par.metrics);
    Ok(())
}
