//! The paper's control circuit: a 32×16 inverter array, simulated by all
//! four engines and swept across the virtual Multimax — a miniature of
//! the paper's Figure 5.
//!
//! ```text
//! cargo run --release --example inverter_array
//! ```

use parsim::circuits::inverter_array;
use parsim::engine::{
    assert_equivalent, ChaoticAsync, CompiledMode, EventDriven, SimConfig, SyncEventDriven,
};
use parsim::logic::Time;
use parsim::machine::{model_async, model_seq, model_sync, MachineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arr = inverter_array(32, 16, 4)?;
    let end = Time(300);
    println!(
        "32x16 inverter array, inputs toggling every {} ticks (~{:.0} events/tick)",
        arr.toggle_period,
        arr.events_per_tick()
    );

    // 1. All four engines agree bit-for-bit (unit-delay circuit).
    let config = SimConfig::new(end).watch_all(arr.taps.iter().copied());
    let reference = EventDriven::run(&arr.netlist, &config).unwrap();
    for threads in [1, 2, 4] {
        let cfg = config.clone().threads(threads);
        assert_equivalent(&reference, &SyncEventDriven::run(&arr.netlist, &cfg).unwrap(), "sync");
        assert_equivalent(&reference, &ChaoticAsync::run(&arr.netlist, &cfg).unwrap(), "async");
        assert_equivalent(&reference, &CompiledMode::run(&arr.netlist, &cfg).unwrap(), "compiled");
    }
    println!("all four engines agree at 1/2/4 threads ✓\n");

    // 2. The paper's Figure 5 on the virtual Multimax.
    let uni = model_seq(&arr.netlist, end, &MachineConfig::multimax(1).cost);
    println!("virtual Multimax (speed-ups normalized to uniprocessor event-driven):");
    println!("{:>6} {:>14} {:>9} {:>9} {:>11}", "procs", "event-driven", "util", "async", "util");
    for procs in [1usize, 2, 4, 8, 12, 16] {
        let s = model_sync(&arr.netlist, end, &MachineConfig::multimax(procs));
        let a = model_async(&arr.netlist, end, &MachineConfig::multimax(procs));
        println!(
            "{procs:>6} {:>14.2} {:>8.0}% {:>9.2} {:>10.0}%",
            s.speedup(&uni),
            s.utilization() * 100.0,
            a.speedup(&uni),
            a.utilization() * 100.0,
        );
    }
    println!("\n(the paper reports 68% asynchronous utilization at 16 processors,");
    println!(" 10-20 points above the event-driven algorithm)");
    Ok(())
}
