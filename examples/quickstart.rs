//! Quickstart: build a small clocked circuit, simulate it with two
//! engines, and verify they agree.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use parsim::engine::{assert_equivalent, ChaoticAsync, EventDriven, SimConfig};
use parsim::logic::{Delay, ElementKind, Time};
use parsim::netlist::Builder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2-bit counter: clock -> two toggling flip-flops.
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    let rst = b.node("rst", 1);
    let q0 = b.node("q0", 1);
    let d0 = b.node("d0", 1);
    let q1 = b.node("q1", 1);
    let d1 = b.node("d1", 1);

    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 5,
            offset: 5,
        },
        Delay(1),
        &[],
        &[clk],
    )?;
    b.element("porst", ElementKind::Pulse { at: 0, width: 3 }, Delay(1), &[], &[rst])?;
    // Bit 0 toggles every rising edge; bit 1 toggles when bit 0 is 1.
    b.element("ff0", ElementKind::DffR { width: 1 }, Delay(1), &[clk, d0, rst], &[q0])?;
    b.element("inv0", ElementKind::Not, Delay(1), &[q0], &[d0])?;
    b.element("ff1", ElementKind::DffR { width: 1 }, Delay(1), &[clk, d1, rst], &[q1])?;
    b.element("x1", ElementKind::Xor, Delay(1), &[q1, q0], &[d1])?;
    let netlist = b.finish()?;

    let config = SimConfig::new(Time(100)).watch(q0).watch(q1).watch(clk);

    // The sequential reference engine...
    let reference = EventDriven::run(&netlist, &config).unwrap();
    // ...and the paper's lock-free asynchronous engine on two threads.
    let lock_free = ChaoticAsync::run(&netlist, &config.clone().threads(2)).unwrap();
    assert_equivalent(&reference, &lock_free, "quickstart");

    println!("counter value over time (q1 q0):");
    for t in (0..=100).step_by(10) {
        let q0v = reference.waveform(q0).expect("watched").value_at(Time(t));
        let q1v = reference.waveform(q1).expect("watched").value_at(Time(t));
        println!("  t={t:>3}:  {}{}", q1v.to_binary_string(), q0v.to_binary_string());
    }
    println!("\nreference engine: {}", reference.metrics);
    println!("async engine:     {}", lock_free.metrics);
    println!("\nVCD header preview:");
    for line in reference.to_vcd().lines().take(8) {
        println!("  {line}");
    }
    println!("\nboth engines produced identical waveforms ✓");
    Ok(())
}
