//! Verify a gate-level array multiplier against native arithmetic using
//! the lock-free asynchronous engine.
//!
//! ```text
//! cargo run --release --example multiplier_check
//! ```

use parsim::circuits::gate_multiplier;
use parsim::engine::{ChaoticAsync, SimConfig};
use parsim::netlist::NetlistStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let operands = vec![
        (0u64, 0u64),
        (1, 255),
        (3, 5),
        (200, 100),
        (255, 255),
        (170, 85),
        (128, 2),
        (99, 77),
    ];
    let m = gate_multiplier(8, &operands, 160)?;
    println!("{}", NetlistStats::compute(&m.netlist));

    let config = SimConfig::new(m.schedule_end())
        .watch_all(m.product.iter().copied())
        .threads(4);
    let result = ChaoticAsync::run(&m.netlist, &config).unwrap();

    println!("{:>5} x {:>5} = {:>7}  (simulated)", "a", "b", "p");
    let mut failures = 0;
    for (k, &(a, b)) in operands.iter().enumerate() {
        let expected = a * b;
        match result.bus_value_at(&m.product, m.sample_time(k)) {
            Some(got) if got == expected => {
                println!("{a:>5} x {b:>5} = {got:>7}  ok");
            }
            other => {
                println!("{a:>5} x {b:>5} = {other:?}  MISMATCH (expected {expected})");
                failures += 1;
            }
        }
    }
    println!("\nengine metrics: {}", result.metrics);
    if failures > 0 {
        return Err(format!("{failures} products disagreed").into());
    }
    println!("all {} products verified against native arithmetic ✓", operands.len());
    Ok(())
}
