//! Round-trip a generated circuit through the text netlist format and run
//! structural analyses on it.
//!
//! ```text
//! cargo run --example netlist_io
//! ```

use parsim::circuits::functional_multiplier;
use parsim::netlist::analyze::{feedback_elements, levelize};
use parsim::netlist::{Netlist, NetlistStats};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let m = functional_multiplier(&[(1234, 4321), (7, 9)], 64)?;

    // Serialize to the text format and parse it back.
    let text = m.netlist.to_text();
    println!("--- netlist text format (first 12 lines of {}) ---", text.lines().count());
    for line in text.lines().take(12) {
        println!("{line}");
    }
    let parsed = Netlist::from_text(&text)?;
    assert_eq!(parsed.to_text(), text, "round-trip must be lossless");
    println!("--- round-trip lossless ✓ ---\n");

    println!("{}", NetlistStats::compute(&parsed));

    let lv = levelize(&parsed);
    println!("combinational depth: {} levels", lv.max_level);
    println!("elements on feedback paths: {}", feedback_elements(&parsed).len());

    // The costs that make static load balancing hard (§3 of the paper).
    let mut costs: Vec<(u64, &str)> = parsed
        .elements()
        .iter()
        .map(|e| (e.kind().eval_cost(), e.kind().mnemonic()))
        .collect();
    costs.sort();
    let (min_c, min_k) = costs.first().expect("nonempty");
    let (max_c, max_k) = costs.last().expect("nonempty");
    println!("evaluation cost spread: {min_c} ({min_k}) .. {max_c} ({max_k}) inverter-events");
    Ok(())
}
