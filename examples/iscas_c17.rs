//! Load an ISCAS `.bench` benchmark (the classic c17), simulate it with
//! the lock-free engine, and print its response to LFSR stimulus.
//!
//! ```text
//! cargo run --example iscas_c17
//! ```

use parsim::engine::{assert_equivalent, ChaoticAsync, EventDriven, SimConfig};
use parsim::logic::Time;
use parsim::netlist::bench_fmt::{from_bench, BenchOptions, C17};
use parsim::netlist::NetlistStats;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = from_bench(C17, &BenchOptions::default())?;
    println!("{}", NetlistStats::compute(&circuit.netlist));

    let mut watch = circuit.inputs.clone();
    watch.extend(circuit.outputs.iter().copied());
    let config = SimConfig::new(Time(200)).watch_all(watch);

    let reference = EventDriven::run(&circuit.netlist, &config).unwrap();
    let lock_free = ChaoticAsync::run(&circuit.netlist, &config.clone().threads(2)).unwrap();
    assert_equivalent(&reference, &lock_free, "c17");

    println!("{:>6} {:>7} {:>7}", "t", "out 22", "out 23");
    for t in (0..=200).step_by(20) {
        let o22 = reference
            .waveform(circuit.outputs[0])
            .expect("watched")
            .value_at(Time(t));
        let o23 = reference
            .waveform(circuit.outputs[1])
            .expect("watched")
            .value_at(Time(t));
        println!("{t:>6} {:>7} {:>7}", o22.to_binary_string(), o23.to_binary_string());
    }
    println!("\nmetrics: {}", reference.metrics);
    println!("both engines agree on every waveform ✓");
    Ok(())
}
