//! Directed testing with [`TestBench`]: drive the functional multiplier's
//! inputs with explicit vectors and assert the products.
//!
//! ```text
//! cargo run --example testbench_demo
//! ```

use parsim::netlist::analyze::critical_path;
use parsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A design under test with floating inputs: an 8-bit datapath slice
    // (adder + comparator) the bench will drive directly.
    let dut = {
        let mut b = Builder::new();
        let a = b.node("a", 8);
        let c = b.node("b", 8);
        let cin = b.node("cin", 1);
        let sum = b.node("sum", 8);
        let cout = b.node("cout", 1);
        let eq = b.node("eq", 1);
        let lt = b.node("lt", 1);
        b.element(
            "add",
            ElementKind::Adder { width: 8 },
            Delay(2),
            &[a, c, cin],
            &[sum, cout],
        )?;
        b.element(
            "cmp",
            ElementKind::Comparator { width: 8 },
            Delay(1),
            &[a, c],
            &[eq, lt],
        )?;
        b.finish()?
    };
    let (settle, path) = critical_path(&dut);
    println!(
        "critical path: {settle} ticks through {:?}",
        path.iter().map(|&e| dut.element(e).name()).collect::<Vec<_>>()
    );

    let mut tb = TestBench::new(&dut)?;
    tb.drive(
        "a",
        &[
            (0, Value::from_u64(10, 8)),
            (10, Value::from_u64(200, 8)),
            (20, Value::from_u64(77, 8)),
        ],
    )?;
    tb.drive(
        "b",
        &[(0, Value::from_u64(5, 8)), (20, Value::from_u64(77, 8))],
    )?;
    tb.drive("cin", &[(0, Value::bit(false)), (10, Value::bit(true))])?;

    // Run on the lock-free engine with two threads.
    let run = tb.run_async(Time(40), 2)?;

    // Assert outcomes one settle-time after each vector.
    let checks = [
        ("sum", 5, 15u64),   // 10 + 5
        ("sum", 15, 206),    // 200 + 5 + 1
        ("sum", 25, 155),    // 77 + 77 + 1
        ("cout", 25, 0),
        ("eq", 25, 1),       // 77 == 77
        ("lt", 15, 0),       // 200 > 5
    ];
    for (port, t, expected) in checks {
        let width = if port == "sum" { 8 } else { 1 };
        run.expect(port, Time(t), Value::from_u64(expected, width))?;
        println!("  {port:>4} @ t={t:<3} = {expected:<4} ok");
    }
    println!("\nall expectations met ✓");
    Ok(())
}
