//! A miniature design flow: build a hierarchical circuit from a reusable
//! cell, sweep away dead logic, export to ISCAS `.bench`, and simulate
//! before/after to confirm nothing observable changed.
//!
//! ```text
//! cargo run --example design_flow
//! ```

use parsim::netlist::bench_fmt::to_bench;
use parsim::netlist::optimize::sweep;
use parsim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A reusable 2-bit counter cell with a gate-level synchronous reset
    // (plain DFFs keep the cell expressible in the .bench format; the
    // reset AND breaks the power-on X through its controlling input).
    let cell = {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let rst = b.node("rst", 1);
        let rstn = b.node("rstn", 1);
        let q0 = b.node("q0", 1);
        let q1 = b.node("q1", 1);
        let t0 = b.node("t0", 1);
        let t1 = b.node("t1", 1);
        let d0 = b.node("d0", 1);
        let d1 = b.node("d1", 1);
        let unused = b.node("unused", 1);
        b.element("rinv", ElementKind::Not, Delay(1), &[rst], &[rstn])?;
        b.element("ff0", ElementKind::Dff { width: 1 }, Delay(1), &[clk, d0], &[q0])?;
        b.element("ff1", ElementKind::Dff { width: 1 }, Delay(1), &[clk, d1], &[q1])?;
        b.element("x0", ElementKind::Not, Delay(1), &[q0], &[t0])?;
        b.element("x1", ElementKind::Xor, Delay(1), &[q0, q1], &[t1])?;
        b.element("r0", ElementKind::And, Delay(1), &[t0, rstn], &[d0])?;
        b.element("r1", ElementKind::And, Delay(1), &[t1, rstn], &[d1])?;
        // Deliberate dead logic: nothing observes this gate.
        b.element("dead", ElementKind::Nand, Delay(1), &[q0, q1], &[unused])?;
        b.finish()?
    };

    // Top level: two counter instances sharing a clock and reset.
    let mut top = Builder::new();
    let clk = top.node("clk", 1);
    let rst = top.node("rst", 1);
    top.element(
        "osc",
        ElementKind::Clock { half_period: 5, offset: 5 },
        Delay(1),
        &[],
        &[clk],
    )?;
    top.element("porst", ElementKind::Pulse { at: 0, width: 3 }, Delay(1), &[], &[rst])?;
    let a = top.instantiate(&cell, "u0", &[("clk", clk), ("rst", rst)])?;
    let b_map = top.instantiate(&cell, "u1", &[("clk", clk), ("rst", rst)])?;
    let netlist = top.finish()?;
    println!("flattened design:\n{}", NetlistStats::compute(&netlist));

    // Keep only the counter outputs; sweep everything unobserved.
    let keep = vec![a["q0"], a["q1"], b_map["q0"], b_map["q1"]];
    let swept = sweep(&netlist, &keep);
    println!(
        "sweep removed {} elements, {} nodes\n",
        swept.removed_elements, swept.removed_nodes
    );

    // Prove observability was preserved: identical waveforms on the kept
    // nodes before and after the sweep.
    let end = Time(120);
    let before = EventDriven::run(&netlist, &SimConfig::new(end).watch_all(keep.clone())).unwrap();
    let after = EventDriven::run(
        &swept.netlist,
        &SimConfig::new(end).watch_all(swept.kept.clone()),
    ).unwrap();
    for (orig, new) in keep.iter().zip(&swept.kept) {
        let wb = before.waveform(*orig).expect("watched");
        let wa = after.waveform(*new).expect("watched");
        assert_eq!(wb.changes(), wa.changes(), "sweep changed {}", wb.name());
    }
    println!("kept waveforms identical before/after sweep ✓");

    // Export the swept design as an ISCAS .bench netlist.
    let bench = to_bench(&swept.netlist)?;
    println!("\n--- .bench export ---\n{bench}");
    Ok(())
}
