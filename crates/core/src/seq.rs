//! The uniprocessor event-driven reference engine.
//!
//! The classic two-phase algorithm the paper's §2 parallelizes:
//!
//! 1. update all scheduled nodes,
//! 2. evaluate all elements connected to the changed nodes,
//! 3. schedule all output nodes that change.
//!
//! This engine is the correctness oracle for the three parallel engines
//! and the baseline for the paper's uniprocessor speed comparisons (§5:
//! the asynchronous algorithm runs 1–3× faster than this on one
//! processor). It also fills the events-per-time-step histogram behind the
//! paper's "less than 5 events available about 50% of the time"
//! observation.

use std::collections::BTreeMap;
use std::time::Instant;

use parsim_checkpoint::{EngineSnapshot, PendingEvent};
use parsim_logic::{evaluate, expand_generator, transition_delay, ElemState, Time, Value};
use parsim_netlist::{Netlist, NodeId};
use parsim_telemetry::{Counter, Gauge};
use parsim_trace::{EventKind, Tracer};

use crate::checkpoint::{new_run_ctx, SegmentOut, SegmentSpec};
use crate::config::SimConfig;
use crate::error::{SimError, StallDiagnostic};
use crate::metrics::{EventsPerStepHistogram, Metrics};
use crate::watchdog::{Containment, Watchdog};
use crate::waveform::SimResult;
use crate::wheel::TimingWheel;

/// Engine tag used in [`SimError`] values.
const ENGINE: &str = "event-driven";

/// How many processed events between deadline checks (the sequential
/// engine has no watchdog thread; it polls the clock inline).
const DEADLINE_CHECK_EVERY: u64 = 4096;

/// A sentinel "node" index used to force an otherwise-empty time-zero
/// step (the initialization pass).
const NOOP: usize = usize::MAX;

/// The pending-event calendar: the default sorted map or the 1980s
/// timing wheel, selected by [`SimConfig::timing_wheel`].
enum Calendar {
    Map(BTreeMap<u64, Vec<(usize, Value)>>),
    Wheel(TimingWheel<(usize, Value)>),
}

impl Calendar {
    fn schedule(&mut self, t: u64, item: (usize, Value)) {
        match self {
            Calendar::Map(m) => m.entry(t).or_default().push(item),
            Calendar::Wheel(w) => w.schedule(t, item),
        }
    }

    fn take_next(&mut self) -> Option<(u64, Vec<(usize, Value)>)> {
        match self {
            Calendar::Map(m) => {
                let (&t, _) = m.first_key_value()?;
                Some((t, m.remove(&t).expect("key observed")))
            }
            Calendar::Wheel(w) => w.take_next(),
        }
    }
}

/// The sequential event-driven simulator.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, Default)]
pub struct EventDriven;

impl EventDriven {
    /// Runs the simulation through `config.end_time` (inclusive).
    ///
    /// `config.threads` is ignored — this engine is sequential by
    /// definition. [`SimConfig::stall_timeout`](crate::SimConfig) and
    /// [`SimConfig::fault`](crate::SimConfig) are also ignored: with one
    /// thread there is nothing to contain.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::DeadlineExceeded`] if
    /// [`SimConfig::deadline`](crate::SimConfig) is set and elapses; the
    /// deadline is polled inline every few thousand processed events.
    pub fn run(netlist: &Netlist, config: &SimConfig) -> Result<SimResult, SimError> {
        let ctx = new_run_ctx(config);
        let out = Self::run_segment(netlist, config, SegmentSpec::whole(config, ctx.clone()))?;
        let mut result = out.into_result(netlist, config);
        result.telemetry = Some(ctx.finish());
        Ok(result)
    }

    /// Runs one segment of the simulation — the whole run when `seg` is
    /// [`SegmentSpec::whole`]. With a `resume` snapshot the engine
    /// warm-starts at the previous cut (no time-zero initialization
    /// pass; pending events are re-injected and generator schedules
    /// re-expanded past the cut). With `capture`, events computed beyond
    /// `seg.cut` but within the horizon are collected into a returned
    /// [`EngineSnapshot`] instead of living in the calendar — with the
    /// same last-scheduled bookkeeping an uninterrupted run would have
    /// performed, which is what makes resumed waveforms bit-identical.
    pub(crate) fn run_segment(
        netlist: &Netlist,
        config: &SimConfig,
        seg: SegmentSpec<'_>,
    ) -> Result<SegmentOut, SimError> {
        let start = Instant::now();
        // `end` is the horizon: events beyond it are dropped (without
        // bookkeeping) exactly as in a single-segment run. `cut` is how
        // far this segment simulates; in a whole run they coincide.
        let end = config.end_time;
        let cut = seg.cut;
        let t0 = seg.resume.map(|s| s.time);
        let num_nodes = netlist.num_nodes();
        let num_elems = netlist.num_elements();

        let (mut values, mut last_scheduled, mut last_sched_time, mut states): (
            Vec<Value>,
            Vec<Value>,
            Vec<u64>,
            Vec<ElemState>,
        ) = match seg.resume {
            Some(snap) => (
                snap.values.clone(),
                snap.last_scheduled.clone(),
                // Last time an event was scheduled per node, enforcing the
                // monotone-transport rule under asymmetric rise/fall delays.
                snap.last_sched_time.clone(),
                snap.elem_states.clone(),
            ),
            None => (
                netlist.nodes().iter().map(|n| Value::x(n.width())).collect(),
                netlist.nodes().iter().map(|n| Value::x(n.width())).collect(),
                vec![0u64; num_nodes],
                netlist
                    .elements()
                    .iter()
                    .map(|e| ElemState::init(e.kind()))
                    .collect(),
            ),
        };
        let mut watched = vec![false; num_nodes];
        for &n in &config.watch {
            watched[n.index()] = true;
        }

        // Pending node updates, keyed by time.
        let mut schedule = if config.timing_wheel {
            Calendar::Wheel(TimingWheel::new(netlist.max_delay().ticks() * 2 + 8))
        } else {
            Calendar::Map(BTreeMap::new())
        };
        // Events computed for beyond the cut (capture mode only).
        let mut overflow: Vec<PendingEvent> = Vec::new();
        match seg.resume {
            None => {
                // Force a time-zero step for the initialization pass (a
                // no-op sentinel; real updates may join the same bucket).
                schedule.schedule(0, (NOOP, Value::x(1)));
            }
            Some(snap) => {
                // Re-inject in-flight events. Ones beyond even this
                // segment's cut stay pending (their bookkeeping already
                // happened when they were first computed).
                for ev in &snap.pending {
                    if ev.time <= cut {
                        schedule.schedule(ev.time, (ev.node as usize, ev.value));
                    } else {
                        overflow.push(ev.clone());
                    }
                }
            }
        }
        // Generator pre-expansion is O(edges × generators) and runs before
        // the main loop, so it polls the deadline too — a huge end time
        // with many clocks must not push the first check past the budget.
        // Expansion stops at the cut: the next segment re-expands its own
        // span deterministically, so nothing beyond the cut is stored.
        let mut expanded = 0u64;
        for gen in netlist.generators() {
            let e = netlist.element(gen);
            let out = e.outputs()[0].index();
            for (t, v) in expand_generator(e.kind(), Time(cut)) {
                if t0.is_some_and(|t0| t.ticks() <= t0) {
                    continue;
                }
                schedule.schedule(t.ticks(), (out, v));
                expanded += 1;
                if expanded.is_multiple_of(DEADLINE_CHECK_EVERY) {
                    if let Some(d) = config.deadline {
                        if start.elapsed() > d {
                            return Err(SimError::DeadlineExceeded {
                                engine: ENGINE,
                                deadline: d,
                                diagnostic: Box::new(StallDiagnostic {
                                    heartbeats: vec![0],
                                    sim_time: Some(Time(0)),
                                    ..StallDiagnostic::default()
                                }),
                            });
                        }
                    }
                }
            }
        }

        // Initialization pass: every non-generator element is evaluated at
        // time zero (matches compiled mode's sweep and the asynchronous
        // engine's initial activation of all elements). A resumed segment
        // already initialized in its first segment.
        let mut stamp = vec![u64::MAX; num_elems];
        let init_activated: Vec<usize> = if seg.resume.is_some() {
            Vec::new()
        } else {
            netlist
                .iter_elements()
                .filter(|(_, e)| !e.kind().is_generator())
                .map(|(id, _)| id.index())
                .collect()
        };
        for &e in &init_activated {
            stamp[e] = 0;
        }

        let mut changes: Vec<(Time, NodeId, Value)> = Vec::new();
        let mut histogram = EventsPerStepHistogram::new();
        let mut events_processed = 0u64;
        let mut evaluations = 0u64;
        let mut activations = init_activated.len() as u64;
        let mut time_steps = 0u64;
        let mut inputs_buf: Vec<Value> = Vec::with_capacity(8);
        let mut next_deadline_check = DEADLINE_CHECK_EVERY;
        // This engine is a single logical worker: worker 0 owns the only
        // ring. Each simulated step is a TimeStep span; evaluations and
        // schedule inserts are instants within it.
        let tracer = Tracer::new(config.trace.as_ref());
        let mut tr = tracer.worker(0);
        // Telemetry: worker shard 0, published once per time step (the
        // sequential engine has no watchdog thread unless the sampler
        // needs one — deadlines stay inline polls either way).
        let shard = seg.telemetry.registry.worker(0);
        let mut published_evals = 0u64;
        let mut published_acts = 0u64;
        let containment = Containment::new(1);
        let mut monitor = Watchdog::spawn(&containment, None, None, seg.telemetry.sampler(), || {});

        while let Some((t, updates)) = schedule.take_next() {
            if let Some(d) = config.deadline {
                let work = events_processed + evaluations;
                if work >= next_deadline_check {
                    next_deadline_check = work + DEADLINE_CHECK_EVERY;
                    if start.elapsed() > d {
                        if let Some(w) = monitor.take() {
                            w.finish();
                        }
                        return Err(SimError::DeadlineExceeded {
                            engine: ENGINE,
                            deadline: d,
                            diagnostic: Box::new(StallDiagnostic {
                                heartbeats: vec![evaluations],
                                sim_time: Some(Time(t)),
                                ..StallDiagnostic::default()
                            }),
                        });
                    }
                }
            }
            if t > cut {
                break;
            }
            tr.begin(EventKind::TimeStep, t as u32);
            let mut activated = if t == 0 {
                init_activated.clone()
            } else {
                Vec::new()
            };

            // Phase 1: update nodes, collect activated fan-out elements.
            let mut step_events = 0u64;
            for (node, v) in updates {
                if node == NOOP || values[node] == v {
                    continue;
                }
                values[node] = v;
                step_events += 1;
                if watched[node] {
                    changes.push((Time(t), NodeId::from_index(node), v));
                }
                for &(elem, _) in netlist.nodes()[node].fanout() {
                    let e = elem.index();
                    if stamp[e] != t {
                        stamp[e] = t;
                        activated.push(e);
                        activations += 1;
                    }
                }
            }
            if step_events > 0 {
                histogram.record(step_events);
                time_steps += 1;
                shard.inc(Counter::TimeSteps);
                shard.record_step_events(step_events);
            }
            events_processed += step_events;
            shard.add(Counter::EventsProcessed, step_events);
            shard.set_gauge(Gauge::SimTime, t);
            shard.set_gauge(Gauge::QueueDepth, activated.len() as u64);
            tr.counter(EventKind::QueueDepth, activated.len() as u32);

            // Phase 2: evaluate activated elements, schedule changed
            // outputs.
            for e in activated {
                let elem = &netlist.elements()[e];
                inputs_buf.clear();
                inputs_buf.extend(elem.inputs().iter().map(|&n| values[n.index()]));
                let out = evaluate(elem.kind(), &inputs_buf, &mut states[e]);
                evaluations += 1;
                tr.instant(EventKind::Eval, e as u32);
                for (port, v) in out.iter() {
                    let out_node = elem.outputs()[port].index();
                    if last_scheduled[out_node] == v {
                        continue;
                    }
                    let td = transition_delay(
                        &last_scheduled[out_node],
                        &v,
                        elem.rise_delay(),
                        elem.fall_delay(),
                    );
                    // Monotone transport: a pulse shorter than the delay
                    // differential stretches instead of reordering.
                    let te = (t + td.ticks()).max(last_sched_time[out_node] + 1);
                    if te <= cut {
                        // Only a *kept* event updates the last-value
                        // tracking; a drop beyond the horizon must not,
                        // or a flip-back would re-emit the kept value.
                        last_scheduled[out_node] = v;
                        last_sched_time[out_node] = te;
                        schedule.schedule(te, (out_node, v));
                        tr.instant(EventKind::EventInsert, out_node as u32);
                    } else if seg.capture && te <= end.ticks() {
                        // Beyond the cut but within the horizon: the
                        // uninterrupted run keeps this event, so the
                        // snapshot must carry it — with the same
                        // bookkeeping a kept event performs.
                        last_scheduled[out_node] = v;
                        last_sched_time[out_node] = te;
                        overflow.push(PendingEvent {
                            time: te,
                            node: out_node as u32,
                            value: v,
                        });
                    }
                }
            }
            // Step-delta publishes keep the shard current for mid-run
            // sampling without touching the per-event path.
            shard.add(Counter::Evaluations, evaluations - published_evals);
            shard.add(Counter::Activations, activations - published_acts);
            published_evals = evaluations;
            published_acts = activations;
            tr.end(EventKind::TimeStep);
        }
        shard.add(Counter::Evaluations, evaluations - published_evals);
        shard.add(Counter::Activations, activations - published_acts);
        if let Some(w) = monitor.take() {
            w.finish();
        }

        let metrics = Metrics {
            events_processed,
            evaluations,
            activations,
            time_steps,
            events_per_step: histogram,
            per_thread: Vec::new(),
            gc_chunks_freed: 0,
            blocks_skipped: 0,
            evals_skipped: 0,
            locality: Default::default(),
            pool_misses: 0,
            checkpoint: Default::default(),
            lane_width: 0,
            arena: Default::default(),
            wall: start.elapsed(),
        };
        let snapshot = seg.capture.then(|| {
            overflow.sort_by_key(|ev| (ev.time, ev.node));
            EngineSnapshot {
                end_time: end.ticks(),
                time: cut,
                step: 0,
                seeds: [0, 0],
                values,
                last_scheduled,
                last_sched_time,
                elem_states: states,
                pending: std::mem::take(&mut overflow),
                changes: Vec::new(),
            }
        });
        Ok(SegmentOut {
            changes,
            metrics,
            trace: tracer.finish([tr]),
            snapshot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::{Delay, ElementKind};
    use parsim_netlist::Builder;

    /// clk (period 10) -> inverter (delay 1).
    fn clocked_inverter() -> (Netlist, NodeId, NodeId) {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let out = b.node("out", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 5,
                offset: 5,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        b.element("inv", ElementKind::Not, Delay(1), &[clk], &[out])
            .unwrap();
        (b.finish().unwrap(), clk, out)
    }

    #[test]
    fn inverter_follows_clock_with_delay() {
        let (n, clk, out) = clocked_inverter();
        let cfg = SimConfig::new(Time(20)).watch(clk).watch(out);
        let r = EventDriven::run(&n, &cfg).unwrap();
        assert_eq!(
            r.waveform(clk).unwrap().changes(),
            &[
                (Time(0), Value::bit(false)),
                (Time(5), Value::bit(true)),
                (Time(10), Value::bit(false)),
                (Time(15), Value::bit(true)),
                (Time(20), Value::bit(false)),
            ]
        );
        assert_eq!(
            r.waveform(out).unwrap().changes(),
            &[
                (Time(1), Value::bit(true)), // init pass: !0 at t=0 -> 1 at t=1
                (Time(6), Value::bit(false)),
                (Time(11), Value::bit(true)),
                (Time(16), Value::bit(false)),
            ]
        );
    }

    #[test]
    fn dff_divides_clock() {
        // DFF with q -> inverter -> d: toggles every rising edge.
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let q = b.node("q", 1);
        let d = b.node("d", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 4,
                offset: 4,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        b.element("ff", ElementKind::Dff { width: 1 }, Delay(1), &[clk, d], &[q])
            .unwrap();
        b.element("inv", ElementKind::Not, Delay(1), &[q], &[d])
            .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(40)).watch(q);
        let r = EventDriven::run(&n, &cfg).unwrap();
        let w = r.waveform(q).unwrap();
        // q is X until the first edge captures a known d... but d = !X = X
        // until q is known — the classic X-lock. q stays X forever here
        // because the loop never resolves. Verify that is what happens.
        assert_eq!(w.num_changes(), 0);
    }

    #[test]
    fn dffr_reset_breaks_x_lock() {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let rst = b.node("rst", 1);
        let q = b.node("q", 1);
        let d = b.node("d", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 4,
                offset: 4,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        b.element(
            "porst",
            ElementKind::Pulse { at: 0, width: 2 },
            Delay(1),
            &[],
            &[rst],
        )
        .unwrap();
        b.element(
            "ff",
            ElementKind::DffR { width: 1 },
            Delay(1),
            &[clk, d, rst],
            &[q],
        )
        .unwrap();
        b.element("inv", ElementKind::Not, Delay(1), &[q], &[d])
            .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(40)).watch(q);
        let r = EventDriven::run(&n, &cfg).unwrap();
        let w = r.waveform(q).unwrap();
        // Reset drives q to 0; afterwards it toggles on each rising edge
        // (t = 4, 12, 20, ... plus the flop delay).
        assert!(w.num_changes() >= 4, "changes: {:?}", w.changes());
        assert_eq!(w.value_at(Time(2)), Value::bit(false));
        assert_eq!(w.value_at(Time(6)), Value::bit(true));
        assert_eq!(w.value_at(Time(14)), Value::bit(false));
    }

    #[test]
    fn ring_oscillator_oscillates() {
        // 3-inverter ring with a reset-ish const kick is impossible; a pure
        // ring stays X. Use a NAND ring with an enable pulse to start it.
        let mut b = Builder::new();
        let en = b.node("en", 1);
        let n1 = b.node("n1", 1);
        let n2 = b.node("n2", 1);
        let n3 = b.node("n3", 1);
        // en is 0 until t=5, which forces n1=1 through the NAND's
        // controlling input and breaks the X-lock; the ring then
        // oscillates once en rises.
        b.element(
            "enp",
            ElementKind::Pulse { at: 5, width: 1000 },
            Delay(1),
            &[],
            &[en],
        )
        .unwrap();
        // NAND(en, n3) -> n1 -> inv -> n2 -> inv -> n3.
        b.element("g1", ElementKind::Nand, Delay(1), &[en, n3], &[n1])
            .unwrap();
        b.element("g2", ElementKind::Not, Delay(1), &[n1], &[n2])
            .unwrap();
        b.element("g3", ElementKind::Not, Delay(1), &[n2], &[n3])
            .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(60)).watch(n1);
        let r = EventDriven::run(&n, &cfg).unwrap();
        // With en=1, n1 = !n3 through three stages: period-6 oscillation.
        let w = r.waveform(n1).unwrap();
        assert!(w.num_changes() > 10, "ring should oscillate: {:?}", w.changes());
    }

    #[test]
    fn metrics_are_populated() {
        let (n, _, out) = clocked_inverter();
        let cfg = SimConfig::new(Time(100)).watch(out);
        let r = EventDriven::run(&n, &cfg).unwrap();
        assert!(r.metrics.events_processed > 20);
        assert!(r.metrics.evaluations >= 20);
        assert!(r.metrics.time_steps > 20);
        assert!(r.metrics.events_per_step.steps() == r.metrics.time_steps);
        assert!((r.metrics.utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_events_after_end_time() {
        let (n, clk, out) = clocked_inverter();
        let cfg = SimConfig::new(Time(7)).watch(clk).watch(out);
        let r = EventDriven::run(&n, &cfg).unwrap();
        for w in r.waveforms() {
            assert!(w.changes().iter().all(|&(t, _)| t <= Time(7)));
        }
    }

    #[test]
    fn floating_inputs_stay_x_but_constants_propagate() {
        let mut b = Builder::new();
        let float = b.node("float", 1);
        let zero = b.node("zero", 1);
        let y = b.node("y", 1);
        let z = b.node("z", 1);
        b.element(
            "c0",
            ElementKind::Const {
                value: Value::bit(false),
            },
            Delay(1),
            &[],
            &[zero],
        )
        .unwrap();
        // AND(float, 0) = 0 even with a floating input.
        b.element("g", ElementKind::And, Delay(1), &[float, zero], &[y])
            .unwrap();
        // NOT(float) = X forever.
        b.element("g2", ElementKind::Not, Delay(1), &[float], &[z])
            .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(10)).watch(y).watch(z);
        let r = EventDriven::run(&n, &cfg).unwrap();
        assert_eq!(r.final_value(y), Some(Value::bit(false)));
        assert_eq!(r.final_value(z), Some(Value::x(1)));
    }
}
