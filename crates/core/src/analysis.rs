//! Waveform analysis: toggle rates, pulse widths, and glitch detection.
//!
//! Post-processing over [`SimResult`] waveforms — the kind of reporting a
//! simulation user wants after the run (and the data behind activity
//! claims like the paper's "0.1–0.5% per time step").

use parsim_logic::Time;

use crate::waveform::{SimResult, Waveform};

/// Summary statistics for one waveform.
///
/// # Examples
///
/// ```
/// use parsim_core::{EventDriven, SimConfig, WaveformStats};
/// use parsim_logic::{Delay, ElementKind, Time};
/// use parsim_netlist::Builder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Builder::new();
/// let clk = b.node("clk", 1);
/// b.element("osc", ElementKind::Clock { half_period: 5, offset: 5 },
///           Delay(1), &[], &[clk])?;
/// let n = b.finish()?;
/// let r = EventDriven::run(&n, &SimConfig::new(Time(100)).watch(clk))?;
/// let stats = WaveformStats::of(r.waveform(clk).unwrap(), Time(100));
/// // The initial 0 at t=0 plus a toggle every 5 ticks.
/// assert_eq!(stats.transitions, 21);
/// assert!((stats.toggle_rate - 0.21).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WaveformStats {
    /// Total value changes.
    pub transitions: usize,
    /// Transitions per tick of simulated time.
    pub toggle_rate: f64,
    /// Shortest interval between consecutive changes (ticks).
    pub min_pulse: Option<u64>,
    /// Longest interval between consecutive changes (ticks).
    pub max_pulse: Option<u64>,
    /// Changes closer together than the node's typical period — a cheap
    /// glitch indicator: intervals strictly shorter than `glitch_window`.
    pub glitches: usize,
    /// The glitch window used (ticks).
    pub glitch_window: u64,
}

impl WaveformStats {
    /// Computes statistics over a waveform through `end`, using a glitch
    /// window of 2 ticks (pulses of width 1 count as glitches).
    pub fn of(waveform: &Waveform, end: Time) -> WaveformStats {
        WaveformStats::with_glitch_window(waveform, end, 2)
    }

    /// Computes statistics with an explicit glitch window.
    pub fn with_glitch_window(
        waveform: &Waveform,
        end: Time,
        glitch_window: u64,
    ) -> WaveformStats {
        let changes = waveform.changes();
        let mut min_pulse = None;
        let mut max_pulse = None;
        let mut glitches = 0;
        for pair in changes.windows(2) {
            let w = pair[1].0.ticks() - pair[0].0.ticks();
            min_pulse = Some(min_pulse.map_or(w, |m: u64| m.min(w)));
            max_pulse = Some(max_pulse.map_or(w, |m: u64| m.max(w)));
            if w < glitch_window {
                glitches += 1;
            }
        }
        let span = end.ticks().max(1);
        WaveformStats {
            transitions: changes.len(),
            toggle_rate: changes.len() as f64 / span as f64,
            min_pulse,
            max_pulse,
            glitches,
            glitch_window,
        }
    }
}

/// An activity report over every watched node of a result.
#[derive(Debug, Clone)]
pub struct ActivityReport {
    /// `(node name, stats)` sorted by descending transition count.
    pub per_node: Vec<(String, WaveformStats)>,
    /// Mean toggle rate across watched nodes.
    pub mean_toggle_rate: f64,
    /// Nodes that never changed (stuck at initial `X` or constant).
    pub quiet_nodes: usize,
}

impl ActivityReport {
    /// Builds the report from a simulation result.
    ///
    /// # Examples
    ///
    /// ```
    /// use parsim_core::{ActivityReport, EventDriven, SimConfig};
    /// use parsim_logic::{Delay, ElementKind, Time};
    /// use parsim_netlist::Builder;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut b = Builder::new();
    /// let clk = b.node("clk", 1);
    /// let dead = b.node("dead", 1);
    /// b.element("osc", ElementKind::Clock { half_period: 4, offset: 4 },
    ///           Delay(1), &[], &[clk])?;
    /// let n = b.finish()?;
    /// let r = EventDriven::run(
    ///     &n,
    ///     &SimConfig::new(Time(40)).watch(clk).watch(dead),
    /// )?;
    /// let report = ActivityReport::from_result(&r);
    /// assert_eq!(report.quiet_nodes, 1);
    /// assert_eq!(report.per_node[0].0, "clk");
    /// # Ok(())
    /// # }
    /// ```
    pub fn from_result(result: &SimResult) -> ActivityReport {
        let mut per_node: Vec<(String, WaveformStats)> = result
            .waveforms()
            .iter()
            .map(|w| (w.name().to_string(), WaveformStats::of(w, result.end_time)))
            .collect();
        per_node.sort_by_key(|(_, s)| std::cmp::Reverse(s.transitions));
        let quiet_nodes = per_node.iter().filter(|(_, s)| s.transitions == 0).count();
        let mean_toggle_rate = if per_node.is_empty() {
            0.0
        } else {
            per_node.iter().map(|(_, s)| s.toggle_rate).sum::<f64>() / per_node.len() as f64
        };
        ActivityReport {
            per_node,
            mean_toggle_rate,
            quiet_nodes,
        }
    }

    /// The busiest `n` nodes.
    pub fn top(&self, n: usize) -> &[(String, WaveformStats)] {
        &self.per_node[..n.min(self.per_node.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::seq::EventDriven;
    use parsim_logic::{Delay, ElementKind};
    use parsim_netlist::Builder;

    #[test]
    fn pulse_widths_and_glitches() {
        // A pulse generator: 0 -> 1 at 10 -> 0 at 11 (width-1 glitch).
        let mut b = Builder::new();
        let p = b.node("p", 1);
        b.element("pg", ElementKind::Pulse { at: 10, width: 1 }, Delay(1), &[], &[p])
            .unwrap();
        let n = b.finish().unwrap();
        let r = EventDriven::run(&n, &SimConfig::new(Time(50)).watch(p)).unwrap();
        let s = WaveformStats::of(r.waveform(n.node_by_name("p").unwrap()).unwrap(), Time(50));
        assert_eq!(s.transitions, 3); // 0 at t=0, 1 at 10, 0 at 11
        assert_eq!(s.min_pulse, Some(1));
        assert_eq!(s.glitches, 1);
        assert_eq!(s.max_pulse, Some(10));
    }

    #[test]
    fn empty_waveform_stats() {
        let mut b = Builder::new();
        let q = b.node("q", 1);
        let n = b.finish().unwrap();
        let r = EventDriven::run(&n, &SimConfig::new(Time(10)).watch(q)).unwrap();
        let s = WaveformStats::of(r.waveform(q).unwrap(), Time(10));
        assert_eq!(s.transitions, 0);
        assert_eq!(s.min_pulse, None);
        assert_eq!(s.glitches, 0);
        assert_eq!(s.toggle_rate, 0.0);
    }

    #[test]
    fn report_orders_by_activity() {
        let mut b = Builder::new();
        let fast = b.node("fast", 1);
        let slow = b.node("slow", 1);
        b.element(
            "f",
            ElementKind::Clock {
                half_period: 1,
                offset: 1,
            },
            Delay(1),
            &[],
            &[fast],
        )
        .unwrap();
        b.element(
            "s",
            ElementKind::Clock {
                half_period: 20,
                offset: 20,
            },
            Delay(1),
            &[],
            &[slow],
        )
        .unwrap();
        let n = b.finish().unwrap();
        let r = EventDriven::run(&n, &SimConfig::new(Time(100)).watch(fast).watch(slow)).unwrap();
        let report = ActivityReport::from_result(&r);
        assert_eq!(report.per_node[0].0, "fast");
        assert_eq!(report.quiet_nodes, 0);
        assert!(report.mean_toggle_rate > 0.0);
        assert_eq!(report.top(1).len(), 1);
        assert_eq!(report.top(10).len(), 2);
    }
}
