//! The synchronous parallel event-driven engine (§2 of the paper).
//!
//! The classic two-phase event-driven algorithm run in parallel with a
//! barrier between phases, incorporating both of the paper's key fixes:
//!
//! - **Distributed queues**: "the queues were distributed with each
//!   processor having one queue for each of the other processors ... thus
//!   splitting up the problem into n parts when adding to the list rather
//!   than when removing from the list." Scheduled node updates and element
//!   activations are scattered round-robin at *insert* time into per-pair
//!   mailboxes with a single writer and a single reader each.
//! - **End-of-phase work stealing**: "once a processor has finished all
//!   the tasks assigned to it, it looks at the queues on the other
//!   processors for more work. This introduces a little contention ...
//!   but only at the very end of each phase" (reported +15–20%
//!   utilization). Each processor's per-phase work list is consumed
//!   through an atomic cursor that idle processors advance on behalf of
//!   the owner.
//!
//! Shared-state discipline: every `SharedSlice` slot is written by at most
//! one thread per phase (updates are unique per `(node, time)`; element
//! activation is made exclusive by a compare-and-swap step stamp), and
//! barriers provide the cross-phase synchronization edges.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parsim_checkpoint::{EngineSnapshot, PendingEvent};
use parsim_logic::{evaluate, expand_generator, transition_delay, ElemState, Time, Value};
use parsim_netlist::{Netlist, NodeId};
use parsim_queue::{MailPool, SpinBarrier};
use parsim_telemetry::{Counter, Gauge};
use parsim_trace::{EventKind, Tracer, WorkerTracer};

use crate::checkpoint::{new_run_ctx, SegmentOut, SegmentSpec};
use crate::config::SimConfig;
use crate::error::{SimError, StallDiagnostic};
use crate::fault::FaultAction;
use crate::metrics::{ArenaCounters, EventsPerStepHistogram, Metrics, ThreadMetrics};
use crate::shared::SharedSlice;
use crate::watchdog::{Containment, Watchdog, WatchdogVerdict};
use crate::waveform::SimResult;

/// Engine tag used in [`SimError`] values.
const ENGINE: &str = "sync-event-driven";

/// Per-worker results: recorded waveform changes, timing counters, the
/// worker's update-buffer pool counts as `(misses, hits)` — misses are
/// fresh `Vec<Update>` allocations in the scheduling hot path (steady
/// state recycles drained buffers through the [`MailPool`], so misses
/// are bounded by the peak number of simultaneously live
/// `(mailbox, time)` entries, not by the event count; asserted by
/// `tests::update_buffers_are_recycled` and surfaced as
/// [`Metrics::pool_misses`]; hits become
/// [`ArenaCounters::mailbox_recycled`](crate::metrics::ArenaCounters)) —
/// the worker's trace ring, and the events the worker computed beyond
/// the segment cut (checkpoint capture mode).
type WorkerOutput = (
    Vec<(Time, NodeId, Value)>,
    ThreadMetrics,
    (u64, u64),
    WorkerTracer,
    Vec<PendingEvent>,
);

#[derive(Debug, Clone, Copy)]
struct Update {
    node: u32,
    value: Value,
}

/// The synchronous parallel event-driven simulator.
///
/// With `threads = 1` it degenerates to the sequential algorithm (plus
/// barrier no-ops) and produces waveforms identical to
/// [`EventDriven`](crate::EventDriven) — as it does for any thread count.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, Default)]
pub struct SyncEventDriven;

impl SyncEventDriven {
    /// Runs the simulation on `config.threads` worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WorkerPanicked`] if any worker panicked (the
    /// phase barrier is poisoned so peers unblock, and every thread is
    /// joined first), and [`SimError::Stalled`] /
    /// [`SimError::DeadlineExceeded`] if the configured watchdog cancelled
    /// the run.
    pub fn run(netlist: &Netlist, config: &SimConfig) -> Result<SimResult, SimError> {
        let ctx = new_run_ctx(config);
        let out = Self::run_segment(netlist, config, SegmentSpec::whole(config, ctx.clone()))?;
        let mut result = out.into_result(netlist, config);
        result.telemetry = Some(ctx.finish());
        Ok(result)
    }

    /// Runs one segment — the whole run when `seg` is
    /// [`SegmentSpec::whole`]. Resume seeds the shared state slices from
    /// the snapshot and re-injects its pending events into the mailboxes
    /// before any worker spawns; capture routes events computed beyond
    /// `seg.cut` (but within the horizon) into per-worker overflow lists
    /// that become the returned snapshot's pending set. See
    /// [`EventDriven::run_segment`](crate::seq::EventDriven::run_segment)
    /// for the bookkeeping rules both engines share.
    pub(crate) fn run_segment(
        netlist: &Netlist,
        config: &SimConfig,
        seg: SegmentSpec<'_>,
    ) -> Result<SegmentOut, SimError> {
        let start = Instant::now();
        let end = config.end_time.ticks();
        let cut = seg.cut;
        let t0 = seg.resume.map(|s| s.time);
        let capture = seg.capture;
        let n = config.threads;

        let mut watched = vec![false; netlist.num_nodes()];
        for &w in &config.watch {
            watched[w.index()] = true;
        }
        let watched = &watched;

        // Shared node values: one writer per (node, time) in phase A.
        let values: SharedSlice<Value> = SharedSlice::new(match seg.resume {
            Some(snap) => snap.values.clone(),
            None => netlist
                .nodes()
                .iter()
                .map(|nd| Value::x(nd.width()))
                .collect(),
        });
        let values = &values;
        // Last value scheduled per node: touched only while evaluating the
        // node's (unique) driver, which is exclusive per step.
        let last_scheduled: SharedSlice<Value> = SharedSlice::new(match seg.resume {
            Some(snap) => snap.last_scheduled.clone(),
            None => netlist
                .nodes()
                .iter()
                .map(|nd| Value::x(nd.width()))
                .collect(),
        });
        let last_scheduled = &last_scheduled;
        // Last scheduled event time per node (same single-writer
        // discipline as `last_scheduled`).
        let last_sched_time: SharedSlice<u64> = SharedSlice::new(match seg.resume {
            Some(snap) => snap.last_sched_time.clone(),
            None => vec![0u64; netlist.num_nodes()],
        });
        let last_sched_time = &last_sched_time;
        let states: SharedSlice<ElemState> = SharedSlice::new(match seg.resume {
            Some(snap) => snap.elem_states.clone(),
            None => netlist
                .elements()
                .iter()
                .map(|e| ElemState::init(e.kind()))
                .collect(),
        });
        let states = &states;

        // Per-element activation stamp: the step at which the element was
        // last scheduled. CAS makes scheduling exactly-once per step.
        let stamps: Vec<AtomicU64> = (0..netlist.num_elements())
            .map(|_| AtomicU64::new(u64::MAX))
            .collect();
        let stamps = &stamps;

        // n x n mailboxes: slot i*n+j written by thread i, drained by j.
        let node_mail: SharedSlice<BTreeMap<u64, Vec<Update>>> =
            SharedSlice::from_fn(n * n, |_| BTreeMap::new());
        // Recycled update buffers, one pool per mailbox slot
        // ([`parsim_queue::MailPool`], the arena module's barrier-
        // separated recycler). The drain side (phase A fill, reader
        // thread) puts emptied vectors back; the insert side (phase B,
        // writer thread) takes them for new time entries. The two sides
        // run in barrier-separated phases, so each slot has one accessor
        // at a time — the same discipline as the mailbox it shadows. Net
        // effect: the scheduling hot path performs zero steady-state
        // allocations.
        let free_mail: MailPool<Update> = MailPool::new(n);
        let elem_mail: SharedSlice<Vec<u32>> = SharedSlice::from_fn(n * n, |_| Vec::new());
        // Per-thread phase work lists + steal cursors.
        let phase_nodes: SharedSlice<Vec<Update>> = SharedSlice::from_fn(n, |_| Vec::new());
        let phase_elems: SharedSlice<Vec<u32>> = SharedSlice::from_fn(n, |_| Vec::new());
        let node_cursor: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let elem_cursor: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        let (node_mail, elem_mail) = (&node_mail, &elem_mail);
        let free_mail = &free_mail;
        let (phase_nodes, phase_elems) = (&phase_nodes, &phase_elems);
        let (node_cursor, elem_cursor) = (&node_cursor, &elem_cursor);

        // Events carried across this segment unexecuted: snapshot pending
        // beyond even this cut (their bookkeeping already happened).
        let mut carry: Vec<PendingEvent> = Vec::new();
        // Seed generator events round-robin into thread 0's mailbox row
        // (safe: threads have not started). Expansion stops at the cut;
        // a resumed segment re-expands and keeps only events past the
        // previous cut.
        {
            let mut rr = 0usize;
            for gen in netlist.generators() {
                let e = netlist.element(gen);
                let out = e.outputs()[0].index() as u32;
                for (t, v) in expand_generator(e.kind(), Time(cut)) {
                    if t0.is_some_and(|t0| t.ticks() <= t0) {
                        continue;
                    }
                    // SAFETY: pre-spawn exclusive access.
                    unsafe { node_mail.get_mut(rr) }
                        .entry(t.ticks())
                        .or_default()
                        .push(Update { node: out, value: v });
                    rr = (rr + 1) % n;
                }
            }
            if let Some(snap) = seg.resume {
                // Re-inject in-flight events from the snapshot.
                let mut rr = 0usize;
                for ev in &snap.pending {
                    if ev.time <= cut {
                        // SAFETY: pre-spawn exclusive access.
                        unsafe { node_mail.get_mut(rr) }
                            .entry(ev.time)
                            .or_default()
                            .push(Update {
                                node: ev.node,
                                value: ev.value,
                            });
                        rr = (rr + 1) % n;
                    } else {
                        carry.push(ev.clone());
                    }
                }
            } else {
                // Initialization pass: activate every non-generator
                // element at step 0 (first segment only).
                let mut rr = 0usize;
                for (id, e) in netlist.iter_elements() {
                    if e.kind().is_generator() {
                        continue;
                    }
                    stamps[id.index()].store(0, Ordering::Relaxed);
                    // SAFETY: pre-spawn exclusive access.
                    unsafe { elem_mail.get_mut(rr) }.push(id.index() as u32);
                    rr = (rr + 1) % n;
                }
            }
        }

        let next_time = AtomicU64::new(0);
        let done = AtomicBool::new(false);
        let events_total = AtomicU64::new(0);
        let steps_total = AtomicU64::new(0);
        let (next_time, done) = (&next_time, &done);
        let (events_total, steps_total) = (&events_total, &steps_total);
        // Leader-side events-per-step accounting (satellite of the
        // telemetry registry): the leader section between barriers 3 and 4
        // is exclusive and barrier-ordered, so plain state behind an
        // uncontended mutex is safe and cheap — one lock per time step.
        let step_hist: std::sync::Mutex<(EventsPerStepHistogram, u64)> =
            std::sync::Mutex::new((EventsPerStepHistogram::new(), 0));
        let step_hist = &step_hist;
        let registry = &seg.telemetry.registry;
        let barrier = Arc::new(SpinBarrier::new(n));

        // A panicking worker poisons the barrier so peers blocked at a
        // phase boundary unblock; the watchdog does the same on cancel.
        let containment = Containment::new(n);
        let watchdog = {
            let b = Arc::clone(&barrier);
            Watchdog::spawn(
                &containment,
                config.deadline,
                config.stall_timeout,
                seg.telemetry.sampler(),
                move || b.poison(),
            )
        };
        let barrier = &barrier;
        let tracer = Tracer::new(config.trace.as_ref());
        let tracer_ref = &tracer;

        let mut outputs: Vec<Option<WorkerOutput>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..n)
                .map(|me| {
                    let cont = &containment;
                    let fault = config.fault.clone();
                    scope.spawn(move || {
                        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut changes: Vec<(Time, NodeId, Value)> = Vec::new();
                        let mut overflow: Vec<PendingEvent> = Vec::new();
                        let mut tm = ThreadMetrics::default();
                        let mut tr = tracer_ref.worker(me);
                        let shard = registry.worker(me);
                        let mut published_evals = 0u64;
                        let mut pool_misses = 0u64;
                        let mut pool_hits = 0u64;
                        let mut rr_elem = (me + 1) % n;
                        let mut rr_node = (me + 1) % n;
                        let mut inputs_buf: Vec<Value> = Vec::with_capacity(8);
                        let mut processed = 0u64;
                        'run: loop {
                            // Every worker reaches this point once per
                            // step: the liveness signal the watchdog
                            // samples.
                            cont.beat(me);
                            let t = next_time.load(Ordering::Acquire);

                            // ---- phase A fill: drain updates for time t --
                            let busy = Instant::now();
                            {
                                // SAFETY: each thread touches only its own
                                // work list; barrier-separated from steals.
                                let work = unsafe { phase_nodes.get_mut(me) };
                                work.clear();
                                for i in 0..n {
                                    // SAFETY: slot (i, me) is drained only
                                    // by `me`; writers are quiescent
                                    // (previous barrier).
                                    let mail = unsafe { node_mail.get_mut(i * n + me) };
                                    if let Some(mut us) = mail.remove(&t) {
                                        // `append` drains `us` but keeps its
                                        // capacity: recycle it for the
                                        // writer of this slot.
                                        work.append(&mut us);
                                        // SAFETY: pool slot (i, me) is put
                                        // only here (phase A, by `me`);
                                        // the taking writer runs in
                                        // barrier-separated phase B.
                                        unsafe { free_mail.put(i, me, us) };
                                    }
                                }
                                node_cursor[me].store(0, Ordering::Release);
                            }
                            tm.busy += busy.elapsed();
                            let wait = Instant::now();
                            barrier.wait_traced(&mut tr, 0);
                            tm.idle += wait.elapsed();
                            if barrier.is_poisoned() {
                                break 'run;
                            }

                            // ---- phase A process: apply updates, activate
                            // fan-out (with stealing) ----------------------
                            let busy = Instant::now();
                            tr.begin(EventKind::PhaseNodes, t as u32);
                            let mut my_events = 0u64;
                            for v in 0..n {
                                let victim = (me + v) % n;
                                // SAFETY: immutable during the processing
                                // phase (writers filled before barrier).
                                let work = unsafe { phase_nodes.get(victim) };
                                loop {
                                    let idx = node_cursor[victim].fetch_add(1, Ordering::AcqRel);
                                    if idx >= work.len() {
                                        break;
                                    }
                                    let Update { node, value } = work[idx];
                                    let node = node as usize;
                                    // SAFETY: updates are unique per
                                    // (node, time): exclusive writer.
                                    let slot = unsafe { values.get_mut(node) };
                                    if *slot == value {
                                        continue;
                                    }
                                    *slot = value;
                                    my_events += 1;
                                    if watched[node] {
                                        changes.push((
                                            Time(t),
                                            NodeId::from_index(node),
                                            value,
                                        ));
                                    }
                                    for &(elem, _) in netlist.nodes()[node].fanout() {
                                        let e = elem.index();
                                        // Exactly-once activation per step.
                                        let mut cur = stamps[e].load(Ordering::Relaxed);
                                        loop {
                                            if cur == t {
                                                break;
                                            }
                                            match stamps[e].compare_exchange_weak(
                                                cur,
                                                t,
                                                Ordering::AcqRel,
                                                Ordering::Relaxed,
                                            ) {
                                                Ok(_) => {
                                                    // SAFETY: row `me` is
                                                    // written only by this
                                                    // thread this phase.
                                                    unsafe {
                                                        elem_mail.get_mut(me * n + rr_elem)
                                                    }
                                                    .push(e as u32);
                                                    rr_elem = (rr_elem + 1) % n;
                                                    break;
                                                }
                                                Err(now) => cur = now,
                                            }
                                        }
                                    }
                                }
                            }
                            tr.end(EventKind::PhaseNodes);
                            events_total.fetch_add(my_events, Ordering::Relaxed);
                            shard.add(Counter::EventsProcessed, my_events);
                            tm.events += my_events;
                            tm.busy += busy.elapsed();
                            let wait = Instant::now();
                            barrier.wait_traced(&mut tr, 1);
                            tm.idle += wait.elapsed();
                            if barrier.is_poisoned() {
                                break 'run;
                            }

                            // ---- phase B fill: drain activated elements --
                            let busy = Instant::now();
                            {
                                // SAFETY: own work list.
                                let work = unsafe { phase_elems.get_mut(me) };
                                work.clear();
                                for i in 0..n {
                                    // SAFETY: slot (i, me) drained only by
                                    // `me`; writers quiescent.
                                    let mail = unsafe { elem_mail.get_mut(i * n + me) };
                                    work.append(mail);
                                }
                                elem_cursor[me].store(0, Ordering::Release);
                                shard.set_gauge(Gauge::QueueDepth, work.len() as u64);
                                tr.counter(EventKind::QueueDepth, work.len() as u32);
                            }
                            tm.busy += busy.elapsed();
                            let wait = Instant::now();
                            barrier.wait_traced(&mut tr, 2);
                            tm.idle += wait.elapsed();
                            if barrier.is_poisoned() {
                                break 'run;
                            }

                            // ---- phase B process: evaluate + schedule ----
                            let busy = Instant::now();
                            tr.begin(EventKind::PhaseElems, t as u32);
                            for v in 0..n {
                                let victim = (me + v) % n;
                                // SAFETY: immutable during processing.
                                let work = unsafe { phase_elems.get(victim) };
                                loop {
                                    let idx = elem_cursor[victim].fetch_add(1, Ordering::AcqRel);
                                    if idx >= work.len() {
                                        break;
                                    }
                                    let e = work[idx] as usize;
                                    if v != 0 {
                                        // Work taken from another worker's
                                        // list: end-of-phase stealing.
                                        tr.instant(EventKind::Steal, e as u32);
                                    }
                                    if let FaultAction::Exit =
                                        fault.check(me, processed, cont.cancel_flag())
                                    {
                                        // Only reached after cancellation,
                                        // which always poisons the barrier,
                                        // so peers are not left waiting.
                                        break 'run;
                                    }
                                    processed += 1;
                                    cont.beat(me);
                                    let elem = &netlist.elements()[e];
                                    inputs_buf.clear();
                                    for &inp in elem.inputs() {
                                        // SAFETY: values quiescent in B.
                                        inputs_buf.push(unsafe { *values.get(inp.index()) });
                                    }
                                    // SAFETY: element exclusive (stamp CAS).
                                    let state = unsafe { states.get_mut(e) };
                                    let out = evaluate(elem.kind(), &inputs_buf, state);
                                    tm.evaluations += 1;
                                    tr.instant(EventKind::Eval, e as u32);
                                    for (port, val) in out.iter() {
                                        let out_node = elem.outputs()[port].index();
                                        // SAFETY: only the driver's
                                        // evaluator touches this slot.
                                        let ls = unsafe { last_scheduled.get_mut(out_node) };
                                        if *ls == val {
                                            continue;
                                        }
                                        let td = transition_delay(
                                            ls,
                                            &val,
                                            elem.rise_delay(),
                                            elem.fall_delay(),
                                        );
                                        // SAFETY: same single-writer slot.
                                        let lt =
                                            unsafe { last_sched_time.get_mut(out_node) };
                                        let te = (t + td.ticks()).max(*lt + 1);
                                        if te <= cut {
                                            // Kept events only (see seq).
                                            *ls = val;
                                            *lt = te;
                                            // SAFETY: row `me` written only
                                            // by this thread this phase
                                            // (mailbox and its buffer pool
                                            // alike).
                                            unsafe { node_mail.get_mut(me * n + rr_node) }
                                                .entry(te)
                                                .or_insert_with(|| {
                                                    // SAFETY: slot
                                                    // (me, rr_node) is
                                                    // taken only by `me`
                                                    // in this phase.
                                                    match unsafe {
                                                        free_mail.take(me, rr_node)
                                                    } {
                                                        Some(buf) => {
                                                            pool_hits += 1;
                                                            buf
                                                        }
                                                        None => {
                                                            pool_misses += 1;
                                                            tr.instant(
                                                                EventKind::PoolMiss,
                                                                rr_node as u32,
                                                            );
                                                            Vec::new()
                                                        }
                                                    }
                                                })
                                                .push(Update {
                                                    node: out_node as u32,
                                                    value: val,
                                                });
                                            tr.instant(
                                                EventKind::EventInsert,
                                                out_node as u32,
                                            );
                                            rr_node = (rr_node + 1) % n;
                                        } else if capture && te <= end {
                                            // Beyond the cut but within
                                            // the horizon: goes into the
                                            // snapshot, with kept-event
                                            // bookkeeping (see seq).
                                            *ls = val;
                                            *lt = te;
                                            overflow.push(PendingEvent {
                                                time: te,
                                                node: out_node as u32,
                                                value: val,
                                            });
                                        }
                                    }
                                }
                            }
                            tr.end(EventKind::PhaseElems);
                            // Per-step evaluation delta: one relaxed
                            // publish per worker per step, never per event.
                            shard.add(Counter::Evaluations, tm.evaluations - published_evals);
                            shard.add(Counter::Activations, tm.evaluations - published_evals);
                            published_evals = tm.evaluations;
                            tm.busy += busy.elapsed();
                            let wait = Instant::now();
                            let leader = barrier.wait_traced(&mut tr, 3);
                            // ---- reduce: find the next active time -------
                            if leader {
                                steps_total.fetch_add(1, Ordering::Relaxed);
                                {
                                    // Leader-exclusive (barrier-ordered):
                                    // record this step's global event count
                                    // into the histogram and registry.
                                    let now = events_total.load(Ordering::Relaxed);
                                    let mut h =
                                        step_hist.lock().unwrap_or_else(|e| e.into_inner());
                                    let step_events = now - h.1;
                                    h.1 = now;
                                    if step_events > 0 {
                                        h.0.record(step_events);
                                        registry.driver().record_step_events(step_events);
                                    }
                                    registry.driver().inc(Counter::TimeSteps);
                                    registry.driver().set_gauge(Gauge::SimTime, t);
                                }
                                let mut min_t = u64::MAX;
                                for slot in 0..n * n {
                                    // SAFETY: all writers are at the
                                    // barrier below.
                                    if let Some((&k, _)) =
                                        unsafe { node_mail.get(slot) }.first_key_value()
                                    {
                                        min_t = min_t.min(k);
                                    }
                                }
                                // Cooperative cancellation folds into the
                                // existing `done` mechanism: only the
                                // leader samples the flag, so workers never
                                // diverge at a barrier.
                                if min_t == u64::MAX || min_t > cut || cont.cancelled() {
                                    done.store(true, Ordering::Release);
                                } else {
                                    next_time.store(min_t, Ordering::Release);
                                }
                            }
                            barrier.wait_traced(&mut tr, 4);
                            tm.idle += wait.elapsed();
                            if barrier.is_poisoned() || done.load(Ordering::Acquire) {
                                break 'run;
                            }
                        }
                        // End-of-segment publishes for values that only
                        // exist as totals: wall-clock split, pool counters.
                        shard.add(Counter::BusyNs, tm.busy.as_nanos() as u64);
                        shard.add(Counter::IdleNs, tm.idle.as_nanos() as u64);
                        shard.add(Counter::PoolMisses, pool_misses);
                        shard.add(Counter::MailboxRecycled, pool_hits);
                        (changes, tm, (pool_misses, pool_hits), tr, overflow)
                        }));
                        match body {
                            Ok(out) => Some(out),
                            Err(payload) => {
                                cont.record_panic(me, payload);
                                barrier.poison();
                                None
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                outputs.push(h.join().unwrap_or_default());
            }
        });
        if let Some(w) = watchdog {
            w.finish();
        }

        if let Some((worker, payload)) = containment.take_panic() {
            return Err(SimError::WorkerPanicked {
                engine: ENGINE,
                worker,
                payload,
            });
        }
        if let Some(verdict) = containment.take_verdict() {
            let diagnostic = Box::new(StallDiagnostic {
                heartbeats: containment.heartbeat_snapshot(),
                sim_time: Some(Time(next_time.load(Ordering::Acquire))),
                ..StallDiagnostic::default()
            });
            return Err(match verdict {
                WatchdogVerdict::Stalled { stalled_for } => SimError::Stalled {
                    engine: ENGINE,
                    stalled_for,
                    diagnostic,
                },
                WatchdogVerdict::Deadline { deadline } => SimError::DeadlineExceeded {
                    engine: ENGINE,
                    deadline,
                    diagnostic,
                },
            });
        }

        let outputs: Vec<WorkerOutput> = outputs.into_iter().flatten().collect();
        let mut changes = Vec::new();
        let mut per_thread = Vec::with_capacity(n);
        let mut evaluations = 0;
        let mut pool_misses = 0;
        let mut pool_hits = 0;
        let mut worker_tracers = Vec::with_capacity(n);
        for (c, tm, (pm, ph), wt, of) in outputs {
            evaluations += tm.evaluations;
            pool_misses += pm;
            pool_hits += ph;
            changes.extend(c);
            per_thread.push(tm);
            worker_tracers.push(wt);
            carry.extend(of);
        }
        let metrics = Metrics {
            events_processed: events_total.load(Ordering::Relaxed),
            evaluations,
            activations: evaluations,
            time_steps: steps_total.load(Ordering::Relaxed),
            // Recorded by the step leader from the global per-step event
            // deltas (the same numbers the sequential engine sees), so the
            // paper's §5 availability histogram exists for parallel runs.
            events_per_step: step_hist
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .0
                .clone(),
            per_thread,
            gc_chunks_freed: 0,
            blocks_skipped: 0,
            evals_skipped: 0,
            locality: Default::default(),
            pool_misses,
            checkpoint: Default::default(),
            lane_width: 0,
            arena: ArenaCounters {
                mailbox_recycled: pool_hits,
                ..Default::default()
            },
            wall: start.elapsed(),
        };
        let snapshot = capture.then(|| {
            let num_nodes = netlist.num_nodes();
            carry.sort_by_key(|ev| (ev.time, ev.node));
            // SAFETY: all workers are joined; single-threaded access with
            // the joins as the synchronization edge.
            unsafe {
                EngineSnapshot {
                    end_time: end,
                    time: cut,
                    step: 0,
                    seeds: [0, 0],
                    values: values.slice(0..num_nodes).to_vec(),
                    last_scheduled: last_scheduled.slice(0..num_nodes).to_vec(),
                    last_sched_time: last_sched_time.slice(0..num_nodes).to_vec(),
                    elem_states: states.slice(0..netlist.num_elements()).to_vec(),
                    pending: std::mem::take(&mut carry),
                    changes: Vec::new(),
                }
            }
        });
        Ok(SegmentOut {
            changes,
            metrics,
            trace: tracer.finish(worker_tracers),
            snapshot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::assert_equivalent;
    use crate::seq::EventDriven;
    use parsim_logic::{Delay, ElementKind};
    use parsim_netlist::Builder;

    fn mixed_delay_circuit() -> (Netlist, Vec<NodeId>) {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 7,
                offset: 3,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        let d = b.node("d", 1);
        b.element("g1", ElementKind::Not, Delay(2), &[clk], &[a])
            .unwrap();
        b.element("g2", ElementKind::Not, Delay(3), &[a], &[c])
            .unwrap();
        b.element("g3", ElementKind::Xor, Delay(1), &[a, c], &[d])
            .unwrap();
        (b.finish().unwrap(), vec![clk, a, c, d])
    }

    #[test]
    fn matches_sequential_reference() {
        let (n, watch) = mixed_delay_circuit();
        let cfg = SimConfig::new(Time(100)).watch_all(watch);
        let seq = EventDriven::run(&n, &cfg).unwrap();
        for threads in [1, 2, 3, 5] {
            let par = SyncEventDriven::run(&n, &cfg.clone().threads(threads)).unwrap();
            assert_equivalent(&seq, &par, &format!("sync x{threads}"));
            assert_eq!(
                seq.metrics.events_processed,
                par.metrics.events_processed,
                "event counts must match at {threads} threads"
            );
        }
    }

    #[test]
    fn sequential_feedback_matches() {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let rst = b.node("rst", 1);
        let q0 = b.node("q0", 1);
        let q1 = b.node("q1", 1);
        let d0 = b.node("d0", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 5,
                offset: 5,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        b.element(
            "porst",
            ElementKind::Pulse { at: 0, width: 3 },
            Delay(1),
            &[],
            &[rst],
        )
        .unwrap();
        b.element(
            "ff0",
            ElementKind::DffR { width: 1 },
            Delay(1),
            &[clk, d0, rst],
            &[q0],
        )
        .unwrap();
        b.element(
            "ff1",
            ElementKind::DffR { width: 1 },
            Delay(1),
            &[clk, q0, rst],
            &[q1],
        )
        .unwrap();
        b.element("fb", ElementKind::Xnor, Delay(1), &[q0, q1], &[d0])
            .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(200)).watch(q0).watch(q1);
        let seq = EventDriven::run(&n, &cfg).unwrap();
        let par = SyncEventDriven::run(&n, &cfg.clone().threads(4)).unwrap();
        assert_equivalent(&seq, &par, "feedback");
        assert!(seq.waveform(q0).unwrap().num_changes() > 5);
    }

    /// The scheduling hot path must not allocate per activation: drained
    /// update buffers are recycled, so pool misses (fresh allocations) are
    /// bounded by peak calendar occupancy, not by event count. The counter
    /// is per-run ([`Metrics::pool_misses`]) and lives in release builds
    /// too, so pool effectiveness is observable outside debug runs.
    #[test]
    fn update_buffers_are_recycled() {
        let (n, watch) = mixed_delay_circuit();
        let cfg = SimConfig::new(Time(5000)).watch_all(watch).threads(2);
        let r = SyncEventDriven::run(&n, &cfg).unwrap();
        let misses = r.metrics.pool_misses;
        // Thousands of events; misses only during pool warm-up.
        assert!(r.metrics.events_processed > 1000, "circuit too quiet");
        assert!(misses > 0, "warm-up must allocate at least one buffer");
        assert!(
            misses < r.metrics.events_processed / 4,
            "pool misses ({misses}) scale with events ({}) — buffers not recycled",
            r.metrics.events_processed
        );
    }

    #[test]
    fn utilization_metrics_present() {
        let (n, watch) = mixed_delay_circuit();
        let cfg = SimConfig::new(Time(50)).watch_all(watch).threads(2);
        let r = SyncEventDriven::run(&n, &cfg).unwrap();
        assert_eq!(r.metrics.per_thread.len(), 2);
        assert!(r.metrics.time_steps > 0);
    }
}
