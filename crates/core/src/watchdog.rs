//! Shared failure-containment state and the progress watchdog.
//!
//! Every parallel engine run owns one [`Containment`]: a cancellation
//! flag every worker polls on its activation-pop path (one relaxed load),
//! per-worker heartbeat counters, and a slot recording the first worker
//! panic. A panicking worker (caught by `catch_unwind` in the engine's
//! worker wrapper) records itself, sets the flag, and poisons whatever
//! synchronization primitive its peers could be blocked on — so the
//! driver always joins every thread and returns a structured error.
//!
//! The [`Watchdog`] is an optional monitor thread, spawned only when the
//! config sets a deadline or stall timeout. It samples the heartbeats: if
//! the wall-time deadline passes, or no counter moves for the stall
//! timeout, it cancels the run and records which trigger fired. The
//! driver turns that verdict plus a post-join state snapshot into
//! [`SimError::Stalled`](crate::SimError::Stalled) or
//! [`SimError::DeadlineExceeded`](crate::SimError::DeadlineExceeded).

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parsim_queue::CachePadded;

/// Renders a panic payload (from `catch_unwind`) to a string.
pub(crate) fn panic_payload_to_string(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Which watchdog trigger cancelled the run.
pub(crate) enum WatchdogVerdict {
    /// No heartbeat moved for this long.
    Stalled { stalled_for: Duration },
    /// The wall-time deadline passed.
    Deadline { deadline: Duration },
}

/// Per-run shared containment state.
pub(crate) struct Containment {
    /// Cooperative cancellation: workers poll this on their
    /// activation-pop path and exit their loops when set.
    cancel: AtomicBool,
    /// First panic wins: `(worker, payload)`.
    panic_slot: Mutex<Option<(usize, String)>>,
    /// Watchdog verdict, if the watchdog cancelled the run.
    verdict: Mutex<Option<WatchdogVerdict>>,
    /// Per-worker activation counters, padded to avoid false sharing with
    /// the hot path that increments them.
    heartbeats: Vec<CachePadded<AtomicU64>>,
}

impl Containment {
    pub fn new(workers: usize) -> Arc<Containment> {
        Arc::new(Containment {
            cancel: AtomicBool::new(false),
            panic_slot: Mutex::new(None),
            verdict: Mutex::new(None),
            heartbeats: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        })
    }

    /// The cancellation flag workers poll (also handed to
    /// [`FaultPlan::check`](crate::FaultPlan) so stalled workers wake).
    pub fn cancel_flag(&self) -> &AtomicBool {
        &self.cancel
    }

    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    pub fn cancel_now(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// Bumps worker `w`'s heartbeat; call once per processed activation.
    pub fn beat(&self, w: usize) {
        self.heartbeats[w].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker panic (first one wins) and cancels the run.
    pub fn record_panic(&self, worker: usize, payload: Box<dyn Any + Send>) {
        let msg = panic_payload_to_string(payload);
        {
            let mut slot = self.panic_slot.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some((worker, msg));
            }
        }
        self.cancel_now();
    }

    /// The first recorded panic, if any.
    pub fn take_panic(&self) -> Option<(usize, String)> {
        self.panic_slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    fn record_verdict(&self, v: WatchdogVerdict) {
        let mut slot = self.verdict.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(v);
        }
    }

    /// The watchdog's verdict, if it cancelled the run.
    pub fn take_verdict(&self) -> Option<WatchdogVerdict> {
        self.verdict
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// Post-join snapshot of the heartbeat counters.
    pub fn heartbeat_snapshot(&self) -> Vec<u64> {
        self.heartbeats
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .collect()
    }
}

/// The optional monitor thread.
pub(crate) struct Watchdog {
    done: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns a monitor if the config asks for one. `on_cancel` runs on
    /// the monitor thread right after the cancel flag is set — engines use
    /// it to poison barriers so blocked peers wake.
    pub fn spawn(
        containment: &Arc<Containment>,
        deadline: Option<Duration>,
        stall_timeout: Option<Duration>,
        on_cancel: impl Fn() + Send + 'static,
    ) -> Option<Watchdog> {
        if deadline.is_none() && stall_timeout.is_none() {
            return None;
        }
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let cont = Arc::clone(containment);
        let handle = std::thread::spawn(move || {
            let start = Instant::now();
            // Sample often enough to honor short test timeouts without
            // burning a core: a quarter of the tightest bound, clamped.
            let tightest = stall_timeout
                .into_iter()
                .chain(deadline)
                .min()
                .unwrap_or(Duration::from_millis(100));
            let interval = (tightest / 4)
                .clamp(Duration::from_millis(1), Duration::from_millis(25));
            let mut last_beats = cont.heartbeat_snapshot();
            let mut last_change = Instant::now();
            while !done2.load(Ordering::Acquire) {
                std::thread::park_timeout(interval);
                if done2.load(Ordering::Acquire) || cont.cancelled() {
                    return;
                }
                if let Some(d) = deadline {
                    if start.elapsed() > d {
                        cont.record_verdict(WatchdogVerdict::Deadline { deadline: d });
                        cont.cancel_now();
                        on_cancel();
                        return;
                    }
                }
                let beats = cont.heartbeat_snapshot();
                if beats != last_beats {
                    last_beats = beats;
                    last_change = Instant::now();
                } else if let Some(s) = stall_timeout {
                    let frozen = last_change.elapsed();
                    if frozen > s {
                        cont.record_verdict(WatchdogVerdict::Stalled {
                            stalled_for: frozen,
                        });
                        cont.cancel_now();
                        on_cancel();
                        return;
                    }
                }
            }
        });
        Some(Watchdog {
            done,
            handle: Some(handle),
        })
    }

    /// Stops and joins the monitor (idempotent; called after workers are
    /// joined).
    pub fn finish(mut self) {
        self.done.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_slot_keeps_first() {
        let c = Containment::new(2);
        assert!(!c.cancelled());
        c.record_panic(1, Box::new("first"));
        c.record_panic(0, Box::new("second".to_string()));
        assert!(c.cancelled());
        assert_eq!(c.take_panic(), Some((1, "first".to_string())));
        assert_eq!(c.take_panic(), None);
    }

    #[test]
    fn watchdog_detects_frozen_heartbeats() {
        let c = Containment::new(2);
        let w = Watchdog::spawn(
            &c,
            None,
            Some(Duration::from_millis(30)),
            || {},
        )
        .expect("stall timeout set");
        // Beat for a while, then freeze.
        for _ in 0..3 {
            c.beat(0);
            std::thread::sleep(Duration::from_millis(5));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while !c.cancelled() {
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(matches!(
            c.take_verdict(),
            Some(WatchdogVerdict::Stalled { .. })
        ));
        w.finish();
    }

    #[test]
    fn watchdog_enforces_deadline_even_with_progress() {
        let c = Containment::new(1);
        let cb_fired = Arc::new(AtomicBool::new(false));
        let cb = Arc::clone(&cb_fired);
        let w = Watchdog::spawn(
            &c,
            Some(Duration::from_millis(30)),
            None,
            move || cb.store(true, Ordering::Release),
        )
        .expect("deadline set");
        let deadline = Instant::now() + Duration::from_secs(5);
        while !c.cancelled() {
            c.beat(0); // constant progress must not defeat the deadline
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(matches!(
            c.take_verdict(),
            Some(WatchdogVerdict::Deadline { .. })
        ));
        assert!(cb_fired.load(Ordering::Acquire), "on_cancel must run");
        w.finish();
    }

    #[test]
    fn no_config_no_thread() {
        let c = Containment::new(1);
        assert!(Watchdog::spawn(&c, None, None, || {}).is_none());
    }
}
