//! Shared failure-containment state and the progress watchdog.
//!
//! Every parallel engine run owns one [`Containment`]: a cancellation
//! flag every worker polls on its activation-pop path (one relaxed load),
//! per-worker heartbeat counters, and a slot recording the first worker
//! panic. A panicking worker (caught by `catch_unwind` in the engine's
//! worker wrapper) records itself, sets the flag, and poisons whatever
//! synchronization primitive its peers could be blocked on — so the
//! driver always joins every thread and returns a structured error.
//!
//! The [`Watchdog`] is an optional monitor thread, spawned when the
//! config sets a deadline or stall timeout — or arms the telemetry
//! sampler, which rides the same thread. It samples the heartbeats: if
//! the wall-time deadline passes, or no counter moves for the stall
//! timeout, it cancels the run and records which trigger fired. The
//! driver turns that verdict plus a post-join state snapshot into
//! [`SimError::Stalled`](crate::SimError::Stalled) or
//! [`SimError::DeadlineExceeded`](crate::SimError::DeadlineExceeded).
//! On every wakeup the monitor also ticks the in-run telemetry
//! [`Sampler`](parsim_telemetry::Sampler), which decides whether its
//! period elapsed and snapshots the registry into the flight-recorder
//! ring.

use std::any::Any;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parsim_queue::CachePadded;

/// Renders a panic payload (from `catch_unwind`) to a string.
pub(crate) fn panic_payload_to_string(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Which watchdog trigger cancelled the run.
pub(crate) enum WatchdogVerdict {
    /// No heartbeat moved for this long.
    Stalled { stalled_for: Duration },
    /// The wall-time deadline passed.
    Deadline { deadline: Duration },
}

/// Per-run shared containment state.
pub(crate) struct Containment {
    /// Cooperative cancellation: workers poll this on their
    /// activation-pop path and exit their loops when set.
    cancel: AtomicBool,
    /// First panic wins: `(worker, payload)`.
    panic_slot: Mutex<Option<(usize, String)>>,
    /// Watchdog verdict, if the watchdog cancelled the run.
    verdict: Mutex<Option<WatchdogVerdict>>,
    /// Per-worker activation counters, padded to avoid false sharing with
    /// the hot path that increments them.
    heartbeats: Vec<CachePadded<AtomicU64>>,
}

impl Containment {
    pub fn new(workers: usize) -> Arc<Containment> {
        Arc::new(Containment {
            cancel: AtomicBool::new(false),
            panic_slot: Mutex::new(None),
            verdict: Mutex::new(None),
            heartbeats: (0..workers)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        })
    }

    /// The cancellation flag workers poll (also handed to
    /// [`FaultPlan::check`](crate::FaultPlan) so stalled workers wake).
    pub fn cancel_flag(&self) -> &AtomicBool {
        &self.cancel
    }

    pub fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    pub fn cancel_now(&self) {
        self.cancel.store(true, Ordering::Release);
    }

    /// Bumps worker `w`'s heartbeat; call once per processed activation.
    pub fn beat(&self, w: usize) {
        self.heartbeats[w].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a worker panic (first one wins) and cancels the run.
    pub fn record_panic(&self, worker: usize, payload: Box<dyn Any + Send>) {
        let msg = panic_payload_to_string(payload);
        {
            let mut slot = self.panic_slot.lock().unwrap_or_else(|e| e.into_inner());
            if slot.is_none() {
                *slot = Some((worker, msg));
            }
        }
        self.cancel_now();
    }

    /// The first recorded panic, if any.
    pub fn take_panic(&self) -> Option<(usize, String)> {
        self.panic_slot
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    fn record_verdict(&self, v: WatchdogVerdict) {
        let mut slot = self.verdict.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(v);
        }
    }

    /// The watchdog's verdict, if it cancelled the run.
    pub fn take_verdict(&self) -> Option<WatchdogVerdict> {
        self.verdict
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .take()
    }

    /// Post-join snapshot of the heartbeat counters.
    pub fn heartbeat_snapshot(&self) -> Vec<u64> {
        self.heartbeats
            .iter()
            .map(|h| h.load(Ordering::Relaxed))
            .collect()
    }
}

/// The optional monitor thread.
pub(crate) struct Watchdog {
    done: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl Watchdog {
    /// Spawns a monitor if the config asks for one. `on_cancel` runs on
    /// the monitor thread right after the cancel flag is set — engines use
    /// it to poison barriers so blocked peers wake. A telemetry `sampler`
    /// alone is enough to spawn the thread: the sampler ticks on every
    /// wakeup, even after a cancel trigger fires, so the flight recorder
    /// keeps covering the drain-and-join window.
    pub fn spawn(
        containment: &Arc<Containment>,
        deadline: Option<Duration>,
        stall_timeout: Option<Duration>,
        mut sampler: Option<parsim_telemetry::Sampler>,
        on_cancel: impl Fn() + Send + 'static,
    ) -> Option<Watchdog> {
        if deadline.is_none() && stall_timeout.is_none() && sampler.is_none() {
            return None;
        }
        let done = Arc::new(AtomicBool::new(false));
        let done2 = Arc::clone(&done);
        let cont = Arc::clone(containment);
        let handle = std::thread::spawn(move || {
            let start = Instant::now();
            // Sample often enough to honor short test timeouts (and tight
            // telemetry cadences) without burning a core: a quarter of the
            // tightest bound, clamped.
            let tightest = stall_timeout
                .into_iter()
                .chain(deadline)
                .chain(sampler.as_ref().map(|s| s.period()))
                .min()
                .unwrap_or(Duration::from_millis(100));
            let interval = (tightest / 4)
                .clamp(Duration::from_millis(1), Duration::from_millis(25));
            let mut last_beats = cont.heartbeat_snapshot();
            let mut last_change = Instant::now();
            let mut tripped = false;
            while !done2.load(Ordering::Acquire) {
                std::thread::park_timeout(interval);
                if let Some(s) = sampler.as_mut() {
                    s.tick();
                }
                if done2.load(Ordering::Acquire) {
                    return;
                }
                if tripped || cont.cancelled() {
                    // Already cancelled (by us or a panicking worker):
                    // nothing left to watch, but keep ticking the sampler
                    // until the driver joins us.
                    if sampler.is_none() {
                        return;
                    }
                    tripped = true;
                    continue;
                }
                if let Some(d) = deadline {
                    if start.elapsed() > d {
                        cont.record_verdict(WatchdogVerdict::Deadline { deadline: d });
                        cont.cancel_now();
                        on_cancel();
                        if sampler.is_none() {
                            return;
                        }
                        tripped = true;
                        continue;
                    }
                }
                let beats = cont.heartbeat_snapshot();
                if beats != last_beats {
                    last_beats = beats;
                    last_change = Instant::now();
                } else if let Some(s) = stall_timeout {
                    let frozen = last_change.elapsed();
                    if frozen > s {
                        cont.record_verdict(WatchdogVerdict::Stalled {
                            stalled_for: frozen,
                        });
                        cont.cancel_now();
                        on_cancel();
                        if sampler.is_none() {
                            return;
                        }
                        tripped = true;
                    }
                }
            }
        });
        Some(Watchdog {
            done,
            handle: Some(handle),
        })
    }

    /// Stops and joins the monitor (idempotent; called after workers are
    /// joined).
    pub fn finish(mut self) {
        self.done.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            h.thread().unpark();
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_slot_keeps_first() {
        let c = Containment::new(2);
        assert!(!c.cancelled());
        c.record_panic(1, Box::new("first"));
        c.record_panic(0, Box::new("second".to_string()));
        assert!(c.cancelled());
        assert_eq!(c.take_panic(), Some((1, "first".to_string())));
        assert_eq!(c.take_panic(), None);
    }

    #[test]
    fn watchdog_detects_frozen_heartbeats() {
        let c = Containment::new(2);
        let w = Watchdog::spawn(
            &c,
            None,
            Some(Duration::from_millis(30)),
            None,
            || {},
        )
        .expect("stall timeout set");
        // Beat for a while, then freeze.
        for _ in 0..3 {
            c.beat(0);
            std::thread::sleep(Duration::from_millis(5));
        }
        let deadline = Instant::now() + Duration::from_secs(5);
        while !c.cancelled() {
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(matches!(
            c.take_verdict(),
            Some(WatchdogVerdict::Stalled { .. })
        ));
        w.finish();
    }

    #[test]
    fn watchdog_enforces_deadline_even_with_progress() {
        let c = Containment::new(1);
        let cb_fired = Arc::new(AtomicBool::new(false));
        let cb = Arc::clone(&cb_fired);
        let w = Watchdog::spawn(
            &c,
            Some(Duration::from_millis(30)),
            None,
            None,
            move || cb.store(true, Ordering::Release),
        )
        .expect("deadline set");
        let deadline = Instant::now() + Duration::from_secs(5);
        while !c.cancelled() {
            c.beat(0); // constant progress must not defeat the deadline
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(matches!(
            c.take_verdict(),
            Some(WatchdogVerdict::Deadline { .. })
        ));
        assert!(cb_fired.load(Ordering::Acquire), "on_cancel must run");
        w.finish();
    }

    #[test]
    fn no_config_no_thread() {
        let c = Containment::new(1);
        assert!(Watchdog::spawn(&c, None, None, None, || {}).is_none());
    }

    #[test]
    fn sampler_alone_spawns_and_samples() {
        use parsim_telemetry::{Registry, SampleRing, Sampler};
        let c = Containment::new(1);
        let reg = Arc::new(Registry::new(1));
        let ring = Arc::new(SampleRing::new(64));
        let sampler = Sampler::new(reg.clone(), ring.clone(), Duration::from_millis(1));
        let w = Watchdog::spawn(&c, None, None, Some(sampler), || {})
            .expect("sampler alone spawns the monitor");
        let deadline = Instant::now() + Duration::from_secs(5);
        while ring.len() < 3 {
            assert!(Instant::now() < deadline, "sampler never ticked");
            std::thread::sleep(Duration::from_millis(2));
        }
        w.finish();
        let samples = ring.drain();
        assert!(samples.len() >= 3);
        for pair in samples.windows(2) {
            assert!(pair[0].t_ns <= pair[1].t_ns, "sample timestamps monotone");
        }
    }

    #[test]
    fn sampler_keeps_ticking_after_watchdog_trips() {
        use parsim_telemetry::{Registry, SampleRing, Sampler};
        let c = Containment::new(1);
        let reg = Arc::new(Registry::new(1));
        let ring = Arc::new(SampleRing::new(256));
        let sampler = Sampler::new(reg, ring.clone(), Duration::from_millis(1));
        let w = Watchdog::spawn(
            &c,
            Some(Duration::from_millis(10)),
            None,
            Some(sampler),
            || {},
        )
        .expect("deadline set");
        let deadline = Instant::now() + Duration::from_secs(5);
        while !c.cancelled() {
            assert!(Instant::now() < deadline, "watchdog never fired");
            std::thread::sleep(Duration::from_millis(2));
        }
        let after_trip = ring.len();
        while ring.len() <= after_trip {
            assert!(
                Instant::now() < deadline,
                "sampler stopped after the deadline tripped"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        w.finish();
    }
}
