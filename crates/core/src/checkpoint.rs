//! The checkpoint driver: segmented runs, periodic snapshots, resume.
//!
//! The engines themselves know how to run one *segment* — the span
//! between two barrier-consistent cuts — optionally warm-starting from
//! an [`EngineSnapshot`] and optionally capturing one at the segment's
//! end. This module turns that into crash-consistent long runs:
//!
//! - [`run`] slices `[0, end_time]` into segments of
//!   [`CheckpointPolicy::every`] ticks, captures a snapshot at each cut,
//!   and commits it through [`CheckpointStore`] (temp file + fsync +
//!   atomic rename, keep-last-K);
//! - [`resume`] scans the checkpoint directory, loads the newest *valid*
//!   snapshot (falling back past torn or corrupt files), and continues
//!   the run — producing waveforms bit-identical to an uninterrupted
//!   run.
//!
//! # Why segments compose exactly
//!
//! A segment ending at cut `T` runs in *capture* mode: an event computed
//! for time `te > T` is not dropped (as a plain run ending at `T` would)
//! but collected into the snapshot's pending list, **with** the same
//! `last_scheduled`/`last_sched_time` bookkeeping the uninterrupted run
//! would have performed — because the uninterrupted run (horizon
//! `end_time`) keeps exactly those events. Events beyond `end_time`
//! itself are dropped without bookkeeping in both worlds. Since an event
//! beyond `T` cannot affect any evaluation at or before `T`, the
//! uninterrupted run's state at `T` and the captured snapshot agree on
//! every field; re-injecting the pending list and re-expanding generator
//! schedules past `T` therefore replays the identical future. This also
//! makes snapshots engine-portable: a cut captured by the sequential
//! engine can be resumed by the chaotic one (and vice versa), because
//! all engines agree on state at every cut.

use std::time::Instant;

use parsim_checkpoint::{ChangeRecord, CheckpointError, CheckpointStore, EngineSnapshot};
use parsim_logic::{Time, Value};
use parsim_netlist::{Netlist, NodeId};
use parsim_telemetry::{Counter, Gauge, TelemetryCtx};
use parsim_trace::Trace;

use crate::chaotic::ChaoticAsync;
use crate::compiled::CompiledMode;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::metrics::Metrics;
use crate::seq::EventDriven;
use crate::sync::SyncEventDriven;
use crate::waveform::SimResult;

pub use parsim_checkpoint::netlist_digest;

/// Which engine the checkpoint driver should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// [`EventDriven`] — the sequential oracle.
    Sequential,
    /// [`SyncEventDriven`] — barrier-synchronized parallel event-driven.
    Synchronous,
    /// [`CompiledMode`] — unit-delay levelized sweep (scalar executor;
    /// the SIMD batch API has its own segment entry point,
    /// [`CompiledMode::run_batch_segment`], returning one snapshot per
    /// lane).
    Compiled,
    /// [`ChaoticAsync`] — the lock-free asynchronous engine.
    Chaotic,
}

impl EngineKind {
    /// Engine name as used in CLI flags and error messages.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Sequential => "seq",
            EngineKind::Synchronous => "sync",
            EngineKind::Compiled => "compiled",
            EngineKind::Chaotic => "async",
        }
    }

    fn run_segment(
        self,
        netlist: &Netlist,
        config: &SimConfig,
        seg: SegmentSpec<'_>,
    ) -> Result<SegmentOut, SimError> {
        match self {
            EngineKind::Sequential => EventDriven::run_segment(netlist, config, seg),
            EngineKind::Synchronous => SyncEventDriven::run_segment(netlist, config, seg),
            EngineKind::Compiled => CompiledMode::run_segment(netlist, config, seg),
            EngineKind::Chaotic => ChaoticAsync::run_segment(netlist, config, seg),
        }
    }
}

/// What one engine invocation should simulate.
///
/// `resume` is the state at the previous cut (`None` for a fresh start);
/// the segment simulates `(resume.time, cut]`. `config.end_time` stays
/// the *horizon*: events beyond it are dropped exactly as in an
/// uninterrupted run. With `capture`, events in `(cut, end_time]` and
/// the final engine state come back as an [`EngineSnapshot`].
pub(crate) struct SegmentSpec<'a> {
    pub resume: Option<&'a EngineSnapshot>,
    pub cut: u64,
    pub capture: bool,
    /// The run-scoped telemetry context. Owned by the caller (engine
    /// `run` wrapper or the checkpoint driver) and shared across every
    /// segment of the run, so registry counters stay cumulative; only
    /// the owner calls [`TelemetryCtx::finish`], exactly once.
    pub telemetry: TelemetryCtx,
}

/// Builds the run-scoped telemetry context: one registry shard per
/// worker plus the driver shard, the sampler armed per
/// `config.sample_every`, and the context published to the config's hub
/// (if any) for mid-run observation.
pub(crate) fn new_run_ctx(config: &SimConfig) -> TelemetryCtx {
    let workers = config.threads.max(1);
    let ctx = TelemetryCtx::for_run(workers, config.sample_every, config.sample_capacity);
    ctx.registry.driver().set_gauge(Gauge::Workers, workers as u64);
    if let Some(hub) = &config.telemetry_hub {
        hub.install(ctx.clone());
    }
    ctx
}

impl SegmentSpec<'_> {
    /// The whole run in one segment: no warm start, no capture. Every
    /// plain `Engine::run` goes through this, making the segmented path
    /// the only code path.
    pub fn whole(config: &SimConfig, telemetry: TelemetryCtx) -> SegmentSpec<'static> {
        SegmentSpec {
            resume: None,
            cut: config.end_time.ticks(),
            capture: false,
            telemetry,
        }
    }
}

/// What one segment produced.
pub(crate) struct SegmentOut {
    /// Watched changes applied within the segment, in emission order.
    pub changes: Vec<(Time, NodeId, Value)>,
    /// This segment's execution counters.
    pub metrics: Metrics,
    /// Per-worker trace, when tracing was on (segment-local).
    pub trace: Option<Trace>,
    /// Present iff the segment ran with `capture`.
    pub snapshot: Option<EngineSnapshot>,
}

impl SegmentOut {
    /// Finishes a whole-run segment into the public result type.
    pub fn into_result(self, netlist: &Netlist, config: &SimConfig) -> SimResult {
        let mut result = SimResult::from_changes(
            netlist,
            config.end_time,
            &config.watch,
            self.changes,
            self.metrics,
        );
        result.trace = self.trace;
        result
    }
}

/// Runs `netlist` on `kind` with periodic checkpointing per
/// `config.checkpoint`, starting fresh (any existing snapshots in the
/// directory are ignored and eventually pruned).
///
/// # Errors
///
/// [`SimError::Checkpoint`] for policy/storage failures (including
/// injected storage faults — the simulated crash), plus everything the
/// underlying engine can return. On watchdog errors the
/// [`StallDiagnostic`](crate::StallDiagnostic) reports the last
/// committed checkpoint step.
pub fn run(kind: EngineKind, netlist: &Netlist, config: &SimConfig) -> Result<SimResult, SimError> {
    drive(kind, netlist, config, false)
}

/// Scans the checkpoint directory, restores the newest valid snapshot
/// (falling back past torn/corrupt files), and continues the run to
/// `config.end_time` — with further periodic checkpoints. With no
/// loadable snapshot the run simply starts fresh.
///
/// The produced waveforms are bit-identical to an uninterrupted
/// [`run`]: restored history (watched changes up to the cut) rides in
/// the snapshot itself.
///
/// # Errors
///
/// As [`run`]; additionally
/// [`CheckpointError::EndTimeMismatch`] if the snapshot was captured for
/// a different horizon than `config.end_time`.
pub fn resume(
    kind: EngineKind,
    netlist: &Netlist,
    config: &SimConfig,
) -> Result<SimResult, SimError> {
    drive(kind, netlist, config, true)
}

fn drive(
    kind: EngineKind,
    netlist: &Netlist,
    config: &SimConfig,
    try_resume: bool,
) -> Result<SimResult, SimError> {
    let policy = config.checkpoint.as_ref().ok_or_else(|| {
        SimError::Checkpoint(CheckpointError::BadPolicy {
            detail: "SimConfig::checkpoint is not set".to_string(),
        })
    })?;
    if policy.every == 0 {
        return Err(SimError::Checkpoint(CheckpointError::BadPolicy {
            detail: "checkpoint interval is zero (set with_checkpoint_every)".to_string(),
        }));
    }
    if policy.dir.as_os_str().is_empty() {
        return Err(SimError::Checkpoint(CheckpointError::BadPolicy {
            detail: "checkpoint directory is not set (set with_checkpoint_dir)".to_string(),
        }));
    }
    let end = config.end_time.ticks();
    let digest = netlist_digest(netlist);
    let mut store = CheckpointStore::open(&policy.dir, digest, policy.keep)?;

    let ctx = new_run_ctx(config);

    let mut restore_ns = 0u64;
    let mut warm: Option<EngineSnapshot> = None;
    if try_resume {
        let t = Instant::now();
        let rec = store.recover()?;
        if let Some(snap) = rec.snapshot {
            snap.check_shape(netlist)?;
            if snap.end_time != end {
                return Err(SimError::Checkpoint(CheckpointError::EndTimeMismatch {
                    snapshot: snap.end_time,
                    config: end,
                }));
            }
            warm = Some(snap);
        }
        restore_ns = t.elapsed().as_nanos() as u64;
    }

    // Watched changes accumulate across segments; a restored snapshot
    // already carries the pre-crash history.
    let mut changes: Vec<ChangeRecord> = warm
        .as_mut()
        .map(|s| std::mem::take(&mut s.changes))
        .unwrap_or_default();
    let mut step = warm.as_ref().map(|s| s.step).unwrap_or(0);
    let mut committed_step = warm.as_ref().map(|s| s.step);
    let mut metrics: Option<Metrics> = None;
    let mut trace: Option<Trace> = None;
    let mut ckpt_writes = 0u64;
    let mut ckpt_bytes = 0u64;
    let mut ckpt_write_ns = 0u64;

    loop {
        let t0 = warm.as_ref().map(|s| s.time).unwrap_or(0);
        if t0 >= end {
            break;
        }
        let cut = (t0 + policy.every).min(end);
        // The final segment reaches the horizon; there is nothing left
        // to resume into, so it does not capture.
        let capture = cut < end;
        let seg = SegmentSpec {
            resume: warm.as_ref(),
            cut,
            capture,
            telemetry: ctx.clone(),
        };
        let out = kind
            .run_segment(netlist, config, seg)
            .map_err(|e| stamp_last_checkpoint(e, committed_step))?;
        changes.extend(out.changes.iter().map(|&(t, n, v)| ChangeRecord {
            time: t.ticks(),
            node: n.index() as u32,
            value: v,
        }));
        match &mut metrics {
            None => metrics = Some(out.metrics),
            Some(m) => m.merge(&out.metrics),
        }
        trace = out.trace;

        match out.snapshot {
            Some(mut snap) => {
                step += 1;
                snap.step = step;
                snap.changes = changes.clone();
                let t = Instant::now();
                let stats = store
                    .save(&snap, &config.fault.storage)
                    .map_err(|e| stamp_last_checkpoint(SimError::Checkpoint(e), committed_step))?;
                let write_ns = t.elapsed().as_nanos() as u64;
                ckpt_write_ns += write_ns;
                ckpt_writes += 1;
                ckpt_bytes += stats.bytes;
                let shard = ctx.registry.driver();
                shard.inc(Counter::CheckpointWrites);
                shard.add(Counter::CheckpointBytes, stats.bytes);
                shard.add(Counter::CheckpointWriteNs, write_ns);
                shard.set_gauge(Gauge::LastCheckpointTime, snap.time);
                committed_step = Some(step);
                snap.changes.clear();
                warm = Some(snap);
            }
            None => break,
        }
    }

    let mut metrics = metrics.unwrap_or_default();
    metrics.checkpoint.writes += ckpt_writes;
    metrics.checkpoint.bytes += ckpt_bytes;
    metrics.checkpoint.write_ns += ckpt_write_ns;
    metrics.checkpoint.restore_ns += restore_ns;

    let changes: Vec<(Time, NodeId, Value)> = changes
        .into_iter()
        .map(|c| (Time(c.time), NodeId::from_index(c.node as usize), c.value))
        .collect();
    let mut result =
        SimResult::from_changes(netlist, config.end_time, &config.watch, changes, metrics);
    result.trace = trace;
    result.telemetry = Some(ctx.finish());
    Ok(result)
}

/// Annotates watchdog errors with the last committed checkpoint so the
/// post-mortem names what is recoverable.
fn stamp_last_checkpoint(mut err: SimError, step: Option<u64>) -> SimError {
    match &mut err {
        SimError::Stalled { diagnostic, .. } | SimError::DeadlineExceeded { diagnostic, .. } => {
            diagnostic.last_checkpoint_step = step;
        }
        _ => {}
    }
    err
}
