//! Waveforms and simulation results.

use std::collections::HashMap;
use std::fmt::Write as _;

use parsim_logic::{Time, Value};
use parsim_netlist::{Netlist, NodeId};

use crate::metrics::Metrics;

/// The recorded value changes of one watched node.
///
/// Every node implicitly starts at all-`X` at time zero; `changes` holds
/// the subsequent transitions in strictly increasing time order (a change
/// *at* time zero replaces the implicit `X`).
#[derive(Debug, Clone, PartialEq)]
pub struct Waveform {
    node: NodeId,
    name: String,
    width: u8,
    changes: Vec<(Time, Value)>,
}

impl Waveform {
    pub(crate) fn new(node: NodeId, name: String, width: u8) -> Waveform {
        Waveform {
            node,
            name,
            width,
            changes: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, t: Time, v: Value) {
        debug_assert!(
            self.changes.last().is_none_or(|&(lt, _)| lt < t),
            "waveform times must strictly increase"
        );
        self.changes.push((t, v));
    }

    /// The node this waveform belongs to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// All value changes in time order.
    pub fn changes(&self) -> &[(Time, Value)] {
        &self.changes
    }

    /// The value at time `t` (the last change at or before `t`, or all-`X`
    /// before the first change).
    pub fn value_at(&self, t: Time) -> Value {
        match self.changes.partition_point(|&(ct, _)| ct <= t) {
            0 => Value::x(self.width),
            i => self.changes[i - 1].1,
        }
    }

    /// The final value of the waveform (all-`X` if it never changed).
    pub fn final_value(&self) -> Value {
        self.changes
            .last()
            .map(|&(_, v)| v)
            .unwrap_or_else(|| Value::x(self.width))
    }

    /// The number of transitions.
    pub fn num_changes(&self) -> usize {
        self.changes.len()
    }
}

/// The outcome of a simulation run: watched waveforms plus metrics.
///
/// # Examples
///
/// See [`crate`]-level documentation.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// The configured end time.
    pub end_time: Time,
    pub(crate) waveforms: HashMap<NodeId, Waveform>,
    /// Execution metrics.
    pub metrics: Metrics,
    /// The drained per-worker event trace. `Some` only when the run was
    /// configured with [`SimConfig::with_trace`](crate::SimConfig) *and*
    /// the `trace` cargo feature is compiled in.
    pub trace: Option<parsim_trace::Trace>,
    /// The run's telemetry: the final registry snapshot (always present
    /// for engine-driven runs — the registry is compiled in and on) plus
    /// the in-run sample series when
    /// [`SimConfig::sample_every`](crate::SimConfig) was set.
    pub telemetry: Option<parsim_telemetry::RunTelemetry>,
}

impl SimResult {
    /// Assembles a result from per-thread change buffers.
    ///
    /// Changes may arrive unsorted across buffers; they are sorted by
    /// `(time, node)` here. Each `(node, time)` pair must be unique — the
    /// engines guarantee it.
    pub(crate) fn from_changes(
        netlist: &Netlist,
        end_time: Time,
        watch: &[NodeId],
        mut changes: Vec<(Time, NodeId, Value)>,
        metrics: Metrics,
    ) -> SimResult {
        changes.sort_by_key(|&(t, n, _)| (t, n));
        let mut waveforms: HashMap<NodeId, Waveform> = watch
            .iter()
            .map(|&n| {
                let node = netlist.node(n);
                (n, Waveform::new(n, node.name().to_string(), node.width()))
            })
            .collect();
        for (t, n, v) in changes {
            if t > end_time {
                continue;
            }
            if let Some(w) = waveforms.get_mut(&n) {
                w.push(t, v);
            }
        }
        SimResult {
            end_time,
            waveforms,
            metrics,
            trace: None,
            telemetry: None,
        }
    }

    /// The waveform of a watched node, if it was watched.
    pub fn waveform(&self, node: NodeId) -> Option<&Waveform> {
        self.waveforms.get(&node)
    }

    /// The final value of a watched node.
    pub fn final_value(&self, node: NodeId) -> Option<Value> {
        self.waveforms.get(&node).map(Waveform::final_value)
    }

    /// Reads a multi-bit quantity at time `t` from a set of 1-bit watched
    /// nodes (LSB first) — convenient for gate-level buses.
    ///
    /// Returns `None` if any bit is unwatched or not a known 0/1 at `t`.
    pub fn bus_value_at(&self, bits: &[NodeId], t: Time) -> Option<u64> {
        let mut out = 0u64;
        for (i, &bit) in bits.iter().enumerate() {
            let w = self.waveforms.get(&bit)?;
            let v = w.value_at(t).to_u64()?;
            out |= v << i;
        }
        Some(out)
    }

    /// All watched waveforms, sorted by node id.
    pub fn waveforms(&self) -> Vec<&Waveform> {
        let mut ws: Vec<&Waveform> = self.waveforms.values().collect();
        ws.sort_by_key(|w| w.node());
        ws
    }

    /// A copy restricted to `watch`'s waveforms with changes truncated to
    /// `end` — a tenant's private view of a shared batch lane. Nodes in
    /// `watch` that were not watched in the original run are absent from
    /// the copy (there is nothing recorded to restrict to). Metrics are
    /// carried over unchanged; trace and telemetry are dropped (they
    /// describe the whole run, not the restricted view).
    pub fn restricted(&self, watch: &[NodeId], end: Time) -> SimResult {
        let waveforms = watch
            .iter()
            .filter_map(|n| self.waveforms.get(n))
            .map(|w| {
                let mut out = Waveform::new(w.node, w.name.clone(), w.width);
                out.changes
                    .extend(w.changes.iter().take_while(|&&(t, _)| t <= end).copied());
                (w.node, out)
            })
            .collect();
        SimResult {
            end_time: end.min(self.end_time),
            waveforms,
            metrics: self.metrics.clone(),
            trace: None,
            telemetry: None,
        }
    }

    /// Appends a later checkpoint segment's changes onto this result —
    /// the stitching step of segmented runs (`run_batch_segment` chains).
    ///
    /// `later` must be the immediately following segment of the same run:
    /// every node watched here with changes in `later` must start strictly
    /// after this result's last recorded change for that node (the segment
    /// API guarantees it). Nodes watched only in `later` are added whole.
    /// Metrics are merged; `end_time` advances to `later.end_time`.
    pub fn append_segment(&mut self, later: &SimResult) {
        for (node, w) in &later.waveforms {
            match self.waveforms.get_mut(node) {
                Some(existing) => {
                    debug_assert!(
                        existing.changes.last().map(|&(t, _)| t)
                            < w.changes.first().map(|&(t, _)| t)
                            || w.changes.is_empty(),
                        "segments must be appended in time order"
                    );
                    existing.changes.extend(w.changes.iter().copied());
                }
                None => {
                    self.waveforms.insert(*node, w.clone());
                }
            }
        }
        self.metrics.merge(&later.metrics);
        self.end_time = self.end_time.max(later.end_time);
    }

    /// Writes the watched waveforms to a VCD file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_vcd(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_vcd())
    }

    /// Exports the watched waveforms as a VCD (Value Change Dump) document.
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "$timescale 1ns $end");
        let _ = writeln!(out, "$scope module parsim $end");
        let ws = self.waveforms();
        let ident = |i: usize| -> String {
            // VCD identifier alphabet: printable ASCII 33..=126.
            let mut s = String::new();
            let mut v = i;
            loop {
                s.push((33 + (v % 94)) as u8 as char);
                v /= 94;
                if v == 0 {
                    break;
                }
            }
            s
        };
        for (i, w) in ws.iter().enumerate() {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                w.width(),
                ident(i),
                w.name()
            );
        }
        let _ = writeln!(out, "$upscope $end");
        let _ = writeln!(out, "$enddefinitions $end");
        // Group changes by time.
        let mut all: Vec<(Time, usize, Value)> = Vec::new();
        for (i, w) in ws.iter().enumerate() {
            all.push((Time::ZERO, i, w.value_at(Time::ZERO)));
            for &(t, v) in w.changes() {
                if t > Time::ZERO {
                    all.push((t, i, v));
                }
            }
        }
        all.sort_by_key(|&(t, i, _)| (t, i));
        let mut last_time = None;
        for (t, i, v) in all {
            if last_time != Some(t) {
                let _ = writeln!(out, "#{}", t.ticks());
                last_time = Some(t);
            }
            if v.width() == 1 {
                let _ = writeln!(out, "{}{}", v.to_binary_string(), ident(i));
            } else {
                let _ = writeln!(out, "b{} {}", v.to_binary_string(), ident(i));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::{Delay, ElementKind};
    use parsim_netlist::Builder;

    fn tiny_netlist() -> (Netlist, NodeId, NodeId) {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let c = b.node("c", 4);
        b.element(
            "g",
            ElementKind::Const {
                value: Value::bit(true),
            },
            Delay(1),
            &[],
            &[a],
        )
        .unwrap();
        (b.finish().unwrap(), a, c)
    }

    #[test]
    fn value_at_semantics() {
        let (n, a, _) = tiny_netlist();
        let changes = vec![
            (Time(5), a, Value::bit(true)),
            (Time(10), a, Value::bit(false)),
        ];
        let r = SimResult::from_changes(&n, Time(20), &[a], changes, Metrics::default());
        let w = r.waveform(a).unwrap();
        assert_eq!(w.value_at(Time(0)), Value::x(1));
        assert_eq!(w.value_at(Time(5)), Value::bit(true));
        assert_eq!(w.value_at(Time(7)), Value::bit(true));
        assert_eq!(w.value_at(Time(10)), Value::bit(false));
        assert_eq!(w.final_value(), Value::bit(false));
        assert_eq!(w.num_changes(), 2);
    }

    #[test]
    fn changes_beyond_end_are_trimmed() {
        let (n, a, _) = tiny_netlist();
        let changes = vec![
            (Time(5), a, Value::bit(true)),
            (Time(30), a, Value::bit(false)),
        ];
        let r = SimResult::from_changes(&n, Time(20), &[a], changes, Metrics::default());
        assert_eq!(r.waveform(a).unwrap().num_changes(), 1);
    }

    #[test]
    fn unsorted_buffers_are_sorted() {
        let (n, a, _) = tiny_netlist();
        let changes = vec![
            (Time(10), a, Value::bit(false)),
            (Time(5), a, Value::bit(true)),
        ];
        let r = SimResult::from_changes(&n, Time(20), &[a], changes, Metrics::default());
        let w = r.waveform(a).unwrap();
        assert_eq!(w.changes()[0].0, Time(5));
    }

    #[test]
    fn bus_value_assembly() {
        let mut b = Builder::new();
        let bits: Vec<NodeId> = (0..4).map(|i| b.node(&format!("p{i}"), 1)).collect();
        let n = b.finish().unwrap();
        let changes = vec![
            (Time(1), bits[0], Value::bit(true)),
            (Time(1), bits[1], Value::bit(false)),
            (Time(1), bits[2], Value::bit(true)),
            (Time(1), bits[3], Value::bit(false)),
        ];
        let r = SimResult::from_changes(&n, Time(5), &bits, changes, Metrics::default());
        assert_eq!(r.bus_value_at(&bits, Time(2)), Some(0b0101));
        // X before the changes: unreadable.
        assert_eq!(r.bus_value_at(&bits, Time(0)), None);
    }

    #[test]
    fn restricted_filters_nodes_and_truncates_time() {
        let (n, a, c) = tiny_netlist();
        let changes = vec![
            (Time(5), a, Value::bit(true)),
            (Time(15), a, Value::bit(false)),
            (Time(5), c, Value::from_u64(9, 4)),
        ];
        let r = SimResult::from_changes(&n, Time(20), &[a, c], changes, Metrics::default());
        let view = r.restricted(&[a], Time(10));
        assert_eq!(view.end_time, Time(10));
        assert!(view.waveform(c).is_none());
        let w = view.waveform(a).unwrap();
        assert_eq!(w.num_changes(), 1);
        assert_eq!(w.changes()[0], (Time(5), Value::bit(true)));
        // The original is untouched.
        assert_eq!(r.waveform(a).unwrap().num_changes(), 2);
    }

    #[test]
    fn restricted_skips_unwatched_nodes() {
        let (n, a, c) = tiny_netlist();
        let r = SimResult::from_changes(&n, Time(20), &[a], vec![], Metrics::default());
        let view = r.restricted(&[a, c], Time(20));
        assert!(view.waveform(a).is_some());
        assert!(view.waveform(c).is_none());
    }

    #[test]
    fn append_segment_stitches_changes_and_metrics() {
        let (n, a, c) = tiny_netlist();
        let head_metrics = Metrics { evaluations: 3, ..Metrics::default() };
        let mut head = SimResult::from_changes(
            &n,
            Time(10),
            &[a],
            vec![(Time(5), a, Value::bit(true))],
            head_metrics,
        );
        let tail_metrics = Metrics { evaluations: 4, ..Metrics::default() };
        let tail = SimResult::from_changes(
            &n,
            Time(20),
            &[a, c],
            vec![
                (Time(12), a, Value::bit(false)),
                (Time(14), c, Value::from_u64(7, 4)),
            ],
            tail_metrics,
        );
        head.append_segment(&tail);
        assert_eq!(head.end_time, Time(20));
        assert_eq!(head.metrics.evaluations, 7);
        let wa = head.waveform(a).unwrap();
        assert_eq!(
            wa.changes(),
            &[(Time(5), Value::bit(true)), (Time(12), Value::bit(false))]
        );
        // A node watched only in the tail is adopted whole.
        assert_eq!(head.waveform(c).unwrap().num_changes(), 1);
    }

    #[test]
    fn write_vcd_creates_file() {
        let (n, a, _) = tiny_netlist();
        let changes = vec![(Time(5), a, Value::bit(true))];
        let r = SimResult::from_changes(&n, Time(20), &[a], changes, Metrics::default());
        let path = std::env::temp_dir().join("parsim_write_vcd_test.vcd");
        r.write_vcd(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("$timescale"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn vcd_export_structure() {
        let (n, a, c) = tiny_netlist();
        let changes = vec![
            (Time(5), a, Value::bit(true)),
            (Time(5), c, Value::from_u64(9, 4)),
        ];
        let r = SimResult::from_changes(&n, Time(20), &[a, c], changes, Metrics::default());
        let vcd = r.to_vcd();
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("$var wire 4"));
        assert!(vcd.contains("#5"));
        assert!(vcd.contains("b1001"));
        assert!(vcd.contains("$enddefinitions"));
    }
}
