//! Directed test benches: drive a circuit's inputs with explicit timed
//! vectors and assert its outputs at chosen times.
//!
//! The workflow every simulator user expects: instantiate a design under
//! test, attach stimulus to its floating inputs, run any engine, and
//! check expectations.
//!
//! # Examples
//!
//! ```
//! use parsim_core::TestBench;
//! use parsim_logic::{Delay, ElementKind, Time, Value};
//! use parsim_netlist::Builder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The design under test: a bare 2-input AND with floating inputs.
//! let mut b = Builder::new();
//! let a = b.node("a", 1);
//! let c = b.node("b", 1);
//! let y = b.node("y", 1);
//! b.element("g", ElementKind::And, Delay(1), &[a, c], &[y])?;
//! let dut = b.finish()?;
//!
//! let mut tb = TestBench::new(&dut)?;
//! tb.drive("a", &[(0, Value::bit(false)), (10, Value::bit(true))])?;
//! tb.drive("b", &[(0, Value::bit(true))])?;
//! let run = tb.run_event_driven(Time(30))?;
//! run.expect("y", Time(5), Value::bit(false))?;
//! run.expect("y", Time(15), Value::bit(true))?;
//! # Ok(())
//! # }
//! ```

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::{Builder, Netlist, NodeId};

use crate::chaotic::ChaoticAsync;
use crate::config::SimConfig;
use crate::error::SimError;
use crate::seq::EventDriven;
use crate::waveform::SimResult;

/// Errors raised while assembling or checking a test bench.
#[derive(Debug, Clone, PartialEq)]
pub enum TestBenchError {
    /// The named node does not exist in the design under test.
    UnknownPort(String),
    /// The named node already has a driver.
    AlreadyDriven(String),
    /// The stimulus is empty or not strictly increasing in time.
    BadStimulus(String),
    /// A stimulus value's width does not match the port.
    Width {
        port: String,
        expected: u8,
        got: u8,
    },
    /// An expectation failed.
    Expectation {
        port: String,
        at: Time,
        expected: Value,
        got: Value,
    },
    /// An internal netlist error (should not occur for valid DUTs).
    Build(String),
    /// The simulation engine itself failed (see [`SimError`]).
    Sim(SimError),
}

impl From<SimError> for TestBenchError {
    fn from(e: SimError) -> TestBenchError {
        TestBenchError::Sim(e)
    }
}

impl fmt::Display for TestBenchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestBenchError::UnknownPort(p) => write!(f, "unknown port `{p}`"),
            TestBenchError::AlreadyDriven(p) => {
                write!(f, "port `{p}` already has a driver")
            }
            TestBenchError::BadStimulus(p) => write!(
                f,
                "stimulus for `{p}` must be nonempty and strictly increasing in time"
            ),
            TestBenchError::Width {
                port,
                expected,
                got,
            } => write!(
                f,
                "stimulus width {got} does not match port `{port}` width {expected}"
            ),
            TestBenchError::Expectation {
                port,
                at,
                expected,
                got,
            } => write!(
                f,
                "expectation failed: `{port}` at {at} is {got}, expected {expected}"
            ),
            TestBenchError::Build(msg) => write!(f, "test bench construction: {msg}"),
            TestBenchError::Sim(e) => write!(f, "simulation failed: {e}"),
        }
    }
}

impl Error for TestBenchError {}

/// A design under test plus attached stimulus.
pub struct TestBench {
    builder: Option<Builder>,
    /// Maps DUT node names to ids in the bench netlist.
    map: HashMap<String, NodeId>,
}

impl TestBench {
    /// Wraps a design under test. Node names are preserved.
    ///
    /// # Errors
    ///
    /// Returns [`TestBenchError::Build`] if the DUT cannot be
    /// re-instantiated (never happens for netlists built by
    /// [`Builder`]).
    pub fn new(dut: &Netlist) -> Result<TestBench, TestBenchError> {
        let mut builder = Builder::new();
        // Pre-create nodes with the DUT's own names so `drive`/`expect`
        // can refer to them directly, then instantiate the DUT fully
        // bound.
        let mut bindings: Vec<(String, NodeId)> = Vec::new();
        for (_, node) in dut.iter_nodes() {
            let id = builder.node(node.name(), node.width());
            bindings.push((node.name().to_string(), id));
        }
        let borrowed: Vec<(&str, NodeId)> =
            bindings.iter().map(|(n, id)| (n.as_str(), *id)).collect();
        let map = builder
            .instantiate(dut, "dut", &borrowed)
            .map_err(|e| TestBenchError::Build(e.to_string()))?;
        Ok(TestBench {
            builder: Some(builder),
            map,
        })
    }

    /// Attaches a timed stimulus vector to a floating input.
    ///
    /// # Errors
    ///
    /// Fails if the port is unknown or already driven, the stimulus is
    /// empty or unordered, or widths mismatch.
    pub fn drive(
        &mut self,
        port: &str,
        changes: &[(u64, Value)],
    ) -> Result<(), TestBenchError> {
        let &node = self
            .map
            .get(port)
            .ok_or_else(|| TestBenchError::UnknownPort(port.to_string()))?;
        let builder = self.builder.as_mut().expect("bench not yet finished");
        if changes.is_empty() || changes.windows(2).any(|w| w[0].0 >= w[1].0) {
            return Err(TestBenchError::BadStimulus(port.to_string()));
        }
        let kind = ElementKind::Vector {
            changes: changes.to_vec().into(),
        };
        builder
            .element(&format!("__drive_{port}"), kind, Delay(1), &[], &[node])
            .map_err(|e| match e {
                parsim_netlist::BuildError::MultipleDrivers { .. }
                | parsim_netlist::BuildError::DuplicateName { .. } => {
                    TestBenchError::AlreadyDriven(port.to_string())
                }
                parsim_netlist::BuildError::Width { expected, got, .. } => {
                    TestBenchError::Width {
                        port: port.to_string(),
                        expected,
                        got,
                    }
                }
                other => TestBenchError::Build(other.to_string()),
            })?;
        Ok(())
    }

    /// Runs the bench on the sequential reference engine, watching every
    /// DUT node.
    ///
    /// # Errors
    ///
    /// Returns [`TestBenchError::Sim`] if the engine fails (see
    /// [`SimError`]).
    ///
    /// # Panics
    ///
    /// Panics if called twice (the bench is consumed by its first run).
    pub fn run_event_driven(&mut self, end: Time) -> Result<TestRun, TestBenchError> {
        let (netlist, cfg) = self.finish(end);
        let result = EventDriven::run(&netlist, &cfg)?;
        Ok(TestRun {
            result,
            map: self.map.clone(),
        })
    }

    /// Runs the bench on the lock-free asynchronous engine.
    ///
    /// # Errors
    ///
    /// Returns [`TestBenchError::Sim`] if the engine fails (see
    /// [`SimError`]).
    ///
    /// # Panics
    ///
    /// Panics if called twice (the bench is consumed by its first run).
    pub fn run_async(&mut self, end: Time, threads: usize) -> Result<TestRun, TestBenchError> {
        let (netlist, cfg) = self.finish(end);
        let result = ChaoticAsync::run(&netlist, &cfg.threads(threads))?;
        Ok(TestRun {
            result,
            map: self.map.clone(),
        })
    }

    fn finish(&mut self, end: Time) -> (Netlist, SimConfig) {
        let builder = self.builder.take().expect("bench already ran");
        let netlist = builder.finish().expect("bench netlist is valid");
        let cfg = SimConfig::new(end).watch_all(self.map.values().copied());
        (netlist, cfg)
    }
}

/// A completed test-bench run, ready for expectations.
pub struct TestRun {
    /// The underlying simulation result (waveforms for every DUT node).
    pub result: SimResult,
    map: HashMap<String, NodeId>,
}

impl TestRun {
    /// Asserts the value of `port` at time `at`.
    ///
    /// # Errors
    ///
    /// Returns [`TestBenchError::Expectation`] with both values on
    /// mismatch, or [`TestBenchError::UnknownPort`].
    pub fn expect(&self, port: &str, at: Time, expected: Value) -> Result<(), TestBenchError> {
        let &node = self
            .map
            .get(port)
            .ok_or_else(|| TestBenchError::UnknownPort(port.to_string()))?;
        let got = self
            .result
            .waveform(node)
            .expect("every DUT node is watched")
            .value_at(at);
        if got == expected {
            Ok(())
        } else {
            Err(TestBenchError::Expectation {
                port: port.to_string(),
                at,
                expected,
                got,
            })
        }
    }

    /// Reads the value of `port` at `at`.
    ///
    /// # Errors
    ///
    /// Returns [`TestBenchError::UnknownPort`] for unknown names.
    pub fn value(&self, port: &str, at: Time) -> Result<Value, TestBenchError> {
        let &node = self
            .map
            .get(port)
            .ok_or_else(|| TestBenchError::UnknownPort(port.to_string()))?;
        Ok(self
            .result
            .waveform(node)
            .expect("every DUT node is watched")
            .value_at(at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Delay;

    fn adder_dut() -> Netlist {
        let mut b = Builder::new();
        let a = b.node("a", 8);
        let c = b.node("b", 8);
        let cin = b.node("cin", 1);
        let sum = b.node("sum", 8);
        let cout = b.node("cout", 1);
        b.element(
            "add",
            ElementKind::Adder { width: 8 },
            Delay(2),
            &[a, c, cin],
            &[sum, cout],
        )
        .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn drive_and_expect() {
        let dut = adder_dut();
        let mut tb = TestBench::new(&dut).unwrap();
        tb.drive("a", &[(0, Value::from_u64(100, 8)), (20, Value::from_u64(200, 8))])
            .unwrap();
        tb.drive("b", &[(0, Value::from_u64(55, 8))]).unwrap();
        tb.drive("cin", &[(0, Value::bit(false))]).unwrap();
        let run = tb.run_event_driven(Time(40)).unwrap();
        run.expect("sum", Time(10), Value::from_u64(155, 8)).unwrap();
        run.expect("sum", Time(30), Value::from_u64(255, 8)).unwrap();
        run.expect("cout", Time(30), Value::bit(false)).unwrap();
        // And a wrong expectation reports both values.
        let err = run
            .expect("sum", Time(30), Value::from_u64(1, 8))
            .unwrap_err();
        assert!(matches!(err, TestBenchError::Expectation { .. }));
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn async_engine_runs_benches_too() {
        let dut = adder_dut();
        let mut tb = TestBench::new(&dut).unwrap();
        tb.drive("a", &[(0, Value::from_u64(3, 8))]).unwrap();
        tb.drive("b", &[(0, Value::from_u64(4, 8))]).unwrap();
        tb.drive("cin", &[(5, Value::bit(true))]).unwrap();
        let run = tb.run_async(Time(30), 2).unwrap();
        run.expect("sum", Time(20), Value::from_u64(8, 8)).unwrap();
    }

    #[test]
    fn error_paths() {
        let dut = adder_dut();
        let mut tb = TestBench::new(&dut).unwrap();
        assert!(matches!(
            tb.drive("zz", &[(0, Value::bit(true))]),
            Err(TestBenchError::UnknownPort(_))
        ));
        assert!(matches!(
            tb.drive("a", &[]),
            Err(TestBenchError::BadStimulus(_))
        ));
        assert!(matches!(
            tb.drive("a", &[(5, Value::from_u64(1, 8)), (5, Value::from_u64(2, 8))]),
            Err(TestBenchError::BadStimulus(_))
        ));
        assert!(matches!(
            tb.drive("a", &[(0, Value::bit(true))]),
            Err(TestBenchError::Width { .. })
        ));
        tb.drive("a", &[(0, Value::from_u64(1, 8))]).unwrap();
        assert!(matches!(
            tb.drive("a", &[(0, Value::from_u64(2, 8))]),
            Err(TestBenchError::AlreadyDriven(_))
        ));
        // Driving a node the DUT itself drives is rejected.
        assert!(matches!(
            tb.drive("sum", &[(0, Value::from_u64(0, 8))]),
            Err(TestBenchError::AlreadyDriven(_))
        ));
    }
}
