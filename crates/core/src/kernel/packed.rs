//! Width-generic SIMD executor for the compiled instruction stream.
//!
//! Node values live as bit-plane word groups ([`WideLanes<W>`]): `W`
//! 64-bit plane words per node bit, one *independent simulation* per
//! lane, `64·W` lanes per kernel invocation. Gates, muxes, flip-flops,
//! latches, and tri-states evaluate natively as word-group boolean
//! algebra (see [`parsim_logic::wide`], which dispatches to SSE2 /
//! AVX2 / AVX-512 `core::arch` paths when `W` matches the detected CPU
//! tier); the remaining RTL ops (adders, memories, resolvers, …) fall
//! back to the scalar evaluator lane by lane, so every element kind is
//! supported and every lane stays bit-identical to a scalar run of that
//! lane's stimulus.
//!
//! An arbitrary number of stimulus lanes is *chunked* over the widest
//! available word group: a 1000-lane batch on an AVX-512 host runs as
//! two 512-lane chunks, the ragged tail masked per word
//! ([`wide::mask_first`]). The width is auto-detected and can be forced
//! with [`SimConfig::lane_width`] or the `PARSIM_FORCE_LANE_WIDTH`
//! environment variable (the scalar-fallback ablation leg).
//!
//! Step synchronization comes in two flavors ([`BatchSync`]): the
//! classic two-global-barrier BSP step, and the default *neighbor*
//! mode, where lowering computes which workers actually produce the
//! slots each worker reads ([`NeighborPlan`]) and workers hand off
//! through per-edge published phase counters
//! ([`parsim_queue::StepHandoff`]) instead of a global barrier. Both
//! modes produce bit-identical waveforms; the handoff protocol is
//! exhaustively model-checked in `crates/queue/tests/model.rs`.
//!
//! Threading, activity gating, watchdog and fault containment mirror
//! the scalar executor; checkpoint segments (capture/resume of every
//! lane at a cut, [`run_batch_segment`]) mirror `kernel/scalar.rs`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parsim_checkpoint::{EngineSnapshot, PendingEvent};
use parsim_logic::wide::{self, LaneMask, WideLanes, LANE_WIDTHS};
use parsim_logic::{evaluate, expand_generator, ElemState, ElementKind, Time, Value};
use parsim_netlist::compile::{CompiledProgram, Opcode};
use parsim_netlist::partition::Partition;
use parsim_netlist::{Netlist, NodeId};
use parsim_queue::{SpinBarrier, StepHandoff};
use parsim_telemetry::{Counter, Gauge, TelemetryCtx};

use crate::checkpoint::new_run_ctx;
use crate::compiled::{BatchResult, LaneStimulus};
use crate::config::{BatchSync, SimConfig};
use crate::error::{SimError, StallDiagnostic};
use crate::fault::FaultAction;
use crate::kernel::{validate_partition, DirtyMask, ExecPlan, NeighborPlan};
use crate::metrics::{Metrics, ThreadMetrics};
use crate::shared::SharedSlice;
use crate::watchdog::{Containment, Watchdog, WatchdogVerdict};
use crate::waveform::SimResult;

/// Engine tag used in [`SimError`] values.
const ENGINE: &str = "compiled-mode";

fn invalid(reason: String) -> SimError {
    SimError::InvalidConfig { reason }
}

/// One lane-local event list: `(global lane, slot, (time, value) events)`.
type LaneEvents = (usize, u32, Vec<(u64, Value)>);

/// One generator write: `data` is applied to `slot` in the lanes of `mask`.
struct GenWrite<const W: usize> {
    slot: u32,
    mask: LaneMask<W>,
    data: Vec<WideLanes<W>>,
}

/// Per-worker chunk results: per-lane waveform changes (chunk-local lane
/// ids), timing counters, skip counters, and the unapplied pending set
/// (slot list + flat plane arena) held when the segment ended — the
/// unit-delay events for `cut + 1`, used by checkpoint capture.
type ChunkWorkerOutput<const W: usize> = (
    Vec<(u32, Time, NodeId, Value)>,
    ThreadMetrics,
    u64,
    u64,
    Vec<u32>,
    Vec<WideLanes<W>>,
);

/// One chunk's aggregated results, lane ids already globalized.
struct ChunkOut {
    changes: Vec<(u32, Time, NodeId, Value)>,
    per_thread: Vec<ThreadMetrics>,
    blocks_skipped: u64,
    evals_skipped: u64,
    snapshots: Option<Vec<EngineSnapshot>>,
}

/// Everything shared by every chunk of one batch run.
struct BatchCtx<'a> {
    netlist: &'a Netlist,
    config: &'a SimConfig,
    prog: &'a CompiledProgram,
    plan: &'a ExecPlan,
    neighbors: Option<&'a NeighborPlan>,
    watched: &'a [bool],
    state_offset: &'a [u32],
    max_out_bits: usize,
    /// Expanded base generator schedules (events at `t <= t0` already
    /// filtered out on resume).
    base_events: &'a [(u32, Vec<(u64, Value)>)],
    /// Expanded per-lane overrides: `(global lane, slot, events)`.
    override_events: &'a [LaneEvents],
    /// Resume-injected pending events: `(global lane, time, slot, value)`.
    injections: &'a [(usize, u64, u32, Value)],
    /// Per-slot bitset (words of 64 global lanes) of overridden lanes.
    overridden: &'a HashMap<u32, Vec<u64>>,
    resume: Option<&'a [EngineSnapshot]>,
    /// In-flight resume events beyond the cut, per global lane; copied
    /// into the next snapshot untouched.
    carry: &'a [Vec<PendingEvent>],
    first_step: u64,
    cut: u64,
    end: u64,
    capture: bool,
    telemetry: &'a TelemetryCtx,
}

/// Runs the packed batch kernel over any number of stimulus lanes
/// (whole run, no checkpointing).
pub(crate) fn run_batch(
    netlist: &Netlist,
    config: &SimConfig,
    prog: &CompiledProgram,
    partition: &Partition,
    stimuli: &[LaneStimulus],
) -> Result<BatchResult, SimError> {
    let (result, _) = run_batch_segment(
        netlist,
        config,
        prog,
        partition,
        stimuli,
        None,
        config.end_time.ticks(),
        false,
    )?;
    Ok(result)
}

/// Selects the batch lane width: explicit config, then the
/// `PARSIM_FORCE_LANE_WIDTH` environment variable, then CPU detection.
fn select_lane_width(config: &SimConfig) -> Result<usize, SimError> {
    if let Some(w) = config.lane_width {
        if !LANE_WIDTHS.contains(&w) {
            return Err(invalid(format!(
                "lane_width must be one of 64, 128, 256, 512 (got {w})"
            )));
        }
        return Ok(w);
    }
    if let Ok(s) = std::env::var("PARSIM_FORCE_LANE_WIDTH") {
        if !s.is_empty() {
            let w: usize = s.parse().map_err(|_| {
                invalid(format!(
                    "PARSIM_FORCE_LANE_WIDTH must be one of 64, 128, 256, 512 (got '{s}')"
                ))
            })?;
            if !LANE_WIDTHS.contains(&w) {
                return Err(invalid(format!(
                    "PARSIM_FORCE_LANE_WIDTH must be one of 64, 128, 256, 512 (got {w})"
                )));
            }
            return Ok(w);
        }
    }
    Ok(wide::native_lane_width())
}

/// Runs one checkpoint segment of the packed batch kernel.
///
/// Semantics per lane mirror `kernel/scalar.rs::run_segment` exactly: a
/// snapshot at cut `T` is slot values after the apply phase of step `T`,
/// instruction states after its evaluate phase, and the pending set that
/// evaluate produced (events for `T + 1`). `resume` takes one
/// [`EngineSnapshot`] per lane (all at the same time), and `capture`
/// returns one per lane — each individually interchangeable with a
/// scalar-engine snapshot of that lane's stimulus.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_batch_segment(
    netlist: &Netlist,
    config: &SimConfig,
    prog: &CompiledProgram,
    partition: &Partition,
    stimuli: &[LaneStimulus],
    resume: Option<&[EngineSnapshot]>,
    cut: u64,
    capture: bool,
) -> Result<(BatchResult, Option<Vec<EngineSnapshot>>), SimError> {
    validate_partition(netlist, config, partition)?;
    let lanes = stimuli.len();
    if lanes == 0 {
        return Err(invalid(
            "run_batch requires at least one stimulus lane (got 0)".to_string(),
        ));
    }
    let start = Instant::now();
    let end = config.end_time.ticks();
    let max_width = select_lane_width(config)?;

    // ---- lane stimulus validation ---------------------------------------
    // `overridden[slot]` = bitset of lanes whose stimulus replaces that
    // slot's base generator schedule.
    let bitset_words = lanes.div_ceil(64);
    let mut overridden: HashMap<u32, Vec<u64>> = HashMap::new();
    for (l, stim) in stimuli.iter().enumerate() {
        for (node, schedule) in &stim.overrides {
            if node.index() >= netlist.num_nodes() {
                return Err(invalid(format!(
                    "lane {l} override targets unknown node index {}",
                    node.index()
                )));
            }
            let n = netlist.node(*node);
            if let Some((drv, _)) = n.driver() {
                if !netlist.element(drv).kind().is_generator() {
                    return Err(invalid(format!(
                        "lane {l} override targets node '{}', which is driven by \
                         non-generator element '{}'",
                        n.name(),
                        netlist.element(drv).name()
                    )));
                }
            }
            if schedule.is_empty() {
                return Err(invalid(format!(
                    "lane {l} override for node '{}' has an empty schedule",
                    n.name()
                )));
            }
            if !schedule.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(invalid(format!(
                    "lane {l} override for node '{}' is not strictly increasing in time",
                    n.name()
                )));
            }
            if let Some((_, v)) = schedule.iter().find(|(_, v)| v.width() != n.width()) {
                return Err(invalid(format!(
                    "lane {l} override for node '{}' has width {} (node is {})",
                    n.name(),
                    v.width(),
                    n.width()
                )));
            }
            let slot = prog.slot_of(*node);
            let seen = overridden.entry(slot).or_insert_with(|| vec![0; bitset_words]);
            if seen[l / 64] & (1 << (l % 64)) != 0 {
                return Err(invalid(format!(
                    "lane {l} overrides node '{}' twice",
                    n.name()
                )));
            }
            seen[l / 64] |= 1 << (l % 64);
        }
    }

    // ---- resume validation ----------------------------------------------
    let t0 = match resume {
        Some(snaps) => {
            if snaps.len() != lanes {
                return Err(invalid(format!(
                    "batch resume requires one snapshot per lane ({} snapshots, {lanes} lanes)",
                    snaps.len()
                )));
            }
            let t = snaps[0].time;
            if snaps.iter().any(|s| s.time != t) {
                return Err(invalid(
                    "batch resume snapshots disagree on snapshot time".to_string(),
                ));
            }
            if t >= cut {
                return Err(invalid(format!(
                    "batch resume snapshot time {t} is not before the cut {cut}"
                )));
            }
            Some(t)
        }
        None => None,
    };
    let first_step = t0.map(|t| t + 1).unwrap_or(0);

    // ---- shared schedules and plans -------------------------------------
    // Base generator schedules (expansion stops at the cut; a resumed
    // segment keeps only events past the previous cut).
    let mut base_events: Vec<(u32, Vec<(u64, Value)>)> = Vec::new();
    for gen in netlist.generators() {
        let e = netlist.element(gen);
        let slot = prog.slot_of(e.outputs()[0]);
        let events: Vec<(u64, Value)> = expand_generator(e.kind(), Time(cut))
            .into_iter()
            .filter(|(t, _)| t0.is_none_or(|t0| t.ticks() > t0))
            .map(|(t, v)| (t.ticks(), v))
            .collect();
        base_events.push((slot, events));
    }
    // Per-lane overrides, routed through the Vector generator expansion
    // so a lane's trajectory is exactly what a netlist with a `Vector`
    // driver would produce (the per-lane equivalence oracle).
    let mut override_events: Vec<LaneEvents> = Vec::new();
    for (l, stim) in stimuli.iter().enumerate() {
        for (node, schedule) in &stim.overrides {
            let slot = prog.slot_of(*node);
            let changes: Arc<[(u64, Value)]> = schedule
                .iter()
                .map(|&(t, v)| (t.ticks(), v))
                .collect::<Vec<_>>()
                .into();
            let vector = ElementKind::Vector { changes };
            let events: Vec<(u64, Value)> = expand_generator(&vector, Time(cut))
                .into_iter()
                .filter(|(t, _)| t0.is_none_or(|t0| t.ticks() > t0))
                .map(|(t, v)| (t.ticks(), v))
                .collect();
            override_events.push((l, slot, events));
        }
    }
    // Resume snapshots' in-flight events ride the apply phase like
    // generator events; events beyond even this cut (possible only in
    // snapshots captured by a multi-delay-capable engine) skip straight
    // to the next snapshot.
    let mut injections: Vec<(usize, u64, u32, Value)> = Vec::new();
    let mut carry: Vec<Vec<PendingEvent>> = vec![Vec::new(); lanes];
    if let Some(snaps) = resume {
        for (l, snap) in snaps.iter().enumerate() {
            for ev in &snap.pending {
                if ev.time <= cut {
                    let slot = prog.slot_of(NodeId::from_index(ev.node as usize));
                    injections.push((l, ev.time, slot, ev.value));
                } else {
                    carry[l].push(ev.clone());
                }
            }
        }
    }

    let plan = ExecPlan::build(prog, partition);

    let mut watched = vec![false; prog.num_slots()];
    for &n in &config.watch {
        watched[prog.slot_of(n) as usize] = true;
    }

    // Every slot thread 0 writes outside the instruction stream, for the
    // neighbor-sync producer analysis. Validation above guarantees these
    // are never also instruction outputs (generator-driven or undriven
    // nodes only), except resume injections — those can target any node,
    // but only at the first step, where no instruction has queued a
    // pending write yet, so the single-writer-per-step rule holds.
    let neighbors = match config.batch_sync {
        BatchSync::Barrier => None,
        BatchSync::Neighbor => {
            let mut gen_slots = vec![false; prog.num_slots()];
            for (slot, _) in &base_events {
                gen_slots[*slot as usize] = true;
            }
            for (_, slot, _) in &override_events {
                gen_slots[*slot as usize] = true;
            }
            for &(_, _, slot, _) in &injections {
                gen_slots[slot as usize] = true;
            }
            Some(NeighborPlan::build(prog, partition, &gen_slots))
        }
    };

    // Native sequential state layout (q planes, plus last_clk for edge
    // ops) and the widest output scratch any instruction needs.
    let mut state_offset: Vec<u32> = Vec::with_capacity(prog.num_insns() + 1);
    let mut state_len = 0u32;
    let mut max_out_bits = 1usize;
    for i in 0..prog.num_insns() {
        state_offset.push(state_len);
        let w = u32::from(prog.width(i));
        match prog.opcode(i) {
            Opcode::Dff | Opcode::DffR => state_len += w + 1,
            Opcode::Latch => state_len += w,
            _ => {}
        }
        let out_bits: usize = prog
            .outputs(i)
            .iter()
            .map(|&s| prog.slot_width(s) as usize)
            .sum();
        max_out_bits = max_out_bits.max(out_bits);
    }
    state_offset.push(state_len);

    // The batch kernel owns its run-scoped telemetry context (the
    // BatchResult is not a SimResult, so the finished telemetry rides the
    // batch result instead).
    let telemetry = new_run_ctx(config);
    let ctx = BatchCtx {
        netlist,
        config,
        prog,
        plan: &plan,
        neighbors: neighbors.as_ref(),
        watched: &watched,
        state_offset: &state_offset,
        max_out_bits,
        base_events: &base_events,
        override_events: &override_events,
        injections: &injections,
        overridden: &overridden,
        resume,
        carry: &carry,
        first_step,
        cut,
        end,
        capture,
        telemetry: &telemetry,
    };

    // ---- chunk loop ------------------------------------------------------
    // Chunks are `max_width` lanes except the last, which drops to the
    // narrowest word group covering the remainder (a 65-lane tail runs as
    // one 128-wide chunk, not a 512-wide one).
    let mut lane_changes: Vec<Vec<(Time, NodeId, Value)>> = vec![Vec::new(); lanes];
    let mut per_thread: Vec<ThreadMetrics> = Vec::new();
    let mut blocks_skipped = 0u64;
    let mut evals_skipped = 0u64;
    let mut snapshots: Option<Vec<EngineSnapshot>> = capture.then(Vec::new);
    let mut used_width = 0u64;
    let mut lane_base = 0usize;
    while lane_base < lanes {
        let chunk_lanes = (lanes - lane_base).min(max_width);
        let words = LANE_WIDTHS
            .iter()
            .map(|w| w / 64)
            .find(|w| w * 64 >= chunk_lanes)
            .expect("chunk_lanes <= 512")
            .min(max_width / 64);
        used_width = used_width.max(64 * words as u64);
        let out = match words {
            1 => run_chunk::<1>(&ctx, lane_base, chunk_lanes),
            2 => run_chunk::<2>(&ctx, lane_base, chunk_lanes),
            4 => run_chunk::<4>(&ctx, lane_base, chunk_lanes),
            8 => run_chunk::<8>(&ctx, lane_base, chunk_lanes),
            _ => unreachable!("lane widths are 64/128/256/512"),
        }?;
        for (lane, t, n, v) in out.changes {
            lane_changes[lane as usize].push((t, n, v));
        }
        per_thread.extend(out.per_thread);
        blocks_skipped += out.blocks_skipped;
        evals_skipped += out.evals_skipped;
        if let (Some(all), Some(chunk)) = (snapshots.as_mut(), out.snapshots) {
            all.extend(chunk);
        }
        lane_base += chunk_lanes;
    }

    telemetry.registry.driver().gauge_max(Gauge::LaneWidth, used_width);
    let events_processed: u64 = per_thread.iter().map(|tm| tm.events).sum();
    let evaluations: u64 = per_thread.iter().map(|tm| tm.evaluations).sum();
    let metrics = Metrics {
        events_processed,
        evaluations,
        activations: evaluations,
        time_steps: cut + 1 - first_step,
        events_per_step: Default::default(),
        per_thread,
        gc_chunks_freed: 0,
        blocks_skipped,
        evals_skipped,
        pool_misses: 0,
        checkpoint: Default::default(),
        lane_width: used_width,
        locality: Default::default(),
        arena: Default::default(),
        wall: start.elapsed(),
    };

    let lanes_out = lane_changes
        .into_iter()
        .map(|c| {
            SimResult::from_changes(netlist, config.end_time, &config.watch, c, metrics.clone())
        })
        .collect();
    Ok((
        BatchResult {
            lanes: lanes_out,
            metrics,
            telemetry: Some(telemetry.finish()),
        },
        snapshots,
    ))
}

/// Runs lanes `lane_base .. lane_base + chunk_lanes` (local lanes
/// `0..chunk_lanes` of a `64·W`-wide word group) through the full
/// segment step loop.
fn run_chunk<const W: usize>(
    ctx: &BatchCtx<'_>,
    lane_base: usize,
    chunk_lanes: usize,
) -> Result<ChunkOut, SimError> {
    let BatchCtx {
        netlist,
        config,
        prog,
        plan,
        neighbors,
        watched,
        state_offset,
        max_out_bits,
        resume,
        first_step,
        cut,
        end,
        capture,
        telemetry,
        ..
    } = *ctx;
    let threads = config.threads;
    let gating = config.activity_gating;
    let lane_mask: LaneMask<W> = wide::mask_first::<W>(chunk_lanes);
    let lane_mask = &lane_mask;

    // ---- this chunk's masked generator writes ---------------------------
    let mut sched: BTreeMap<u64, BTreeMap<u32, (LaneMask<W>, Vec<WideLanes<W>>)>> =
        BTreeMap::new();
    let mut add = |t: u64, slot: u32, mask: &LaneMask<W>, v: &Value| {
        if !wide::mask_any(mask) {
            return;
        }
        let w = prog.slot_width(slot) as usize;
        let entry = sched
            .entry(t)
            .or_default()
            .entry(slot)
            .or_insert_with(|| (wide::mask_none::<W>(), vec![WideLanes::ZERO; w]));
        wide::mask_or_assign(&mut entry.0, mask);
        let (a, b) = v.to_planes();
        for (i, word) in entry.1.iter_mut().enumerate() {
            let sa = (a >> i) & 1 == 1;
            let sb = (b >> i) & 1 == 1;
            for ((wa, wb), &m) in word.a.iter_mut().zip(word.b.iter_mut()).zip(mask.iter()) {
                *wa = (*wa & !m) | if sa { m } else { 0 };
                *wb = (*wb & !m) | if sb { m } else { 0 };
            }
        }
    };
    for (slot, events) in ctx.base_events {
        // Unused lanes (>= `chunk_lanes`) follow the base schedule too,
        // keeping every lane's values well-defined.
        let mut base_mask = wide::mask_all::<W>();
        if let Some(bits) = ctx.overridden.get(slot) {
            let w0 = lane_base / 64;
            for (i, word) in base_mask.iter_mut().enumerate() {
                *word = !bits.get(w0 + i).copied().unwrap_or(0);
            }
        }
        if !wide::mask_any(&base_mask) {
            continue;
        }
        for (t, v) in events {
            add(*t, *slot, &base_mask, v);
        }
    }
    for (lane, slot, events) in ctx.override_events {
        if *lane < lane_base || *lane >= lane_base + chunk_lanes {
            continue;
        }
        let mask = wide::mask_lane::<W>((*lane - lane_base) as u32);
        for (t, v) in events {
            add(*t, *slot, &mask, v);
        }
    }
    for &(lane, t, slot, v) in ctx.injections {
        if lane < lane_base || lane >= lane_base + chunk_lanes {
            continue;
        }
        let mask = wide::mask_lane::<W>((lane - lane_base) as u32);
        add(t, slot, &mask, &v);
    }
    let gen_writes: BTreeMap<u64, Vec<GenWrite<W>>> = sched
        .into_iter()
        .map(|(t, slots)| {
            (
                t,
                slots
                    .into_iter()
                    .map(|(slot, (mask, data))| GenWrite { slot, mask, data })
                    .collect(),
            )
        })
        .collect();
    let gen_writes = &gen_writes;

    // ---- execution state -------------------------------------------------
    // Packed slot values: a flat bit-plane arena, `slot_offset(s)..+width`
    // per slot. Written single-writer during apply phases.
    let values: SharedSlice<WideLanes<W>> =
        SharedSlice::from_fn(prog.total_bits().max(1), |_| WideLanes::X);
    let values = &values;

    // Native sequential state (q planes, plus last_clk for edge ops) lives
    // in its own arena, touched only by the owning thread.
    let state_len = state_offset[prog.num_insns()] as usize;
    let nat_state: SharedSlice<WideLanes<W>> =
        SharedSlice::from_fn(state_len.max(1), |_| WideLanes::X);
    let nat_state = &nat_state;
    // Per-lane scalar states for fallback instructions (empty for native).
    let fb_state: SharedSlice<Vec<ElemState>> = SharedSlice::from_fn(prog.num_insns(), |i| {
        if prog.opcode(i).has_packed_kernel() {
            Vec::new()
        } else {
            let kind = netlist.elements()[prog.elem(i)].kind();
            (0..chunk_lanes)
                .map(|local| match resume {
                    Some(snaps) => snaps[lane_base + local].elem_states[prog.elem(i)].clone(),
                    None => ElemState::init(kind),
                })
                .collect()
        }
    });
    let fb_state = &fb_state;

    if let Some(snaps) = resume {
        // Scatter each lane's snapshot into the wide arenas. SAFETY (all
        // `slice_mut` calls here): no worker threads exist yet.
        for s in 0..prog.num_slots() as u32 {
            let w = prog.slot_width(s) as usize;
            let off = prog.slot_offset(s);
            let dst = unsafe { values.slice_mut(off..off + w) };
            let node = prog.node_of(s).index();
            for local in 0..chunk_lanes {
                wide::scatter(dst, local as u32, &snaps[lane_base + local].values[node]);
            }
        }
        for (i, &off) in state_offset.iter().enumerate().take(prog.num_insns()) {
            let w = prog.width(i) as usize;
            let off = off as usize;
            match prog.opcode(i) {
                Opcode::Dff | Opcode::DffR => {
                    let st = unsafe { nat_state.slice_mut(off..off + w + 1) };
                    let (q, rest) = st.split_at_mut(w);
                    for local in 0..chunk_lanes {
                        let state = &snaps[lane_base + local].elem_states[prog.elem(i)];
                        if let ElemState::Edge { q: qv, last_clk } = state {
                            wide::scatter(q, local as u32, qv);
                            wide::scatter(&mut rest[..1], local as u32, last_clk);
                        }
                    }
                }
                Opcode::Latch => {
                    let q = unsafe { nat_state.slice_mut(off..off + w) };
                    for local in 0..chunk_lanes {
                        let state = &snaps[lane_base + local].elem_states[prog.elem(i)];
                        if let ElemState::Stored(v) = state {
                            wide::scatter(q, local as u32, v);
                        }
                    }
                }
                _ => {}
            }
        }
    }

    // Resume restarts with an all-dirty mask (same rationale as scalar:
    // re-evaluating a clean block is idempotent).
    let dirty = DirtyMask::all_dirty(plan.blocks.len());
    let dirty = &dirty;

    let barrier = Arc::new(SpinBarrier::new(threads));
    let handoff = Arc::new(StepHandoff::new(threads));
    let containment = Containment::new(threads);
    let watchdog = {
        let b = Arc::clone(&barrier);
        let h = Arc::clone(&handoff);
        Watchdog::spawn(
            &containment,
            config.deadline,
            config.stall_timeout,
            telemetry.sampler(),
            move || {
                b.poison();
                h.poison();
            },
        )
    };
    let barrier = &barrier;
    let handoff = &handoff;
    let registry = &telemetry.registry;
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let cur_step = AtomicU64::new(0);
    let cur_step = &cur_step;

    let mut outputs: Vec<Option<ChunkWorkerOutput<W>>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|p| {
                let cont = &containment;
                let fault = config.fault.clone();
                scope.spawn(move || {
                    let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut changes: Vec<(u32, Time, NodeId, Value)> = Vec::new();
                        let mut tm = ThreadMetrics::default();
                        let mut blocks_skipped = 0u64;
                        let mut evals_skipped = 0u64;
                        let shard = registry.worker(p);
                        let mut published_events = 0u64;
                        let mut published_evals = 0u64;
                        // Pending writes: slot list plus a flat plane arena
                        // (widths are implied by the slots), reused across
                        // steps so the hot loop never allocates.
                        let mut pend_slots: Vec<u32> = Vec::new();
                        let mut pend_data: Vec<WideLanes<W>> = Vec::new();
                        let mut scratch: Vec<WideLanes<W>> = vec![WideLanes::X; max_out_bits];
                        let mut inputs_buf: Vec<Value> = Vec::with_capacity(8);
                        let mut processed = 0u64;
                        'run: for t in first_step..=cut {
                            cont.beat(p);
                            if p == 0 {
                                cur_step.store(t, Ordering::Relaxed);
                                // Steps are shared across lane chunks; only
                                // the first chunk counts them so multi-chunk
                                // batches don't multiply the step count.
                                if lane_base == 0 {
                                    shard.inc(Counter::TimeSteps);
                                    shard.set_gauge(Gauge::SimTime, t);
                                }
                                if cont.cancelled() {
                                    stop.store(true, Ordering::Release);
                                }
                            }
                            // Neighbor mode: before overwriting our slots,
                            // wait until every consumer has retired its
                            // reads of them (its eval of step t-1).
                            if let Some(nb) = neighbors {
                                if t > first_step {
                                    let wait_start = Instant::now();
                                    for &c in &nb.consumers[p] {
                                        if !handoff.wait_eval(c as usize, t - 1) {
                                            tm.idle += wait_start.elapsed();
                                            break 'run;
                                        }
                                    }
                                    tm.idle += wait_start.elapsed();
                                }
                            }
                            let busy_start = Instant::now();
                            // ---- apply phase ----------------------------
                            let mut cursor = 0usize;
                            for &slot in &pend_slots {
                                let w = prog.slot_width(slot) as usize;
                                let new = &pend_data[cursor..cursor + w];
                                cursor += w;
                                let off = prog.slot_offset(slot);
                                // SAFETY: single writer per slot (driver
                                // thread); phases separated by the barrier
                                // or by the producer/consumer handoff.
                                let cur = unsafe { values.slice_mut(off..off + w) };
                                let diff =
                                    wide::mask_and(&wide::changed_mask(cur, new), lane_mask);
                                tm.events += u64::from(wide::mask_count(&diff));
                                if watched[slot as usize] {
                                    let node = prog.node_of(slot);
                                    wide::for_each_lane(&diff, |lane| {
                                        changes.push((
                                            (lane_base as u32) + lane,
                                            Time(t),
                                            node,
                                            wide::gather(new, lane),
                                        ));
                                    });
                                }
                                cur.copy_from_slice(new);
                                if gating && wide::mask_any(&diff) {
                                    for &b in plan.fanout(slot) {
                                        dirty.mark(b);
                                    }
                                }
                            }
                            pend_slots.clear();
                            pend_data.clear();
                            if p == 0 {
                                if let Some(writes) = gen_writes.get(&t) {
                                    for gw in writes {
                                        let w = gw.data.len();
                                        let off = prog.slot_offset(gw.slot);
                                        // SAFETY: generator slots are only
                                        // written here, by thread 0.
                                        let cur = unsafe { values.slice_mut(off..off + w) };
                                        let mut diff = wide::mask_none::<W>();
                                        for (c, d) in cur.iter_mut().zip(&gw.data) {
                                            let eff = WideLanes::select(&gw.mask, *d, *c);
                                            wide::mask_or_assign(&mut diff, &c.diff(eff));
                                            *c = eff;
                                        }
                                        let diff = wide::mask_and(&diff, lane_mask);
                                        tm.events += u64::from(wide::mask_count(&diff));
                                        if watched[gw.slot as usize] {
                                            let node = prog.node_of(gw.slot);
                                            wide::for_each_lane(&diff, |lane| {
                                                changes.push((
                                                    (lane_base as u32) + lane,
                                                    Time(t),
                                                    node,
                                                    wide::gather(cur, lane),
                                                ));
                                            });
                                        }
                                        if gating && wide::mask_any(&diff) {
                                            for &b in plan.fanout(gw.slot) {
                                                dirty.mark(b);
                                            }
                                        }
                                    }
                                }
                            }
                            tm.busy += busy_start.elapsed();
                            match neighbors {
                                None => {
                                    let wait_start = Instant::now();
                                    barrier.wait();
                                    tm.idle += wait_start.elapsed();
                                    // All threads observe the same `stop`
                                    // here (set before the barrier), so
                                    // they break at the same step.
                                    if barrier.is_poisoned()
                                        || stop.load(Ordering::Acquire)
                                    {
                                        break 'run;
                                    }
                                }
                                Some(nb) => {
                                    handoff.publish_apply(p, t);
                                    let wait_start = Instant::now();
                                    for &pr in &nb.producers[p] {
                                        if !handoff.wait_apply(pr as usize, t) {
                                            tm.idle += wait_start.elapsed();
                                            break 'run;
                                        }
                                    }
                                    tm.idle += wait_start.elapsed();
                                    // Cancellation: whoever observes the
                                    // flag poisons the handoff so workers
                                    // it has no edge to stop waiting too.
                                    if stop.load(Ordering::Acquire)
                                        || handoff.is_poisoned()
                                    {
                                        handoff.poison();
                                        break 'run;
                                    }
                                }
                            }

                            // ---- evaluate phase -------------------------
                            let busy_start = Instant::now();
                            if t < end {
                                for b in plan.thread_blocks[p].clone() {
                                    let insns = plan.block_insns(b);
                                    if gating && !dirty.take(b as u32) {
                                        blocks_skipped += 1;
                                        evals_skipped += insns.len() as u64;
                                        continue;
                                    }
                                    for &i in insns {
                                        if let FaultAction::Exit =
                                            fault.check(p, processed, cont.cancel_flag())
                                        {
                                            // Only reached after
                                            // cancellation, which always
                                            // poisons the barrier; poison
                                            // the handoff too so neighbor
                                            // waiters are released.
                                            handoff.poison();
                                            break 'run;
                                        }
                                        processed += 1;
                                        cont.beat(p);
                                        let i = i as usize;
                                        eval_insn(
                                            netlist,
                                            prog,
                                            values,
                                            nat_state,
                                            state_offset,
                                            fb_state,
                                            i,
                                            chunk_lanes,
                                            &mut scratch,
                                            &mut inputs_buf,
                                        );
                                        tm.evaluations += 1;
                                        // Compare against current values and
                                        // queue changed ports. The compare is
                                        // masked: tail lanes of a fallback
                                        // instruction hold stale scratch and
                                        // must not keep blocks dirty.
                                        let mut s_off = 0usize;
                                        for &slot in prog.outputs(i) {
                                            let w = prog.slot_width(slot) as usize;
                                            let new = &scratch[s_off..s_off + w];
                                            s_off += w;
                                            let off = prog.slot_offset(slot);
                                            // SAFETY: reading a slot this
                                            // thread exclusively writes.
                                            let cur =
                                                unsafe { values.slice(off..off + w) };
                                            let diff = wide::mask_and(
                                                &wide::changed_mask(cur, new),
                                                lane_mask,
                                            );
                                            if wide::mask_any(&diff) {
                                                pend_slots.push(slot);
                                                pend_data.extend_from_slice(new);
                                            }
                                        }
                                    }
                                }
                            }
                            tm.busy += busy_start.elapsed();
                            // Publish this step's deltas (never per event).
                            shard.add(Counter::EventsProcessed, tm.events - published_events);
                            published_events = tm.events;
                            shard.add(Counter::Evaluations, tm.evaluations - published_evals);
                            shard.add(Counter::Activations, tm.evaluations - published_evals);
                            published_evals = tm.evaluations;
                            shard.set_gauge(Gauge::QueueDepth, pend_slots.len() as u64);
                            match neighbors {
                                None => {
                                    let wait_start = Instant::now();
                                    barrier.wait();
                                    tm.idle += wait_start.elapsed();
                                    if barrier.is_poisoned() {
                                        break 'run;
                                    }
                                }
                                Some(_) => handoff.publish_eval(p, t),
                            }
                        }
                        // Residual deltas (early breaks) plus end-computed
                        // totals that are only known once the loop is done.
                        shard.add(Counter::EventsProcessed, tm.events - published_events);
                        shard.add(Counter::Evaluations, tm.evaluations - published_evals);
                        shard.add(Counter::Activations, tm.evaluations - published_evals);
                        shard.add(Counter::BlocksSkipped, blocks_skipped);
                        shard.add(Counter::EvalsSkipped, evals_skipped);
                        shard.add(Counter::BusyNs, tm.busy.as_nanos() as u64);
                        shard.add(Counter::IdleNs, tm.idle.as_nanos() as u64);
                        (changes, tm, blocks_skipped, evals_skipped, pend_slots, pend_data)
                    }));
                    match body {
                        Ok(out) => Some(out),
                        Err(payload) => {
                            cont.record_panic(p, payload);
                            barrier.poison();
                            handoff.poison();
                            None
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().unwrap_or_default());
        }
    });
    if let Some(w) = watchdog {
        w.finish();
    }

    if let Some((worker, payload)) = containment.take_panic() {
        return Err(SimError::WorkerPanicked {
            engine: ENGINE,
            worker,
            payload,
        });
    }
    if let Some(verdict) = containment.take_verdict() {
        let diagnostic = Box::new(StallDiagnostic {
            heartbeats: containment.heartbeat_snapshot(),
            sim_time: Some(Time(cur_step.load(Ordering::Relaxed))),
            ..StallDiagnostic::default()
        });
        return Err(match verdict {
            WatchdogVerdict::Stalled { stalled_for } => SimError::Stalled {
                engine: ENGINE,
                stalled_for,
                diagnostic,
            },
            WatchdogVerdict::Deadline { deadline } => SimError::DeadlineExceeded {
                engine: ENGINE,
                deadline,
                diagnostic,
            },
        });
    }

    let outputs: Vec<ChunkWorkerOutput<W>> = outputs.into_iter().flatten().collect();
    let mut per_thread = Vec::with_capacity(threads);
    let mut blocks_skipped = 0;
    let mut evals_skipped = 0;
    let mut changes: Vec<(u32, Time, NodeId, Value)> = Vec::new();
    let mut leftover: Vec<(u32, Vec<WideLanes<W>>)> = Vec::new();
    for (c, tm, bs, es, pend_slots, pend_data) in outputs {
        blocks_skipped += bs;
        evals_skipped += es;
        changes.extend(c);
        per_thread.push(tm);
        let mut cursor = 0usize;
        for slot in pend_slots {
            let w = prog.slot_width(slot) as usize;
            leftover.push((slot, pend_data[cursor..cursor + w].to_vec()));
            cursor += w;
        }
    }

    let snapshots = capture.then(|| {
        let num_nodes = netlist.num_nodes();
        (0..chunk_lanes)
            .map(|local| {
                let lane = local as u32;
                // SAFETY (all raw reads below): workers are joined;
                // single-threaded access with the joins as the edge.
                let node_values: Vec<Value> = (0..num_nodes)
                    .map(|n| {
                        let s = prog.slot_of(NodeId::from_index(n));
                        let w = prog.slot_width(s) as usize;
                        let off = prog.slot_offset(s);
                        wide::gather(unsafe { values.slice(off..off + w) }, lane)
                    })
                    .collect();
                // Per-lane pending: a queued wide write becomes this
                // lane's unit-delay event only where the lane actually
                // changed — exactly when the scalar engine would have
                // queued it.
                let mut last_scheduled = node_values.clone();
                let mut last_sched_time = vec![0u64; num_nodes];
                let mut pending: Vec<PendingEvent> =
                    ctx.carry[lane_base + local].clone();
                for (slot, data) in &leftover {
                    let v = wide::gather(data, lane);
                    let node = prog.node_of(*slot).index();
                    if v != node_values[node] {
                        last_scheduled[node] = v;
                        last_sched_time[node] = cut + 1;
                        pending.push(PendingEvent {
                            time: cut + 1,
                            node: node as u32,
                            value: v,
                        });
                    }
                }
                pending.sort_by_key(|ev| (ev.time, ev.node));
                let mut elem_states: Vec<ElemState> = netlist
                    .elements()
                    .iter()
                    .map(|e| ElemState::init(e.kind()))
                    .collect();
                for i in 0..prog.num_insns() {
                    let w = prog.width(i) as usize;
                    let off = state_offset[i] as usize;
                    match prog.opcode(i) {
                        Opcode::Dff | Opcode::DffR => {
                            let st = unsafe { nat_state.slice(off..off + w + 1) };
                            elem_states[prog.elem(i)] = ElemState::Edge {
                                q: wide::gather(&st[..w], lane),
                                last_clk: wide::gather(&st[w..], lane),
                            };
                        }
                        Opcode::Latch => {
                            let st = unsafe { nat_state.slice(off..off + w) };
                            elem_states[prog.elem(i)] = ElemState::Stored(wide::gather(st, lane));
                        }
                        _ => {
                            let states = unsafe { fb_state.get_mut(i) };
                            if let Some(s) = states.get(local) {
                                elem_states[prog.elem(i)] = s.clone();
                            }
                        }
                    }
                }
                EngineSnapshot {
                    end_time: end,
                    time: cut,
                    step: 0,
                    seeds: [0, 0],
                    values: node_values,
                    last_scheduled,
                    last_sched_time,
                    elem_states,
                    pending,
                    changes: Vec::new(),
                }
            })
            .collect()
    });

    Ok(ChunkOut {
        changes,
        per_thread,
        blocks_skipped,
        evals_skipped,
        snapshots,
    })
}

/// Evaluates instruction `i` into `scratch` (output ports concatenated).
#[allow(clippy::too_many_arguments)]
#[inline]
fn eval_insn<const W: usize>(
    netlist: &Netlist,
    prog: &CompiledProgram,
    values: &SharedSlice<WideLanes<W>>,
    nat_state: &SharedSlice<WideLanes<W>>,
    state_offset: &[u32],
    fb_state: &SharedSlice<Vec<ElemState>>,
    i: usize,
    chunk_lanes: usize,
    scratch: &mut [WideLanes<W>],
    inputs_buf: &mut Vec<Value>,
) {
    let ins = prog.inputs(i);
    // SAFETY (all `values.slice` calls below): evaluate phase is read-only
    // for slot values; the barrier (or producer handoff) orders it after
    // the last apply-phase write.
    let input = |k: usize| {
        let off = prog.slot_offset(ins[k]);
        let w = prog.slot_width(ins[k]) as usize;
        unsafe { values.slice(off..off + w) }
    };
    let w = prog.width(i) as usize;
    let op = prog.opcode(i);
    match op {
        Opcode::And | Opcode::Or | Opcode::Nand | Opcode::Nor | Opcode::Xor | Opcode::Xnor => {
            let out = &mut scratch[..w];
            wide::load_logic(out, input(0));
            for k in 1..ins.len() {
                match op {
                    Opcode::And | Opcode::Nand => wide::fold_and(out, input(k)),
                    Opcode::Or | Opcode::Nor => wide::fold_or(out, input(k)),
                    _ => wide::fold_xor(out, input(k)),
                }
            }
            if matches!(op, Opcode::Nand | Opcode::Nor | Opcode::Xnor) {
                wide::not_inplace(out);
            }
        }
        Opcode::Not => {
            let out = &mut scratch[..w];
            wide::load_logic(out, input(0));
            wide::not_inplace(out);
        }
        Opcode::Buf => wide::load_logic(&mut scratch[..w], input(0)),
        Opcode::Mux => {
            let sel = input(0)[0];
            // The borrow of `scratch` and the two value slices are disjoint.
            wide::mux(&mut scratch[..w], sel, input(1), input(2));
        }
        Opcode::Dff | Opcode::DffR => {
            let off = state_offset[i] as usize;
            // SAFETY: native state is touched only by the owning thread.
            let st = unsafe { nat_state.slice_mut(off..off + w + 1) };
            let (q, rest) = st.split_at_mut(w);
            let last_clk = &mut rest[0];
            let clk = input(0)[0];
            if op == Opcode::Dff {
                wide::dff(q, last_clk, clk, input(1));
            } else {
                wide::dffr(q, last_clk, clk, input(1), input(2)[0]);
            }
            scratch[..w].copy_from_slice(q);
        }
        Opcode::Latch => {
            let off = state_offset[i] as usize;
            // SAFETY: native state is touched only by the owning thread.
            let q = unsafe { nat_state.slice_mut(off..off + w) };
            wide::latch(q, input(0)[0], input(1));
            scratch[..w].copy_from_slice(q);
        }
        Opcode::TriBuf => wide::tribuf(&mut scratch[..w], input(0)[0], input(1)),
        _ => {
            // Scalar fallback: evaluate each live lane with the shared
            // kernel. Tail lanes (>= chunk_lanes) are left stale in
            // scratch; the caller masks them out of the change compare.
            let kind = netlist.elements()[prog.elem(i)].kind();
            // SAFETY: fallback state is touched only by the owning thread.
            let states = unsafe { fb_state.get_mut(i) };
            for lane in 0..chunk_lanes as u32 {
                inputs_buf.clear();
                for k in 0..ins.len() {
                    inputs_buf.push(wide::gather(input(k), lane));
                }
                let out = evaluate(kind, inputs_buf, &mut states[lane as usize]);
                let mut s_off = 0usize;
                for (port, v) in out.iter() {
                    let pw = prog.slot_width(prog.outputs(i)[port]) as usize;
                    wide::scatter(&mut scratch[s_off..s_off + pw], lane, &v);
                    s_off += pw;
                }
            }
        }
    }
}
