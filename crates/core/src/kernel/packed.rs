//! Word-parallel (64-lane) executor for the compiled instruction stream.
//!
//! Node values live as bit-plane words ([`Lanes`]): one word pair per node
//! bit, one *independent simulation* per lane. Gates, muxes, flip-flops,
//! latches, and tri-states evaluate natively as word-wide boolean algebra
//! (see [`parsim_logic::packed`]); the remaining RTL ops (adders, memories,
//! resolvers, …) fall back to the scalar evaluator lane by lane, so every
//! element kind is supported and every lane stays bit-identical to a
//! scalar run of that lane's stimulus.
//!
//! Threading, barriers, activity gating, watchdog and fault containment
//! mirror the scalar executor exactly; see `kernel/scalar.rs`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parsim_logic::packed::{
    self, changed_mask, dff, dffr, fold_and, fold_or, fold_xor, gather, latch, load_logic, mux,
    not_inplace, tribuf, Lanes,
};
use parsim_logic::{evaluate, expand_generator, ElemState, ElementKind, Time, Value};
use parsim_netlist::compile::{CompiledProgram, Opcode};
use parsim_netlist::partition::Partition;
use parsim_netlist::{Netlist, NodeId};
use parsim_queue::SpinBarrier;

use crate::compiled::{BatchResult, LaneStimulus};
use crate::config::SimConfig;
use crate::error::{SimError, StallDiagnostic};
use crate::fault::FaultAction;
use crate::kernel::{validate_partition, DirtyMask, ExecPlan};
use crate::metrics::{Metrics, ThreadMetrics};
use crate::shared::SharedSlice;
use crate::watchdog::{Containment, Watchdog, WatchdogVerdict};
use crate::waveform::SimResult;

/// Engine tag used in [`SimError`] values.
const ENGINE: &str = "compiled-mode";

/// Per-worker results: per-lane waveform changes, timing counters, skip
/// counters.
type WorkerOutput = (Vec<(u32, Time, NodeId, Value)>, ThreadMetrics, u64, u64);

/// One generator write: `data` is applied to `slot` in the lanes of `mask`.
struct GenWrite {
    slot: u32,
    mask: u64,
    data: Vec<Lanes>,
}

fn invalid(reason: String) -> SimError {
    SimError::InvalidConfig { reason }
}

/// Runs the packed batch kernel over up to 64 stimulus lanes.
pub(crate) fn run_batch(
    netlist: &Netlist,
    config: &SimConfig,
    prog: &CompiledProgram,
    partition: &Partition,
    stimuli: &[LaneStimulus],
) -> Result<BatchResult, SimError> {
    validate_partition(netlist, config, partition)?;
    let lanes = stimuli.len();
    if lanes == 0 || lanes > 64 {
        return Err(invalid(format!(
            "run_batch requires 1..=64 stimulus lanes (got {lanes})"
        )));
    }
    let lane_mask: u64 = if lanes == 64 { !0 } else { (1u64 << lanes) - 1 };
    let start = Instant::now();
    let end = config.end_time.ticks();
    let threads = config.threads;
    let gating = config.activity_gating;

    // ---- lane stimulus validation + generator schedule ------------------
    // `overridden[slot]` = lanes whose stimulus replaces that slot's base
    // generator schedule.
    let mut overridden: HashMap<u32, u64> = HashMap::new();
    for (l, stim) in stimuli.iter().enumerate() {
        for (node, schedule) in &stim.overrides {
            if node.index() >= netlist.num_nodes() {
                return Err(invalid(format!(
                    "lane {l} override targets unknown node index {}",
                    node.index()
                )));
            }
            let n = netlist.node(*node);
            if let Some((drv, _)) = n.driver() {
                if !netlist.element(drv).kind().is_generator() {
                    return Err(invalid(format!(
                        "lane {l} override targets node '{}', which is driven by \
                         non-generator element '{}'",
                        n.name(),
                        netlist.element(drv).name()
                    )));
                }
            }
            if schedule.is_empty() {
                return Err(invalid(format!(
                    "lane {l} override for node '{}' has an empty schedule",
                    n.name()
                )));
            }
            if !schedule.windows(2).all(|w| w[0].0 < w[1].0) {
                return Err(invalid(format!(
                    "lane {l} override for node '{}' is not strictly increasing in time",
                    n.name()
                )));
            }
            if let Some((_, v)) = schedule.iter().find(|(_, v)| v.width() != n.width()) {
                return Err(invalid(format!(
                    "lane {l} override for node '{}' has width {} (node is {})",
                    n.name(),
                    v.width(),
                    n.width()
                )));
            }
            let slot = prog.slot_of(*node);
            let seen = overridden.entry(slot).or_insert(0);
            if *seen & (1 << l) != 0 {
                return Err(invalid(format!(
                    "lane {l} overrides node '{}' twice",
                    n.name()
                )));
            }
            *seen |= 1 << l;
        }
    }

    // Merge base generator schedules (lanes without an override) and the
    // per-lane override schedules into masked packed writes per time step.
    let mut sched: BTreeMap<u64, BTreeMap<u32, (u64, Vec<Lanes>)>> = BTreeMap::new();
    let mut add = |t: u64, slot: u32, mask: u64, v: &Value| {
        let w = prog.slot_width(slot) as usize;
        let entry = sched
            .entry(t)
            .or_default()
            .entry(slot)
            .or_insert_with(|| (0u64, vec![Lanes::ZERO; w]));
        entry.0 |= mask;
        let (a, b) = v.to_planes();
        for (i, word) in entry.1.iter_mut().enumerate() {
            let la = if (a >> i) & 1 == 1 { mask } else { 0 };
            let lb = if (b >> i) & 1 == 1 { mask } else { 0 };
            word.a = (word.a & !mask) | la;
            word.b = (word.b & !mask) | lb;
        }
    };
    for gen in netlist.generators() {
        let e = netlist.element(gen);
        let slot = prog.slot_of(e.outputs()[0]);
        // Unused lanes (>= `lanes`) follow the base schedule too, keeping
        // every lane's values well-defined.
        let base_mask = !overridden.get(&slot).copied().unwrap_or(0);
        if base_mask == 0 {
            continue;
        }
        for (t, v) in expand_generator(e.kind(), Time(end)) {
            add(t.ticks(), slot, base_mask, &v);
        }
    }
    for (l, stim) in stimuli.iter().enumerate() {
        for (node, schedule) in &stim.overrides {
            let slot = prog.slot_of(*node);
            // Route through the Vector generator expansion so a lane's
            // trajectory is exactly what a netlist with a `Vector` driver
            // would produce (the per-lane equivalence oracle).
            let changes: Arc<[(u64, Value)]> = schedule
                .iter()
                .map(|&(t, v)| (t.ticks(), v))
                .collect::<Vec<_>>()
                .into();
            let vector = ElementKind::Vector { changes };
            for (t, v) in expand_generator(&vector, Time(end)) {
                add(t.ticks(), slot, 1 << l, &v);
            }
        }
    }
    let gen_writes: BTreeMap<u64, Vec<GenWrite>> = sched
        .into_iter()
        .map(|(t, slots)| {
            (
                t,
                slots
                    .into_iter()
                    .map(|(slot, (mask, data))| GenWrite { slot, mask, data })
                    .collect(),
            )
        })
        .collect();
    let gen_writes = &gen_writes;

    // ---- execution state -------------------------------------------------
    let plan = ExecPlan::build(prog, partition);
    let plan = &plan;

    let mut watched = vec![false; prog.num_slots()];
    for &n in &config.watch {
        watched[prog.slot_of(n) as usize] = true;
    }
    let watched = &watched;

    // Packed slot values: a flat bit-plane arena, `slot_offset(s)..+width`
    // per slot. Written single-writer during apply phases.
    let values: SharedSlice<Lanes> =
        SharedSlice::from_fn(prog.total_bits().max(1), |_| Lanes::X);
    let values = &values;

    // Native sequential state (q planes, plus last_clk for edge ops) lives
    // in its own arena, touched only by the owning thread.
    let mut state_offset: Vec<u32> = Vec::with_capacity(prog.num_insns() + 1);
    let mut state_len = 0u32;
    let mut max_out_bits = 1usize;
    for i in 0..prog.num_insns() {
        state_offset.push(state_len);
        let w = u32::from(prog.width(i));
        match prog.opcode(i) {
            Opcode::Dff | Opcode::DffR => state_len += w + 1,
            Opcode::Latch => state_len += w,
            _ => {}
        }
        let out_bits: usize = prog
            .outputs(i)
            .iter()
            .map(|&s| prog.slot_width(s) as usize)
            .sum();
        max_out_bits = max_out_bits.max(out_bits);
    }
    state_offset.push(state_len);
    let state_offset = &state_offset;
    let nat_state: SharedSlice<Lanes> =
        SharedSlice::from_fn(state_len.max(1) as usize, |_| Lanes::X);
    let nat_state = &nat_state;
    // Per-lane scalar states for fallback instructions (empty for native).
    let fb_state: SharedSlice<Vec<ElemState>> = SharedSlice::from_fn(prog.num_insns(), |i| {
        if prog.opcode(i).has_packed_kernel() {
            Vec::new()
        } else {
            let kind = netlist.elements()[prog.elem(i)].kind();
            (0..64).map(|_| ElemState::init(kind)).collect()
        }
    });
    let fb_state = &fb_state;

    let dirty = DirtyMask::all_dirty(plan.blocks.len());
    let dirty = &dirty;

    let barrier = Arc::new(SpinBarrier::new(threads));
    let containment = Containment::new(threads);
    let watchdog = {
        let b = Arc::clone(&barrier);
        Watchdog::spawn(
            &containment,
            config.deadline,
            config.stall_timeout,
            move || b.poison(),
        )
    };
    let barrier = &barrier;
    let stop = AtomicBool::new(false);
    let stop = &stop;
    let cur_step = AtomicU64::new(0);
    let cur_step = &cur_step;

    let mut outputs: Vec<Option<WorkerOutput>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|p| {
                let cont = &containment;
                let fault = config.fault.clone();
                scope.spawn(move || {
                    let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut changes: Vec<(u32, Time, NodeId, Value)> = Vec::new();
                        let mut tm = ThreadMetrics::default();
                        let mut blocks_skipped = 0u64;
                        let mut evals_skipped = 0u64;
                        // Pending writes: slot list plus a flat plane arena
                        // (widths are implied by the slots), reused across
                        // steps so the hot loop never allocates.
                        let mut pend_slots: Vec<u32> = Vec::new();
                        let mut pend_data: Vec<Lanes> = Vec::new();
                        let mut scratch: Vec<Lanes> = vec![Lanes::X; max_out_bits];
                        let mut inputs_buf: Vec<Value> = Vec::with_capacity(8);
                        let mut processed = 0u64;
                        'run: for t in 0..=end {
                            cont.beat(p);
                            if p == 0 {
                                cur_step.store(t, Ordering::Relaxed);
                                if cont.cancelled() {
                                    stop.store(true, Ordering::Release);
                                }
                            }
                            let busy_start = Instant::now();
                            // ---- apply phase ----------------------------
                            let mut cursor = 0usize;
                            for &slot in &pend_slots {
                                let w = prog.slot_width(slot) as usize;
                                let new = &pend_data[cursor..cursor + w];
                                cursor += w;
                                let off = prog.slot_offset(slot);
                                // SAFETY: single writer per slot (driver
                                // thread), phases separated by barriers.
                                let cur = unsafe { values.slice_mut(off..off + w) };
                                let diff = changed_mask(cur, new);
                                tm.events += u64::from((diff & lane_mask).count_ones());
                                if watched[slot as usize] {
                                    let node = prog.node_of(slot);
                                    let mut m = diff & lane_mask;
                                    while m != 0 {
                                        let lane = m.trailing_zeros();
                                        m &= m - 1;
                                        changes.push((lane, Time(t), node, gather(new, lane)));
                                    }
                                }
                                cur.copy_from_slice(new);
                                if gating && diff != 0 {
                                    for &b in plan.fanout(slot) {
                                        dirty.mark(b);
                                    }
                                }
                            }
                            pend_slots.clear();
                            pend_data.clear();
                            if p == 0 {
                                if let Some(writes) = gen_writes.get(&t) {
                                    for gw in writes {
                                        let w = gw.data.len();
                                        let off = prog.slot_offset(gw.slot);
                                        // SAFETY: generator slots are only
                                        // written here, by thread 0.
                                        let cur = unsafe { values.slice_mut(off..off + w) };
                                        let mut diff = 0u64;
                                        for (c, d) in cur.iter_mut().zip(&gw.data) {
                                            let eff = Lanes::select(gw.mask, *d, *c);
                                            diff |= c.diff(eff);
                                            *c = eff;
                                        }
                                        tm.events +=
                                            u64::from((diff & lane_mask).count_ones());
                                        if watched[gw.slot as usize] {
                                            let node = prog.node_of(gw.slot);
                                            let mut m = diff & lane_mask;
                                            while m != 0 {
                                                let lane = m.trailing_zeros();
                                                m &= m - 1;
                                                changes.push((
                                                    lane,
                                                    Time(t),
                                                    node,
                                                    gather(cur, lane),
                                                ));
                                            }
                                        }
                                        if gating && diff != 0 {
                                            for &b in plan.fanout(gw.slot) {
                                                dirty.mark(b);
                                            }
                                        }
                                    }
                                }
                            }
                            tm.busy += busy_start.elapsed();
                            let wait_start = Instant::now();
                            barrier.wait();
                            tm.idle += wait_start.elapsed();
                            if barrier.is_poisoned() || stop.load(Ordering::Acquire) {
                                break 'run;
                            }

                            // ---- evaluate phase -------------------------
                            let busy_start = Instant::now();
                            if t < end {
                                for b in plan.thread_blocks[p].clone() {
                                    let insns = plan.block_insns(b);
                                    if gating && !dirty.take(b as u32) {
                                        blocks_skipped += 1;
                                        evals_skipped += insns.len() as u64;
                                        continue;
                                    }
                                    for &i in insns {
                                        if let FaultAction::Exit =
                                            fault.check(p, processed, cont.cancel_flag())
                                        {
                                            break 'run;
                                        }
                                        processed += 1;
                                        cont.beat(p);
                                        let i = i as usize;
                                        eval_insn(
                                            netlist,
                                            prog,
                                            values,
                                            nat_state,
                                            state_offset,
                                            fb_state,
                                            i,
                                            &mut scratch,
                                            &mut inputs_buf,
                                        );
                                        tm.evaluations += 1;
                                        // Compare against current values and
                                        // queue changed ports.
                                        let mut s_off = 0usize;
                                        for &slot in prog.outputs(i) {
                                            let w = prog.slot_width(slot) as usize;
                                            let new = &scratch[s_off..s_off + w];
                                            s_off += w;
                                            let off = prog.slot_offset(slot);
                                            // SAFETY: reading a slot this
                                            // thread exclusively writes.
                                            let cur =
                                                unsafe { values.slice(off..off + w) };
                                            if changed_mask(cur, new) != 0 {
                                                pend_slots.push(slot);
                                                pend_data.extend_from_slice(new);
                                            }
                                        }
                                    }
                                }
                            }
                            tm.busy += busy_start.elapsed();
                            let wait_start = Instant::now();
                            barrier.wait();
                            tm.idle += wait_start.elapsed();
                            if barrier.is_poisoned() {
                                break 'run;
                            }
                        }
                        (changes, tm, blocks_skipped, evals_skipped)
                    }));
                    match body {
                        Ok(out) => Some(out),
                        Err(payload) => {
                            cont.record_panic(p, payload);
                            barrier.poison();
                            None
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().unwrap_or_default());
        }
    });
    if let Some(w) = watchdog {
        w.finish();
    }

    if let Some((worker, payload)) = containment.take_panic() {
        return Err(SimError::WorkerPanicked {
            engine: ENGINE,
            worker,
            payload,
        });
    }
    if let Some(verdict) = containment.take_verdict() {
        let diagnostic = Box::new(StallDiagnostic {
            heartbeats: containment.heartbeat_snapshot(),
            sim_time: Some(Time(cur_step.load(Ordering::Relaxed))),
            ..StallDiagnostic::default()
        });
        return Err(match verdict {
            WatchdogVerdict::Stalled { stalled_for } => SimError::Stalled {
                engine: ENGINE,
                stalled_for,
                diagnostic,
            },
            WatchdogVerdict::Deadline { deadline } => SimError::DeadlineExceeded {
                engine: ENGINE,
                deadline,
                diagnostic,
            },
        });
    }

    let outputs: Vec<WorkerOutput> = outputs.into_iter().flatten().collect();
    let mut per_thread = Vec::with_capacity(threads);
    let mut events_processed = 0;
    let mut evaluations = 0;
    let mut blocks_skipped = 0;
    let mut evals_skipped = 0;
    let mut all_changes: Vec<(u32, Time, NodeId, Value)> = Vec::new();
    for (c, tm, bs, es) in outputs {
        events_processed += tm.events;
        evaluations += tm.evaluations;
        blocks_skipped += bs;
        evals_skipped += es;
        all_changes.extend(c);
        per_thread.push(tm);
    }
    let metrics = Metrics {
        events_processed,
        evaluations,
        activations: evaluations,
        time_steps: end + 1,
        events_per_step: Default::default(),
        per_thread,
        gc_chunks_freed: 0,
        blocks_skipped,
        evals_skipped,
        pool_misses: 0,
        checkpoint: Default::default(),
        locality: Default::default(),
        wall: start.elapsed(),
    };

    // Per-lane waveform extraction.
    let mut lane_changes: Vec<Vec<(Time, NodeId, Value)>> = vec![Vec::new(); lanes];
    for (lane, t, n, v) in all_changes {
        lane_changes[lane as usize].push((t, n, v));
    }
    let lanes_out = lane_changes
        .into_iter()
        .map(|c| {
            SimResult::from_changes(netlist, config.end_time, &config.watch, c, metrics.clone())
        })
        .collect();
    Ok(BatchResult {
        lanes: lanes_out,
        metrics,
    })
}

/// Evaluates instruction `i` into `scratch` (output ports concatenated).
#[allow(clippy::too_many_arguments)]
#[inline]
fn eval_insn(
    netlist: &Netlist,
    prog: &CompiledProgram,
    values: &SharedSlice<Lanes>,
    nat_state: &SharedSlice<Lanes>,
    state_offset: &[u32],
    fb_state: &SharedSlice<Vec<ElemState>>,
    i: usize,
    scratch: &mut [Lanes],
    inputs_buf: &mut Vec<Value>,
) {
    let ins = prog.inputs(i);
    // SAFETY (all `values.slice` calls below): evaluate phase is read-only
    // for slot values; barriers order it after the last apply-phase write.
    let input = |k: usize| {
        let off = prog.slot_offset(ins[k]);
        let w = prog.slot_width(ins[k]) as usize;
        unsafe { values.slice(off..off + w) }
    };
    let w = prog.width(i) as usize;
    let op = prog.opcode(i);
    match op {
        Opcode::And | Opcode::Or | Opcode::Nand | Opcode::Nor | Opcode::Xor | Opcode::Xnor => {
            let out = &mut scratch[..w];
            load_logic(out, input(0));
            for k in 1..ins.len() {
                match op {
                    Opcode::And | Opcode::Nand => fold_and(out, input(k)),
                    Opcode::Or | Opcode::Nor => fold_or(out, input(k)),
                    _ => fold_xor(out, input(k)),
                }
            }
            if matches!(op, Opcode::Nand | Opcode::Nor | Opcode::Xnor) {
                not_inplace(out);
            }
        }
        Opcode::Not => {
            let out = &mut scratch[..w];
            load_logic(out, input(0));
            not_inplace(out);
        }
        Opcode::Buf => load_logic(&mut scratch[..w], input(0)),
        Opcode::Mux => {
            let sel = input(0)[0];
            // The borrow of `scratch` and the two value slices are disjoint.
            mux(&mut scratch[..w], sel, input(1), input(2));
        }
        Opcode::Dff | Opcode::DffR => {
            let off = state_offset[i] as usize;
            // SAFETY: native state is touched only by the owning thread.
            let st = unsafe { nat_state.slice_mut(off..off + w + 1) };
            let (q, rest) = st.split_at_mut(w);
            let last_clk = &mut rest[0];
            let clk = input(0)[0];
            if op == Opcode::Dff {
                dff(q, last_clk, clk, input(1));
            } else {
                dffr(q, last_clk, clk, input(1), input(2)[0]);
            }
            scratch[..w].copy_from_slice(q);
        }
        Opcode::Latch => {
            let off = state_offset[i] as usize;
            // SAFETY: native state is touched only by the owning thread.
            let q = unsafe { nat_state.slice_mut(off..off + w) };
            latch(q, input(0)[0], input(1));
            scratch[..w].copy_from_slice(q);
        }
        Opcode::TriBuf => tribuf(&mut scratch[..w], input(0)[0], input(1)),
        _ => {
            // Scalar fallback: evaluate each lane with the shared kernel.
            let kind = netlist.elements()[prog.elem(i)].kind();
            // SAFETY: fallback state is touched only by the owning thread.
            let states = unsafe { fb_state.get_mut(i) };
            let out_bits: usize = prog
                .outputs(i)
                .iter()
                .map(|&s| prog.slot_width(s) as usize)
                .sum();
            for lane in 0..64u32 {
                inputs_buf.clear();
                for k in 0..ins.len() {
                    inputs_buf.push(gather(input(k), lane));
                }
                let out = evaluate(kind, inputs_buf, &mut states[lane as usize]);
                let mut s_off = 0usize;
                for (port, v) in out.iter() {
                    let pw = prog.slot_width(prog.outputs(i)[port]) as usize;
                    packed::scatter(&mut scratch[s_off..s_off + pw], lane, &v);
                    s_off += pw;
                }
                debug_assert_eq!(
                    out_bits,
                    prog.outputs(i)
                        .iter()
                        .map(|&s| prog.slot_width(s) as usize)
                        .sum::<usize>()
                );
            }
        }
    }
}
