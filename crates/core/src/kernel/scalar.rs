//! Scalar executor for the compiled instruction stream.
//!
//! This is the paper's §3 engine rebuilt on the level-major stream from
//! [`CompiledProgram`]: barrier-separated apply/evaluate phases, static
//! partition, unit delay — but per-element dynamic dispatch is gone
//! (instructions carry dense opcodes and slot indices) and, when
//! [`SimConfig::activity_gating`] is on, blocks whose inputs did not change
//! are skipped instead of re-evaluated.
//!
//! Shared-state discipline: a value slot is written only by the thread
//! owning its driving instruction (plus thread 0 for generator slots)
//! during the *apply* phase and read by everyone during the *evaluate*
//! phase; a [`SpinBarrier`] separates the phases. Dirty bits are set during
//! apply and taken by owners during evaluate under the same barrier edges.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parsim_checkpoint::{EngineSnapshot, PendingEvent};
use parsim_logic::{evaluate, expand_generator, ElemState, Time, Value};
use parsim_netlist::compile::CompiledProgram;
use parsim_netlist::partition::Partition;
use parsim_netlist::{Netlist, NodeId};
use parsim_queue::SpinBarrier;
use parsim_telemetry::{Counter, Gauge};
use parsim_trace::{EventKind, Tracer, WorkerTracer};

use crate::checkpoint::{new_run_ctx, SegmentOut, SegmentSpec};
use crate::config::SimConfig;
use crate::error::{SimError, StallDiagnostic};
use crate::fault::FaultAction;
use crate::kernel::{validate_partition, DirtyMask, ExecPlan};
use crate::metrics::{Metrics, ThreadMetrics};
use crate::shared::SharedSlice;
use crate::watchdog::{Containment, Watchdog, WatchdogVerdict};
use crate::waveform::SimResult;

/// Engine tag used in [`SimError`] values.
const ENGINE: &str = "compiled-mode";

/// Per-worker results: waveform changes, timing counters, skip counters,
/// the worker's drained trace ring, and the unapplied pending set the
/// worker held when the segment ended (checkpoint capture mode: these are
/// the unit-delay events for `cut + 1`).
type WorkerOutput = (
    Vec<(Time, NodeId, Value)>,
    ThreadMetrics,
    u64,
    u64,
    WorkerTracer,
    Vec<(u32, Value)>,
);

/// Runs the scalar compiled-mode kernel (whole run).
pub(crate) fn run(
    netlist: &Netlist,
    config: &SimConfig,
    prog: &CompiledProgram,
    partition: &Partition,
) -> Result<SimResult, SimError> {
    let ctx = new_run_ctx(config);
    let out = run_segment(
        netlist,
        config,
        prog,
        partition,
        SegmentSpec::whole(config, ctx.clone()),
    )?;
    let mut result = out.into_result(netlist, config);
    result.telemetry = Some(ctx.finish());
    Ok(result)
}

/// Runs one segment of the scalar compiled-mode kernel.
///
/// Compiled mode is unit-delay, so a snapshot at cut `T` is simply: slot
/// values after the apply phase of step `T`, instruction states after the
/// evaluate phase of step `T`, and the pending set that evaluate produced
/// (events for `T + 1`). Resume re-applies that pending set (thread 0,
/// like generator events) and restarts the step loop at `T + 1` with an
/// all-dirty mask — re-evaluating a clean block is idempotent, so the
/// conservative mask costs work, never correctness.
pub(crate) fn run_segment(
    netlist: &Netlist,
    config: &SimConfig,
    prog: &CompiledProgram,
    partition: &Partition,
    seg: SegmentSpec<'_>,
) -> Result<SegmentOut, SimError> {
    validate_partition(netlist, config, partition)?;
    let start = Instant::now();
    let end = config.end_time.ticks();
    let cut = seg.cut;
    let t0 = seg.resume.map(|s| s.time);
    let capture = seg.capture;
    let first_step = t0.map(|t| t + 1).unwrap_or(0);
    let threads = config.threads;
    let gating = config.activity_gating;

    let plan = ExecPlan::build(prog, partition);
    let plan = &plan;

    let mut watched = vec![false; prog.num_slots()];
    for &n in &config.watch {
        watched[prog.slot_of(n) as usize] = true;
    }
    let watched = &watched;

    // Generator schedule, applied by thread 0 (generators are excluded
    // from the instruction stream). Expansion stops at the cut; a resumed
    // segment re-expands and keeps only events past the previous cut.
    // A resume snapshot's in-flight events ride the same map — they are
    // node updates like any other, and their times land in `(t0, end]`.
    let mut gen_events: BTreeMap<u64, Vec<(u32, Value)>> = BTreeMap::new();
    for gen in netlist.generators() {
        let e = netlist.element(gen);
        let slot = prog.slot_of(e.outputs()[0]);
        for (t, v) in expand_generator(e.kind(), Time(cut)) {
            if t0.is_some_and(|t0| t.ticks() <= t0) {
                continue;
            }
            gen_events.entry(t.ticks()).or_default().push((slot, v));
        }
    }
    // In-flight events beyond even this segment's cut (possible only in
    // snapshots captured by a multi-delay-capable engine) skip straight
    // to the next snapshot.
    let mut carry: Vec<PendingEvent> = Vec::new();
    if let Some(snap) = seg.resume {
        for ev in &snap.pending {
            if ev.time <= cut {
                let slot = prog.slot_of(NodeId::from_index(ev.node as usize));
                gen_events.entry(ev.time).or_default().push((slot, ev.value));
            } else {
                carry.push(ev.clone());
            }
        }
    }
    let gen_events = &gen_events;

    // Shared slot values: written single-writer during apply phases.
    let values: SharedSlice<Value> = SharedSlice::from_fn(prog.num_slots(), |s| {
        match seg.resume {
            Some(snap) => snap.values[prog.node_of(s as u32).index()],
            None => Value::x(prog.slot_width(s as u32)),
        }
    });
    let values = &values;
    // Per-instruction state: touched only by the owning thread.
    let states: SharedSlice<ElemState> = SharedSlice::from_fn(prog.num_insns(), |i| {
        match seg.resume {
            Some(snap) => snap.elem_states[prog.elem(i)].clone(),
            None => ElemState::init(netlist.elements()[prog.elem(i)].kind()),
        }
    });
    let states = &states;
    let dirty = DirtyMask::all_dirty(plan.blocks.len());
    let dirty = &dirty;

    let barrier = Arc::new(SpinBarrier::new(threads));
    let containment = Containment::new(threads);
    let watchdog = {
        let b = Arc::clone(&barrier);
        Watchdog::spawn(
            &containment,
            config.deadline,
            config.stall_timeout,
            seg.telemetry.sampler(),
            move || b.poison(),
        )
    };
    let barrier = &barrier;
    let registry = &seg.telemetry.registry;
    // Cooperative cancellation: thread 0 copies the cancel flag into
    // `stop` during the apply phase, and everyone samples `stop` after
    // the following barrier — so all threads break at the same step.
    let stop = AtomicBool::new(false);
    let stop = &stop;
    // Last step thread 0 started, for the stall diagnostic.
    let cur_step = AtomicU64::new(0);
    let cur_step = &cur_step;

    let tracer = Tracer::new(config.trace.as_ref());
    let tracer_ref = &tracer;

    let mut outputs: Vec<Option<WorkerOutput>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|p| {
                let cont = &containment;
                let fault = config.fault.clone();
                scope.spawn(move || {
                    let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut changes: Vec<(Time, NodeId, Value)> = Vec::new();
                        let mut tr = tracer_ref.worker(p);
                        let mut tm = ThreadMetrics::default();
                        let shard = registry.worker(p);
                        let mut published_events = 0u64;
                        let mut published_evals = 0u64;
                        let mut blocks_skipped = 0u64;
                        let mut evals_skipped = 0u64;
                        let mut pending: Vec<(u32, Value)> = Vec::new();
                        let mut inputs_buf: Vec<Value> = Vec::with_capacity(8);
                        let mut processed = 0u64;
                        'run: for t in first_step..=cut {
                            cont.beat(p);
                            if p == 0 {
                                cur_step.store(t, Ordering::Relaxed);
                                shard.inc(Counter::TimeSteps);
                                shard.set_gauge(Gauge::SimTime, t);
                                if cont.cancelled() {
                                    stop.store(true, Ordering::Release);
                                }
                            }
                            let busy_start = Instant::now();
                            tr.begin(EventKind::PhaseApply, t as u32);
                            // ---- apply phase ----------------------------
                            for &(slot, v) in &pending {
                                // SAFETY: single writer per slot (driver
                                // thread), phases separated by barriers.
                                unsafe { *values.get_mut(slot as usize) = v };
                                tm.events += 1;
                                if watched[slot as usize] {
                                    changes.push((Time(t), prog.node_of(slot), v));
                                }
                                if gating {
                                    for &b in plan.fanout(slot) {
                                        dirty.mark(b);
                                    }
                                }
                            }
                            pending.clear();
                            if p == 0 {
                                if let Some(evs) = gen_events.get(&t) {
                                    for &(slot, v) in evs {
                                        // SAFETY: generator slots are only
                                        // written here, by thread 0.
                                        let cur = unsafe { values.get_mut(slot as usize) };
                                        if *cur != v {
                                            *cur = v;
                                            tm.events += 1;
                                            if watched[slot as usize] {
                                                changes.push((Time(t), prog.node_of(slot), v));
                                            }
                                            if gating {
                                                for &b in plan.fanout(slot) {
                                                    dirty.mark(b);
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                            tr.end(EventKind::PhaseApply);
                            tm.busy += busy_start.elapsed();
                            let wait_start = Instant::now();
                            barrier.wait_traced(&mut tr, 0);
                            tm.idle += wait_start.elapsed();
                            // All threads observe the same `stop` value
                            // here (set before the barrier), so they break
                            // at the same step.
                            if barrier.is_poisoned() || stop.load(Ordering::Acquire) {
                                break 'run;
                            }

                            // ---- evaluate phase -------------------------
                            let busy_start = Instant::now();
                            tr.begin(EventKind::PhaseEval, t as u32);
                            if t < end {
                                for b in plan.thread_blocks[p].clone() {
                                    let insns = plan.block_insns(b);
                                    if gating && !dirty.take(b as u32) {
                                        blocks_skipped += 1;
                                        evals_skipped += insns.len() as u64;
                                        tr.instant(EventKind::BlockSkip, b as u32);
                                        continue;
                                    }
                                    tr.instant(EventKind::BlockRun, b as u32);
                                    for &i in insns {
                                        if let FaultAction::Exit =
                                            fault.check(p, processed, cont.cancel_flag())
                                        {
                                            // Only reached after cancellation,
                                            // which always poisons the barrier,
                                            // so peers are not left waiting.
                                            break 'run;
                                        }
                                        processed += 1;
                                        cont.beat(p);
                                        let i = i as usize;
                                        inputs_buf.clear();
                                        for &inp in prog.inputs(i) {
                                            // SAFETY: read-only phase.
                                            inputs_buf
                                                .push(unsafe { *values.get(inp as usize) });
                                        }
                                        let kind = netlist.elements()[prog.elem(i)].kind();
                                        // SAFETY: instruction owned by this
                                        // thread.
                                        let state = unsafe { states.get_mut(i) };
                                        let out = evaluate(kind, &inputs_buf, state);
                                        tm.evaluations += 1;
                                        tr.instant(EventKind::Eval, i as u32);
                                        for (port, v) in out.iter() {
                                            let slot = prog.outputs(i)[port];
                                            // SAFETY: reading a slot this
                                            // thread exclusively writes.
                                            if unsafe { *values.get(slot as usize) } != v {
                                                pending.push((slot, v));
                                                tr.instant(EventKind::EventInsert, slot);
                                            }
                                        }
                                    }
                                }
                            }
                            tr.counter(EventKind::QueueDepth, pending.len() as u32);
                            tr.end(EventKind::PhaseEval);
                            // One relaxed step-delta publish per worker per
                            // step; activations mirror evaluations (every
                            // evaluated instruction counts as activated).
                            shard.add(Counter::EventsProcessed, tm.events - published_events);
                            shard.add(Counter::Evaluations, tm.evaluations - published_evals);
                            shard.add(Counter::Activations, tm.evaluations - published_evals);
                            shard.set_gauge(Gauge::QueueDepth, pending.len() as u64);
                            published_events = tm.events;
                            published_evals = tm.evaluations;
                            tm.busy += busy_start.elapsed();
                            let wait_start = Instant::now();
                            barrier.wait_traced(&mut tr, 1);
                            tm.idle += wait_start.elapsed();
                            if barrier.is_poisoned() {
                                break 'run;
                            }
                        }
                        shard.add(Counter::EventsProcessed, tm.events - published_events);
                        shard.add(Counter::Evaluations, tm.evaluations - published_evals);
                        shard.add(Counter::Activations, tm.evaluations - published_evals);
                        shard.add(Counter::BlocksSkipped, blocks_skipped);
                        shard.add(Counter::EvalsSkipped, evals_skipped);
                        shard.add(Counter::BusyNs, tm.busy.as_nanos() as u64);
                        shard.add(Counter::IdleNs, tm.idle.as_nanos() as u64);
                        (changes, tm, blocks_skipped, evals_skipped, tr, pending)
                    }));
                    match body {
                        Ok(out) => Some(out),
                        Err(payload) => {
                            cont.record_panic(p, payload);
                            barrier.poison();
                            None
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            outputs.push(h.join().unwrap_or_default());
        }
    });
    if let Some(w) = watchdog {
        w.finish();
    }

    if let Some((worker, payload)) = containment.take_panic() {
        return Err(SimError::WorkerPanicked {
            engine: ENGINE,
            worker,
            payload,
        });
    }
    if let Some(verdict) = containment.take_verdict() {
        let diagnostic = Box::new(StallDiagnostic {
            heartbeats: containment.heartbeat_snapshot(),
            sim_time: Some(Time(cur_step.load(Ordering::Relaxed))),
            ..StallDiagnostic::default()
        });
        return Err(match verdict {
            WatchdogVerdict::Stalled { stalled_for } => SimError::Stalled {
                engine: ENGINE,
                stalled_for,
                diagnostic,
            },
            WatchdogVerdict::Deadline { deadline } => SimError::DeadlineExceeded {
                engine: ENGINE,
                deadline,
                diagnostic,
            },
        });
    }

    let outputs: Vec<WorkerOutput> = outputs.into_iter().flatten().collect();
    let mut changes = Vec::new();
    let mut per_thread = Vec::with_capacity(threads);
    let mut events_processed = 0;
    let mut evaluations = 0;
    let mut blocks_skipped = 0;
    let mut evals_skipped = 0;
    let mut worker_tracers = Vec::with_capacity(threads);
    let mut leftover: Vec<(u32, Value)> = Vec::new();
    for (c, tm, bs, es, wt, pend) in outputs {
        events_processed += tm.events;
        evaluations += tm.evaluations;
        blocks_skipped += bs;
        evals_skipped += es;
        changes.extend(c);
        per_thread.push(tm);
        worker_tracers.push(wt);
        leftover.extend(pend);
    }
    let metrics = Metrics {
        events_processed,
        evaluations,
        activations: evaluations, // every evaluated instruction "activated"
        time_steps: cut + 1 - first_step,
        events_per_step: Default::default(),
        per_thread,
        gc_chunks_freed: 0,
        blocks_skipped,
        evals_skipped,
        pool_misses: 0,
        checkpoint: Default::default(),
        lane_width: 0,
        locality: Default::default(),
        arena: Default::default(),
        wall: start.elapsed(),
    };
    let snapshot = capture.then(|| {
        let num_nodes = netlist.num_nodes();
        // SAFETY: all workers are joined; single-threaded access with the
        // joins as the synchronization edge.
        let node_values: Vec<Value> = (0..num_nodes)
            .map(|i| unsafe { *values.get(prog.slot_of(NodeId::from_index(i)) as usize) })
            .collect();
        // The event-driven engines' bookkeeping, reconstructed so the
        // snapshot stays engine-portable: with one driver per node and no
        // in-flight events other than `leftover`, the last value scheduled
        // for a node is its pending value if one exists, else its current
        // value; the monotone-transport floor only matters for nodes with
        // a pending (future) event.
        let mut last_scheduled = node_values.clone();
        let mut last_sched_time = vec![0u64; num_nodes];
        let mut pending: Vec<PendingEvent> = carry;
        for (slot, v) in leftover {
            let node = prog.node_of(slot).index();
            last_scheduled[node] = v;
            last_sched_time[node] = cut + 1;
            pending.push(PendingEvent {
                time: cut + 1,
                node: node as u32,
                value: v,
            });
        }
        pending.sort_by_key(|ev| (ev.time, ev.node));
        let mut elem_states: Vec<ElemState> = netlist
            .elements()
            .iter()
            .map(|e| ElemState::init(e.kind()))
            .collect();
        for i in 0..prog.num_insns() {
            // SAFETY: workers joined (as above).
            elem_states[prog.elem(i)] = unsafe { states.get(i) }.clone();
        }
        EngineSnapshot {
            end_time: end,
            time: cut,
            step: 0,
            seeds: [0, 0],
            values: node_values,
            last_scheduled,
            last_sched_time,
            elem_states,
            pending,
            changes: Vec::new(),
        }
    });
    Ok(SegmentOut {
        changes,
        metrics,
        trace: tracer.finish(worker_tracers),
        snapshot,
    })
}
