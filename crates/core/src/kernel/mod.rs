//! Execution plans for the compiled-mode instruction-stream kernel.
//!
//! A [`CompiledProgram`](parsim_netlist::compile::CompiledProgram) is a
//! machine-independent lowering of the netlist; this module binds it to a
//! thread count: per-thread instruction lists (stream order, so level-major
//! within a thread), fixed-size *blocks* that never cross level boundaries,
//! and a slot→block fanout map driving the activity-gating dirty bitmask.
//!
//! Two executors share one plan: [`scalar`] (one stimulus, `Value`-typed
//! slots — the rewritten §3 engine) and [`packed`] (up to 64 stimulus lanes
//! on bit-plane words).

pub(crate) mod packed;
pub(crate) mod scalar;

use std::sync::atomic::{AtomicU64, Ordering};

use parsim_netlist::compile::CompiledProgram;
use parsim_netlist::partition::Partition;
use parsim_netlist::Netlist;

use crate::config::SimConfig;
use crate::error::SimError;

/// Maximum instructions per activity-gating block. Small enough that one
/// quiescent functional unit is skippable, large enough that the dirty
/// bitmask stays tiny relative to the stream.
pub(crate) const BLOCK_INSNS: usize = 16;

/// One gating block: instructions `lo..hi` of `thread`'s list, all in the
/// same level bucket.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Block {
    pub thread: u32,
    pub lo: u32,
    pub hi: u32,
}

/// A compiled program bound to a static partition.
pub(crate) struct ExecPlan {
    /// Per-thread instruction indices in stream (level-major) order.
    pub thread_insns: Vec<Vec<u32>>,
    /// All gating blocks; ids are global across threads.
    pub blocks: Vec<Block>,
    /// Contiguous block-id range owned by each thread.
    pub thread_blocks: Vec<std::ops::Range<usize>>,
    /// CSR: blocks reading each slot (`fan_start[slot]..fan_start[slot+1]`
    /// indexes `fan_blocks`).
    fan_start: Vec<u32>,
    fan_blocks: Vec<u32>,
}

impl ExecPlan {
    /// Binds `prog` to `partition` (one part per worker thread).
    pub fn build(prog: &CompiledProgram, partition: &Partition) -> ExecPlan {
        let threads = partition.parts();
        let mut thread_insns: Vec<Vec<u32>> = vec![Vec::new(); threads];
        for i in 0..prog.num_insns() {
            let p = partition.assignment()[prog.elem(i)] as usize;
            thread_insns[p].push(i as u32);
        }

        let mut blocks = Vec::new();
        let mut thread_blocks = Vec::with_capacity(threads);
        for (p, insns) in thread_insns.iter().enumerate() {
            let first = blocks.len();
            let mut lo = 0usize;
            while lo < insns.len() {
                let level = prog.level_of(insns[lo] as usize);
                let mut hi = lo + 1;
                while hi < insns.len()
                    && hi - lo < BLOCK_INSNS
                    && prog.level_of(insns[hi] as usize) == level
                {
                    hi += 1;
                }
                blocks.push(Block {
                    thread: p as u32,
                    lo: lo as u32,
                    hi: hi as u32,
                });
                lo = hi;
            }
            thread_blocks.push(first..blocks.len());
        }

        // Slot → reading-blocks CSR (sorted, deduplicated).
        let mut pairs: Vec<(u32, u32)> = Vec::new();
        for (b, block) in blocks.iter().enumerate() {
            let insns = &thread_insns[block.thread as usize];
            for &i in &insns[block.lo as usize..block.hi as usize] {
                for &slot in prog.inputs(i as usize) {
                    pairs.push((slot, b as u32));
                }
            }
        }
        pairs.sort_unstable();
        pairs.dedup();
        let mut fan_start = vec![0u32; prog.num_slots() + 1];
        for &(slot, _) in &pairs {
            fan_start[slot as usize + 1] += 1;
        }
        for s in 1..fan_start.len() {
            fan_start[s] += fan_start[s - 1];
        }
        let fan_blocks: Vec<u32> = pairs.into_iter().map(|(_, b)| b).collect();

        ExecPlan {
            thread_insns,
            blocks,
            thread_blocks,
            fan_start,
            fan_blocks,
        }
    }

    /// The gating blocks that read `slot`.
    #[inline]
    pub fn fanout(&self, slot: u32) -> &[u32] {
        &self.fan_blocks[self.fan_start[slot as usize] as usize
            ..self.fan_start[slot as usize + 1] as usize]
    }

    /// The instructions of block `b`.
    #[inline]
    pub fn block_insns(&self, b: usize) -> &[u32] {
        let block = self.blocks[b];
        &self.thread_insns[block.thread as usize][block.lo as usize..block.hi as usize]
    }
}

/// The static producer/consumer graph for neighbor-synchronized BSP
/// execution of the packed batch kernel.
///
/// Lowering knows, per worker, exactly which other workers write the node
/// slots its instructions read. Instead of a global step barrier, each
/// worker then only orders itself against:
///
/// - its **producers** — workers (including thread 0 in its role as the
///   generator/stimulus applier) that write slots the worker reads: it
///   waits for their apply phase of step `t` before evaluating step `t`;
/// - its **consumers** — workers that read slots it writes: it waits for
///   their eval phase of step `t-1` before overwriting those slots in its
///   apply phase of step `t`.
///
/// Slots that thread 0 writes outside the instruction stream (generator
/// schedules, per-lane stimulus overrides, resume-injected pending
/// events) are declared up front via `gen_slots`, making thread 0 a
/// producer of every worker that reads one. Validation guarantees those
/// slots are never also instruction outputs, so every slot still has a
/// single writer per step.
pub(crate) struct NeighborPlan {
    /// `producers[w]`: sorted worker ids whose apply phase `w`'s eval
    /// phase must wait on (never contains `w`).
    pub producers: Vec<Vec<u32>>,
    /// `consumers[w]`: sorted worker ids whose eval phase `w`'s apply
    /// phase must wait on (never contains `w`).
    pub consumers: Vec<Vec<u32>>,
}

impl NeighborPlan {
    /// Computes the producer/consumer edges of `prog` under `partition`.
    ///
    /// `gen_slots[slot]` must be true for every slot thread 0 writes
    /// during apply phases outside the instruction stream.
    pub fn build(
        prog: &CompiledProgram,
        partition: &Partition,
        gen_slots: &[bool],
    ) -> NeighborPlan {
        let threads = partition.parts();
        // Single writer per slot: the thread owning the driving
        // instruction. `None` = never written by an instruction.
        let mut writer: Vec<Option<u32>> = vec![None; prog.num_slots()];
        for i in 0..prog.num_insns() {
            let t = partition.assignment()[prog.elem(i)];
            for &s in prog.outputs(i) {
                writer[s as usize] = Some(t);
            }
        }
        let mut producers: Vec<Vec<u32>> = vec![Vec::new(); threads];
        for i in 0..prog.num_insns() {
            let reader = partition.assignment()[prog.elem(i)];
            for &s in prog.inputs(i) {
                if let Some(w) = writer[s as usize] {
                    if w != reader {
                        producers[reader as usize].push(w);
                    }
                }
                if gen_slots[s as usize] && reader != 0 {
                    producers[reader as usize].push(0);
                }
            }
        }
        let mut consumers: Vec<Vec<u32>> = vec![Vec::new(); threads];
        for (w, ps) in producers.iter_mut().enumerate() {
            ps.sort_unstable();
            ps.dedup();
            for &p in ps.iter() {
                consumers[p as usize].push(w as u32);
            }
        }
        // `producers` iterates in worker order, so each consumer list is
        // built already sorted and duplicate-free.
        NeighborPlan {
            producers,
            consumers,
        }
    }
}

/// One dirty bit per gating block.
///
/// Bits are *set* (by any thread, via `fetch_or`) during the apply phase
/// when a feeding slot changes, and *read-and-cleared* only by the owning
/// thread during the evaluate phase; the synchronization edge between the
/// phases — the step barrier, or in neighbor-sync mode the
/// [`StepHandoff`](parsim_queue::StepHandoff) `Release`/`Acquire`
/// producer-edge publish that covers exactly the workers able to mark a
/// block — makes `Relaxed` ordering suffice. (A block is only marked by
/// workers writing slots the block reads, and those workers are producers
/// of the block's owner by construction, so the owner's `wait_apply`
/// acquires every mark. `crates/queue/tests/model.rs` checks this edge.)
pub(crate) struct DirtyMask {
    words: Vec<AtomicU64>,
}

impl DirtyMask {
    /// All blocks start dirty: every instruction runs at least once.
    pub fn all_dirty(blocks: usize) -> DirtyMask {
        DirtyMask {
            words: (0..blocks.div_ceil(64)).map(|_| AtomicU64::new(!0)).collect(),
        }
    }

    /// Marks block `b` dirty.
    #[inline]
    pub fn mark(&self, b: u32) {
        self.words[b as usize / 64].fetch_or(1 << (b % 64), Ordering::Relaxed);
    }

    /// Clears and returns block `b`'s dirty bit (owner thread only).
    #[inline]
    pub fn take(&self, b: u32) -> bool {
        let word = &self.words[b as usize / 64];
        let bit = 1u64 << (b % 64);
        if word.load(Ordering::Relaxed) & bit != 0 {
            word.fetch_and(!bit, Ordering::Relaxed);
            true
        } else {
            false
        }
    }
}

/// Shared partition validation for both executors; error messages match
/// the pre-kernel engine.
pub(crate) fn validate_partition(
    netlist: &Netlist,
    config: &SimConfig,
    partition: &Partition,
) -> Result<(), SimError> {
    if partition.parts() != config.threads {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "partition parts must equal thread count ({} != {})",
                partition.parts(),
                config.threads
            ),
        });
    }
    if partition.assignment().len() != netlist.num_elements() {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "partition does not match netlist ({} elements != {})",
                partition.assignment().len(),
                netlist.num_elements()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::{Delay, ElementKind};
    use parsim_netlist::partition::{lpt, element_costs};
    use parsim_netlist::Builder;

    fn chain(len: usize) -> Netlist {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 5,
                offset: 5,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        let mut prev = clk;
        for i in 0..len {
            let n = b.node(&format!("n{i}"), 1);
            b.element(&format!("inv{i}"), ElementKind::Not, Delay(1), &[prev], &[n])
                .unwrap();
            prev = n;
        }
        b.finish().unwrap()
    }

    #[test]
    fn blocks_never_cross_level_boundaries() {
        let n = chain(40);
        let prog = CompiledProgram::compile(&n);
        let part = lpt(&element_costs(&n), 3);
        let plan = ExecPlan::build(&prog, &part);
        for b in 0..plan.blocks.len() {
            let insns = plan.block_insns(b);
            assert!(!insns.is_empty());
            assert!(insns.len() <= BLOCK_INSNS);
            let level = prog.level_of(insns[0] as usize);
            assert!(insns
                .iter()
                .all(|&i| prog.level_of(i as usize) == level));
        }
        // Every instruction appears in exactly one block.
        let total: usize = (0..plan.blocks.len()).map(|b| plan.block_insns(b).len()).sum();
        assert_eq!(total, prog.num_insns());
    }

    #[test]
    fn fanout_reaches_every_reader() {
        let n = chain(10);
        let prog = CompiledProgram::compile(&n);
        let part = lpt(&element_costs(&n), 2);
        let plan = ExecPlan::build(&prog, &part);
        for b in 0..plan.blocks.len() {
            for &i in plan.block_insns(b) {
                for &slot in prog.inputs(i as usize) {
                    assert!(
                        plan.fanout(slot).contains(&(b as u32)),
                        "slot {slot} missing block {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn neighbor_plan_edges_cover_every_cross_thread_read() {
        let n = chain(24);
        let prog = CompiledProgram::compile(&n);
        let part = lpt(&element_costs(&n), 3);
        let mut gen_slots = vec![false; prog.num_slots()];
        for g in n.generators() {
            gen_slots[prog.slot_of(n.element(g).outputs()[0]) as usize] = true;
        }
        let plan = NeighborPlan::build(&prog, &part, &gen_slots);
        // Re-derive writers independently and check every cross-thread
        // read has a matching producer edge (and its transpose).
        let mut writer = vec![None; prog.num_slots()];
        for i in 0..prog.num_insns() {
            for &s in prog.outputs(i) {
                writer[s as usize] = Some(part.assignment()[prog.elem(i)]);
            }
        }
        for i in 0..prog.num_insns() {
            let r = part.assignment()[prog.elem(i)];
            for &s in prog.inputs(i) {
                let w = match writer[s as usize] {
                    Some(w) => w,
                    None if gen_slots[s as usize] => 0,
                    None => continue,
                };
                if w != r {
                    assert!(plan.producers[r as usize].contains(&w));
                    assert!(plan.consumers[w as usize].contains(&r));
                }
            }
        }
        for (w, ps) in plan.producers.iter().enumerate() {
            assert!(!ps.contains(&(w as u32)), "self-edge on worker {w}");
            assert!(ps.windows(2).all(|p| p[0] < p[1]), "unsorted producers");
        }
        for (w, cs) in plan.consumers.iter().enumerate() {
            assert!(!cs.contains(&(w as u32)), "self-edge on worker {w}");
            assert!(cs.windows(2).all(|c| c[0] < c[1]), "unsorted consumers");
        }
    }

    #[test]
    fn neighbor_plan_single_thread_has_no_edges() {
        let n = chain(8);
        let prog = CompiledProgram::compile(&n);
        let part = lpt(&element_costs(&n), 1);
        let gen_slots = vec![true; prog.num_slots()];
        let plan = NeighborPlan::build(&prog, &part, &gen_slots);
        assert!(plan.producers[0].is_empty());
        assert!(plan.consumers[0].is_empty());
    }

    #[test]
    fn dirty_mask_set_take_cycle() {
        let m = DirtyMask::all_dirty(70);
        assert!(m.take(0));
        assert!(!m.take(0));
        assert!(m.take(69));
        m.mark(69);
        assert!(m.take(69));
        assert!(!m.take(69));
    }
}
