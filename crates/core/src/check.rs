//! Cross-engine waveform equivalence checking.
//!
//! The three event-semantics engines (sequential, synchronous parallel,
//! asynchronous) must produce *identical* waveforms on any circuit; the
//! compiled-mode engine matches them on unit-delay circuits. These helpers
//! are used throughout the integration tests and by the harness's
//! self-check.

use std::fmt;

use parsim_netlist::NodeId;

use crate::waveform::SimResult;

/// The outcome of comparing two simulation results.
#[derive(Debug, Clone, Default)]
pub struct EquivalenceReport {
    /// Nodes whose waveforms differ, with the first divergence rendered.
    pub mismatches: Vec<(NodeId, String)>,
    /// Nodes compared.
    pub compared: usize,
}

impl EquivalenceReport {
    /// True when no watched waveform differs.
    pub fn is_equivalent(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for EquivalenceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_equivalent() {
            write!(f, "{} waveforms identical", self.compared)
        } else {
            writeln!(
                f,
                "{} of {} waveforms differ:",
                self.mismatches.len(),
                self.compared
            )?;
            for (node, detail) in self.mismatches.iter().take(5) {
                writeln!(f, "  {node}: {detail}")?;
            }
            Ok(())
        }
    }
}

/// Compares every waveform watched by both results.
///
/// # Examples
///
/// ```
/// use parsim_core::{equivalence_report, EventDriven, SimConfig};
/// use parsim_logic::Time;
/// # use parsim_logic::{Delay, ElementKind, Value};
/// # use parsim_netlist::Builder;
/// # let mut b = Builder::new();
/// # let a = b.node("a", 1);
/// # b.element("c", ElementKind::Const { value: Value::bit(true) }, Delay(1), &[], &[a]).unwrap();
/// # let netlist = b.finish().unwrap();
/// let cfg = SimConfig::new(Time(10)).watch(a);
/// let r1 = EventDriven::run(&netlist, &cfg).unwrap();
/// let r2 = EventDriven::run(&netlist, &cfg).unwrap();
/// assert!(equivalence_report(&r1, &r2).is_equivalent());
/// ```
pub fn equivalence_report(a: &SimResult, b: &SimResult) -> EquivalenceReport {
    let mut report = EquivalenceReport::default();
    for wa in a.waveforms() {
        let node = wa.node();
        let Some(wb) = b.waveform(node) else {
            continue;
        };
        report.compared += 1;
        if wa.changes() != wb.changes() {
            let detail = first_divergence(wa.changes(), wb.changes());
            report.mismatches.push((node, detail));
        }
    }
    report
}

fn first_divergence(
    a: &[(parsim_logic::Time, parsim_logic::Value)],
    b: &[(parsim_logic::Time, parsim_logic::Value)],
) -> String {
    for i in 0..a.len().max(b.len()) {
        match (a.get(i), b.get(i)) {
            (Some(x), Some(y)) if x == y => continue,
            (x, y) => {
                return format!("change #{i}: left {x:?}, right {y:?}");
            }
        }
    }
    "lengths differ".to_string()
}

/// Asserts that two results are waveform-identical.
///
/// # Panics
///
/// Panics with a rendered report when any watched waveform differs.
pub fn assert_equivalent(a: &SimResult, b: &SimResult, context: &str) {
    let report = equivalence_report(a, b);
    assert!(
        report.is_equivalent(),
        "waveform mismatch ({context}): {report}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::metrics::Metrics;
    use crate::seq::EventDriven;
    use parsim_logic::{Delay, ElementKind, Time, Value};
    use parsim_netlist::Builder;

    #[test]
    fn identical_runs_are_equivalent() {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 2,
                offset: 2,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(20)).watch(clk);
        let a = EventDriven::run(&n, &cfg).unwrap();
        let c = EventDriven::run(&n, &cfg).unwrap();
        let rep = equivalence_report(&a, &c);
        assert!(rep.is_equivalent());
        assert_eq!(rep.compared, 1);
        assert_equivalent(&a, &c, "self");
    }

    #[test]
    fn divergence_is_detected_and_rendered() {
        let mut b = Builder::new();
        let x = b.node("x", 1);
        let n = b.finish().unwrap();
        let mk = |changes: Vec<(Time, parsim_netlist::NodeId, Value)>| {
            crate::waveform::SimResult::from_changes(&n, Time(10), &[x], changes, Metrics::default())
        };
        let a = mk(vec![(Time(1), x, Value::bit(true))]);
        let c = mk(vec![(Time(2), x, Value::bit(true))]);
        let rep = equivalence_report(&a, &c);
        assert!(!rep.is_equivalent());
        assert!(rep.to_string().contains("waveforms differ"));
    }
}
