//! Deterministic fault injection for the parallel engines.
//!
//! A [`FaultPlan`] rides on [`SimConfig`](crate::SimConfig) and names a
//! worker plus an activation ordinal at which that worker either panics
//! or stops making progress. The engines consult the plan at their
//! activation-processing point, so an injected failure lands exactly
//! where a real bug would: mid-protocol, with peers blocked on the dead
//! worker's queues or barriers. The containment tests use this to prove
//! that every failure mode terminates with a structured
//! [`SimError`](crate::SimError) instead of a hang.
//!
//! Always compiled (the per-activation cost is one branch on a cloned
//! `Option`); the `chaos` cargo feature additionally perturbs the queue
//! protocol itself (see `parsim_queue::chaos`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use parsim_checkpoint::{StorageFault, StorageFaultPlan};

/// What an engine worker should do at the fault point.
pub(crate) enum FaultAction {
    /// No fault here; keep processing.
    Continue,
    /// The worker stalled and was then cancelled; exit its loop cleanly.
    Exit,
}

/// A deterministic fault to inject into one worker.
///
/// # Examples
///
/// ```
/// use parsim_core::FaultPlan;
///
/// // Worker 0 panics while processing its 3rd activation.
/// let plan = FaultPlan::panic_at(0, 2);
/// // Worker 1 freezes (stops heartbeating) at its first activation.
/// let stall = FaultPlan::stall_at(1, 0);
/// # let _ = (plan, stall);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// `(worker, nth)`: the worker panics at its `nth` activation
    /// (0-based).
    panic_at: Option<(usize, u64)>,
    /// `(worker, nth)`: the worker stops making progress at its `nth`
    /// activation, holding its in-flight work until cancelled.
    stall_at: Option<(usize, u64)>,
    /// Storage faults injected into the checkpoint write protocol
    /// (consulted by the [`checkpoint`](crate::checkpoint) driver, not by
    /// the engine workers). Empty by default.
    pub storage: StorageFaultPlan,
}

impl FaultPlan {
    /// A plan where `worker` panics at its `nth` (0-based) activation.
    pub fn panic_at(worker: usize, nth: u64) -> FaultPlan {
        FaultPlan {
            panic_at: Some((worker, nth)),
            ..FaultPlan::default()
        }
    }

    /// A plan where `worker` freezes at its `nth` (0-based) activation —
    /// it keeps its in-flight element claimed and stops heartbeating,
    /// exactly like a worker wedged in an infinite loop, until the
    /// watchdog cancels the run.
    pub fn stall_at(worker: usize, nth: u64) -> FaultPlan {
        FaultPlan {
            stall_at: Some((worker, nth)),
            ..FaultPlan::default()
        }
    }

    /// A plan injecting `fault` into the `nth` (0-based) checkpoint
    /// write of the run — the storage-side counterpart of
    /// [`FaultPlan::panic_at`]. Chainable via [`FaultPlan::and_storage_fault`].
    pub fn storage_fault(nth: u64, fault: StorageFault) -> FaultPlan {
        FaultPlan {
            storage: StorageFaultPlan::new().fault_at(nth, fault),
            ..FaultPlan::default()
        }
    }

    /// Adds another storage fault to this plan.
    #[must_use]
    pub fn and_storage_fault(mut self, nth: u64, fault: StorageFault) -> FaultPlan {
        self.storage = self.storage.fault_at(nth, fault);
        self
    }

    /// True if the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.panic_at.is_none() && self.stall_at.is_none() && self.storage.is_empty()
    }

    /// Consults the plan at one activation. `count` is the worker's local
    /// 0-based ordinal of the activation it is about to process.
    ///
    /// Panics if the panic fault matches. Parks until `cancel` if the
    /// stall fault matches, then asks the caller to exit. The engines call
    /// this before touching the claimed element, so a stalled worker
    /// leaves the protocol exactly as a wedged one would.
    pub(crate) fn check(
        &self,
        worker: usize,
        count: u64,
        cancel: &AtomicBool,
    ) -> FaultAction {
        if self.panic_at == Some((worker, count)) {
            panic!("injected fault: worker {worker} panicked at activation {count}");
        }
        if let Some((w, nth)) = self.stall_at {
            if w == worker && count >= nth {
                while !cancel.load(Ordering::Acquire) {
                    std::thread::park_timeout(Duration::from_millis(1));
                }
                return FaultAction::Exit;
            }
        }
        FaultAction::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_always_continues() {
        let cancel = AtomicBool::new(false);
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        for w in 0..4 {
            for c in 0..10 {
                assert!(matches!(plan.check(w, c, &cancel), FaultAction::Continue));
            }
        }
    }

    #[test]
    #[should_panic(expected = "injected fault: worker 1 panicked at activation 2")]
    fn panic_fault_fires_at_exact_ordinal() {
        let cancel = AtomicBool::new(false);
        let plan = FaultPlan::panic_at(1, 2);
        // Wrong worker / wrong ordinal: no fault.
        let _ = plan.check(0, 2, &cancel);
        let _ = plan.check(1, 1, &cancel);
        let _ = plan.check(1, 2, &cancel); // boom
    }

    #[test]
    fn stall_fault_parks_until_cancel() {
        let cancel = AtomicBool::new(true); // pre-cancelled: returns at once
        let plan = FaultPlan::stall_at(0, 3);
        assert!(matches!(plan.check(0, 2, &cancel), FaultAction::Continue));
        assert!(matches!(plan.check(0, 3, &cancel), FaultAction::Exit));
        assert!(matches!(plan.check(0, 9, &cancel), FaultAction::Exit));
        assert!(matches!(plan.check(1, 3, &cancel), FaultAction::Continue));
    }
}
