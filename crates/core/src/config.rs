//! Simulation run configuration.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use parsim_logic::Time;
use parsim_netlist::partition::Partition;
use parsim_netlist::{Netlist, NodeId};
use parsim_trace::TraceConfig;

use crate::error::SimError;
use crate::fault::FaultPlan;

/// Periodic crash-consistent checkpointing (see the
/// [`checkpoint`](crate::checkpoint) module).
///
/// Carried on [`SimConfig`] and consumed by
/// [`checkpoint::run`](crate::checkpoint::run) /
/// [`checkpoint::resume`](crate::checkpoint::resume); the plain
/// per-engine `run` entry points ignore it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Directory of rolling snapshot files (created if absent).
    pub dir: PathBuf,
    /// Snapshot every this many simulated ticks. Zero (the default until
    /// [`SimConfig::with_checkpoint_every`] is called) is invalid.
    pub every: u64,
    /// How many committed snapshots to retain; clamped to at least 2 so
    /// a torn newest file always leaves a fallback.
    pub keep: usize,
}

/// Step-boundary synchronization used by the compiled batch kernel.
///
/// Both modes produce bit-identical waveforms; they differ only in who
/// waits for whom between the apply and evaluate phases of a step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum BatchSync {
    /// Two global [`SpinBarrier`](parsim_queue::SpinBarrier) waits per
    /// step: every worker waits for every other worker (the ablation
    /// baseline, and the pre-BSP behavior).
    Barrier,
    /// Static BSP handoff ([`parsim_queue::StepHandoff`]): each worker
    /// waits only on the workers that actually produce the node slots it
    /// reads (and on the consumers of its own slots before overwriting
    /// them). The default.
    #[default]
    Neighbor,
}

impl BatchSync {
    /// Stable lowercase tag used in metrics and benchmark JSON.
    pub fn name(self) -> &'static str {
        match self {
            BatchSync::Barrier => "barrier",
            BatchSync::Neighbor => "neighbor",
        }
    }
}

/// Configuration shared by all four engines.
///
/// Built fluently:
///
/// ```
/// use parsim_core::SimConfig;
/// use parsim_logic::Time;
/// use parsim_netlist::NodeId;
///
/// let cfg = SimConfig::new(Time(1000))
///     .watch(NodeId::from_index(0))
///     .threads(4);
/// assert_eq!(cfg.threads, 4);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulate through this time (inclusive).
    pub end_time: Time,
    /// Nodes whose waveforms are recorded.
    pub watch: Vec<NodeId>,
    /// Worker threads for the parallel engines (ignored by
    /// [`EventDriven`](crate::EventDriven)).
    pub threads: usize,
    /// Enable the asynchronous engine's controlling-value lookahead
    /// (§4's AND-gate optimization). On by default; never changes
    /// waveforms, only validity propagation.
    pub lookahead: bool,
    /// Enable the asynchronous engine's concurrent garbage collection of
    /// consumed events. On by default; disable only to measure the paper's
    /// "massive state storage" problem.
    pub gc: bool,
    /// Use the timing-wheel calendar in the sequential engine (the 1980s
    /// data structure) instead of the default `BTreeMap`. Waveforms are
    /// identical either way.
    pub timing_wheel: bool,
    /// Hard wall-time budget for the whole run. When exceeded, the
    /// watchdog cancels all workers and the engine returns
    /// [`SimError::DeadlineExceeded`]. `None` (the default) disables it.
    pub deadline: Option<Duration>,
    /// Progress watchdog: if no worker processes an activation for this
    /// long, the run is cancelled and the engine returns
    /// [`SimError::Stalled`] with a diagnostic snapshot. `None` (the
    /// default) disables it.
    pub stall_timeout: Option<Duration>,
    /// Deterministic fault injection (see [`FaultPlan`]). Empty by
    /// default.
    pub fault: FaultPlan,
    /// Compiled-mode activity gating: skip kernel blocks whose inputs did
    /// not change since their last evaluation. On by default; never
    /// changes waveforms, only the amount of redundant work (and the
    /// `evaluations` metric). Disable with
    /// [`SimConfig::without_activity_gating`] to reproduce the paper's
    /// literal "every element is executed every time step" behavior.
    pub activity_gating: bool,
    /// Asynchronous-engine local-first scheduling: each worker owns a
    /// bounded LIFO deque checked before its grid column, and foreign
    /// fan-out is accumulated into batched grid sends. On by default;
    /// never changes waveforms, only where activations execute. Disable
    /// with [`SimConfig::without_local_queue`] to reproduce the pure
    /// hash-scattered grid scheduling.
    pub local_queue: bool,
    /// Explicit element→processor ownership for the asynchronous engine's
    /// locality-aware scheduler. `None` (the default) computes a fan-out
    /// cone-clustering partition
    /// ([`parsim_netlist::partition::cone_cluster`]) at run start.
    /// Ignored when [`SimConfig::local_queue`] is off.
    pub partition: Option<Partition>,
    /// Per-worker event tracing (see [`parsim_trace`]). `None` (the
    /// default) records nothing. Recording additionally requires the
    /// `trace` cargo feature: without it the hooks are compiled-out no-ops
    /// and [`SimResult::trace`](crate::SimResult) stays `None` even when
    /// this is set. Never changes waveforms.
    pub trace: Option<TraceConfig>,
    /// Periodic crash-consistent checkpointing. `None` (the default)
    /// disables it; set with [`SimConfig::with_checkpoint_dir`] and
    /// [`SimConfig::with_checkpoint_every`], then drive the run through
    /// [`checkpoint::run`](crate::checkpoint::run). Never changes
    /// waveforms: a checkpointed (or resumed) run is bit-identical to an
    /// uninterrupted one.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Forced SIMD lane width (in stimulus lanes per word group) for the
    /// compiled batch kernel: one of 64, 128, 256, 512. `None` (the
    /// default) uses the widest width the CPU supports at runtime (see
    /// [`parsim_logic::wide::native_lane_width`]); the
    /// `PARSIM_FORCE_LANE_WIDTH` environment variable overrides the
    /// default when this is unset. Never changes waveforms, only how many
    /// lanes each kernel invocation carries.
    pub lane_width: Option<usize>,
    /// Step-boundary synchronization for the compiled batch kernel (see
    /// [`BatchSync`]). Defaults to [`BatchSync::Neighbor`]. Never changes
    /// waveforms.
    pub batch_sync: BatchSync,
    /// Per-worker slab arenas with epoch-based reclamation for the
    /// asynchronous engine's hot-path allocations (behavior chunks, SPSC
    /// segments, SoA scheduling state). On by default; the
    /// `PARSIM_NO_ARENA` environment variable flips the default off and
    /// [`SimConfig::without_arena`] disables it per run (the ablation:
    /// every chunk becomes one global-allocator call). Never changes
    /// waveforms.
    pub arena: bool,
    /// In-run telemetry sampling period. `None` (the default) leaves the
    /// always-on metrics registry running but takes no periodic samples;
    /// `Some(p)` makes the watchdog/monitor thread snapshot the registry
    /// every `p` into a bounded flight-recorder ring, returned as
    /// [`SimResult::telemetry`](crate::SimResult) sample series. Never
    /// changes waveforms.
    pub sample_every: Option<Duration>,
    /// Flight-recorder ring capacity, in samples (oldest dropped first).
    pub sample_capacity: usize,
    /// Shared slot the engine installs its live telemetry context into at
    /// run start, so another thread can watch the registry mid-run (e.g.
    /// `psim --live-stats`). `None` (the default) skips installation.
    pub telemetry_hub: Option<Arc<parsim_telemetry::Hub>>,
}

impl SimConfig {
    /// Creates a configuration running through `end_time` with one thread
    /// and no watched nodes.
    pub fn new(end_time: Time) -> SimConfig {
        SimConfig {
            end_time,
            watch: Vec::new(),
            threads: 1,
            lookahead: true,
            gc: true,
            timing_wheel: false,
            deadline: None,
            stall_timeout: None,
            fault: FaultPlan::default(),
            activity_gating: true,
            local_queue: true,
            partition: None,
            trace: None,
            checkpoint: None,
            lane_width: None,
            batch_sync: BatchSync::default(),
            arena: std::env::var_os("PARSIM_NO_ARENA").is_none(),
            sample_every: None,
            sample_capacity: parsim_telemetry::DEFAULT_RING_CAPACITY,
            telemetry_hub: None,
        }
    }

    /// Adds one node to the watch list.
    #[must_use]
    pub fn watch(mut self, node: NodeId) -> SimConfig {
        self.watch.push(node);
        self
    }

    /// Adds many nodes to the watch list.
    #[must_use]
    pub fn watch_all(mut self, nodes: impl IntoIterator<Item = NodeId>) -> SimConfig {
        self.watch.extend(nodes);
        self
    }

    /// Adds nodes to the watch list by name.
    ///
    /// # Panics
    ///
    /// Panics if any name is unknown in `netlist` — watching a
    /// nonexistent node is always a programming error. Use
    /// [`SimConfig::try_watch_named`] for a typed error instead.
    #[must_use]
    pub fn watch_named<'a>(
        self,
        netlist: &Netlist,
        names: impl IntoIterator<Item = &'a str>,
    ) -> SimConfig {
        match self.try_watch_named(netlist, names) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// Adds nodes to the watch list by name, reporting an unknown name as
    /// a typed error (the non-panicking form of [`SimConfig::watch_named`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownNode`] naming the first unresolved node.
    pub fn try_watch_named<'a>(
        mut self,
        netlist: &Netlist,
        names: impl IntoIterator<Item = &'a str>,
    ) -> Result<SimConfig, SimError> {
        for name in names {
            let id = netlist
                .node_by_name(name)
                .ok_or_else(|| SimError::UnknownNode {
                    name: name.to_string(),
                })?;
            self.watch.push(id);
        }
        Ok(self)
    }

    /// Sets the worker thread count for parallel engines.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> SimConfig {
        assert!(threads > 0, "at least one thread required");
        self.threads = threads;
        self
    }

    /// Disables the asynchronous engine's controlling-value lookahead.
    #[must_use]
    pub fn without_lookahead(mut self) -> SimConfig {
        self.lookahead = false;
        self
    }

    /// Disables the asynchronous engine's event garbage collection.
    #[must_use]
    pub fn without_gc(mut self) -> SimConfig {
        self.gc = false;
        self
    }

    /// Selects the timing-wheel calendar for the sequential engine.
    #[must_use]
    pub fn with_timing_wheel(mut self) -> SimConfig {
        self.timing_wheel = true;
        self
    }

    /// Sets a hard wall-time budget for the run.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> SimConfig {
        self.deadline = Some(deadline);
        self
    }

    /// Enables the progress watchdog: cancel the run if no worker makes
    /// progress for `timeout`.
    #[must_use]
    pub fn with_stall_timeout(mut self, timeout: Duration) -> SimConfig {
        self.stall_timeout = Some(timeout);
        self
    }

    /// Injects a deterministic fault (testing aid; see [`FaultPlan`]).
    #[must_use]
    pub fn with_fault(mut self, fault: FaultPlan) -> SimConfig {
        self.fault = fault;
        self
    }

    /// Disables compiled-mode activity gating, re-evaluating every element
    /// every step like the paper's §3 engine.
    #[must_use]
    pub fn without_activity_gating(mut self) -> SimConfig {
        self.activity_gating = false;
        self
    }

    /// Disables the asynchronous engine's local-first scheduling,
    /// reverting to the pure hash-scattered grid (the ablation baseline:
    /// every activation — including an element's own fan-out — pays a
    /// cross-processor message).
    #[must_use]
    pub fn without_local_queue(mut self) -> SimConfig {
        self.local_queue = false;
        self
    }

    /// Disables the asynchronous engine's per-worker slab arenas,
    /// reverting every behavior-chunk allocation to the global allocator
    /// (the `BENCH_5.json` ablation baseline).
    #[must_use]
    pub fn without_arena(mut self) -> SimConfig {
        self.arena = false;
        self
    }

    /// Supplies an explicit element→processor partition for the
    /// asynchronous engine's locality-aware scheduler (ablation /
    /// experimentation knob; the default is a fan-out cone clustering
    /// computed at run start).
    ///
    /// The partition's part count must equal the configured thread count
    /// when the run starts, or the asynchronous engine panics.
    #[must_use]
    pub fn with_partition(mut self, partition: Partition) -> SimConfig {
        self.partition = Some(partition);
        self
    }

    /// Enables per-worker event tracing for this run; the drained trace is
    /// returned in [`SimResult::trace`](crate::SimResult). Requires the
    /// `trace` cargo feature for events to actually be recorded.
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> SimConfig {
        self.trace = Some(trace);
        self
    }

    /// Sets the checkpoint directory (snapshots land here as rolling
    /// `ckpt-*.psnap` files). Pair with [`SimConfig::with_checkpoint_every`].
    #[must_use]
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> SimConfig {
        let policy = self.checkpoint.get_or_insert_with(CheckpointPolicy::default);
        policy.dir = dir.into();
        if policy.keep == 0 {
            policy.keep = 2;
        }
        self
    }

    /// Checkpoints every `ticks` simulated ticks. The interval must be
    /// nonzero and a directory must also be set (the driver reports
    /// [`CheckpointError::BadPolicy`](parsim_checkpoint::CheckpointError)
    /// otherwise).
    #[must_use]
    pub fn with_checkpoint_every(mut self, ticks: u64) -> SimConfig {
        let policy = self.checkpoint.get_or_insert_with(CheckpointPolicy::default);
        policy.every = ticks;
        if policy.keep == 0 {
            policy.keep = 2;
        }
        self
    }

    /// Retains the newest `keep` snapshots (clamped to at least 2).
    #[must_use]
    pub fn with_checkpoint_keep(mut self, keep: usize) -> SimConfig {
        let policy = self.checkpoint.get_or_insert_with(CheckpointPolicy::default);
        policy.keep = keep;
        self
    }

    /// Forces the compiled batch kernel's SIMD lane width (ablation /
    /// benchmarking knob; the default auto-detects the widest supported
    /// width).
    ///
    /// # Panics
    ///
    /// Panics if `width` is not one of 64, 128, 256, 512.
    #[must_use]
    pub fn with_lane_width(mut self, width: usize) -> SimConfig {
        assert!(
            parsim_logic::wide::LANE_WIDTHS.contains(&width),
            "lane width must be one of 64, 128, 256, 512 (got {width})"
        );
        self.lane_width = Some(width);
        self
    }

    /// Selects the compiled batch kernel's step synchronization mode
    /// (ablation knob; [`BatchSync::Neighbor`] is the default).
    #[must_use]
    pub fn with_batch_sync(mut self, sync: BatchSync) -> SimConfig {
        self.batch_sync = sync;
        self
    }

    /// Arms the in-run telemetry sampler: the monitor thread snapshots
    /// the metrics registry every `period` into the flight-recorder ring
    /// returned as [`SimResult::telemetry`](crate::SimResult) samples.
    #[must_use]
    pub fn sample_every(mut self, period: Duration) -> SimConfig {
        self.sample_every = Some(period);
        self
    }

    /// Bounds the flight-recorder ring at `samples` entries (oldest
    /// dropped first; clamped to at least 2).
    #[must_use]
    pub fn with_sample_capacity(mut self, samples: usize) -> SimConfig {
        self.sample_capacity = samples.max(2);
        self
    }

    /// Installs the run's live telemetry context into `hub` at run start,
    /// for mid-run observation from another thread.
    #[must_use]
    pub fn with_telemetry_hub(mut self, hub: Arc<parsim_telemetry::Hub>) -> SimConfig {
        self.telemetry_hub = Some(hub);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let cfg = SimConfig::new(Time(5))
            .watch(n0)
            .watch_all([n1])
            .threads(3)
            .without_lookahead()
            .without_gc()
            .with_timing_wheel()
            .without_activity_gating()
            .without_local_queue()
            .without_arena();
        assert_eq!(cfg.end_time, Time(5));
        assert_eq!(cfg.watch, vec![n0, n1]);
        assert_eq!(cfg.threads, 3);
        assert!(!cfg.lookahead);
        assert!(!cfg.gc);
        assert!(cfg.timing_wheel);
        assert!(!cfg.activity_gating);
        assert!(!cfg.local_queue);
        assert!(!cfg.arena);
        // The default honors PARSIM_NO_ARENA; unset in the test env.
        assert!(SimConfig::new(Time(5)).arena);
        assert!(SimConfig::new(Time(5)).activity_gating);
        assert!(SimConfig::new(Time(5)).local_queue);
        assert!(SimConfig::new(Time(5)).partition.is_none());
        assert!(SimConfig::new(Time(5)).trace.is_none());
        let traced = SimConfig::new(Time(5)).with_trace(TraceConfig::default());
        assert!(traced.trace.is_some());
        assert!(SimConfig::new(Time(5)).lane_width.is_none());
        assert_eq!(SimConfig::new(Time(5)).batch_sync, BatchSync::Neighbor);
        let wide = SimConfig::new(Time(5))
            .with_lane_width(256)
            .with_batch_sync(BatchSync::Barrier);
        assert_eq!(wide.lane_width, Some(256));
        assert_eq!(wide.batch_sync, BatchSync::Barrier);
        assert_eq!(BatchSync::Barrier.name(), "barrier");
        assert_eq!(BatchSync::Neighbor.name(), "neighbor");
    }

    #[test]
    #[should_panic(expected = "lane width must be one of")]
    fn bad_lane_width_rejected() {
        let _ = SimConfig::new(Time(1)).with_lane_width(96);
    }

    #[test]
    fn explicit_partition_chains() {
        let p = parsim_netlist::partition::round_robin(6, 2);
        let cfg = SimConfig::new(Time(5)).threads(2).with_partition(p.clone());
        assert_eq!(cfg.partition, Some(p));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = SimConfig::new(Time(1)).threads(0);
    }

    #[test]
    fn watch_named_resolves() {
        let mut b = parsim_netlist::Builder::new();
        let a = b.node("alpha", 1);
        let _ = b.node("beta", 1);
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(1)).watch_named(&n, ["alpha"]);
        assert_eq!(cfg.watch, vec![a]);
    }

    #[test]
    fn try_watch_named_reports_unknown_nodes() {
        let n = parsim_netlist::Builder::new().finish().unwrap();
        let err = SimConfig::new(Time(1))
            .try_watch_named(&n, ["ghost"])
            .unwrap_err();
        assert!(matches!(err, SimError::UnknownNode { ref name } if name == "ghost"));
    }

    #[test]
    fn containment_knobs_chain() {
        let cfg = SimConfig::new(Time(5))
            .with_deadline(Duration::from_secs(2))
            .with_stall_timeout(Duration::from_millis(100))
            .with_fault(FaultPlan::panic_at(0, 3));
        assert_eq!(cfg.deadline, Some(Duration::from_secs(2)));
        assert_eq!(cfg.stall_timeout, Some(Duration::from_millis(100)));
        assert!(!cfg.fault.is_empty());
        assert!(SimConfig::new(Time(5)).fault.is_empty());
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn watch_named_rejects_unknown() {
        let n = parsim_netlist::Builder::new().finish().unwrap();
        let _ = SimConfig::new(Time(1)).watch_named(&n, ["ghost"]);
    }
}
