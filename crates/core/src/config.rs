//! Simulation run configuration.

use parsim_logic::Time;
use parsim_netlist::{Netlist, NodeId};

/// Configuration shared by all four engines.
///
/// Built fluently:
///
/// ```
/// use parsim_core::SimConfig;
/// use parsim_logic::Time;
/// use parsim_netlist::NodeId;
///
/// let cfg = SimConfig::new(Time(1000))
///     .watch(NodeId::from_index(0))
///     .threads(4);
/// assert_eq!(cfg.threads, 4);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulate through this time (inclusive).
    pub end_time: Time,
    /// Nodes whose waveforms are recorded.
    pub watch: Vec<NodeId>,
    /// Worker threads for the parallel engines (ignored by
    /// [`EventDriven`](crate::EventDriven)).
    pub threads: usize,
    /// Enable the asynchronous engine's controlling-value lookahead
    /// (§4's AND-gate optimization). On by default; never changes
    /// waveforms, only validity propagation.
    pub lookahead: bool,
    /// Enable the asynchronous engine's concurrent garbage collection of
    /// consumed events. On by default; disable only to measure the paper's
    /// "massive state storage" problem.
    pub gc: bool,
    /// Use the timing-wheel calendar in the sequential engine (the 1980s
    /// data structure) instead of the default `BTreeMap`. Waveforms are
    /// identical either way.
    pub timing_wheel: bool,
}

impl SimConfig {
    /// Creates a configuration running through `end_time` with one thread
    /// and no watched nodes.
    pub fn new(end_time: Time) -> SimConfig {
        SimConfig {
            end_time,
            watch: Vec::new(),
            threads: 1,
            lookahead: true,
            gc: true,
            timing_wheel: false,
        }
    }

    /// Adds one node to the watch list.
    #[must_use]
    pub fn watch(mut self, node: NodeId) -> SimConfig {
        self.watch.push(node);
        self
    }

    /// Adds many nodes to the watch list.
    #[must_use]
    pub fn watch_all(mut self, nodes: impl IntoIterator<Item = NodeId>) -> SimConfig {
        self.watch.extend(nodes);
        self
    }

    /// Adds nodes to the watch list by name.
    ///
    /// # Panics
    ///
    /// Panics if any name is unknown in `netlist` — watching a
    /// nonexistent node is always a programming error.
    #[must_use]
    pub fn watch_named<'a>(
        mut self,
        netlist: &Netlist,
        names: impl IntoIterator<Item = &'a str>,
    ) -> SimConfig {
        for name in names {
            let id = netlist
                .node_by_name(name)
                .unwrap_or_else(|| panic!("unknown node `{name}`"));
            self.watch.push(id);
        }
        self
    }

    /// Sets the worker thread count for parallel engines.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> SimConfig {
        assert!(threads > 0, "at least one thread required");
        self.threads = threads;
        self
    }

    /// Disables the asynchronous engine's controlling-value lookahead.
    #[must_use]
    pub fn without_lookahead(mut self) -> SimConfig {
        self.lookahead = false;
        self
    }

    /// Disables the asynchronous engine's event garbage collection.
    #[must_use]
    pub fn without_gc(mut self) -> SimConfig {
        self.gc = false;
        self
    }

    /// Selects the timing-wheel calendar for the sequential engine.
    #[must_use]
    pub fn with_timing_wheel(mut self) -> SimConfig {
        self.timing_wheel = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let n0 = NodeId::from_index(0);
        let n1 = NodeId::from_index(1);
        let cfg = SimConfig::new(Time(5))
            .watch(n0)
            .watch_all([n1])
            .threads(3)
            .without_lookahead()
            .without_gc()
            .with_timing_wheel();
        assert_eq!(cfg.end_time, Time(5));
        assert_eq!(cfg.watch, vec![n0, n1]);
        assert_eq!(cfg.threads, 3);
        assert!(!cfg.lookahead);
        assert!(!cfg.gc);
        assert!(cfg.timing_wheel);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = SimConfig::new(Time(1)).threads(0);
    }

    #[test]
    fn watch_named_resolves() {
        let mut b = parsim_netlist::Builder::new();
        let a = b.node("alpha", 1);
        let _ = b.node("beta", 1);
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(1)).watch_named(&n, ["alpha"]);
        assert_eq!(cfg.watch, vec![a]);
    }

    #[test]
    #[should_panic(expected = "unknown node")]
    fn watch_named_rejects_unknown() {
        let n = parsim_netlist::Builder::new().finish().unwrap();
        let _ = SimConfig::new(Time(1)).watch_named(&n, ["ghost"]);
    }
}
