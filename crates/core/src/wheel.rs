//! A timing wheel — the 1980s event-driven simulator's calendar.
//!
//! Event-driven simulators of the paper's era kept pending events in a
//! circular array of time buckets (a "timing wheel") rather than a
//! comparison-based priority queue: scheduling and bucket removal are
//! O(1) when delays are bounded, which they are in gate-level simulation.
//! Events beyond the wheel's horizon overflow into a sorted map and are
//! re-homed as the wheel turns.
//!
//! [`EventDriven`](crate::EventDriven) uses a `BTreeMap` calendar by
//! default (simpler to audit as the correctness oracle) and this wheel
//! when [`SimConfig::timing_wheel`](crate::SimConfig) is set; both
//! produce identical waveforms, and the `engines` benchmark compares
//! their wall-clock cost.

use std::collections::BTreeMap;

/// A timing wheel over items of type `T`.
///
/// # Examples
///
/// ```
/// use parsim_core::TimingWheel;
///
/// let mut wheel: TimingWheel<&str> = TimingWheel::new(8);
/// wheel.schedule(3, "a");
/// wheel.schedule(100, "far"); // beyond the horizon: overflows
/// wheel.schedule(3, "b");
/// assert_eq!(wheel.peek_time(), Some(3));
/// assert_eq!(wheel.take_next(), Some((3, vec!["a", "b"])));
/// assert_eq!(wheel.take_next(), Some((100, vec!["far"])));
/// assert_eq!(wheel.take_next(), None);
/// ```
#[derive(Debug)]
pub struct TimingWheel<T> {
    /// Ring of buckets; slot `t % slots.len()` may hold events for any
    /// time congruent to it, so buckets are tagged with their time.
    slots: Vec<(u64, Vec<T>)>,
    /// All wheel times are in `[cursor, cursor + slots.len())`.
    cursor: u64,
    /// Items in the wheel (not counting overflow).
    live: usize,
    /// Events beyond the horizon.
    overflow: BTreeMap<u64, Vec<T>>,
}

impl<T> TimingWheel<T> {
    /// Creates a wheel spanning `horizon` ticks (rounded up to a power of
    /// two, minimum 8).
    ///
    /// The horizon should comfortably exceed the circuit's largest element
    /// delay; anything farther simply overflows, at `BTreeMap` cost.
    pub fn new(horizon: u64) -> TimingWheel<T> {
        let size = horizon.max(8).next_power_of_two() as usize;
        TimingWheel {
            slots: (0..size).map(|_| (0, Vec::new())).collect(),
            cursor: 0,
            live: 0,
            overflow: BTreeMap::new(),
        }
    }

    /// True if no events are pending anywhere.
    pub fn is_empty(&self) -> bool {
        self.live == 0 && self.overflow.is_empty()
    }

    /// Schedules an item at absolute time `t`.
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the wheel's current time (the engines only
    /// schedule into the future).
    pub fn schedule(&mut self, t: u64, item: T) {
        assert!(t >= self.cursor, "scheduling into the past");
        let span = self.slots.len() as u64;
        if t >= self.cursor + span {
            self.overflow.entry(t).or_default().push(item);
            return;
        }
        let idx = (t % span) as usize;
        let slot = &mut self.slots[idx];
        if slot.1.is_empty() {
            slot.0 = t;
        }
        debug_assert_eq!(slot.0, t, "bucket collision within horizon");
        slot.1.push(item);
        self.live += 1;
    }

    /// The earliest pending event time, if any.
    pub fn peek_time(&self) -> Option<u64> {
        let span = self.slots.len() as u64;
        let wheel_min = if self.live > 0 {
            (self.cursor..self.cursor + span)
                .find(|&t| {
                    let slot = &self.slots[(t % span) as usize];
                    !slot.1.is_empty() && slot.0 == t
                })
        } else {
            None
        };
        let over_min = self.overflow.keys().next().copied();
        match (wheel_min, over_min) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Removes and returns the earliest bucket `(time, items)`, advancing
    /// the wheel and re-homing any overflow that enters the horizon.
    pub fn take_next(&mut self) -> Option<(u64, Vec<T>)> {
        let t = self.peek_time()?;
        let span = self.slots.len() as u64;
        // Advance the cursor; anything before `t` is empty by
        // construction.
        self.cursor = t;
        let mut items = {
            let slot = &mut self.slots[(t % span) as usize];
            if !slot.1.is_empty() && slot.0 == t {
                self.live -= slot.1.len();
                std::mem::take(&mut slot.1)
            } else {
                Vec::new()
            }
        };
        if let Some(over) = self.overflow.remove(&t) {
            items.extend(over);
        }
        // Re-home overflow that now fits in the horizon window.
        let horizon_end = self.cursor + span;
        let rehome: Vec<u64> = self
            .overflow
            .range(..horizon_end)
            .map(|(&k, _)| k)
            .collect();
        for k in rehome {
            if let Some(v) = self.overflow.remove(&k) {
                for item in v {
                    self.schedule(k, item);
                }
            }
        }
        Some((t, items))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_delivery_with_gaps() {
        let mut w: TimingWheel<u32> = TimingWheel::new(16);
        for (t, v) in [(5u64, 1u32), (2, 2), (5, 3), (31, 4), (2, 5)] {
            w.schedule(t, v);
        }
        assert_eq!(w.take_next(), Some((2, vec![2, 5])));
        assert_eq!(w.take_next(), Some((5, vec![1, 3])));
        assert_eq!(w.take_next(), Some((31, vec![4])));
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_rehoming() {
        let mut w: TimingWheel<u32> = TimingWheel::new(8);
        w.schedule(0, 0);
        w.schedule(7, 7);
        w.schedule(20, 20); // beyond horizon 8
        w.schedule(100, 100);
        assert_eq!(w.take_next(), Some((0, vec![0])));
        assert_eq!(w.take_next(), Some((7, vec![7])));
        // 20 enters the horizon once the cursor reaches 7 (window 7..15)?
        // It re-homes when the window covers it; either path delivers in
        // order.
        assert_eq!(w.take_next(), Some((20, vec![20])));
        assert_eq!(w.take_next(), Some((100, vec![100])));
        assert!(w.take_next().is_none());
    }

    #[test]
    fn schedule_at_current_time_works() {
        let mut w: TimingWheel<u32> = TimingWheel::new(8);
        w.schedule(3, 1);
        assert_eq!(w.peek_time(), Some(3));
        let (t, items) = w.take_next().unwrap();
        assert_eq!((t, items), (3, vec![1]));
        // After taking t=3 the wheel can still accept t=3.. events? No:
        // engines schedule strictly into the future of the step being
        // processed; t=4 is the earliest legal.
        w.schedule(4, 2);
        assert_eq!(w.take_next(), Some((4, vec![2])));
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn past_scheduling_panics() {
        let mut w: TimingWheel<u32> = TimingWheel::new(8);
        w.schedule(10, 1);
        let _ = w.take_next();
        w.schedule(5, 2);
    }

    /// Model check against a BTreeMap calendar over pseudo-random
    /// schedules.
    #[test]
    fn matches_btreemap_model() {
        let mut state = 0x1234_5678_u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..50 {
            let mut wheel: TimingWheel<u64> = TimingWheel::new(1 << (trial % 6 + 3));
            let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            let mut now = 0u64;
            let mut next_item = 0u64;
            for _ in 0..400 {
                if rng() % 3 != 0 {
                    let t = now + 1 + rng() % 40;
                    wheel.schedule(t, next_item);
                    model.entry(t).or_default().push(next_item);
                    next_item += 1;
                } else if let Some((&mt, _)) = model.first_key_value() {
                    let expected = model.remove(&mt).expect("key");
                    let (t, items) = wheel.take_next().expect("wheel nonempty");
                    assert_eq!((t, &items), (mt, &expected), "trial {trial}");
                    now = t;
                } else {
                    assert!(wheel.take_next().is_none());
                }
            }
        }
    }
}
