//! Execution metrics: event counts, per-thread utilization, and the
//! events-per-time-step distribution the paper's parallelism arguments
//! rest on.

use std::fmt;
use std::time::Duration;

/// Histogram of node-change events per active time step.
///
/// The paper (§4, citing the authors' DAC 1987 statistics paper) observes
/// that "even for circuits with 5000 gates, there can be less than 5
/// events available for evaluation about 50% of the time" — this histogram
/// lets the experiments verify the claim on our circuits.
///
/// # Examples
///
/// ```
/// use parsim_core::EventsPerStepHistogram;
///
/// let mut h = EventsPerStepHistogram::new();
/// h.record(3);
/// h.record(700);
/// assert_eq!(h.steps(), 2);
/// assert!((h.fraction_at_most(5) - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EventsPerStepHistogram {
    /// Bucket upper bounds (inclusive); the last bucket is unbounded.
    counts: Vec<u64>,
    total_steps: u64,
    total_events: u64,
    max: u64,
}

impl Default for EventsPerStepHistogram {
    /// Same as [`EventsPerStepHistogram::new`]: the bucket vector is
    /// always allocated, so `record` and `merge` work on a
    /// default-constructed histogram.
    fn default() -> EventsPerStepHistogram {
        EventsPerStepHistogram::new()
    }
}

/// Inclusive upper bounds of the histogram buckets; the final implicit
/// bucket collects everything larger.
const BOUNDS: &[u64] = &[1, 2, 5, 10, 20, 50, 100, 200, 500, 1000];

impl EventsPerStepHistogram {
    /// Creates an empty histogram.
    pub fn new() -> EventsPerStepHistogram {
        EventsPerStepHistogram {
            counts: vec![0; BOUNDS.len() + 1],
            total_steps: 0,
            total_events: 0,
            max: 0,
        }
    }

    /// Records one active time step carrying `events` node changes.
    pub fn record(&mut self, events: u64) {
        let idx = BOUNDS
            .iter()
            .position(|&b| events <= b)
            .unwrap_or(BOUNDS.len());
        self.counts[idx] += 1;
        self.total_steps += 1;
        self.total_events += events;
        self.max = self.max.max(events);
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &EventsPerStepHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total_steps += other.total_steps;
        self.total_events += other.total_events;
        self.max = self.max.max(other.max);
    }

    /// Number of active time steps recorded.
    pub fn steps(&self) -> u64 {
        self.total_steps
    }

    /// Total events across all steps.
    pub fn events(&self) -> u64 {
        self.total_events
    }

    /// Mean events per active step.
    pub fn mean(&self) -> f64 {
        if self.total_steps == 0 {
            0.0
        } else {
            self.total_events as f64 / self.total_steps as f64
        }
    }

    /// Largest single-step event count.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Fraction of steps with at most `k` events (k must be one of the
    /// bucket bounds for an exact answer; otherwise the nearest bound not
    /// exceeding `k` is used).
    pub fn fraction_at_most(&self, k: u64) -> f64 {
        if self.total_steps == 0 {
            return 0.0;
        }
        let upto = BOUNDS.iter().take_while(|&&b| b <= k).count();
        let sum: u64 = self.counts[..upto].iter().sum();
        sum as f64 / self.total_steps as f64
    }

    /// Events-per-step value at percentile `p` (0.0..=1.0), resolved to
    /// bucket granularity: the smallest bucket bound whose cumulative step
    /// share reaches `p`. Steps landing in the unbounded top bucket report
    /// the observed [`EventsPerStepHistogram::max`]. Returns 0 for an
    /// empty histogram.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.total_steps == 0 {
            return 0;
        }
        let target = ((p.clamp(0.0, 1.0) * self.total_steps as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            cum += count;
            if cum >= target {
                return if i < BOUNDS.len() { BOUNDS[i] } else { self.max };
            }
        }
        self.max
    }

    /// Median events per active step (bucket-resolution).
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile events per active step (bucket-resolution).
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile events per active step (bucket-resolution).
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }
}

impl fmt::Display for EventsPerStepHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} steps, {} events (mean {:.1}/step, max {})",
            self.total_steps,
            self.total_events,
            self.mean(),
            self.max
        )?;
        let mut lo = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            let label = if i < BOUNDS.len() {
                format!("{}..={}", lo + u64::from(i > 0), BOUNDS[i])
            } else {
                format!(">{}", BOUNDS[BOUNDS.len() - 1])
            };
            if count > 0 {
                writeln!(f, "  {label:>9}: {count}")?;
            }
            if i < BOUNDS.len() {
                lo = BOUNDS[i];
            }
        }
        Ok(())
    }
}

/// Scheduling-locality counters for the asynchronous engine's
/// locality-aware scheduler (zero for the other engines).
///
/// # Examples
///
/// ```
/// use parsim_core::LocalityMetrics;
///
/// let m = LocalityMetrics {
///     local_hits: 30,
///     grid_sends: 10,
///     grid_batches: 2,
///     ..Default::default()
/// };
/// assert!((m.locality_ratio() - 0.75).abs() < 1e-9);
/// assert!((m.batch_occupancy() - 5.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalityMetrics {
    /// Activations scheduled through a worker's own local LIFO deque
    /// (no grid message; includes the initial owner placement).
    pub local_hits: u64,
    /// Element ids sent across the SPSC grid (cross-processor hops, plus
    /// local-deque overflow routed back through the grid).
    pub grid_sends: u64,
    /// Grid slots used to carry those ids; `grid_sends / grid_batches`
    /// is the mean batch occupancy.
    pub grid_batches: u64,
    /// Activations executed by a worker other than the element's owner
    /// (zero under owner routing; counts scatter traffic in the
    /// `without_local_queue` ablation).
    pub steals: u64,
    /// Idle-branch snoozes that reached the bounded-park stage of the
    /// truncated exponential backoff.
    pub backoff_parks: u64,
}

impl LocalityMetrics {
    /// Merges another set of counters into this one.
    pub fn merge(&mut self, other: &LocalityMetrics) {
        self.local_hits += other.local_hits;
        self.grid_sends += other.grid_sends;
        self.grid_batches += other.grid_batches;
        self.steals += other.steals;
        self.backoff_parks += other.backoff_parks;
    }

    /// Fraction of scheduled activations that stayed processor-local:
    /// `local_hits / (local_hits + grid_sends)`. Returns 0.0 when nothing
    /// was scheduled.
    pub fn locality_ratio(&self) -> f64 {
        let total = self.local_hits + self.grid_sends;
        if total == 0 {
            0.0
        } else {
            self.local_hits as f64 / total as f64
        }
    }

    /// Mean element ids per occupied grid slot (1.0 means no batching
    /// benefit). Returns 0.0 when the grid was never used.
    pub fn batch_occupancy(&self) -> f64 {
        if self.grid_batches == 0 {
            0.0
        } else {
            self.grid_sends as f64 / self.grid_batches as f64
        }
    }
}

/// Per-worker-thread timing and work counters.
#[derive(Debug, Clone, Default)]
pub struct ThreadMetrics {
    /// Time spent doing useful work (evaluations, updates, scheduling).
    pub busy: Duration,
    /// Time spent waiting: barriers, empty queues.
    pub idle: Duration,
    /// Element evaluations performed by this thread.
    pub evaluations: u64,
    /// Input events consumed by this thread's evaluations.
    pub events: u64,
    /// Scheduling-locality counters (asynchronous engine only).
    pub sched: LocalityMetrics,
}

impl ThreadMetrics {
    /// busy / (busy + idle), or 1.0 when nothing was measured.
    pub fn utilization(&self) -> f64 {
        let total = self.busy + self.idle;
        if total.is_zero() {
            1.0
        } else {
            self.busy.as_secs_f64() / total.as_secs_f64()
        }
    }
}

/// Aggregate metrics for one simulation run.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Node-change events applied.
    pub events_processed: u64,
    /// Element evaluations performed.
    pub evaluations: u64,
    /// Element activations (schedulings).
    pub activations: u64,
    /// Active time steps (event-driven engines) or total steps (compiled).
    pub time_steps: u64,
    /// Distribution of events per active step. Filled by the sequential
    /// engine and (since the telemetry PR) by the synchronous engine,
    /// whose leader records each step's global event delta. The compiled
    /// and chaotic engines leave it empty — compiled mode evaluates
    /// every element each step so the paper's §5 availability statistic
    /// is meaningless there, and the chaotic engine has no global step
    /// at all. Renderers must check [`EventsPerStepHistogram::steps`]
    /// and skip the histogram instead of printing zeros.
    pub events_per_step: EventsPerStepHistogram,
    /// Per-thread timing.
    pub per_thread: Vec<ThreadMetrics>,
    /// Event-list chunks reclaimed by the asynchronous engine's concurrent
    /// garbage collector (zero for other engines).
    pub gc_chunks_freed: u64,
    /// Kernel blocks skipped by compiled-mode activity gating (zero for
    /// other engines and for gated runs that never go quiescent).
    pub blocks_skipped: u64,
    /// Element evaluations eliminated by activity gating: the evaluations
    /// the paper's "every element is executed every time step" rule would
    /// have performed on the skipped blocks.
    pub evals_skipped: u64,
    /// Aggregated scheduling-locality counters (asynchronous engine only;
    /// the per-thread split lives in [`Metrics::per_thread`]).
    pub locality: LocalityMetrics,
    /// Synchronous-engine mailbox-pool misses: update buffers that had to
    /// be freshly allocated because the recycling pool was empty (zero for
    /// the other engines). A warmed-up pool should hold this near the
    /// number of distinct (worker, target) pairs.
    pub pool_misses: u64,
    /// Checkpoint write/restore counters (all zero unless the run was
    /// driven through the [`checkpoint`](crate::checkpoint) module).
    pub checkpoint: CheckpointCounters,
    /// SIMD lane width (stimulus lanes per word group) used by the
    /// compiled batch kernel: 64, 128, 256, or 512. Zero for every other
    /// engine, so benchmark JSON built from these metrics is
    /// self-describing about the vector width that produced it.
    pub lane_width: u64,
    /// Arena-allocation counters (chunk traffic for every chaotic run;
    /// slab/epoch counters when the arena is enabled).
    pub arena: ArenaCounters,
    /// Wall-clock duration of the run (excluding netlist construction).
    pub wall: Duration,
}

/// Hot-path allocation counters, folded into [`Metrics`] by the engines.
///
/// `chunk_allocs`/`chunk_frees` count behavior-chunk traffic regardless
/// of backing (with the arena ablated each alloc is one global-allocator
/// call — the `BENCH_5.json` ablation baseline); the [`ArenaCounters::slab`]
/// block is populated only when the arena ran, and its `slab_allocs` are
/// then the *only* global-allocator calls on the chunk path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArenaCounters {
    /// Whether the run used per-worker slab arenas.
    pub enabled: bool,
    /// Behavior-list chunks allocated (all workers plus the build phase).
    pub chunk_allocs: u64,
    /// Behavior-list chunks retired/freed.
    pub chunk_frees: u64,
    /// Synchronous-engine mailbox buffers served from the recycling pool
    /// (the hit counter complementing [`Metrics::pool_misses`]).
    pub mailbox_recycled: u64,
    /// Slab/epoch counters aggregated across the run's arena domain.
    pub slab: parsim_queue::ArenaStats,
}

impl ArenaCounters {
    /// Merges another run segment's counters (additive; the quarantine
    /// high-water inside `slab` merges as a maximum).
    pub fn merge(&mut self, other: &ArenaCounters) {
        self.enabled |= other.enabled;
        self.chunk_allocs += other.chunk_allocs;
        self.chunk_frees += other.chunk_frees;
        self.mailbox_recycled += other.mailbox_recycled;
        self.slab.merge(&other.slab);
    }

    /// True when no allocation activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == ArenaCounters::default()
    }

    /// Global-allocator calls on the chunk hot path: slab-span grows in
    /// arena mode, one call per chunk otherwise.
    pub fn global_allocs(&self) -> u64 {
        if self.enabled {
            self.slab.slab_allocs
        } else {
            self.chunk_allocs
        }
    }

    /// Fraction of chunk allocations served by recycling a
    /// previously-retired slab block (0.0 with the arena off).
    pub fn recycle_ratio(&self) -> f64 {
        let total = self.slab.recycled + self.slab.fresh;
        if total == 0 {
            0.0
        } else {
            self.slab.recycled as f64 / total as f64
        }
    }
}

/// Checkpoint overhead counters, folded into [`Metrics`] by the
/// [`checkpoint`](crate::checkpoint) driver so `--report` and the
/// metrics line make snapshot cost visible next to simulation cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointCounters {
    /// Snapshots committed to disk.
    pub writes: u64,
    /// Total bytes across committed snapshot files.
    pub bytes: u64,
    /// Wall nanoseconds spent serializing, fsyncing, and renaming.
    pub write_ns: u64,
    /// Wall nanoseconds spent scanning/validating/loading at resume.
    pub restore_ns: u64,
}

impl CheckpointCounters {
    /// Merges another run segment's counters (additive).
    pub fn merge(&mut self, other: &CheckpointCounters) {
        self.writes += other.writes;
        self.bytes += other.bytes;
        self.write_ns += other.write_ns;
        self.restore_ns += other.restore_ns;
    }

    /// True when no checkpoint activity was recorded.
    pub fn is_empty(&self) -> bool {
        *self == CheckpointCounters::default()
    }
}

impl Metrics {
    /// Merges another run's (or worker subset's) metrics into this one.
    ///
    /// All counters and histograms are additive and `per_thread` entries
    /// are concatenated, so merging any partition of a run's per-worker
    /// metrics — in any grouping or order — reproduces the aggregate the
    /// engine would have built directly. `wall` and `lane_width` are the
    /// non-additive fields: workers run concurrently, so the merged wall
    /// clock is the maximum, and the lane width of a run is the widest
    /// width any chunk of it used (also a maximum).
    pub fn merge(&mut self, other: &Metrics) {
        self.events_processed += other.events_processed;
        self.evaluations += other.evaluations;
        self.activations += other.activations;
        self.time_steps += other.time_steps;
        self.events_per_step.merge(&other.events_per_step);
        self.per_thread.extend(other.per_thread.iter().cloned());
        self.gc_chunks_freed += other.gc_chunks_freed;
        self.blocks_skipped += other.blocks_skipped;
        self.evals_skipped += other.evals_skipped;
        self.locality.merge(&other.locality);
        self.pool_misses += other.pool_misses;
        self.arena.merge(&other.arena);
        self.checkpoint.merge(&other.checkpoint);
        self.lane_width = self.lane_width.max(other.lane_width);
        self.wall = self.wall.max(other.wall);
    }

    /// Mean utilization across worker threads (1.0 for the sequential
    /// engine).
    pub fn utilization(&self) -> f64 {
        if self.per_thread.is_empty() {
            return 1.0;
        }
        self.per_thread.iter().map(ThreadMetrics::utilization).sum::<f64>()
            / self.per_thread.len() as f64
    }

    /// Mean element activity per active time step: the fraction of the
    /// circuit's elements that see an event each step. The paper quotes
    /// 0.1–0.5% per step for typical gate-level circuits (§3).
    pub fn activity(&self, num_elements: usize) -> f64 {
        if self.time_steps == 0 || num_elements == 0 {
            0.0
        } else {
            self.events_processed as f64 / self.time_steps as f64 / num_elements as f64
        }
    }

    /// Fraction of compiled-mode evaluations eliminated by activity
    /// gating: `evals_skipped / (evaluations + evals_skipped)`. This is
    /// the direct counter to the §3 pathology that at 0.1–0.5% activity
    /// "every element is executed every time step" regardless of need.
    /// Returns 0.0 when gating is off or nothing was evaluated.
    pub fn gating_ratio(&self) -> f64 {
        let would_run = self.evaluations + self.evals_skipped;
        if would_run == 0 {
            0.0
        } else {
            self.evals_skipped as f64 / would_run as f64
        }
    }

    /// Mean input events consumed per element evaluation — the batching
    /// factor that makes the asynchronous algorithm faster per event than
    /// the event-driven one (§5).
    pub fn events_per_evaluation(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.events_processed as f64 / self.evaluations as f64
        }
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, {} evaluations, {} activations, {} steps, util {:.0}%, wall {:?}",
            self.events_processed,
            self.evaluations,
            self.activations,
            self.time_steps,
            self.utilization() * 100.0,
            self.wall
        )?;
        if self.lane_width > 0 {
            write!(f, ", {}-bit lanes", self.lane_width)?;
        }
        // Engines that never record the histogram (compiled, chaotic)
        // get no ev/step clause at all — zeros here would read as "every
        // step was empty", which is not what absence means.
        if self.events_per_step.steps() > 0 {
            write!(
                f,
                ", ev/step p50 {} p95 {}",
                self.events_per_step.p50(),
                self.events_per_step.p95()
            )?;
        }
        if !self.arena.is_empty() {
            if self.arena.enabled {
                write!(
                    f,
                    ", arena: {} chunks ({:.0}% recycled, {} slab grows, quarantine peak {})",
                    self.arena.chunk_allocs,
                    self.arena.recycle_ratio() * 100.0,
                    self.arena.slab.slab_allocs,
                    self.arena.slab.quarantine_peak,
                )?;
            } else {
                write!(f, ", arena off: {} chunk mallocs", self.arena.chunk_allocs)?;
            }
        }
        if !self.checkpoint.is_empty() {
            write!(
                f,
                ", {} checkpoint(s) ({} B, write {:?}, restore {:?})",
                self.checkpoint.writes,
                self.checkpoint.bytes,
                Duration::from_nanos(self.checkpoint.write_ns),
                Duration::from_nanos(self.checkpoint.restore_ns),
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_fractions() {
        let mut h = EventsPerStepHistogram::new();
        for e in [1, 1, 2, 5, 6, 100, 2000] {
            h.record(e);
        }
        assert_eq!(h.steps(), 7);
        assert_eq!(h.events(), 2115);
        assert_eq!(h.max(), 2000);
        assert!((h.fraction_at_most(1) - 2.0 / 7.0).abs() < 1e-9);
        assert!((h.fraction_at_most(5) - 4.0 / 7.0).abs() < 1e-9);
        assert!((h.fraction_at_most(1000) - 6.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_merge() {
        let mut a = EventsPerStepHistogram::new();
        a.record(3);
        let mut b = EventsPerStepHistogram::new();
        b.record(700);
        a.merge(&b);
        assert_eq!(a.steps(), 2);
        assert_eq!(a.max(), 700);
    }

    #[test]
    fn histogram_percentiles() {
        let empty = EventsPerStepHistogram::new();
        assert_eq!(empty.percentile(0.5), 0);
        assert_eq!(empty.p99(), 0);

        let mut h = EventsPerStepHistogram::new();
        // 60 steps of 1 event, 35 steps of 8 events, 4 steps of 60,
        // 1 step of 5000 (unbounded bucket).
        for _ in 0..60 {
            h.record(1);
        }
        for _ in 0..35 {
            h.record(8);
        }
        for _ in 0..4 {
            h.record(60);
        }
        h.record(5000);
        assert_eq!(h.p50(), 1);
        assert_eq!(h.p95(), 10); // 8 lands in the ..=10 bucket
        assert_eq!(h.p99(), 100); // 60 lands in the ..=100 bucket
        // The top step lives in the unbounded bucket: report the true max.
        assert_eq!(h.percentile(1.0), 5000);
        assert_eq!(h.percentile(0.0), 1, "p0 reports the lowest bucket");
    }

    #[test]
    fn percentile_is_monotone_in_p() {
        let mut h = EventsPerStepHistogram::new();
        for e in [1, 3, 7, 15, 40, 80, 150, 400, 900, 3000] {
            h.record(e);
        }
        let mut last = 0;
        for i in 0..=20 {
            let v = h.percentile(i as f64 / 20.0);
            assert!(v >= last, "percentile must be monotone");
            last = v;
        }
    }

    #[test]
    fn metrics_merge_sums_counters_and_concats_threads() {
        let mut a = Metrics {
            events_processed: 10,
            evaluations: 5,
            activations: 7,
            time_steps: 3,
            gc_chunks_freed: 1,
            blocks_skipped: 2,
            evals_skipped: 4,
            pool_misses: 6,
            locality: LocalityMetrics { local_hits: 3, ..Default::default() },
            arena: ArenaCounters {
                enabled: true,
                chunk_allocs: 100,
                chunk_frees: 40,
                slab: parsim_queue::ArenaStats {
                    quarantine_peak: 5,
                    ..Default::default()
                },
                ..Default::default()
            },
            per_thread: vec![ThreadMetrics::default()],
            lane_width: 64,
            wall: Duration::from_millis(10),
            ..Default::default()
        };
        a.events_per_step.record(2);
        let mut b = Metrics {
            events_processed: 1,
            evaluations: 1,
            activations: 1,
            time_steps: 1,
            pool_misses: 1,
            locality: LocalityMetrics { grid_sends: 9, ..Default::default() },
            arena: ArenaCounters {
                chunk_allocs: 10,
                mailbox_recycled: 3,
                slab: parsim_queue::ArenaStats {
                    quarantine_peak: 2,
                    ..Default::default()
                },
                ..Default::default()
            },
            per_thread: vec![ThreadMetrics::default(), ThreadMetrics::default()],
            lane_width: 256,
            wall: Duration::from_millis(4),
            ..Default::default()
        };
        b.events_per_step.record(700);
        a.merge(&b);
        assert_eq!(a.events_processed, 11);
        assert_eq!(a.evaluations, 6);
        assert_eq!(a.activations, 8);
        assert_eq!(a.time_steps, 4);
        assert_eq!(a.pool_misses, 7);
        assert_eq!(a.locality.local_hits, 3);
        assert_eq!(a.locality.grid_sends, 9);
        assert_eq!(a.per_thread.len(), 3);
        assert!(a.arena.enabled);
        assert_eq!(a.arena.chunk_allocs, 110);
        assert_eq!(a.arena.chunk_frees, 40);
        assert_eq!(a.arena.mailbox_recycled, 3);
        assert_eq!(
            a.arena.slab.quarantine_peak, 5,
            "quarantine high-water merges as a max"
        );
        assert_eq!(a.events_per_step.steps(), 2);
        assert_eq!(a.events_per_step.max(), 700);
        assert_eq!(a.wall, Duration::from_millis(10), "wall is max, not sum");
        assert_eq!(a.lane_width, 256, "lane width is max, not sum");
    }

    #[test]
    fn utilization_math() {
        let t = ThreadMetrics {
            busy: Duration::from_millis(75),
            idle: Duration::from_millis(25),
            evaluations: 10,
            events: 20,
            sched: Default::default(),
        };
        assert!((t.utilization() - 0.75).abs() < 1e-9);
        let m = Metrics {
            per_thread: vec![t.clone(), t],
            events_processed: 20,
            evaluations: 10,
            ..Default::default()
        };
        assert!((m.utilization() - 0.75).abs() < 1e-9);
        assert!((m.events_per_evaluation() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn activity_math() {
        let m = Metrics {
            events_processed: 50,
            time_steps: 10,
            ..Default::default()
        };
        assert!((m.activity(1000) - 0.005).abs() < 1e-9);
        assert_eq!(m.activity(0), 0.0);
        assert_eq!(Metrics::default().activity(10), 0.0);
    }

    #[test]
    fn locality_ratio_and_occupancy() {
        assert_eq!(LocalityMetrics::default().locality_ratio(), 0.0);
        assert_eq!(LocalityMetrics::default().batch_occupancy(), 0.0);
        let mut a = LocalityMetrics {
            local_hits: 60,
            grid_sends: 20,
            grid_batches: 4,
            steals: 1,
            backoff_parks: 2,
        };
        assert!((a.locality_ratio() - 0.75).abs() < 1e-9);
        assert!((a.batch_occupancy() - 5.0).abs() < 1e-9);
        let b = LocalityMetrics {
            local_hits: 40,
            grid_sends: 0,
            grid_batches: 0,
            steals: 0,
            backoff_parks: 3,
        };
        a.merge(&b);
        assert_eq!(a.local_hits, 100);
        assert_eq!(a.grid_sends, 20);
        assert_eq!(a.backoff_parks, 5);
        assert!((a.locality_ratio() - 100.0 / 120.0).abs() < 1e-9);
    }

    #[test]
    fn display_renders() {
        let mut h = EventsPerStepHistogram::new();
        h.record(4);
        assert!(h.to_string().contains("1 steps"));
        let m = Metrics::default();
        assert!(m.to_string().contains("0 events"));
    }
}
