//! The four simulation engines of *Soule & Blank, DAC 1988*.
//!
//! | Engine | Paper section | Synchronization |
//! |---|---|---|
//! | [`EventDriven`] | §2 (uniprocessor baseline) | none (sequential) |
//! | [`SyncEventDriven`] | §2 | barrier per phase, distributed queues, work stealing |
//! | [`CompiledMode`] | §3 | barrier per unit-delay time step, static partition |
//! | [`ChaoticAsync`] | §4 | **none** — lock-free SPSC grid, per-node valid times |
//!
//! All engines consume the same immutable [`Netlist`](parsim_netlist::Netlist)
//! and a [`SimConfig`], and produce a [`SimResult`] holding waveforms for
//! the watched nodes plus execution [`Metrics`]. On identical circuits the
//! event-driven, synchronous, and asynchronous engines produce *identical*
//! waveforms; the compiled-mode engine matches them whenever every element
//! has unit delay (compiled mode, by definition, imposes unit delay).
//!
//! # Examples
//!
//! ```
//! use parsim_core::{ChaoticAsync, EventDriven, SimConfig};
//! use parsim_logic::{Delay, ElementKind, Time};
//! use parsim_netlist::Builder;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = Builder::new();
//! let clk = b.node("clk", 1);
//! let q = b.node("q", 1);
//! b.element("osc", ElementKind::Clock { half_period: 3, offset: 3 }, Delay(1), &[], &[clk])?;
//! b.element("inv", ElementKind::Not, Delay(1), &[clk], &[q])?;
//! let netlist = b.finish()?;
//!
//! let config = SimConfig::new(Time(30)).watch(q);
//! let seq = EventDriven::run(&netlist, &config)?;
//! let par = ChaoticAsync::run(&netlist, &config.clone().threads(2))?;
//! assert_eq!(
//!     seq.waveform(q).unwrap().changes(),
//!     par.waveform(q).unwrap().changes(),
//! );
//! # Ok(())
//! # }
//! ```
//!
//! # Failure containment
//!
//! Every `run` returns `Result<SimResult, SimError>`. The parallel
//! engines isolate worker panics (`catch_unwind` plus barrier/queue
//! poisoning, surfaced as [`SimError::WorkerPanicked`]), and an optional
//! watchdog ([`SimConfig::deadline`] / [`SimConfig::stall_timeout`])
//! cancels runs that stop making progress, returning
//! [`SimError::Stalled`] or [`SimError::DeadlineExceeded`] with a
//! [`StallDiagnostic`] snapshot. Deterministic faults can be injected
//! through [`FaultPlan`] to exercise these paths.

pub mod analysis;
pub mod behavior;
pub mod chaotic;
pub mod check;
pub mod checkpoint;
pub mod compiled;
mod config;
mod error;
mod fault;
mod kernel;
mod metrics;
pub mod seq;
mod shared;
pub mod sync;
pub mod testbench;
mod watchdog;
mod waveform;
mod wheel;

pub use analysis::{ActivityReport, WaveformStats};
pub use chaotic::ChaoticAsync;
pub use check::{assert_equivalent, equivalence_report, EquivalenceReport};
pub use checkpoint::EngineKind;
pub use compiled::{BatchResult, CompiledMode, LaneStimulus};
pub use config::{BatchSync, CheckpointPolicy, SimConfig};
pub use error::{SimError, StallDiagnostic};
pub use fault::FaultPlan;
pub use metrics::{
    ArenaCounters, CheckpointCounters, EventsPerStepHistogram, LocalityMetrics, Metrics,
    ThreadMetrics,
};
pub use parsim_checkpoint::{
    CheckpointError, CheckpointStore, EngineSnapshot, StorageFault, StorageFaultPlan,
};
pub use parsim_trace::{
    CheckpointReport, RunReport, ThreadSummary, TimeSeriesPoint, TimeSeriesReport, Trace,
    TraceConfig,
};
pub use seq::EventDriven;
pub use sync::SyncEventDriven;
pub use testbench::{TestBench, TestBenchError, TestRun};
pub use waveform::{SimResult, Waveform};
pub use wheel::TimingWheel;
