//! Per-node behavior lists: the chaotic engine's append-only event store.
//!
//! §4 of the paper keeps, per node, "the entire history of events" so
//! that an element can replay as much of its input behavior as the
//! inputs' valid times allow. This module is that store, extracted from
//! the engine so it can be model-checked in isolation:
//!
//! - [`Chunk`]: a fixed-size block of `(time, value)` events, linked
//!   forward through an atomic `next` pointer;
//! - [`NodeState`]: one node's chunked list plus its publication counter
//!   (`len`), its validity horizon (`valid_until`), and one consumption
//!   cursor per fan-out entry (the GC protocol);
//! - [`Cursor`]: a consumer's position in one list.
//!
//! # Protocol
//!
//! Exactly one thread at a time is the node's *writer* — the element run
//! that drives the node, made exclusive by the
//! [`ActivationState`](parsim_queue::ActivationState) machine. The writer
//! appends with [`NodeState::push`] (slot write, then `len` release
//! store) and reclaims with [`NodeState::gc`]. Any fan-out consumer reads
//! through a [`Cursor`]: `len` acquire load, then slot read; it publishes
//! how far it has consumed via a release store into
//! [`NodeState::consumed`], and `gc` frees a chunk only when *every*
//! consumer's cursor is strictly past the chunk's last slot — which
//! implies each consumer's chunk pointer has already followed `next`
//! beyond it.
//!
//! `valid_until` is monotone and has a split personality on purpose:
//! concurrent *input-side* readers (lookahead, replay gating) take
//! `Acquire` loads, but the writer's own read-modify-write is a `Relaxed`
//! load followed by a `Release` store. That relaxed load is justified by
//! exclusivity alone: only the node's driver ever stores `valid_until`,
//! and successive runs of the driver are ordered by the activation
//! machine's AcqRel RMW chain (`finish_run` → `try_activate` →
//! `begin_run`), so the writer can never see its predecessor's store
//! "late". `tests/model_chaotic.rs` checks exactly this handoff.
//!
//! # Model checking
//!
//! Everything here compiles against the [`parsim_queue::sync`] facade.
//! Under `RUSTFLAGS="--cfg parsim_model"` the chunk size shrinks to 2 so
//! chunk linking and retirement are reachable within a bounded
//! exploration, and `gc` *quarantines* instead of freeing: reclaimed
//! chunks get every slot overwritten with a tombstone and are kept alive
//! until `Drop`. A consumer that could still reach a reclaimed chunk then
//! trips the explorer's data-race detector on the tombstone write (or
//! asserts on the tombstone value) instead of dereferencing freed memory.

use std::mem::MaybeUninit;
use std::ops::Deref;
use std::ptr;

use parsim_logic::Value;
use parsim_queue::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use parsim_queue::sync::UnsafeCell;

/// Events per behavior-list chunk.
#[cfg(not(parsim_model))]
pub const CHUNK: usize = 64;
/// Model-mode chunk size: small enough that chunk linking, cursor chunk
/// hops, and GC retirement all happen within an exhaustively explorable
/// number of events.
#[cfg(parsim_model)]
pub const CHUNK: usize = 2;

/// One chunk of a node's append-only behavior list.
pub struct Chunk {
    slots: [UnsafeCell<MaybeUninit<(u64, Value)>>; CHUNK],
    /// Global index of `slots[0]`.
    base: u64,
    next: AtomicPtr<Chunk>,
    /// Whether the memory came from a worker arena (retire through the
    /// arena) or the global allocator (free with `Box::from_raw`). Plain
    /// field: written at allocation, read only by the exclusive writer's
    /// GC and by `Drop`.
    from_arena: bool,
}

/// The chunk allocation policy for one writer: a worker's slab arena
/// when the engine runs with one, the global allocator otherwise (and
/// always under the model, where the slab layer does not exist).
///
/// Carried by the writer (`&mut`) through [`NodeState::push`] /
/// [`NodeState::gc`] so chunk traffic is counted per thread without
/// atomics.
pub struct ChunkAlloc {
    #[cfg(not(parsim_model))]
    arena: Option<std::rc::Rc<parsim_queue::WorkerArena>>,
    /// Chunks allocated through this handle.
    pub allocs: u64,
    /// Chunks retired/freed through this handle.
    pub frees: u64,
}

impl ChunkAlloc {
    /// Global-allocator policy (the `--no-arena` ablation and the model).
    pub fn global() -> ChunkAlloc {
        ChunkAlloc {
            #[cfg(not(parsim_model))]
            arena: None,
            allocs: 0,
            frees: 0,
        }
    }

    /// Arena-backed policy: chunks are carved from `arena`'s slabs and
    /// retired through the epoch quarantine.
    #[cfg(not(parsim_model))]
    pub fn arena(arena: std::rc::Rc<parsim_queue::WorkerArena>) -> ChunkAlloc {
        ChunkAlloc {
            arena: Some(arena),
            allocs: 0,
            frees: 0,
        }
    }

    fn alloc(&mut self, base: u64) -> *mut Chunk {
        self.allocs += 1;
        #[cfg(not(parsim_model))]
        if let Some(arena) = &self.arena {
            let p = arena.alloc(std::mem::size_of::<Chunk>()) as *mut Chunk;
            // SAFETY: fresh, exclusively-owned, size-checked allocation.
            unsafe {
                ptr::write(
                    p,
                    Chunk {
                        slots: [const { UnsafeCell::new(MaybeUninit::uninit()) }; CHUNK],
                        base,
                        next: AtomicPtr::new(ptr::null_mut()),
                        from_arena: true,
                    },
                );
            }
            return p;
        }
        Box::into_raw(Box::new(Chunk {
            slots: [const { UnsafeCell::new(MaybeUninit::uninit()) }; CHUNK],
            base,
            next: AtomicPtr::new(ptr::null_mut()),
            from_arena: false,
        }))
    }

    /// # Safety
    ///
    /// `chunk` must be unlinked, allocated by this policy's backing
    /// (arena blocks retire to their owning domain regardless of which
    /// worker's handle frees them), and never freed twice.
    unsafe fn free(&mut self, chunk: *mut Chunk) {
        self.frees += 1;
        // (u64, Value) is Copy: no per-slot drop needed either way.
        #[cfg(not(parsim_model))]
        if (*chunk).from_arena {
            match &self.arena {
                Some(arena) => arena.retire(chunk as *mut u8),
                None => parsim_queue::arena::retire_remote(chunk as *mut u8),
            }
            return;
        }
        drop(Box::from_raw(chunk));
    }
}

/// A node's consumption-cursor array: either node-owned (the default)
/// or a view into a partition-contiguous SoA block the engine carved
/// from the owning worker's arena (cache-line packing, first-touch
/// placement).
pub enum CursorSlots {
    Owned(Box<[AtomicU64]>),
    /// External slots; the engine guarantees the block outlives the node.
    Ext { ptr: *const AtomicU64, len: usize },
}

impl Deref for CursorSlots {
    type Target = [AtomicU64];

    fn deref(&self) -> &[AtomicU64] {
        match self {
            CursorSlots::Owned(b) => b,
            // SAFETY: `Ext` construction contract — `ptr..ptr+len` is an
            // initialized AtomicU64 block outliving this node.
            CursorSlots::Ext { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }
}

/// A node's behavior: its event history plus how far it is known.
pub struct NodeState {
    /// Head chunk (moves forward as GC frees consumed chunks).
    head: AtomicPtr<Chunk>,
    /// Writer-owned tail chunk pointer.
    tail: UnsafeCell<*mut Chunk>,
    /// Published event count (release store by the writer).
    len: AtomicU64,
    /// Inline validity horizon, used unless `valid_ext` is set.
    valid_inline: AtomicU64,
    /// Optional external `valid_until` slot in a partition-contiguous
    /// SoA block (see [`NodeState::set_ext_slots`]).
    valid_ext: *const AtomicU64,
    /// Per-fanout-entry consumption cursor (global event index), release
    /// stored by the consumer, acquire loaded by [`NodeState::gc`].
    pub consumed: CursorSlots,
    /// Reclaimed-but-not-freed chunks (writer-owned). See module docs.
    #[cfg(parsim_model)]
    quarantine: UnsafeCell<Vec<*mut Chunk>>,
}

// SAFETY: `tail` (and the model-only quarantine) is only touched by the
// node's unique driver, which is exclusive via the activation state
// machine; everything else is atomic.
unsafe impl Send for NodeState {}
unsafe impl Sync for NodeState {}

impl NodeState {
    /// A fresh single-chunk list with one consumption cursor per fan-out
    /// entry, allocated through `alloc`.
    pub fn new(fanouts: usize, alloc: &mut ChunkAlloc) -> NodeState {
        let chunk = alloc.alloc(0);
        NodeState {
            head: AtomicPtr::new(chunk),
            tail: UnsafeCell::new(chunk),
            len: AtomicU64::new(0),
            valid_inline: AtomicU64::new(0),
            valid_ext: ptr::null(),
            consumed: CursorSlots::Owned((0..fanouts).map(|_| AtomicU64::new(0)).collect()),
            #[cfg(parsim_model)]
            quarantine: UnsafeCell::new(Vec::new()),
        }
    }

    /// The node's validity horizon (`t <= valid_until` is known
    /// behavior). Resolves to the external SoA slot when the engine
    /// installed one, the inline atomic otherwise.
    #[inline(always)]
    pub fn valid_until(&self) -> &AtomicU64 {
        if self.valid_ext.is_null() {
            &self.valid_inline
        } else {
            // SAFETY: `set_ext_slots` contract — the slot outlives self.
            unsafe { &*self.valid_ext }
        }
    }

    /// Points this node's scheduling state (`valid_until` + consumption
    /// cursors) at externally-owned slots, for partition-contiguous SoA
    /// packing. Must be called before the node is shared.
    ///
    /// # Safety
    ///
    /// Both blocks must be zero-initialized `AtomicU64`s that outlive
    /// this node; `consumed` must span at least as many slots as the
    /// node's fan-out count.
    pub unsafe fn set_ext_slots(&mut self, valid: *const AtomicU64, consumed: *const AtomicU64) {
        debug_assert_eq!(self.valid_inline.load(Ordering::Relaxed), 0);
        self.valid_ext = valid;
        let len = self.consumed.len();
        self.consumed = CursorSlots::Ext { ptr: consumed, len };
    }

    /// Appends one event. Caller must be the node's (exclusive) writer.
    ///
    /// # Safety
    ///
    /// Only one thread may call this at a time (activation exclusivity),
    /// and arena-backed nodes must always be pushed through a handle of
    /// the same arena domain.
    pub unsafe fn push(&self, t: u64, v: Value, alloc: &mut ChunkAlloc) {
        let len = self.len.load(Ordering::Relaxed);
        let mut tail = self.tail.with(|p| *p);
        if len - (*tail).base == CHUNK as u64 {
            let new = alloc.alloc(len);
            (*tail).next.store(new, Ordering::Release);
            self.tail.with_mut(|p| *p = new);
            tail = new;
        }
        let idx = (len - (*tail).base) as usize;
        (*tail).slots[idx].with_mut(|slot| {
            (*slot).write((t, v));
        });
        self.len.store(len + 1, Ordering::Release);
    }

    /// Frees chunks every fan-out consumer has fully moved past. Caller
    /// must be the node's (exclusive) writer. Returns the number of
    /// chunks reclaimed.
    ///
    /// A chunk `c` is freed only when every consumer's cursor exceeds
    /// `c.base + CHUNK`, which implies each consumer's chunk pointer has
    /// advanced beyond `c` (to consume an event of index `>= c.base +
    /// CHUNK` it must have followed `c.next`). The tail chunk is never
    /// freed.
    ///
    /// # Safety
    ///
    /// Only one thread may call this at a time (activation exclusivity);
    /// same arena-domain contract as [`NodeState::push`].
    pub unsafe fn gc(&self, alloc: &mut ChunkAlloc) -> u64 {
        let min_consumed = self
            .consumed
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .min()
            .unwrap_or_else(|| self.len.load(Ordering::Relaxed));
        let mut freed = 0;
        loop {
            let head = self.head.load(Ordering::Relaxed);
            let next = (*head).next.load(Ordering::Relaxed);
            if next.is_null() || min_consumed <= (*head).base + CHUNK as u64 {
                break;
            }
            self.head.store(next, Ordering::Relaxed);
            self.reclaim(head, alloc);
            freed += 1;
        }
        freed
    }

    #[cfg(not(parsim_model))]
    unsafe fn reclaim(&self, chunk: *mut Chunk, alloc: &mut ChunkAlloc) {
        alloc.free(chunk);
    }

    /// Model-mode reclamation: tombstone every slot (any consumer that
    /// can still reach the chunk races with these writes and is reported
    /// by the explorer) and keep the allocation alive until `Drop` so
    /// even an undetected late read stays memory-safe.
    #[cfg(parsim_model)]
    unsafe fn reclaim(&self, chunk: *mut Chunk, _alloc: &mut ChunkAlloc) {
        for slot in &(*chunk).slots {
            slot.with_mut(|p| {
                (*p).write((u64::MAX, Value::x(1)));
            });
        }
        self.quarantine.with_mut(|q| (*q).push(chunk));
    }
}

impl Drop for NodeState {
    fn drop(&mut self) {
        // Acquire pairs with the writer's release publishes, so the chain
        // walk is ordered even when the dropping thread never touched the
        // list (same discipline as the queue crate's drop-drains).
        let mut chunk = self.head.load(Ordering::Acquire);
        while !chunk.is_null() {
            // SAFETY: chunks were allocated and unlinked exactly once.
            let next = unsafe { (*chunk).next.load(Ordering::Acquire) };
            // Arena-backed chunks are slab-owned: their memory is
            // released wholesale when the arena domain drops (which the
            // engine orders after the nodes), so only global-allocator
            // chunks are freed here. (u64, Value) is Copy: no per-slot
            // drop needed.
            if unsafe { !(*chunk).from_arena } {
                drop(unsafe { Box::from_raw(chunk) });
            }
            chunk = next;
        }
        #[cfg(parsim_model)]
        self.quarantine.with_mut(|q| {
            for &c in unsafe { &*q }.iter() {
                // SAFETY: quarantined chunks were unlinked exactly once
                // and are unreachable from the head chain freed above.
                drop(unsafe { Box::from_raw(c) });
            }
        });
    }
}

/// A consumer's position in one node's behavior list.
pub struct Cursor {
    chunk: *mut Chunk,
    /// Global index of the next unconsumed event. Read-only for callers.
    pub global: u64,
    /// Value after the last consumed event (all-X before any). Read-only
    /// for callers.
    pub value: Value,
    /// Copy of the next unconsumed event, if already fetched. Never goes
    /// stale: event lists are append-only and the cursor only advances on
    /// `consume`. A `None` cache means "list was drained at last check"
    /// and must be re-fetched (the producer may have appended since). The
    /// cached event's chunk cannot be reclaimed, because reclamation
    /// requires every consumer to have *consumed* past the chunk.
    cached: Option<(u64, Value)>,
}

// SAFETY: the raw pointer is only dereferenced under the publication
// protocol (len acquire) by the owning element's exclusive run.
unsafe impl Send for Cursor {}

impl Cursor {
    /// A cursor at the start of `node`'s list, reporting `initial`
    /// (normally all-X at the node's width) until the first consume.
    pub fn new(node: &NodeState, initial: Value) -> Cursor {
        Cursor {
            chunk: node.head.load(Ordering::Relaxed),
            global: 0,
            value: initial,
            cached: None,
        }
    }

    /// Peeks the next unconsumed event, if published. Hits the local
    /// cache on all but the first call per event.
    ///
    /// # Safety
    ///
    /// Caller must hold the element exclusively (activation machine).
    pub unsafe fn peek(&mut self, node: &NodeState) -> Option<(u64, Value)> {
        if self.cached.is_some() {
            return self.cached;
        }
        if self.global >= node.len.load(Ordering::Acquire) {
            return None;
        }
        while self.global >= (*self.chunk).base + CHUNK as u64 {
            let next = (*self.chunk).next.load(Ordering::Acquire);
            debug_assert!(!next.is_null(), "published event beyond linked chunks");
            self.chunk = next;
        }
        let idx = (self.global - (*self.chunk).base) as usize;
        self.cached = Some((*self.chunk).slots[idx].with(|slot| (*slot).assume_init()));
        self.cached
    }

    /// Consumes the event returned by the last `peek`.
    ///
    /// # Safety
    ///
    /// Caller must hold the element exclusively and have peeked.
    pub unsafe fn consume(&mut self, node: &NodeState) {
        let (_, v) = match self.cached.take() {
            Some(ev) => ev,
            None => self.peek(node).expect("consume without peek"),
        };
        self.cached = None;
        self.value = v;
        self.global += 1;
    }
}

#[cfg(all(test, not(parsim_model)))]
mod tests {
    use super::*;

    #[test]
    fn push_peek_consume_single_thread() {
        let mut a = ChunkAlloc::global();
        let node = NodeState::new(1, &mut a);
        // SAFETY: single-threaded test — trivially exclusive.
        unsafe {
            for t in 0..(CHUNK as u64 * 2 + 3) {
                node.push(t, Value::bit(t % 2 == 1), &mut a);
            }
            let mut c = Cursor::new(&node, Value::x(1));
            for t in 0..(CHUNK as u64 * 2 + 3) {
                assert_eq!(c.peek(&node), Some((t, Value::bit(t % 2 == 1))));
                c.consume(&node);
                assert_eq!(c.value, Value::bit(t % 2 == 1));
            }
            assert_eq!(c.peek(&node), None);
        }
    }

    #[test]
    fn gc_frees_only_fully_consumed_chunks() {
        let mut a = ChunkAlloc::global();
        let node = NodeState::new(1, &mut a);
        // SAFETY: single-threaded test — trivially exclusive.
        unsafe {
            let total = CHUNK as u64 * 3;
            for t in 0..total {
                node.push(t, Value::bit(false), &mut a);
            }
            // Nothing consumed: nothing freed.
            assert_eq!(node.gc(&mut a), 0);
            // Cursor strictly past the first chunk (>= requires > base+CHUNK).
            node.consumed[0].store(CHUNK as u64 + 1, Ordering::Release);
            assert_eq!(node.gc(&mut a), 1);
            // Everything consumed: tail chunk still never freed.
            node.consumed[0].store(total + 1, Ordering::Release);
            assert_eq!(node.gc(&mut a), 1);
            assert_eq!(a.allocs, 3);
            assert_eq!(a.frees, 2);
        }
    }
}
