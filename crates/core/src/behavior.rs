//! Per-node behavior lists: the chaotic engine's append-only event store.
//!
//! §4 of the paper keeps, per node, "the entire history of events" so
//! that an element can replay as much of its input behavior as the
//! inputs' valid times allow. This module is that store, extracted from
//! the engine so it can be model-checked in isolation:
//!
//! - [`Chunk`]: a fixed-size block of `(time, value)` events, linked
//!   forward through an atomic `next` pointer;
//! - [`NodeState`]: one node's chunked list plus its publication counter
//!   (`len`), its validity horizon (`valid_until`), and one consumption
//!   cursor per fan-out entry (the GC protocol);
//! - [`Cursor`]: a consumer's position in one list.
//!
//! # Protocol
//!
//! Exactly one thread at a time is the node's *writer* — the element run
//! that drives the node, made exclusive by the
//! [`ActivationState`](parsim_queue::ActivationState) machine. The writer
//! appends with [`NodeState::push`] (slot write, then `len` release
//! store) and reclaims with [`NodeState::gc`]. Any fan-out consumer reads
//! through a [`Cursor`]: `len` acquire load, then slot read; it publishes
//! how far it has consumed via a release store into
//! [`NodeState::consumed`], and `gc` frees a chunk only when *every*
//! consumer's cursor is strictly past the chunk's last slot — which
//! implies each consumer's chunk pointer has already followed `next`
//! beyond it.
//!
//! `valid_until` is monotone and has a split personality on purpose:
//! concurrent *input-side* readers (lookahead, replay gating) take
//! `Acquire` loads, but the writer's own read-modify-write is a `Relaxed`
//! load followed by a `Release` store. That relaxed load is justified by
//! exclusivity alone: only the node's driver ever stores `valid_until`,
//! and successive runs of the driver are ordered by the activation
//! machine's AcqRel RMW chain (`finish_run` → `try_activate` →
//! `begin_run`), so the writer can never see its predecessor's store
//! "late". `tests/model_chaotic.rs` checks exactly this handoff.
//!
//! # Model checking
//!
//! Everything here compiles against the [`parsim_queue::sync`] facade.
//! Under `RUSTFLAGS="--cfg parsim_model"` the chunk size shrinks to 2 so
//! chunk linking and retirement are reachable within a bounded
//! exploration, and `gc` *quarantines* instead of freeing: reclaimed
//! chunks get every slot overwritten with a tombstone and are kept alive
//! until `Drop`. A consumer that could still reach a reclaimed chunk then
//! trips the explorer's data-race detector on the tombstone write (or
//! asserts on the tombstone value) instead of dereferencing freed memory.

use std::mem::MaybeUninit;
use std::ptr;

use parsim_logic::Value;
use parsim_queue::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use parsim_queue::sync::UnsafeCell;

/// Events per behavior-list chunk.
#[cfg(not(parsim_model))]
pub const CHUNK: usize = 64;
/// Model-mode chunk size: small enough that chunk linking, cursor chunk
/// hops, and GC retirement all happen within an exhaustively explorable
/// number of events.
#[cfg(parsim_model)]
pub const CHUNK: usize = 2;

/// One chunk of a node's append-only behavior list.
pub struct Chunk {
    slots: [UnsafeCell<MaybeUninit<(u64, Value)>>; CHUNK],
    /// Global index of `slots[0]`.
    base: u64,
    next: AtomicPtr<Chunk>,
}

impl Chunk {
    fn alloc(base: u64) -> *mut Chunk {
        Box::into_raw(Box::new(Chunk {
            slots: [const { UnsafeCell::new(MaybeUninit::uninit()) }; CHUNK],
            base,
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// A node's behavior: its event history plus how far it is known.
pub struct NodeState {
    /// Head chunk (moves forward as GC frees consumed chunks).
    head: AtomicPtr<Chunk>,
    /// Writer-owned tail chunk pointer.
    tail: UnsafeCell<*mut Chunk>,
    /// Published event count (release store by the writer).
    len: AtomicU64,
    /// Behavior is known for every t <= valid_until. Monotone; written
    /// only by the node's exclusive driver (see the module docs for why
    /// the writer's own loads may be `Relaxed`).
    pub valid_until: AtomicU64,
    /// Per-fanout-entry consumption cursor (global event index), release
    /// stored by the consumer, acquire loaded by [`NodeState::gc`].
    pub consumed: Box<[AtomicU64]>,
    /// Reclaimed-but-not-freed chunks (writer-owned). See module docs.
    #[cfg(parsim_model)]
    quarantine: UnsafeCell<Vec<*mut Chunk>>,
}

// SAFETY: `tail` (and the model-only quarantine) is only touched by the
// node's unique driver, which is exclusive via the activation state
// machine; everything else is atomic.
unsafe impl Send for NodeState {}
unsafe impl Sync for NodeState {}

impl NodeState {
    /// A fresh single-chunk list with one consumption cursor per fan-out
    /// entry.
    pub fn new(fanouts: usize) -> NodeState {
        let chunk = Chunk::alloc(0);
        NodeState {
            head: AtomicPtr::new(chunk),
            tail: UnsafeCell::new(chunk),
            len: AtomicU64::new(0),
            valid_until: AtomicU64::new(0),
            consumed: (0..fanouts).map(|_| AtomicU64::new(0)).collect(),
            #[cfg(parsim_model)]
            quarantine: UnsafeCell::new(Vec::new()),
        }
    }

    /// Appends one event. Caller must be the node's (exclusive) writer.
    ///
    /// # Safety
    ///
    /// Only one thread may call this at a time (activation exclusivity).
    pub unsafe fn push(&self, t: u64, v: Value) {
        let len = self.len.load(Ordering::Relaxed);
        let mut tail = self.tail.with(|p| *p);
        if len - (*tail).base == CHUNK as u64 {
            let new = Chunk::alloc(len);
            (*tail).next.store(new, Ordering::Release);
            self.tail.with_mut(|p| *p = new);
            tail = new;
        }
        let idx = (len - (*tail).base) as usize;
        (*tail).slots[idx].with_mut(|slot| {
            (*slot).write((t, v));
        });
        self.len.store(len + 1, Ordering::Release);
    }

    /// Frees chunks every fan-out consumer has fully moved past. Caller
    /// must be the node's (exclusive) writer. Returns the number of
    /// chunks reclaimed.
    ///
    /// A chunk `c` is freed only when every consumer's cursor exceeds
    /// `c.base + CHUNK`, which implies each consumer's chunk pointer has
    /// advanced beyond `c` (to consume an event of index `>= c.base +
    /// CHUNK` it must have followed `c.next`). The tail chunk is never
    /// freed.
    ///
    /// # Safety
    ///
    /// Only one thread may call this at a time (activation exclusivity).
    pub unsafe fn gc(&self) -> u64 {
        let min_consumed = self
            .consumed
            .iter()
            .map(|c| c.load(Ordering::Acquire))
            .min()
            .unwrap_or_else(|| self.len.load(Ordering::Relaxed));
        let mut freed = 0;
        loop {
            let head = self.head.load(Ordering::Relaxed);
            let next = (*head).next.load(Ordering::Relaxed);
            if next.is_null() || min_consumed <= (*head).base + CHUNK as u64 {
                break;
            }
            self.head.store(next, Ordering::Relaxed);
            self.reclaim(head);
            freed += 1;
        }
        freed
    }

    #[cfg(not(parsim_model))]
    unsafe fn reclaim(&self, chunk: *mut Chunk) {
        drop(Box::from_raw(chunk));
    }

    /// Model-mode reclamation: tombstone every slot (any consumer that
    /// can still reach the chunk races with these writes and is reported
    /// by the explorer) and keep the allocation alive until `Drop` so
    /// even an undetected late read stays memory-safe.
    #[cfg(parsim_model)]
    unsafe fn reclaim(&self, chunk: *mut Chunk) {
        for slot in &(*chunk).slots {
            slot.with_mut(|p| {
                (*p).write((u64::MAX, Value::x(1)));
            });
        }
        self.quarantine.with_mut(|q| (*q).push(chunk));
    }
}

impl Drop for NodeState {
    fn drop(&mut self) {
        // Acquire pairs with the writer's release publishes, so the chain
        // walk is ordered even when the dropping thread never touched the
        // list (same discipline as the queue crate's drop-drains).
        let mut chunk = self.head.load(Ordering::Acquire);
        while !chunk.is_null() {
            // SAFETY: chunks were Box-allocated and unlinked exactly once.
            let next = unsafe { (*chunk).next.load(Ordering::Acquire) };
            // (u64, Value) is Copy: no per-slot drop needed.
            drop(unsafe { Box::from_raw(chunk) });
            chunk = next;
        }
        #[cfg(parsim_model)]
        self.quarantine.with_mut(|q| {
            for &c in unsafe { &*q }.iter() {
                // SAFETY: quarantined chunks were unlinked exactly once
                // and are unreachable from the head chain freed above.
                drop(unsafe { Box::from_raw(c) });
            }
        });
    }
}

/// A consumer's position in one node's behavior list.
pub struct Cursor {
    chunk: *mut Chunk,
    /// Global index of the next unconsumed event. Read-only for callers.
    pub global: u64,
    /// Value after the last consumed event (all-X before any). Read-only
    /// for callers.
    pub value: Value,
    /// Copy of the next unconsumed event, if already fetched. Never goes
    /// stale: event lists are append-only and the cursor only advances on
    /// `consume`. A `None` cache means "list was drained at last check"
    /// and must be re-fetched (the producer may have appended since). The
    /// cached event's chunk cannot be reclaimed, because reclamation
    /// requires every consumer to have *consumed* past the chunk.
    cached: Option<(u64, Value)>,
}

// SAFETY: the raw pointer is only dereferenced under the publication
// protocol (len acquire) by the owning element's exclusive run.
unsafe impl Send for Cursor {}

impl Cursor {
    /// A cursor at the start of `node`'s list, reporting `initial`
    /// (normally all-X at the node's width) until the first consume.
    pub fn new(node: &NodeState, initial: Value) -> Cursor {
        Cursor {
            chunk: node.head.load(Ordering::Relaxed),
            global: 0,
            value: initial,
            cached: None,
        }
    }

    /// Peeks the next unconsumed event, if published. Hits the local
    /// cache on all but the first call per event.
    ///
    /// # Safety
    ///
    /// Caller must hold the element exclusively (activation machine).
    pub unsafe fn peek(&mut self, node: &NodeState) -> Option<(u64, Value)> {
        if self.cached.is_some() {
            return self.cached;
        }
        if self.global >= node.len.load(Ordering::Acquire) {
            return None;
        }
        while self.global >= (*self.chunk).base + CHUNK as u64 {
            let next = (*self.chunk).next.load(Ordering::Acquire);
            debug_assert!(!next.is_null(), "published event beyond linked chunks");
            self.chunk = next;
        }
        let idx = (self.global - (*self.chunk).base) as usize;
        self.cached = Some((*self.chunk).slots[idx].with(|slot| (*slot).assume_init()));
        self.cached
    }

    /// Consumes the event returned by the last `peek`.
    ///
    /// # Safety
    ///
    /// Caller must hold the element exclusively and have peeked.
    pub unsafe fn consume(&mut self, node: &NodeState) {
        let (_, v) = match self.cached.take() {
            Some(ev) => ev,
            None => self.peek(node).expect("consume without peek"),
        };
        self.cached = None;
        self.value = v;
        self.global += 1;
    }
}

#[cfg(all(test, not(parsim_model)))]
mod tests {
    use super::*;

    #[test]
    fn push_peek_consume_single_thread() {
        let node = NodeState::new(1);
        // SAFETY: single-threaded test — trivially exclusive.
        unsafe {
            for t in 0..(CHUNK as u64 * 2 + 3) {
                node.push(t, Value::bit(t % 2 == 1));
            }
            let mut c = Cursor::new(&node, Value::x(1));
            for t in 0..(CHUNK as u64 * 2 + 3) {
                assert_eq!(c.peek(&node), Some((t, Value::bit(t % 2 == 1))));
                c.consume(&node);
                assert_eq!(c.value, Value::bit(t % 2 == 1));
            }
            assert_eq!(c.peek(&node), None);
        }
    }

    #[test]
    fn gc_frees_only_fully_consumed_chunks() {
        let node = NodeState::new(1);
        // SAFETY: single-threaded test — trivially exclusive.
        unsafe {
            let total = CHUNK as u64 * 3;
            for t in 0..total {
                node.push(t, Value::bit(false));
            }
            // Nothing consumed: nothing freed.
            assert_eq!(node.gc(), 0);
            // Cursor strictly past the first chunk (>= requires > base+CHUNK).
            node.consumed[0].store(CHUNK as u64 + 1, Ordering::Release);
            assert_eq!(node.gc(), 1);
            // Everything consumed: tail chunk still never freed.
            node.consumed[0].store(total + 1, Ordering::Release);
            assert_eq!(node.gc(), 1);
        }
    }
}
