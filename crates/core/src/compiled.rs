//! The parallel unit-delay compiled-mode engine (§3 of the paper).
//!
//! "In compiled mode, every element is executed every time step. To
//! parallelize this, the elements are statically partitioned among the
//! processors and each processor evaluates its assigned elements every
//! timestep. The processors synchronize at the end of every time-step."
//!
//! Compiled mode *imposes* unit delay: an element's outputs computed from
//! inputs at step `t` appear at step `t + 1`, regardless of the element's
//! declared delay. On circuits whose delays are all 1 this produces
//! waveforms identical to the event-driven engines; on other circuits it
//! is a different (coarser) timing model — exactly the trade-off the
//! paper discusses.
//!
//! Shared-state discipline: node values are written only by the unique
//! driving thread (plus thread 0 for generator nodes) during the *apply*
//! phase and read by everyone during the *evaluate* phase; a
//! [`SpinBarrier`] separates the phases.

use std::collections::BTreeMap;
use std::time::Instant;

use parsim_logic::{evaluate, expand_generator, ElemState, Time, Value};
use parsim_netlist::partition::{element_costs, lpt, Partition};
use parsim_netlist::{Netlist, NodeId};
use parsim_queue::SpinBarrier;

use crate::config::SimConfig;
use crate::metrics::{Metrics, ThreadMetrics};
use crate::shared::SharedSlice;
use crate::waveform::SimResult;

/// Per-worker results: recorded waveform changes plus timing counters.
type WorkerOutput = (Vec<(Time, NodeId, Value)>, ThreadMetrics);

/// The parallel compiled-mode simulator.
///
/// # Examples
///
/// ```
/// use parsim_core::{CompiledMode, SimConfig};
/// use parsim_logic::{Delay, ElementKind, Time};
/// use parsim_netlist::Builder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Builder::new();
/// let clk = b.node("clk", 1);
/// let out = b.node("out", 1);
/// b.element("osc", ElementKind::Clock { half_period: 4, offset: 4 }, Delay(1), &[], &[clk])?;
/// b.element("inv", ElementKind::Not, Delay(1), &[clk], &[out])?;
/// let netlist = b.finish()?;
/// let r = CompiledMode::run(&netlist, &SimConfig::new(Time(20)).watch(out).threads(2));
/// assert!(r.waveform(out).unwrap().num_changes() > 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CompiledMode;

impl CompiledMode {
    /// Runs with an LPT (cost-balanced) static partition over
    /// `config.threads` processors.
    pub fn run(netlist: &Netlist, config: &SimConfig) -> SimResult {
        let partition = lpt(&element_costs(netlist), config.threads);
        Self::run_with_partition(netlist, config, &partition)
    }

    /// Runs with a caller-chosen static partition (the paper's §3
    /// load-balance experiments vary this).
    ///
    /// # Panics
    ///
    /// Panics if `partition.parts() != config.threads` or the partition's
    /// element count differs from the netlist's.
    pub fn run_with_partition(
        netlist: &Netlist,
        config: &SimConfig,
        partition: &Partition,
    ) -> SimResult {
        assert_eq!(
            partition.parts(),
            config.threads,
            "partition parts must equal thread count"
        );
        assert_eq!(
            partition.assignment().len(),
            netlist.num_elements(),
            "partition does not match netlist"
        );
        let start = Instant::now();
        let end = config.end_time.ticks();
        let threads = config.threads;

        let mut watched = vec![false; netlist.num_nodes()];
        for &n in &config.watch {
            watched[n.index()] = true;
        }
        let watched = &watched;

        // Generator schedule, applied by thread 0 (generators are excluded
        // from the evaluation sweep).
        let mut gen_events: BTreeMap<u64, Vec<(usize, Value)>> = BTreeMap::new();
        for gen in netlist.generators() {
            let e = netlist.element(gen);
            let out = e.outputs()[0].index();
            for (t, v) in expand_generator(e.kind(), Time(end)) {
                gen_events.entry(t.ticks()).or_default().push((out, v));
            }
        }
        let gen_events = &gen_events;

        // Shared node values: written single-writer during apply phases.
        let values: SharedSlice<Value> = SharedSlice::new(
            netlist
                .nodes()
                .iter()
                .map(|n| Value::x(n.width()))
                .collect(),
        );
        let values = &values;
        // Per-element state: touched only by the owning thread.
        let states: SharedSlice<ElemState> = SharedSlice::new(
            netlist
                .elements()
                .iter()
                .map(|e| ElemState::init(e.kind()))
                .collect(),
        );
        let states = &states;

        let barrier = SpinBarrier::new(threads);
        let barrier = &barrier;

        let my_elems: Vec<Vec<usize>> = (0..threads)
            .map(|p| {
                partition
                    .members(p)
                    .into_iter()
                    .filter(|&e| !netlist.elements()[e].kind().is_generator())
                    .collect()
            })
            .collect();
        let my_elems = &my_elems;

        let mut outputs: Vec<WorkerOutput> =
            Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|p| {
                    scope.spawn(move || {
                        let mut changes: Vec<(Time, NodeId, Value)> = Vec::new();
                        let mut tm = ThreadMetrics::default();
                        let mut pending: Vec<(usize, Value)> = Vec::new();
                        let mut inputs_buf: Vec<Value> = Vec::with_capacity(8);
                        for t in 0..=end {
                            let busy_start = Instant::now();
                            // ---- apply phase ----------------------------
                            for &(node, v) in &pending {
                                // SAFETY: single writer per node (driver
                                // thread), phases separated by barriers.
                                unsafe { *values.get_mut(node) = v };
                                tm.events += 1;
                                if watched[node] {
                                    changes.push((Time(t), NodeId::from_index(node), v));
                                }
                            }
                            pending.clear();
                            if p == 0 {
                                if let Some(evs) = gen_events.get(&t) {
                                    for &(node, v) in evs {
                                        // SAFETY: generator nodes are only
                                        // written here, by thread 0.
                                        let slot = unsafe { values.get_mut(node) };
                                        if *slot != v {
                                            *slot = v;
                                            tm.events += 1;
                                            if watched[node] {
                                                changes.push((
                                                    Time(t),
                                                    NodeId::from_index(node),
                                                    v,
                                                ));
                                            }
                                        }
                                    }
                                }
                            }
                            tm.busy += busy_start.elapsed();
                            let wait_start = Instant::now();
                            barrier.wait();
                            tm.idle += wait_start.elapsed();

                            // ---- evaluate phase -------------------------
                            let busy_start = Instant::now();
                            if t < end {
                                for &e in &my_elems[p] {
                                    let elem = &netlist.elements()[e];
                                    inputs_buf.clear();
                                    for &inp in elem.inputs() {
                                        // SAFETY: read-only phase.
                                        inputs_buf.push(unsafe { *values.get(inp.index()) });
                                    }
                                    // SAFETY: element owned by this thread.
                                    let state = unsafe { states.get_mut(e) };
                                    let out = evaluate(elem.kind(), &inputs_buf, state);
                                    tm.evaluations += 1;
                                    for (port, v) in out.iter() {
                                        let out_node = elem.outputs()[port].index();
                                        // SAFETY: reading a node this thread
                                        // exclusively writes.
                                        if unsafe { *values.get(out_node) } != v {
                                            pending.push((out_node, v));
                                        }
                                    }
                                }
                            }
                            tm.busy += busy_start.elapsed();
                            let wait_start = Instant::now();
                            barrier.wait();
                            tm.idle += wait_start.elapsed();
                        }
                        (changes, tm)
                    })
                })
                .collect();
            for h in handles {
                outputs.push(h.join().expect("compiled-mode worker panicked"));
            }
        });

        let mut changes = Vec::new();
        let mut per_thread = Vec::with_capacity(threads);
        let mut events_processed = 0;
        let mut evaluations = 0;
        for (c, tm) in outputs {
            events_processed += tm.events;
            evaluations += tm.evaluations;
            changes.extend(c);
            per_thread.push(tm);
        }
        let metrics = Metrics {
            events_processed,
            evaluations,
            activations: evaluations, // every element "activated" each step
            time_steps: end + 1,
            events_per_step: Default::default(),
            per_thread,
            gc_chunks_freed: 0,
            wall: start.elapsed(),
        };
        SimResult::from_changes(netlist, config.end_time, &config.watch, changes, metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::assert_equivalent;
    use crate::seq::EventDriven;
    use parsim_logic::{Delay, ElementKind};
    use parsim_netlist::partition::round_robin;
    use parsim_netlist::Builder;

    fn clocked_chain(len: usize) -> (Netlist, Vec<NodeId>) {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 5,
                offset: 5,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        let mut watch = vec![clk];
        let mut prev = clk;
        for i in 0..len {
            let n = b.node(&format!("n{i}"), 1);
            b.element(&format!("inv{i}"), ElementKind::Not, Delay(1), &[prev], &[n])
                .unwrap();
            watch.push(n);
            prev = n;
        }
        (b.finish().unwrap(), watch)
    }

    #[test]
    fn matches_event_driven_on_unit_delay_circuit() {
        let (n, watch) = clocked_chain(6);
        let cfg = SimConfig::new(Time(50)).watch_all(watch.clone());
        let seq = EventDriven::run(&n, &cfg);
        for threads in [1, 2, 4] {
            let par = CompiledMode::run(&n, &cfg.clone().threads(threads));
            assert_equivalent(&seq, &par, &format!("compiled x{threads}"));
        }
    }

    #[test]
    fn dff_divider_matches() {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let rst = b.node("rst", 1);
        let q = b.node("q", 1);
        let d = b.node("d", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 4,
                offset: 4,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        b.element(
            "porst",
            ElementKind::Pulse { at: 0, width: 2 },
            Delay(1),
            &[],
            &[rst],
        )
        .unwrap();
        b.element(
            "ff",
            ElementKind::DffR { width: 1 },
            Delay(1),
            &[clk, d, rst],
            &[q],
        )
        .unwrap();
        b.element("inv", ElementKind::Not, Delay(1), &[q], &[d])
            .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(60)).watch(q).watch(d);
        let seq = EventDriven::run(&n, &cfg);
        let par = CompiledMode::run(&n, &cfg.clone().threads(3));
        assert_equivalent(&seq, &par, "dff divider");
    }

    #[test]
    fn custom_partition_gives_same_waveforms() {
        let (n, watch) = clocked_chain(5);
        let cfg = SimConfig::new(Time(40)).watch_all(watch).threads(2);
        let a = CompiledMode::run(&n, &cfg);
        let part = round_robin(n.num_elements(), 2);
        let c = CompiledMode::run_with_partition(&n, &cfg, &part);
        assert_equivalent(&a, &c, "partition choice");
    }

    #[test]
    fn evaluations_count_every_element_every_step() {
        let (n, watch) = clocked_chain(4);
        let cfg = SimConfig::new(Time(10)).watch_all(watch);
        let r = CompiledMode::run(&n, &cfg);
        // 4 inverters (clock generator excluded) * 10 eval steps.
        assert_eq!(r.metrics.evaluations, 4 * 10);
        assert_eq!(r.metrics.time_steps, 11);
    }

    #[test]
    #[should_panic(expected = "partition parts must equal thread count")]
    fn partition_thread_mismatch_panics() {
        let (n, _) = clocked_chain(2);
        let cfg = SimConfig::new(Time(5)).threads(2);
        let part = round_robin(n.num_elements(), 3);
        let _ = CompiledMode::run_with_partition(&n, &cfg, &part);
    }
}
