//! The parallel unit-delay compiled-mode engine (§3 of the paper).
//!
//! "In compiled mode, every element is executed every time step. To
//! parallelize this, the elements are statically partitioned among the
//! processors and each processor evaluates its assigned elements every
//! timestep. The processors synchronize at the end of every time-step."
//!
//! Compiled mode *imposes* unit delay: an element's outputs computed from
//! inputs at step `t` appear at step `t + 1`, regardless of the element's
//! declared delay. On circuits whose delays are all 1 this produces
//! waveforms identical to the event-driven engines; on other circuits it
//! is a different (coarser) timing model — exactly the trade-off the
//! paper discusses.
//!
//! Since PR 2 the engine no longer walks `Element` structs: the netlist is
//! lowered once by [`CompiledProgram`] into a level-major instruction
//! stream (dense opcodes + slot indices), and two executors run that
//! stream — a scalar one ([`CompiledMode::run`]) and a word-parallel one
//! packing any number of independent stimulus lanes into SIMD-wide
//! bit-plane word groups ([`CompiledMode::run_batch`]; 64–512 lanes per
//! kernel pass depending on the CPU, chunked beyond that — see
//! [`parsim_logic::wide`]). Both gate work with per-block dirty
//! bitmasks unless [`SimConfig::without_activity_gating`] is set; skipped
//! work is reported in [`Metrics::blocks_skipped`] /
//! [`Metrics::evals_skipped`](crate::Metrics::evals_skipped).
//!
//! [`CompiledProgram`]: parsim_netlist::compile::CompiledProgram
//! [`Metrics::blocks_skipped`]: crate::Metrics::blocks_skipped

use parsim_checkpoint::EngineSnapshot;
use parsim_logic::{Time, Value};
use parsim_netlist::compile::CompiledProgram;
use parsim_netlist::partition::Partition;
use parsim_netlist::{Netlist, NodeId};

use crate::config::SimConfig;
use crate::error::SimError;
use crate::kernel;
use crate::metrics::Metrics;
use crate::waveform::SimResult;

/// One lane's stimulus for [`CompiledMode::run_batch`]: per-node schedule
/// overrides applied on top of the netlist's own generators.
///
/// Each override replaces the named node's generator schedule (or drives an
/// undriven node) *for that lane only*; nodes without an override follow
/// the netlist's base generators in every lane. Schedules are `(time,
/// value)` pairs, strictly increasing in time, each value the node's width.
#[derive(Debug, Clone, Default)]
pub struct LaneStimulus {
    /// `(node, schedule)` pairs; the schedule fully replaces the node's
    /// base generator for this lane.
    pub overrides: Vec<(NodeId, Vec<(Time, Value)>)>,
}

impl LaneStimulus {
    /// A lane that follows the netlist's base generators unchanged.
    pub fn base() -> LaneStimulus {
        LaneStimulus::default()
    }

    /// Adds one node override (builder style).
    #[must_use]
    pub fn drive(mut self, node: NodeId, schedule: Vec<(Time, Value)>) -> LaneStimulus {
        self.overrides.push((node, schedule));
        self
    }
}

/// Result of a [`CompiledMode::run_batch`] call: one [`SimResult`] per
/// stimulus lane plus the aggregate metrics of the packed run.
///
/// `lanes[i]` holds lane `i`'s waveforms, bit-identical to a scalar run of
/// that lane's stimulus. Each lane's embedded `metrics` is a copy of the
/// batch-wide [`BatchResult::metrics`] (word-parallel execution has no
/// per-lane cost breakdown), where `evaluations` counts *word-group*
/// instruction executions — each covering up to [`Metrics::lane_width`]
/// lanes at once.
#[derive(Debug)]
pub struct BatchResult {
    /// Per-lane simulation results, in stimulus order.
    pub lanes: Vec<SimResult>,
    /// Aggregate metrics for the whole packed run.
    pub metrics: Metrics,
    /// Finished run telemetry (the batch has no single [`SimResult`] to
    /// carry it, so it rides here).
    pub telemetry: Option<parsim_telemetry::RunTelemetry>,
}

/// The parallel compiled-mode simulator.
///
/// # Examples
///
/// ```
/// use parsim_core::{CompiledMode, SimConfig};
/// use parsim_logic::{Delay, ElementKind, Time};
/// use parsim_netlist::Builder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Builder::new();
/// let clk = b.node("clk", 1);
/// let out = b.node("out", 1);
/// b.element("osc", ElementKind::Clock { half_period: 4, offset: 4 }, Delay(1), &[], &[clk])?;
/// b.element("inv", ElementKind::Not, Delay(1), &[clk], &[out])?;
/// let netlist = b.finish()?;
/// let r = CompiledMode::run(&netlist, &SimConfig::new(Time(20)).watch(out).threads(2))?;
/// assert!(r.waveform(out).unwrap().num_changes() > 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CompiledMode;

impl CompiledMode {
    /// Runs with the compiled program's own level-aware LPT partition:
    /// instruction costs are balanced across `config.threads` processors
    /// *within each level bucket*, so no thread sits idle at the step
    /// barrier while another finishes a deep level.
    ///
    /// # Errors
    ///
    /// See [`CompiledMode::run_with_partition`].
    pub fn run(netlist: &Netlist, config: &SimConfig) -> Result<SimResult, SimError> {
        let prog = CompiledProgram::compile(netlist);
        let partition = prog.level_partition(config.threads);
        kernel::scalar::run(netlist, config, &prog, &partition)
    }

    /// Runs one checkpoint segment on the scalar executor with the
    /// level-aware LPT partition (the batch API has its own segment entry
    /// point, [`CompiledMode::run_batch_segment`]). See
    /// [`kernel::scalar::run_segment`] for the unit-delay snapshot shape.
    pub(crate) fn run_segment(
        netlist: &Netlist,
        config: &SimConfig,
        seg: crate::checkpoint::SegmentSpec<'_>,
    ) -> Result<crate::checkpoint::SegmentOut, SimError> {
        let prog = CompiledProgram::compile(netlist);
        let partition = prog.level_partition(config.threads);
        kernel::scalar::run_segment(netlist, config, &prog, &partition, seg)
    }

    /// Runs with a caller-chosen static partition (the paper's §3
    /// load-balance experiments vary this).
    ///
    /// Any partition of the elements is *correct*, including ones whose
    /// parts cross level boundaries (e.g. [`round_robin`]): compiled mode
    /// double-buffers node values (outputs land in a pending set applied
    /// only after the step barrier), so within a step the order in which
    /// instructions are evaluated — and therefore which thread owns which
    /// level — cannot affect waveforms. The instruction stream being
    /// level-major is purely a locality/gating layout choice. Partition
    /// choice affects load balance only.
    ///
    /// [`round_robin`]: parsim_netlist::partition::round_robin
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `partition.parts() !=
    /// config.threads` or the partition's element count differs from the
    /// netlist's; [`SimError::WorkerPanicked`] if any worker panicked
    /// (the step barrier is poisoned so peers unblock, and every thread
    /// is joined first); and [`SimError::Stalled`] /
    /// [`SimError::DeadlineExceeded`] if the configured watchdog
    /// cancelled the run.
    pub fn run_with_partition(
        netlist: &Netlist,
        config: &SimConfig,
        partition: &Partition,
    ) -> Result<SimResult, SimError> {
        let prog = CompiledProgram::compile(netlist);
        kernel::scalar::run(netlist, config, &prog, partition)
    }

    /// Runs any number of stimulus sets in word-parallel SIMD passes.
    ///
    /// Each lane is an independent simulation of the same netlist:
    /// `stimuli[i]` describes lane `i` as per-node schedule overrides on
    /// top of the base generators (see [`LaneStimulus`]). Node values are
    /// stored as two bit-plane word groups per node bit — lane `i` lives
    /// in bit `i` of its word group — so one AND instruction evaluates a
    /// gate for up to 512 lanes at once (64 per 64-bit word; the group
    /// width is auto-detected from the CPU, or forced via
    /// [`SimConfig::with_lane_width`] / `PARSIM_FORCE_LANE_WIDTH`).
    /// Batches wider than one word group are chunked, so thousands of
    /// lanes are fine. Lanes' waveforms are extracted separately and are
    /// bit-identical to running each stimulus through the scalar engine.
    ///
    /// Step synchronization follows [`SimConfig::with_batch_sync`]:
    /// either a global two-phase barrier or (default) per-edge
    /// producer/consumer handoffs computed from the partition.
    ///
    /// Activity gating and the containment machinery (watchdog, fault
    /// plan, barrier poisoning) behave exactly as in
    /// [`CompiledMode::run`]. In the returned metrics, `evaluations`
    /// counts word-group instruction executions (all lanes of a chunk at
    /// once), `events_processed` counts per-lane value changes, and
    /// [`Metrics::lane_width`] reports the widest word group used.
    ///
    /// # Errors
    ///
    /// All of [`CompiledMode::run_with_partition`]'s errors, plus
    /// [`SimError::InvalidConfig`] when `stimuli` is empty, an override
    /// targets an unknown or non-generator-driven node, a schedule is
    /// empty, not strictly increasing in time, or width-mismatched, a
    /// lane overrides the same node twice, or a forced lane width is not
    /// one of 64/128/256/512.
    pub fn run_batch(
        netlist: &Netlist,
        config: &SimConfig,
        stimuli: &[LaneStimulus],
    ) -> Result<BatchResult, SimError> {
        let prog = CompiledProgram::compile(netlist);
        CompiledMode::run_batch_with_program(netlist, config, &prog, stimuli)
    }

    /// [`CompiledMode::run_batch`] with a caller-supplied compiled
    /// program — the compile-once/run-many entry point. Callers that
    /// serve many batches of the same netlist (e.g. a multi-tenant
    /// simulation service keyed by netlist digest) compile once, cache
    /// the [`CompiledProgram`], and skip the lowering pass on every
    /// subsequent batch.
    ///
    /// `program` must have been compiled from this exact `netlist`; the
    /// pairing is the caller's contract (a digest cache keyed by
    /// [`parsim_checkpoint::netlist_digest`] satisfies it).
    ///
    /// # Errors
    ///
    /// All of [`CompiledMode::run_batch`]'s errors, plus
    /// [`SimError::InvalidConfig`] when `program` disagrees with
    /// `netlist` on the element count (the cheap pairing sanity check).
    pub fn run_batch_with_program(
        netlist: &Netlist,
        config: &SimConfig,
        program: &CompiledProgram,
        stimuli: &[LaneStimulus],
    ) -> Result<BatchResult, SimError> {
        check_program_pairing(netlist, program)?;
        let partition = program.level_partition(config.threads);
        kernel::packed::run_batch(netlist, config, program, &partition, stimuli)
    }

    /// Runs one checkpoint segment of the word-parallel batch kernel:
    /// simulate every lane up to (and including) step `cut`, and return
    /// one [`EngineSnapshot`] per lane alongside the segment's
    /// [`BatchResult`].
    ///
    /// `resume` takes the snapshots of a previous
    /// `run_batch_segment` call (one per lane, all at the same cut) and
    /// continues from the step after; `None` starts from time zero. Each
    /// returned snapshot is individually interchangeable with a
    /// scalar-engine snapshot of that lane's stimulus: a batch can be
    /// cut, one lane extracted and resumed on the scalar checkpointed
    /// engine, or vice versa, without changing its waveform.
    ///
    /// Waveform results in the returned [`BatchResult`] cover only this
    /// segment (changes after the resume time, up to the cut).
    ///
    /// # Errors
    ///
    /// All of [`CompiledMode::run_batch`]'s errors, plus
    /// [`SimError::InvalidConfig`] when the resume snapshots don't match
    /// the lane count, disagree on their snapshot time, or are not
    /// strictly before `cut`.
    pub fn run_batch_segment(
        netlist: &Netlist,
        config: &SimConfig,
        stimuli: &[LaneStimulus],
        resume: Option<&[EngineSnapshot]>,
        cut: Time,
    ) -> Result<(BatchResult, Vec<EngineSnapshot>), SimError> {
        let prog = CompiledProgram::compile(netlist);
        CompiledMode::run_batch_segment_with_program(netlist, config, &prog, stimuli, resume, cut)
    }

    /// [`CompiledMode::run_batch_segment`] with a caller-supplied compiled
    /// program — see [`CompiledMode::run_batch_with_program`] for the
    /// compile-once/run-many contract and the pairing check.
    pub fn run_batch_segment_with_program(
        netlist: &Netlist,
        config: &SimConfig,
        program: &CompiledProgram,
        stimuli: &[LaneStimulus],
        resume: Option<&[EngineSnapshot]>,
        cut: Time,
    ) -> Result<(BatchResult, Vec<EngineSnapshot>), SimError> {
        check_program_pairing(netlist, program)?;
        let partition = program.level_partition(config.threads);
        let (result, snaps) = kernel::packed::run_batch_segment(
            netlist,
            config,
            program,
            &partition,
            stimuli,
            resume,
            cut.ticks(),
            true,
        )?;
        Ok((result, snaps.expect("capture was requested")))
    }
}

/// The cheap sanity check that a cached [`CompiledProgram`] actually belongs
/// to `netlist`. Element count is the only structural property both sides
/// expose; a digest-keyed cache makes deeper mismatches unreachable.
fn check_program_pairing(netlist: &Netlist, program: &CompiledProgram) -> Result<(), SimError> {
    if program.num_elements() != netlist.num_elements() {
        return Err(SimError::InvalidConfig {
            reason: format!(
                "compiled program was built from a different netlist: program has {} elements, netlist has {}",
                program.num_elements(),
                netlist.num_elements()
            ),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::assert_equivalent;
    use crate::seq::EventDriven;
    use parsim_logic::{Delay, ElementKind};
    use parsim_netlist::partition::round_robin;
    use parsim_netlist::Builder;

    fn clocked_chain(len: usize) -> (Netlist, Vec<NodeId>) {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 5,
                offset: 5,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        let mut watch = vec![clk];
        let mut prev = clk;
        for i in 0..len {
            let n = b.node(&format!("n{i}"), 1);
            b.element(&format!("inv{i}"), ElementKind::Not, Delay(1), &[prev], &[n])
                .unwrap();
            watch.push(n);
            prev = n;
        }
        (b.finish().unwrap(), watch)
    }

    #[test]
    fn matches_event_driven_on_unit_delay_circuit() {
        let (n, watch) = clocked_chain(6);
        let cfg = SimConfig::new(Time(50)).watch_all(watch.clone());
        let seq = EventDriven::run(&n, &cfg).unwrap();
        for threads in [1, 2, 4] {
            let par = CompiledMode::run(&n, &cfg.clone().threads(threads)).unwrap();
            assert_equivalent(&seq, &par, &format!("compiled x{threads}"));
        }
    }

    #[test]
    fn dff_divider_matches() {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let rst = b.node("rst", 1);
        let q = b.node("q", 1);
        let d = b.node("d", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 4,
                offset: 4,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        b.element(
            "porst",
            ElementKind::Pulse { at: 0, width: 2 },
            Delay(1),
            &[],
            &[rst],
        )
        .unwrap();
        b.element(
            "ff",
            ElementKind::DffR { width: 1 },
            Delay(1),
            &[clk, d, rst],
            &[q],
        )
        .unwrap();
        b.element("inv", ElementKind::Not, Delay(1), &[q], &[d])
            .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(60)).watch(q).watch(d);
        let seq = EventDriven::run(&n, &cfg).unwrap();
        let par = CompiledMode::run(&n, &cfg.clone().threads(3)).unwrap();
        assert_equivalent(&seq, &par, "dff divider");
    }

    #[test]
    fn custom_partition_gives_same_waveforms() {
        let (n, watch) = clocked_chain(5);
        let cfg = SimConfig::new(Time(40)).watch_all(watch).threads(2);
        let a = CompiledMode::run(&n, &cfg).unwrap();
        let part = round_robin(n.num_elements(), 2);
        let c = CompiledMode::run_with_partition(&n, &cfg, &part).unwrap();
        assert_equivalent(&a, &c, "partition choice");
    }

    /// Regression: a round-robin partition deliberately scatters each
    /// level's elements across threads, so parts cross level boundaries.
    /// Double-buffered apply/evaluate phases must keep waveforms identical
    /// anyway (see the `run_with_partition` docs).
    #[test]
    fn level_crossing_partition_stays_correct() {
        let (n, watch) = clocked_chain(9);
        let cfg = SimConfig::new(Time(50)).watch_all(watch).threads(3);
        let part = round_robin(n.num_elements(), 3);
        let c = CompiledMode::run_with_partition(&n, &cfg, &part).unwrap();
        // Compare against the event-driven oracle on the watched set.
        let oracle = EventDriven::run(&n, &cfg).unwrap();
        assert_equivalent(&oracle, &c, "level-crossing partition");
    }

    #[test]
    fn evaluations_count_every_element_every_step() {
        let (n, watch) = clocked_chain(4);
        // With gating off, the paper's literal behavior: 4 inverters
        // (clock generator excluded) * 10 eval steps.
        let ungated = SimConfig::new(Time(10))
            .watch_all(watch.clone())
            .without_activity_gating();
        let r = CompiledMode::run(&n, &ungated).unwrap();
        assert_eq!(r.metrics.evaluations, 4 * 10);
        assert_eq!(r.metrics.evals_skipped, 0);
        assert_eq!(r.metrics.time_steps, 11);
        // With gating on, evaluated + skipped still accounts for every
        // element every step — work is elided, never lost track of.
        let gated = SimConfig::new(Time(10)).watch_all(watch);
        let g = CompiledMode::run(&n, &gated).unwrap();
        assert_eq!(g.metrics.evaluations + g.metrics.evals_skipped, 4 * 10);
        assert_eq!(g.metrics.time_steps, 11);
    }

    #[test]
    fn gated_and_ungated_waveforms_match() {
        let (n, watch) = clocked_chain(7);
        let cfg = SimConfig::new(Time(60)).watch_all(watch).threads(2);
        let gated = CompiledMode::run(&n, &cfg).unwrap();
        let ungated =
            CompiledMode::run(&n, &cfg.clone().without_activity_gating()).unwrap();
        assert_equivalent(&gated, &ungated, "gating on/off");
    }

    #[test]
    fn partition_thread_mismatch_is_invalid_config() {
        let (n, _) = clocked_chain(2);
        let cfg = SimConfig::new(Time(5)).threads(2);
        let part = round_robin(n.num_elements(), 3);
        let err = CompiledMode::run_with_partition(&n, &cfg, &part).unwrap_err();
        match err {
            SimError::InvalidConfig { reason } => {
                assert!(reason.contains("partition parts must equal thread count"));
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn batch_base_lanes_match_scalar_run() {
        let (n, watch) = clocked_chain(5);
        let cfg = SimConfig::new(Time(40)).watch_all(watch).threads(2);
        let scalar = CompiledMode::run(&n, &cfg).unwrap();
        let batch = CompiledMode::run_batch(
            &n,
            &cfg,
            &[LaneStimulus::base(), LaneStimulus::base(), LaneStimulus::base()],
        )
        .unwrap();
        assert_eq!(batch.lanes.len(), 3);
        for (i, lane) in batch.lanes.iter().enumerate() {
            assert_equivalent(&scalar, lane, &format!("batch lane {i}"));
        }
    }

    #[test]
    fn cached_program_reuse_matches_fresh_compile() {
        let (n, watch) = clocked_chain(5);
        let cfg = SimConfig::new(Time(40)).watch_all(watch).threads(2);
        let prog = CompiledProgram::compile(&n);
        let fresh = CompiledMode::run_batch(&n, &cfg, &[LaneStimulus::base()]).unwrap();
        // Same program serves several batches.
        for _ in 0..2 {
            let reused =
                CompiledMode::run_batch_with_program(&n, &cfg, &prog, &[LaneStimulus::base()])
                    .unwrap();
            assert_equivalent(&fresh.lanes[0], &reused.lanes[0], "program reuse");
        }
    }

    #[test]
    fn mismatched_program_is_invalid_config() {
        let (n, _) = clocked_chain(3);
        let (other, _) = clocked_chain(5);
        let prog = CompiledProgram::compile(&other);
        let cfg = SimConfig::new(Time(5));
        let err = CompiledMode::run_batch_with_program(&n, &cfg, &prog, &[LaneStimulus::base()])
            .unwrap_err();
        match err {
            SimError::InvalidConfig { reason } => {
                assert!(reason.contains("different netlist"), "{reason}");
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }

    #[test]
    fn batch_rejects_bad_stimuli() {
        let (n, _) = clocked_chain(2);
        let cfg = SimConfig::new(Time(5));
        // Empty batch.
        assert!(matches!(
            CompiledMode::run_batch(&n, &cfg, &[]),
            Err(SimError::InvalidConfig { .. })
        ));
        // Override of a gate-driven node.
        let driven = n.node_by_name("n0").unwrap();
        let stim = LaneStimulus::base().drive(driven, vec![(Time(0), Value::zero(1))]);
        assert!(matches!(
            CompiledMode::run_batch(&n, &cfg, &[stim]),
            Err(SimError::InvalidConfig { .. })
        ));
        // Non-increasing schedule on the clock node.
        let clk = n.node_by_name("clk").unwrap();
        let stim = LaneStimulus::base().drive(
            clk,
            vec![(Time(3), Value::zero(1)), (Time(3), Value::ones(1))],
        );
        assert!(matches!(
            CompiledMode::run_batch(&n, &cfg, &[stim]),
            Err(SimError::InvalidConfig { .. })
        ));
    }
}
