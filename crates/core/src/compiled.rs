//! The parallel unit-delay compiled-mode engine (§3 of the paper).
//!
//! "In compiled mode, every element is executed every time step. To
//! parallelize this, the elements are statically partitioned among the
//! processors and each processor evaluates its assigned elements every
//! timestep. The processors synchronize at the end of every time-step."
//!
//! Compiled mode *imposes* unit delay: an element's outputs computed from
//! inputs at step `t` appear at step `t + 1`, regardless of the element's
//! declared delay. On circuits whose delays are all 1 this produces
//! waveforms identical to the event-driven engines; on other circuits it
//! is a different (coarser) timing model — exactly the trade-off the
//! paper discusses.
//!
//! Shared-state discipline: node values are written only by the unique
//! driving thread (plus thread 0 for generator nodes) during the *apply*
//! phase and read by everyone during the *evaluate* phase; a
//! [`SpinBarrier`] separates the phases.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parsim_logic::{evaluate, expand_generator, ElemState, Time, Value};
use parsim_netlist::partition::{element_costs, lpt, Partition};
use parsim_netlist::{Netlist, NodeId};
use parsim_queue::SpinBarrier;

use crate::config::SimConfig;
use crate::error::{SimError, StallDiagnostic};
use crate::fault::FaultAction;
use crate::metrics::{Metrics, ThreadMetrics};
use crate::shared::SharedSlice;
use crate::watchdog::{Containment, Watchdog, WatchdogVerdict};
use crate::waveform::SimResult;

/// Engine tag used in [`SimError`] values.
const ENGINE: &str = "compiled-mode";

/// Per-worker results: recorded waveform changes plus timing counters.
type WorkerOutput = (Vec<(Time, NodeId, Value)>, ThreadMetrics);

/// The parallel compiled-mode simulator.
///
/// # Examples
///
/// ```
/// use parsim_core::{CompiledMode, SimConfig};
/// use parsim_logic::{Delay, ElementKind, Time};
/// use parsim_netlist::Builder;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = Builder::new();
/// let clk = b.node("clk", 1);
/// let out = b.node("out", 1);
/// b.element("osc", ElementKind::Clock { half_period: 4, offset: 4 }, Delay(1), &[], &[clk])?;
/// b.element("inv", ElementKind::Not, Delay(1), &[clk], &[out])?;
/// let netlist = b.finish()?;
/// let r = CompiledMode::run(&netlist, &SimConfig::new(Time(20)).watch(out).threads(2))?;
/// assert!(r.waveform(out).unwrap().num_changes() > 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct CompiledMode;

impl CompiledMode {
    /// Runs with an LPT (cost-balanced) static partition over
    /// `config.threads` processors.
    ///
    /// # Errors
    ///
    /// See [`CompiledMode::run_with_partition`].
    pub fn run(netlist: &Netlist, config: &SimConfig) -> Result<SimResult, SimError> {
        let partition = lpt(&element_costs(netlist), config.threads);
        Self::run_with_partition(netlist, config, &partition)
    }

    /// Runs with a caller-chosen static partition (the paper's §3
    /// load-balance experiments vary this).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `partition.parts() !=
    /// config.threads` or the partition's element count differs from the
    /// netlist's; [`SimError::WorkerPanicked`] if any worker panicked
    /// (the step barrier is poisoned so peers unblock, and every thread
    /// is joined first); and [`SimError::Stalled`] /
    /// [`SimError::DeadlineExceeded`] if the configured watchdog
    /// cancelled the run.
    pub fn run_with_partition(
        netlist: &Netlist,
        config: &SimConfig,
        partition: &Partition,
    ) -> Result<SimResult, SimError> {
        if partition.parts() != config.threads {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "partition parts must equal thread count ({} != {})",
                    partition.parts(),
                    config.threads
                ),
            });
        }
        if partition.assignment().len() != netlist.num_elements() {
            return Err(SimError::InvalidConfig {
                reason: format!(
                    "partition does not match netlist ({} elements != {})",
                    partition.assignment().len(),
                    netlist.num_elements()
                ),
            });
        }
        let start = Instant::now();
        let end = config.end_time.ticks();
        let threads = config.threads;

        let mut watched = vec![false; netlist.num_nodes()];
        for &n in &config.watch {
            watched[n.index()] = true;
        }
        let watched = &watched;

        // Generator schedule, applied by thread 0 (generators are excluded
        // from the evaluation sweep).
        let mut gen_events: BTreeMap<u64, Vec<(usize, Value)>> = BTreeMap::new();
        for gen in netlist.generators() {
            let e = netlist.element(gen);
            let out = e.outputs()[0].index();
            for (t, v) in expand_generator(e.kind(), Time(end)) {
                gen_events.entry(t.ticks()).or_default().push((out, v));
            }
        }
        let gen_events = &gen_events;

        // Shared node values: written single-writer during apply phases.
        let values: SharedSlice<Value> = SharedSlice::new(
            netlist
                .nodes()
                .iter()
                .map(|n| Value::x(n.width()))
                .collect(),
        );
        let values = &values;
        // Per-element state: touched only by the owning thread.
        let states: SharedSlice<ElemState> = SharedSlice::new(
            netlist
                .elements()
                .iter()
                .map(|e| ElemState::init(e.kind()))
                .collect(),
        );
        let states = &states;

        let barrier = Arc::new(SpinBarrier::new(threads));
        let containment = Containment::new(threads);
        let watchdog = {
            let b = Arc::clone(&barrier);
            Watchdog::spawn(
                &containment,
                config.deadline,
                config.stall_timeout,
                move || b.poison(),
            )
        };
        let barrier = &barrier;
        // Cooperative cancellation: thread 0 copies the cancel flag into
        // `stop` during the apply phase, and everyone samples `stop` after
        // the following barrier — so all threads break at the same step.
        let stop = AtomicBool::new(false);
        let stop = &stop;
        // Last step thread 0 started, for the stall diagnostic.
        let cur_step = AtomicU64::new(0);
        let cur_step = &cur_step;

        let my_elems: Vec<Vec<usize>> = (0..threads)
            .map(|p| {
                partition
                    .members(p)
                    .into_iter()
                    .filter(|&e| !netlist.elements()[e].kind().is_generator())
                    .collect()
            })
            .collect();
        let my_elems = &my_elems;

        let mut outputs: Vec<Option<WorkerOutput>> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|p| {
                    let cont = &containment;
                    let fault = config.fault.clone();
                    scope.spawn(move || {
                        let body = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        let mut changes: Vec<(Time, NodeId, Value)> = Vec::new();
                        let mut tm = ThreadMetrics::default();
                        let mut pending: Vec<(usize, Value)> = Vec::new();
                        let mut inputs_buf: Vec<Value> = Vec::with_capacity(8);
                        let mut processed = 0u64;
                        'run: for t in 0..=end {
                            cont.beat(p);
                            if p == 0 {
                                cur_step.store(t, Ordering::Relaxed);
                                if cont.cancelled() {
                                    stop.store(true, Ordering::Release);
                                }
                            }
                            let busy_start = Instant::now();
                            // ---- apply phase ----------------------------
                            for &(node, v) in &pending {
                                // SAFETY: single writer per node (driver
                                // thread), phases separated by barriers.
                                unsafe { *values.get_mut(node) = v };
                                tm.events += 1;
                                if watched[node] {
                                    changes.push((Time(t), NodeId::from_index(node), v));
                                }
                            }
                            pending.clear();
                            if p == 0 {
                                if let Some(evs) = gen_events.get(&t) {
                                    for &(node, v) in evs {
                                        // SAFETY: generator nodes are only
                                        // written here, by thread 0.
                                        let slot = unsafe { values.get_mut(node) };
                                        if *slot != v {
                                            *slot = v;
                                            tm.events += 1;
                                            if watched[node] {
                                                changes.push((
                                                    Time(t),
                                                    NodeId::from_index(node),
                                                    v,
                                                ));
                                            }
                                        }
                                    }
                                }
                            }
                            tm.busy += busy_start.elapsed();
                            let wait_start = Instant::now();
                            barrier.wait();
                            tm.idle += wait_start.elapsed();
                            // All threads observe the same `stop` value
                            // here (set before the barrier), so they break
                            // at the same step.
                            if barrier.is_poisoned() || stop.load(Ordering::Acquire) {
                                break 'run;
                            }

                            // ---- evaluate phase -------------------------
                            let busy_start = Instant::now();
                            if t < end {
                                for &e in &my_elems[p] {
                                    if let FaultAction::Exit =
                                        fault.check(p, processed, cont.cancel_flag())
                                    {
                                        // Only reached after cancellation,
                                        // which always poisons the barrier,
                                        // so peers are not left waiting.
                                        break 'run;
                                    }
                                    processed += 1;
                                    cont.beat(p);
                                    let elem = &netlist.elements()[e];
                                    inputs_buf.clear();
                                    for &inp in elem.inputs() {
                                        // SAFETY: read-only phase.
                                        inputs_buf.push(unsafe { *values.get(inp.index()) });
                                    }
                                    // SAFETY: element owned by this thread.
                                    let state = unsafe { states.get_mut(e) };
                                    let out = evaluate(elem.kind(), &inputs_buf, state);
                                    tm.evaluations += 1;
                                    for (port, v) in out.iter() {
                                        let out_node = elem.outputs()[port].index();
                                        // SAFETY: reading a node this thread
                                        // exclusively writes.
                                        if unsafe { *values.get(out_node) } != v {
                                            pending.push((out_node, v));
                                        }
                                    }
                                }
                            }
                            tm.busy += busy_start.elapsed();
                            let wait_start = Instant::now();
                            barrier.wait();
                            tm.idle += wait_start.elapsed();
                            if barrier.is_poisoned() {
                                break 'run;
                            }
                        }
                        (changes, tm)
                        }));
                        match body {
                            Ok(out) => Some(out),
                            Err(payload) => {
                                cont.record_panic(p, payload);
                                barrier.poison();
                                None
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                outputs.push(h.join().unwrap_or_default());
            }
        });
        if let Some(w) = watchdog {
            w.finish();
        }

        if let Some((worker, payload)) = containment.take_panic() {
            return Err(SimError::WorkerPanicked {
                engine: ENGINE,
                worker,
                payload,
            });
        }
        if let Some(verdict) = containment.take_verdict() {
            let diagnostic = Box::new(StallDiagnostic {
                heartbeats: containment.heartbeat_snapshot(),
                sim_time: Some(Time(cur_step.load(Ordering::Relaxed))),
                ..StallDiagnostic::default()
            });
            return Err(match verdict {
                WatchdogVerdict::Stalled { stalled_for } => SimError::Stalled {
                    engine: ENGINE,
                    stalled_for,
                    diagnostic,
                },
                WatchdogVerdict::Deadline { deadline } => SimError::DeadlineExceeded {
                    engine: ENGINE,
                    deadline,
                    diagnostic,
                },
            });
        }

        let outputs: Vec<WorkerOutput> = outputs.into_iter().flatten().collect();
        let mut changes = Vec::new();
        let mut per_thread = Vec::with_capacity(threads);
        let mut events_processed = 0;
        let mut evaluations = 0;
        for (c, tm) in outputs {
            events_processed += tm.events;
            evaluations += tm.evaluations;
            changes.extend(c);
            per_thread.push(tm);
        }
        let metrics = Metrics {
            events_processed,
            evaluations,
            activations: evaluations, // every element "activated" each step
            time_steps: end + 1,
            events_per_step: Default::default(),
            per_thread,
            gc_chunks_freed: 0,
            wall: start.elapsed(),
        };
        Ok(SimResult::from_changes(
            netlist,
            config.end_time,
            &config.watch,
            changes,
            metrics,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::assert_equivalent;
    use crate::seq::EventDriven;
    use parsim_logic::{Delay, ElementKind};
    use parsim_netlist::partition::round_robin;
    use parsim_netlist::Builder;

    fn clocked_chain(len: usize) -> (Netlist, Vec<NodeId>) {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 5,
                offset: 5,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        let mut watch = vec![clk];
        let mut prev = clk;
        for i in 0..len {
            let n = b.node(&format!("n{i}"), 1);
            b.element(&format!("inv{i}"), ElementKind::Not, Delay(1), &[prev], &[n])
                .unwrap();
            watch.push(n);
            prev = n;
        }
        (b.finish().unwrap(), watch)
    }

    #[test]
    fn matches_event_driven_on_unit_delay_circuit() {
        let (n, watch) = clocked_chain(6);
        let cfg = SimConfig::new(Time(50)).watch_all(watch.clone());
        let seq = EventDriven::run(&n, &cfg).unwrap();
        for threads in [1, 2, 4] {
            let par = CompiledMode::run(&n, &cfg.clone().threads(threads)).unwrap();
            assert_equivalent(&seq, &par, &format!("compiled x{threads}"));
        }
    }

    #[test]
    fn dff_divider_matches() {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let rst = b.node("rst", 1);
        let q = b.node("q", 1);
        let d = b.node("d", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 4,
                offset: 4,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        b.element(
            "porst",
            ElementKind::Pulse { at: 0, width: 2 },
            Delay(1),
            &[],
            &[rst],
        )
        .unwrap();
        b.element(
            "ff",
            ElementKind::DffR { width: 1 },
            Delay(1),
            &[clk, d, rst],
            &[q],
        )
        .unwrap();
        b.element("inv", ElementKind::Not, Delay(1), &[q], &[d])
            .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(60)).watch(q).watch(d);
        let seq = EventDriven::run(&n, &cfg).unwrap();
        let par = CompiledMode::run(&n, &cfg.clone().threads(3)).unwrap();
        assert_equivalent(&seq, &par, "dff divider");
    }

    #[test]
    fn custom_partition_gives_same_waveforms() {
        let (n, watch) = clocked_chain(5);
        let cfg = SimConfig::new(Time(40)).watch_all(watch).threads(2);
        let a = CompiledMode::run(&n, &cfg).unwrap();
        let part = round_robin(n.num_elements(), 2);
        let c = CompiledMode::run_with_partition(&n, &cfg, &part).unwrap();
        assert_equivalent(&a, &c, "partition choice");
    }

    #[test]
    fn evaluations_count_every_element_every_step() {
        let (n, watch) = clocked_chain(4);
        let cfg = SimConfig::new(Time(10)).watch_all(watch);
        let r = CompiledMode::run(&n, &cfg).unwrap();
        // 4 inverters (clock generator excluded) * 10 eval steps.
        assert_eq!(r.metrics.evaluations, 4 * 10);
        assert_eq!(r.metrics.time_steps, 11);
    }

    #[test]
    fn partition_thread_mismatch_is_invalid_config() {
        let (n, _) = clocked_chain(2);
        let cfg = SimConfig::new(Time(5)).threads(2);
        let part = round_robin(n.num_elements(), 3);
        let err = CompiledMode::run_with_partition(&n, &cfg, &part).unwrap_err();
        match err {
            SimError::InvalidConfig { reason } => {
                assert!(reason.contains("partition parts must equal thread count"));
            }
            other => panic!("expected InvalidConfig, got {other}"),
        }
    }
}
