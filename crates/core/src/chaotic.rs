//! The asynchronous ("semi-chaotic") lock-free engine — the paper's
//! headline contribution (§4).
//!
//! "Here 'asynchronous' means that the processors never have to wait for
//! any of the other processors — there are no synchronization locks or
//! barriers." The algorithm processes the circuit *by elements* rather
//! than by time steps:
//!
//! 1. **Initialization**: generator and constant nodes are evaluated for
//!    all time (their full event schedules are appended and their valid
//!    times set to the end of simulation).
//! 2. Each processor independently: atomically removes an element from
//!    the distributed activation grid, replays as much of its input
//!    behavior as the inputs' *valid times* allow (batching many events
//!    per activation), appends the resulting output events, extends the
//!    outputs' valid times, and stimulates fan-out elements at most once
//!    (the [`ActivationState`] machine).
//!
//! Valid times are updated *incrementally*, so the Chandy–Misra deadlock
//! never arises; storage for consumed events is reclaimed concurrently
//! ("this garbage collection may also be done asynchronously"); and the
//! controlling-value lookahead extends an AND/OR gate's output validity
//! past unknown inputs, exactly as the paper's example ("if e2 is an AND
//! gate and node 2 is 0 from time 0 until time 25 ... any events on node 4
//! between times 0 and 25 can be ignored").
//!
//! # Lock-freedom inventory
//!
//! - element scheduling: a worker-private local LIFO deque backed by an
//!   n×n single-reader/single-writer FIFO grid
//!   ([`parsim_queue::grid()`]) whose slots carry id *batches*;
//! - per-node behavior: an append-only chunked event list
//!   ([`crate::behavior`]) with a single writer (the node's driver,
//!   exclusive via the activation machine) and release/acquire
//!   publication;
//! - valid times: monotone `AtomicU64`s;
//! - at-most-once stimulation: [`ActivationState`] CAS machine;
//! - termination: a global pending-work counter;
//! - garbage collection: per-fanout consumption cursors, chunks freed by
//!   the (exclusive) writer once every consumer has moved past them.
//!
//! No mutex, no barrier, no rollback, anywhere on the hot path.
//!
//! Each entry in this inventory is verified by a deterministic
//! interleaving exploration (the `parsim-model-check` crate): the grid's
//! SPSC slots, the id batches, and the activation machine in
//! `crates/queue/tests/model.rs`; the behavior list's publication,
//! GC-cursor, and `valid_until` protocols in
//! `crates/core/tests/model_chaotic.rs`. DESIGN.md §9 maps every entry to
//! its model test.
//!
//! # Locality-aware scheduling
//!
//! A pure hash scatter sends *every* activation — including an element's
//! own fan-out — through the grid, so the common producer→consumer hop
//! pays a cross-core message even when both elements could run on the
//! same processor. Instead, elements are assigned owner processors by
//! fan-out cone clustering
//! ([`parsim_netlist::partition::cone_cluster`]); each worker seeds its
//! run with its owned initial activations and checks a bounded local
//! LIFO deque before its grid column. An element stimulating an owned
//! fan-out pushes locally (hot in cache, no atomics beyond the
//! activation CAS); foreign fan-out accumulates into per-destination
//! [`IdBatch`] buffers flushed at activation end, so one SPSC slot
//! carries many element ids. First-touch pipelining wakes flush eagerly
//! — batching must not delay the paper's producer/consumer overlap. The
//! idle branch escalates through a truncated exponential backoff
//! ([`Backoff`]) instead of burning a hardware thread. All of it is
//! observable via [`Metrics::locality`] and ablatable via
//! [`SimConfig::without_local_queue`] /
//! [`SimConfig::with_partition`](crate::SimConfig).

#[cfg(not(parsim_model))]
use std::rc::Rc;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Instant;

use parsim_checkpoint::{EngineSnapshot, PendingEvent};
use parsim_logic::{evaluate, expand_generator, transition_delay, Bit, Delay, ElemState, ElementKind, Time, Value};
use parsim_netlist::partition::cone_cluster;
use parsim_netlist::{Netlist, NodeId};
#[cfg(not(parsim_model))]
use parsim_queue::{ArenaDomain, WorkerArena};
use parsim_queue::{grid, ActivationState, Backoff, GridSender, IdBatch};
use parsim_trace::{EventKind, Tracer, WorkerTracer};

use parsim_telemetry::{Counter, Gauge, Shard};

use crate::behavior::{ChunkAlloc, Cursor, NodeState};
use crate::checkpoint::{new_run_ctx, SegmentOut, SegmentSpec};
use crate::config::SimConfig;
use crate::error::{SimError, StallDiagnostic};
use crate::fault::FaultAction;
use crate::metrics::{ArenaCounters, LocalityMetrics, Metrics, ThreadMetrics};
use crate::shared::SharedSlice;
use crate::watchdog::{Containment, Watchdog, WatchdogVerdict};
use crate::waveform::SimResult;

/// Engine tag used in [`SimError`] values.
const ENGINE: &str = "chaotic-async";

/// Per-worker results: recorded waveform changes, timing counters, the
/// worker's drained trace ring, and the events the worker computed beyond
/// the segment cut (checkpoint capture mode).
type WorkerOutput = (
    Vec<(Time, NodeId, Value)>,
    ThreadMetrics,
    WorkerTracer,
    Vec<PendingEvent>,
);

/// How many activations a worker runs between telemetry shard flushes.
/// The chaotic hot loop has no step boundary to piggyback on, so counter
/// publishes are micro-batched to keep them off the per-event path.
const TELEMETRY_FLUSH_EVERY: u64 = 256;

/// Per-worker cursors of already-published counter totals; a flush
/// publishes only the delta since the previous one.
#[derive(Default)]
struct Published {
    events: u64,
    evals: u64,
    acts: u64,
    local_hits: u64,
    grid_sends: u64,
    grid_batches: u64,
    steals: u64,
    parks: u64,
}

/// Publishes the delta between a worker's running totals and its last
/// flush. Single-writer relaxed adds; safe to call at any loop point.
fn flush_shard(shard: &Shard, tm: &ThreadMetrics, acts: u64, p: &mut Published) {
    shard.add(Counter::EventsProcessed, tm.events - p.events);
    p.events = tm.events;
    shard.add(Counter::Evaluations, tm.evaluations - p.evals);
    p.evals = tm.evaluations;
    shard.add(Counter::Activations, acts - p.acts);
    p.acts = acts;
    shard.add(Counter::LocalHits, tm.sched.local_hits - p.local_hits);
    p.local_hits = tm.sched.local_hits;
    shard.add(Counter::GridSends, tm.sched.grid_sends - p.grid_sends);
    p.grid_sends = tm.sched.grid_sends;
    shard.add(Counter::GridBatches, tm.sched.grid_batches - p.grid_batches);
    p.grid_batches = tm.sched.grid_batches;
    shard.add(Counter::Steals, tm.sched.steals - p.steals);
    p.steals = tm.sched.steals;
    shard.add(Counter::BackoffParks, tm.sched.backoff_parks - p.parks);
    p.parks = tm.sched.backoff_parks;
}

/// Push-side bound of the local LIFO deque: fan-out pushes beyond this
/// divert to the owner's grid column instead, so one worker cannot hoard
/// unbounded work its peers could be executing. Incoming grid batches
/// always append (they must not be dropped), so occupancy is bounded by
/// `LOCAL_CAP` plus the size of the worker's initial owned set plus one
/// batch.
const LOCAL_CAP: usize = 1024;

/// Per-worker scheduling endpoint: the worker-private LIFO deque, the
/// per-destination batch buffers, and this worker's grid sender.
struct Sched {
    /// This worker's index (= its owner id in the partition).
    w: usize,
    tx: GridSender<IdBatch>,
    /// Worker-private LIFO deque, checked before the grid column.
    local: Vec<u32>,
    /// One fill-in-progress batch per destination worker, flushed at
    /// activation end (or immediately when full / for first-touch wakes).
    outbox: Vec<IdBatch>,
    /// `false` reproduces the pure-grid scatter (ablation mode): every
    /// activation travels as a single-id round-robin batch.
    use_local: bool,
    #[cfg(feature = "chaos")]
    chaos: parsim_queue::chaos::ChaosState,
}

impl Sched {
    fn new(w: usize, tx: GridSender<IdBatch>, local: Vec<u32>, use_local: bool) -> Sched {
        let n = tx.peers();
        Sched {
            w,
            tx,
            local,
            outbox: (0..n).map(|_| IdBatch::new()).collect(),
            use_local,
            #[cfg(feature = "chaos")]
            chaos: parsim_queue::chaos::ChaosState::new("chaotic-sched"),
        }
    }

    /// Routes one freshly won activation. Owned elements under the cap
    /// push onto the local deque; everything else accumulates in the
    /// destination's batch (a full batch flushes immediately).
    fn enqueue(&mut self, ctx: &Ctx<'_>, e: u32, tm: &mut ThreadMetrics, tr: &mut WorkerTracer) {
        if !self.use_local {
            tm.sched.grid_sends += 1;
            tm.sched.grid_batches += 1;
            self.tx.send_traced(IdBatch::single(e), tr);
            return;
        }
        #[cfg(feature = "chaos")]
        self.chaos.maybe_yield();
        let dest = ctx.owner[e as usize] as usize;
        if dest == self.w && self.local.len() < LOCAL_CAP {
            tm.sched.local_hits += 1;
            tr.instant(EventKind::LocalHit, e);
            self.local.push(e);
            return;
        }
        // Foreign fan-out — or local overflow diverted through the grid
        // so idle peers cannot starve while this worker hoards work.
        tm.sched.grid_sends += 1;
        if !self.outbox[dest].push(e) {
            self.flush_one(dest, tm, tr);
            let pushed = self.outbox[dest].push(e);
            debug_assert!(pushed, "a freshly flushed batch accepts an id");
        }
    }

    /// Like [`enqueue`](Sched::enqueue), but the destination's batch
    /// flushes immediately afterwards: used for first-touch wakes, where
    /// batching latency would defeat the paper's producer/consumer
    /// pipelining.
    fn enqueue_eager(
        &mut self,
        ctx: &Ctx<'_>,
        e: u32,
        tm: &mut ThreadMetrics,
        tr: &mut WorkerTracer,
    ) {
        self.enqueue(ctx, e, tm, tr);
        if self.use_local {
            let dest = ctx.owner[e as usize] as usize;
            self.flush_one(dest, tm, tr);
        }
    }

    /// Sends one destination's fill-in-progress batch, if non-empty.
    fn flush_one(&mut self, dest: usize, tm: &mut ThreadMetrics, tr: &mut WorkerTracer) {
        if self.outbox[dest].is_empty() {
            return;
        }
        #[cfg(feature = "chaos")]
        self.chaos.maybe_yield();
        let batch = self.outbox[dest].take();
        tm.sched.grid_batches += 1;
        self.tx.send_to_traced(dest, batch, tr);
    }

    /// Flushes every destination batch. Called at activation end, so no
    /// foreign activation waits longer than one element run.
    fn flush_all(&mut self, tm: &mut ThreadMetrics, tr: &mut WorkerTracer) {
        for dest in 0..self.outbox.len() {
            self.flush_one(dest, tm, tr);
        }
    }
}

/// Static per-element wiring resolved once at startup.
struct ElemMeta {
    kind: ElementKind,
    rise: Delay,
    fall: Delay,
    /// min(rise, fall): the conservative validity increment.
    delay: u64,
    /// Per input port: (node index, position in that node's fanout list).
    inputs: Vec<(u32, u32)>,
    /// Output node indices.
    outputs: Vec<u32>,
    /// Controlling-value lookahead applies (scalar gate with a
    /// controlling value).
    lookahead_ok: bool,
}

/// Mutable per-element run state, exclusive via the activation machine.
struct ElemRun {
    cursors: Vec<Cursor>,
    cur_vals: Vec<Value>,
    state: ElemState,
    last_out: Vec<Value>,
    /// Last appended event time per output port (monotone transport).
    last_te: Vec<u64>,
    /// Value of each output node at the segment cut: the last event value
    /// appended *within* the cut (unlike `last_out`, which also tracks
    /// beyond-cut overflow events). Read post-join for snapshot capture.
    cut_val: Vec<Value>,
}

/// Everything a worker needs, shared immutably.
struct Ctx<'a> {
    netlist: &'a Netlist,
    nodes: Vec<NodeState>,
    meta: Vec<ElemMeta>,
    runs: SharedSlice<ElemRun>,
    acts: Vec<ActivationState>,
    /// Element index -> slot in `acts` (partition-grouped layout).
    act_of: Vec<u32>,
    pending: AtomicI64,
    activations: AtomicU64,
    chunks_freed: AtomicU64,
    /// Chunk-allocation totals flushed by each worker's `ChunkAlloc` at
    /// thread end (plus the build-phase tallies, folded in post-join).
    chunk_allocs: AtomicU64,
    chunk_frees: AtomicU64,
    watched: Vec<bool>,
    /// Owner worker per element (empty when `use_local` is off).
    owner: Vec<u32>,
    /// Local-first scheduling enabled
    /// ([`SimConfig::local_queue`](crate::SimConfig)).
    use_local: bool,
    /// This segment's cut: events and validity never pass it.
    end: u64,
    /// The run's horizon (`config.end_time`): events in `(end, horizon]`
    /// overflow into the checkpoint snapshot when `capture` is on, and
    /// are dropped (without bookkeeping) otherwise — matching what an
    /// uninterrupted run would keep or drop.
    horizon: u64,
    capture: bool,
    lookahead: bool,
    gc: bool,
    /// Declared last: the domain must outlive `nodes` (arena-backed
    /// chunks and SoA blocks live in its spans) and drop-order is
    /// declaration order.
    #[cfg(not(parsim_model))]
    domain: Option<ArenaDomain>,
}

impl Ctx<'_> {
    /// The activation flag for element `e` (partition-grouped layout).
    #[inline(always)]
    fn act(&self, e: usize) -> &ActivationState {
        &self.acts[self.act_of[e] as usize]
    }
}

/// The asynchronous lock-free simulator.
///
/// Produces waveforms identical to [`EventDriven`](crate::EventDriven) on
/// every circuit, at any thread count.
///
/// # Examples
///
/// See the [crate-level example](crate).
#[derive(Debug, Clone, Copy, Default)]
pub struct ChaoticAsync;

impl ChaoticAsync {
    /// Runs the simulation on `config.threads` worker threads.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::WorkerPanicked`] if any worker panicked (all
    /// peers are cancelled and joined first), and
    /// [`SimError::Stalled`] / [`SimError::DeadlineExceeded`] if the
    /// watchdog configured via
    /// [`SimConfig::stall_timeout`](crate::SimConfig) /
    /// [`SimConfig::deadline`](crate::SimConfig) cancelled the run.
    pub fn run(netlist: &Netlist, config: &SimConfig) -> Result<SimResult, SimError> {
        let ctx = new_run_ctx(config);
        let out = Self::run_segment(netlist, config, SegmentSpec::whole(config, ctx.clone()))?;
        let mut result = out.into_result(netlist, config);
        result.telemetry = Some(ctx.finish());
        Ok(result)
    }

    /// Runs one segment — the whole run when `seg` is
    /// [`SegmentSpec::whole`]. The chaotic engine's quiescence property
    /// is what makes its cuts consistent: the run terminates only when
    /// every node's `valid_until` has reached the cut, so every element
    /// has replayed every input event within the segment and the
    /// captured per-element state is exactly what a fresh engine warm-
    /// started from it needs. Resume seeds the behavior lists with the
    /// snapshot's in-flight events and the re-expanded generator
    /// schedules past the previous cut; cursors start at the (empty)
    /// list heads with the snapshot's node values as their baselines.
    pub(crate) fn run_segment(
        netlist: &Netlist,
        config: &SimConfig,
        seg: SegmentSpec<'_>,
    ) -> Result<SegmentOut, SimError> {
        let start = Instant::now();
        let horizon = config.end_time.ticks();
        let end = seg.cut;
        let t0 = seg.resume.map(|s| s.time);
        let capture = seg.capture;
        let n_threads = config.threads;

        let mut watched = vec![false; netlist.num_nodes()];
        for &w in &config.watch {
            watched[w.index()] = true;
        }

        // ---- static wiring ------------------------------------------------
        let mut fanout_pos: Vec<Vec<u32>> = vec![Vec::new(); netlist.num_elements()];
        for node in netlist.nodes() {
            for (k, &(elem, port)) in node.fanout().iter().enumerate() {
                let list = &mut fanout_pos[elem.index()];
                if list.len() <= port as usize {
                    list.resize(port as usize + 1, 0);
                }
                list[port as usize] = k as u32;
            }
        }
        let meta: Vec<ElemMeta> = netlist
            .iter_elements()
            .map(|(id, e)| {
                let inputs = e
                    .inputs()
                    .iter()
                    .enumerate()
                    .map(|(port, &node)| (node.index() as u32, fanout_pos[id.index()][port]))
                    .collect();
                let scalar = e.inputs().iter().all(|&i| netlist.node(i).width() == 1)
                    && e.outputs().iter().all(|&o| netlist.node(o).width() == 1);
                ElemMeta {
                    kind: e.kind().clone(),
                    rise: e.rise_delay(),
                    fall: e.fall_delay(),
                    delay: e.min_delay().ticks(),
                    inputs,
                    outputs: e.outputs().iter().map(|&o| o.index() as u32).collect(),
                    lookahead_ok: scalar && e.kind().controlling().is_some(),
                }
            })
            .collect();

        // Owner assignment: the explicitly configured partition if any,
        // else fan-out cone clustering. Unused (and empty) when the local
        // queue is ablated — the grid scatter needs no owners. Computed
        // before the nodes are built so the SoA scheduling-state blocks
        // below can be grouped partition-contiguously.
        let use_local = config.local_queue;
        let owner: Vec<u32> = if use_local {
            match &config.partition {
                Some(p) => {
                    assert_eq!(
                        p.parts(),
                        n_threads,
                        "SimConfig::with_partition: part count must equal the thread count"
                    );
                    p.assignment().to_vec()
                }
                None => cone_cluster(netlist, n_threads).assignment().to_vec(),
            }
        } else {
            Vec::new()
        };

        // The arena domain for this run: per-worker slab arenas plus the
        // builder slot used by this (constructing) thread. `None` under
        // `--no-arena` (and nonexistent under the model cfg, where every
        // chunk comes from the global allocator).
        #[cfg(not(parsim_model))]
        let domain = if config.arena {
            Some(ArenaDomain::new(n_threads))
        } else {
            None
        };
        #[cfg(not(parsim_model))]
        let mut seed_alloc = match &domain {
            Some(d) => ChunkAlloc::arena(Rc::new(d.builder())),
            None => ChunkAlloc::global(),
        };
        #[cfg(parsim_model)]
        let mut seed_alloc = ChunkAlloc::global();

        #[allow(unused_mut)]
        let mut nodes: Vec<NodeState> = netlist
            .nodes()
            .iter()
            .map(|nd| NodeState::new(nd.fanout().len(), &mut seed_alloc))
            .collect();
        // Cache-line-packed SoA scheduling state: each node's
        // `valid_until` and consumption cursors move into blocks carved
        // partition-contiguously from the owning worker's arena. Must
        // happen before any validity store below (the slots start at 0).
        #[cfg(not(parsim_model))]
        if let Some(d) = &domain {
            install_soa_slots(&mut nodes, netlist, &owner, d);
        }

        // ---- initialization (§4 step 1) -----------------------------------
        // Per-thread change buffers; index 0 doubles as the init buffer.
        let mut init_changes: Vec<(Time, NodeId, Value)> = Vec::new();
        let mut events_seed = 0u64;
        // Per-node value at this segment's cut, maintained for snapshot
        // capture: the baseline (snapshot values or all-X), overwritten by
        // the generator expansion below and — post-join — by each logic
        // driver's `cut_val`.
        let mut base_vals: Vec<Value> = match seg.resume {
            Some(snap) => snap.values.clone(),
            None => netlist
                .nodes()
                .iter()
                .map(|nd| Value::x(nd.width()))
                .collect(),
        };
        // Snapshot events beyond even this segment's cut: carried through
        // to the next snapshot unexecuted.
        let mut carry: Vec<PendingEvent> = Vec::new();
        for (i, nd) in netlist.nodes().iter().enumerate() {
            match nd.driver() {
                Some((drv, _)) if netlist.element(drv).kind().is_generator() => {
                    // Expansion stops at the cut; a resumed segment
                    // re-expands and keeps only events past the previous
                    // cut (the earlier ones are already baked into the
                    // snapshot's node values).
                    for (t, v) in expand_generator(netlist.element(drv).kind(), Time(end)) {
                        base_vals[i] = v;
                        if t0.is_some_and(|t0| t.ticks() <= t0) {
                            continue;
                        }
                        // SAFETY: pre-spawn exclusive access.
                        unsafe { nodes[i].push(t.ticks(), v, &mut seed_alloc) };
                        let is_initial_x =
                            t0.is_none() && t == Time::ZERO && v == Value::x(nd.width());
                        if !is_initial_x {
                            events_seed += 1;
                            if watched[i] {
                                init_changes.push((t, NodeId::from_index(i), v));
                            }
                        }
                    }
                    nodes[i].valid_until().store(end, Ordering::Relaxed);
                }
                Some(_) => match t0 {
                    // Driven by logic: implicit X at time zero.
                    None => unsafe { nodes[i].push(0, Value::x(nd.width()), &mut seed_alloc) },
                    // Resumed: the cursor baselines carry the value at the
                    // previous cut; behavior is known through it.
                    Some(t0) => nodes[i].valid_until().store(t0, Ordering::Relaxed),
                },
                None => {
                    // Floating: X forever, known for all time.
                    if t0.is_none() {
                        unsafe { nodes[i].push(0, Value::x(nd.width()), &mut seed_alloc) };
                    }
                    nodes[i].valid_until().store(end, Ordering::Relaxed);
                }
            }
        }
        // Re-inject the snapshot's in-flight events — computed before the
        // previous cut for delivery after it. The snapshot keeps them
        // sorted by time, so each node's append-only list stays monotone.
        // Watched ones are recorded *here*: the capturing segment routed
        // them into the snapshot instead of its change log.
        if let Some(snap) = seg.resume {
            for ev in &snap.pending {
                if ev.time > end {
                    carry.push(ev.clone());
                    continue;
                }
                let i = ev.node as usize;
                // SAFETY: pre-spawn exclusive access.
                unsafe { nodes[i].push(ev.time, ev.value, &mut seed_alloc) };
                events_seed += 1;
                if watched[i] {
                    init_changes.push((Time(ev.time), NodeId::from_index(i), ev.value));
                }
            }
        }

        let baseline = |node: u32| match seg.resume {
            Some(snap) => snap.values[node as usize],
            None => Value::x(netlist.nodes()[node as usize].width()),
        };
        let runs: SharedSlice<ElemRun> = SharedSlice::new(
            meta.iter()
                .enumerate()
                .map(|(e, m)| ElemRun {
                    cursors: m
                        .inputs
                        .iter()
                        .map(|&(node, _)| Cursor::new(&nodes[node as usize], baseline(node)))
                        .collect(),
                    cur_vals: m.inputs.iter().map(|&(node, _)| baseline(node)).collect(),
                    state: match seg.resume {
                        Some(snap) => snap.elem_states[e].clone(),
                        None => ElemState::init(&m.kind),
                    },
                    last_out: m
                        .outputs
                        .iter()
                        .map(|&o| match seg.resume {
                            Some(snap) => snap.last_scheduled[o as usize],
                            None => Value::x(netlist.nodes()[o as usize].width()),
                        })
                        .collect(),
                    last_te: m
                        .outputs
                        .iter()
                        .map(|&o| match seg.resume {
                            Some(snap) => snap.last_sched_time[o as usize],
                            None => 0,
                        })
                        .collect(),
                    cut_val: m.outputs.iter().map(|&o| base_vals[o as usize]).collect(),
                })
                .collect(),
        );
        // Injected in-flight events move their nodes' values at the cut:
        // fold them into the drivers' `cut_val` (last one per node wins —
        // the pending list is time-sorted).
        if let Some(snap) = seg.resume {
            for ev in &snap.pending {
                if ev.time > end {
                    continue;
                }
                let node = NodeId::from_index(ev.node as usize);
                if let Some((drv, port)) = netlist.node(node).driver() {
                    // SAFETY: pre-spawn exclusive access.
                    unsafe { runs.get_mut(drv.index()) }.cut_val[port as usize] = ev.value;
                }
            }
        }

        // Build-phase chunk traffic folds into the run totals; the
        // builder arena must drop before workers spawn so its slab
        // counters are flushed (and its spans graveyarded) by the time
        // the post-join `stats()` harvest runs.
        let seed_chunk_allocs = seed_alloc.allocs;
        let seed_chunk_frees = seed_alloc.frees;
        drop(seed_alloc);

        // Activation flags, grouped by owning worker with a cache line's
        // worth of padding between partitions so one partition's CAS
        // traffic does not false-share its neighbor's flags. `act_of`
        // maps element index -> slot (the identity layout when the local
        // queue — and with it the partition — is ablated).
        let n_elems = netlist.num_elements();
        let (acts, act_of): (Vec<ActivationState>, Vec<u32>) = if use_local {
            const ACT_PAD: usize = 64;
            let mut groups: Vec<Vec<u32>> = vec![Vec::new(); n_threads];
            for e in 0..n_elems {
                groups[owner[e] as usize].push(e as u32);
            }
            let mut acts =
                Vec::with_capacity(n_elems + ACT_PAD * n_threads.saturating_sub(1));
            let mut act_of = vec![0u32; n_elems];
            for (w, group) in groups.iter().enumerate() {
                if w > 0 {
                    acts.extend((0..ACT_PAD).map(|_| ActivationState::new()));
                }
                for &e in group {
                    act_of[e as usize] = acts.len() as u32;
                    acts.push(ActivationState::new());
                }
            }
            (acts, act_of)
        } else {
            (
                (0..n_elems).map(|_| ActivationState::new()).collect(),
                (0..n_elems as u32).collect(),
            )
        };

        let ctx = Ctx {
            netlist,
            nodes,
            meta,
            runs,
            acts,
            act_of,
            pending: AtomicI64::new(0),
            activations: AtomicU64::new(0),
            chunks_freed: AtomicU64::new(0),
            chunk_allocs: AtomicU64::new(seed_chunk_allocs),
            chunk_frees: AtomicU64::new(seed_chunk_frees),
            watched,
            owner,
            use_local,
            end,
            horizon,
            capture,
            lookahead: config.lookahead,
            gc: config.gc,
            #[cfg(not(parsim_model))]
            domain,
        };

        // Initial activation: every non-generator element (matches the
        // other engines' time-zero initialization pass).
        let (mut senders, receivers) = grid::<IdBatch>(n_threads);
        let mut init_work: Vec<Vec<u32>> = vec![Vec::new(); n_threads];
        {
            for (id, e) in netlist.iter_elements() {
                if e.kind().is_generator() {
                    continue;
                }
                assert!(ctx.act(id.index()).try_activate());
                ctx.pending.fetch_add(1, Ordering::AcqRel);
                if use_local {
                    // Seed each worker's local deque with its owned
                    // elements: initial and steady-state placement agree,
                    // so a cone's chain reaction starts — and stays — on
                    // its owner.
                    init_work[ctx.owner[id.index()] as usize].push(id.index() as u32);
                } else {
                    // Hash-scatter the initial activations: plain
                    // round-robin can align pathologically with
                    // generated-circuit structure (e.g. every column-head
                    // of an inverter array landing on one processor when
                    // the chain depth divides the thread count).
                    let target =
                        (id.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32;
                    senders[(target % n_threads as u64) as usize]
                        .send(IdBatch::single(id.index() as u32));
                }
            }
            // The deque pops LIFO, so reverse each seed: pops then follow
            // ascending element order (builder order, roughly topological)
            // and each element finds its inputs already valid. Seeding in
            // pop-is-reverse-topological order costs an order of magnitude
            // in wasted early activations on deep circuits.
            for work in &mut init_work {
                work.reverse();
            }
        }

        // ---- workers -------------------------------------------------------
        // No barrier to poison here: peers that lose their feeder spin in
        // the empty-queue branch, where they poll the cancel flag.
        let containment = Containment::new(n_threads);
        let watchdog = Watchdog::spawn(
            &containment,
            config.deadline,
            config.stall_timeout,
            seg.telemetry.sampler(),
            || {},
        );
        let registry = &seg.telemetry.registry;
        // Build-phase events (generator expansion) happened on this
        // thread, before any worker existed: they belong to the driver.
        registry.driver().add(Counter::EventsProcessed, events_seed);
        let ctx = &ctx;
        let tracer = Tracer::new(config.trace.as_ref());
        let tracer_ref = &tracer;
        let mut outputs: Vec<Option<WorkerOutput>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = senders
                .into_iter()
                .zip(receivers)
                .zip(init_work)
                .enumerate()
                .map(|(w, ((tx, mut rx), init))| {
                    let cont = &containment;
                    let fault = config.fault.clone();
                    scope.spawn(move || {
                        let body = std::panic::catch_unwind(
                            std::panic::AssertUnwindSafe(|| {
                                let mut changes: Vec<(Time, NodeId, Value)> = Vec::new();
                                let mut overflow: Vec<PendingEvent> = Vec::new();
                                let mut tr = tracer_ref.worker(w);
                                let mut tm = ThreadMetrics::default();
                                // Seeded owned activations count as local
                                // hits: they were placed without touching
                                // the grid.
                                tm.sched.local_hits += init.len() as u64;
                                let shard = registry.worker(w);
                                let mut published = Published::default();
                                let mut my_acts = 0u64;
                                let mut since_flush = 0u64;
                                let mut sched = Sched::new(w, tx, init, ctx.use_local);
                                // Created on this thread so slab spans
                                // are first-touched by their owner; the
                                // drop (even via unwind) graveyards the
                                // spans and flushes slab counters.
                                let mut mem = WorkerMem::new(ctx, w);
                                #[cfg(not(parsim_model))]
                                if let Some(a) = &mem.arena {
                                    // SAFETY: sched and its senders live
                                    // and die on this thread; ctx.domain
                                    // outlives the thread scope (and so
                                    // every segment retired into it).
                                    unsafe { sched.tx.use_arena(a) };
                                }
                                let mut backoff = Backoff::new();
                                let mut idle_since: Option<Instant> = None;
                                let mut processed = 0u64;
                                loop {
                                    if cont.cancelled() {
                                        break;
                                    }
                                    // Local-first: drain the private deque,
                                    // then pull one batch off the grid
                                    // column and run its ids from the deque.
                                    let next = match sched.local.pop() {
                                        Some(e) => Some(e),
                                        None => rx.recv_traced(&mut tr).and_then(|batch| {
                                            sched.local.extend_from_slice(batch.as_slice());
                                            sched.local.pop()
                                        }),
                                    };
                                    match next {
                                        Some(e) => {
                                            if let Some(t0) = idle_since.take() {
                                                tm.idle += t0.elapsed();
                                            }
                                            backoff.reset();
                                            if let FaultAction::Exit = fault.check(
                                                w,
                                                processed,
                                                cont.cancel_flag(),
                                            ) {
                                                break;
                                            }
                                            processed += 1;
                                            cont.beat(w);
                                            let busy = Instant::now();
                                            let e = e as usize;
                                            if ctx.use_local && ctx.owner[e] as usize != w {
                                                tm.sched.steals += 1;
                                                tr.instant(EventKind::Steal, e as u32);
                                            }
                                            tr.begin(EventKind::ActivationReplay, e as u32);
                                            ctx.act(e).begin_run();
                                            ctx.activations.fetch_add(1, Ordering::Relaxed);
                                            my_acts += 1;
                                            // Epoch-pinned while the run
                                            // may traverse cross-worker
                                            // chunks; unpinned before the
                                            // idle branch so peers' grace
                                            // periods keep advancing.
                                            mem.pin();
                                            // SAFETY: activation machine grants
                                            // exclusive element access.
                                            unsafe {
                                                run_element(
                                                    ctx,
                                                    e,
                                                    &mut sched,
                                                    &mut changes,
                                                    &mut overflow,
                                                    &mut mem.alloc,
                                                    &mut tm,
                                                    &mut tr,
                                                )
                                            };
                                            mem.unpin();
                                            if ctx.act(e).finish_run() {
                                                sched.enqueue(ctx, e as u32, &mut tm, &mut tr);
                                            } else {
                                                ctx.pending.fetch_sub(1, Ordering::AcqRel);
                                            }
                                            // One activation's foreign
                                            // fan-out rides together: flush
                                            // now, so no peer waits longer
                                            // than one element run.
                                            sched.flush_all(&mut tm, &mut tr);
                                            tr.end(EventKind::ActivationReplay);
                                            tr.counter(
                                                EventKind::QueueDepth,
                                                sched.local.len() as u32,
                                            );
                                            tm.busy += busy.elapsed();
                                            since_flush += 1;
                                            if since_flush >= TELEMETRY_FLUSH_EVERY {
                                                since_flush = 0;
                                                flush_shard(&shard, &tm, my_acts, &mut published);
                                                shard.set_gauge(
                                                    Gauge::QueueDepth,
                                                    sched.local.len() as u64,
                                                );
                                            }
                                        }
                                        None => {
                                            if ctx.pending.load(Ordering::Acquire) == 0 {
                                                break;
                                            }
                                            if idle_since.is_none() {
                                                idle_since = Some(Instant::now());
                                                tr.instant(EventKind::Heartbeat, 0);
                                                // Going idle is off the hot
                                                // path: flush so a sampler
                                                // snapshot taken during the
                                                // lull sees current totals.
                                                flush_shard(&shard, &tm, my_acts, &mut published);
                                                shard.set_gauge(Gauge::QueueDepth, 0);
                                                // Reclamation progress
                                                // even when this worker
                                                // stops allocating.
                                                mem.maintain();
                                            }
                                            if backoff.snooze_traced(&mut tr) {
                                                tm.sched.backoff_parks += 1;
                                            }
                                        }
                                    }
                                }
                                // Close the trailing idle span on every
                                // exit path (termination, cancellation,
                                // fault exit) — it used to leak unless the
                                // worker happened to pop one more element.
                                if let Some(t0) = idle_since.take() {
                                    tm.idle += t0.elapsed();
                                }
                                flush_shard(&shard, &tm, my_acts, &mut published);
                                shard.add(Counter::BusyNs, tm.busy.as_nanos() as u64);
                                shard.add(Counter::IdleNs, tm.idle.as_nanos() as u64);
                                ctx.chunk_allocs
                                    .fetch_add(mem.alloc.allocs, Ordering::Relaxed);
                                ctx.chunk_frees
                                    .fetch_add(mem.alloc.frees, Ordering::Relaxed);
                                (changes, tm, tr, overflow)
                            }),
                        );
                        match body {
                            Ok(out) => Some(out),
                            Err(payload) => {
                                cont.record_panic(w, payload);
                                None
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                outputs.push(h.join().unwrap_or_default());
            }
        });
        if let Some(w) = watchdog {
            w.finish();
        }

        if let Some((worker, payload)) = containment.take_panic() {
            return Err(SimError::WorkerPanicked {
                engine: ENGINE,
                worker,
                payload,
            });
        }
        if let Some(verdict) = containment.take_verdict() {
            // Iterate elements (not slots): the partition-grouped `acts`
            // layout holds always-idle padding entries.
            let idle = (0..netlist.num_elements())
                .filter(|&e| ctx.act(e).is_idle())
                .count();
            let diagnostic = Box::new(StallDiagnostic {
                heartbeats: containment.heartbeat_snapshot(),
                pending_activations: Some(ctx.pending.load(Ordering::Acquire)),
                activations_idle: Some(idle),
                activations_pending: Some(netlist.num_elements() - idle),
                min_valid_until: ctx
                    .nodes
                    .iter()
                    .map(|n| n.valid_until().load(Ordering::Acquire))
                    .min()
                    .map(Time),
                sim_time: None,
                last_checkpoint_step: None,
            });
            return Err(match verdict {
                WatchdogVerdict::Stalled { stalled_for } => SimError::Stalled {
                    engine: ENGINE,
                    stalled_for,
                    diagnostic,
                },
                WatchdogVerdict::Deadline { deadline } => SimError::DeadlineExceeded {
                    engine: ENGINE,
                    deadline,
                    diagnostic,
                },
            });
        }

        let mut changes = init_changes;
        let outputs: Vec<WorkerOutput> = outputs.into_iter().flatten().collect();
        let mut per_thread = Vec::with_capacity(n_threads);
        let mut evaluations = 0;
        let mut events_processed = events_seed;
        let mut locality = LocalityMetrics::default();
        let mut worker_tracers = Vec::with_capacity(n_threads);
        for (c, tm, wt, of) in outputs {
            evaluations += tm.evaluations;
            events_processed += tm.events;
            locality.merge(&tm.sched);
            changes.extend(c);
            per_thread.push(tm);
            worker_tracers.push(wt);
            carry.extend(of);
        }
        // Workers are joined, so every per-thread `ChunkAlloc` tally has
        // been flushed into the ctx atomics and every `WorkerArena` has
        // pushed its slab counters into the domain.
        #[allow(unused_mut)]
        let mut arena_counters = ArenaCounters {
            enabled: false,
            chunk_allocs: ctx.chunk_allocs.load(Ordering::Relaxed),
            chunk_frees: ctx.chunk_frees.load(Ordering::Relaxed),
            mailbox_recycled: 0,
            slab: Default::default(),
        };
        #[cfg(not(parsim_model))]
        if let Some(d) = &ctx.domain {
            arena_counters.enabled = true;
            arena_counters.slab = d.stats();
        }
        // Memory-subsystem totals are only harvestable post-join (worker
        // tallies flush into the ctx atomics / arena domain on drop), so
        // they publish once here, on the driver shard.
        {
            let d = registry.driver();
            d.add(Counter::GcChunksFreed, ctx.chunks_freed.load(Ordering::Relaxed));
            d.add(Counter::ArenaChunkAllocs, arena_counters.chunk_allocs);
            d.add(Counter::ArenaChunkFrees, arena_counters.chunk_frees);
            arena_counters.slab.publish(&d);
        }
        let metrics = Metrics {
            events_processed,
            evaluations,
            activations: ctx.activations.load(Ordering::Relaxed),
            time_steps: 0,
            events_per_step: Default::default(),
            per_thread,
            gc_chunks_freed: ctx.chunks_freed.load(Ordering::Relaxed),
            blocks_skipped: 0,
            evals_skipped: 0,
            pool_misses: 0,
            checkpoint: Default::default(),
            lane_width: 0,
            locality,
            arena: arena_counters,
            wall: start.elapsed(),
        };
        let snapshot = capture.then(|| {
            // Quiescence means every element has replayed every event in
            // the segment, so the per-element run state *is* the state at
            // the cut. SAFETY (all accesses below): workers are joined;
            // single-threaded access with the joins as the edge.
            let mut values = base_vals;
            let mut last_scheduled: Vec<Value> = match seg.resume {
                Some(snap) => snap.last_scheduled.clone(),
                None => netlist
                    .nodes()
                    .iter()
                    .map(|nd| Value::x(nd.width()))
                    .collect(),
            };
            let mut last_sched_time: Vec<u64> = match seg.resume {
                Some(snap) => snap.last_sched_time.clone(),
                None => vec![0u64; netlist.num_nodes()],
            };
            let mut elem_states: Vec<ElemState> = Vec::with_capacity(netlist.num_elements());
            for e in 0..netlist.num_elements() {
                let run = unsafe { ctx.runs.get(e) };
                elem_states.push(run.state.clone());
                for (port, &out) in ctx.meta[e].outputs.iter().enumerate() {
                    if ctx.meta[e].kind.is_generator() {
                        continue;
                    }
                    values[out as usize] = run.cut_val[port];
                    last_scheduled[out as usize] = run.last_out[port];
                    last_sched_time[out as usize] = run.last_te[port];
                }
            }
            carry.sort_by_key(|ev| (ev.time, ev.node));
            EngineSnapshot {
                end_time: horizon,
                time: end,
                step: 0,
                seeds: [0, 0],
                values,
                last_scheduled,
                last_sched_time,
                elem_states,
                pending: std::mem::take(&mut carry),
                changes: Vec::new(),
            }
        });
        Ok(SegmentOut {
            changes,
            metrics,
            trace: tracer.finish(worker_tracers),
            snapshot,
        })
    }
}

/// Per-worker hot-path memory handle: the chunk-allocation policy plus,
/// in arena mode, the worker's slab arena (shared between the policy and
/// the epoch pin/unpin calls). Everything degrades to a no-op when the
/// arena is ablated or under the model cfg.
struct WorkerMem {
    alloc: ChunkAlloc,
    #[cfg(not(parsim_model))]
    arena: Option<Rc<WorkerArena>>,
}

impl WorkerMem {
    fn new(ctx: &Ctx<'_>, w: usize) -> WorkerMem {
        #[cfg(not(parsim_model))]
        if let Some(d) = &ctx.domain {
            let arena = Rc::new(d.worker(w));
            return WorkerMem {
                alloc: ChunkAlloc::arena(Rc::clone(&arena)),
                arena: Some(arena),
            };
        }
        #[cfg(parsim_model)]
        let _ = (ctx, w);
        WorkerMem {
            alloc: ChunkAlloc::global(),
            #[cfg(not(parsim_model))]
            arena: None,
        }
    }

    /// Pins this worker's epoch slot around one element run, so blocks
    /// it may be traversing cannot leave quarantine underneath it.
    #[inline]
    fn pin(&self) {
        #[cfg(not(parsim_model))]
        if let Some(a) = &self.arena {
            a.pin();
        }
    }

    #[inline]
    fn unpin(&self) {
        #[cfg(not(parsim_model))]
        if let Some(a) = &self.arena {
            a.unpin();
        }
    }

    /// Idle-loop housekeeping: drains this worker's return stack, helps
    /// the epoch advance, and promotes grace-cleared blocks.
    fn maintain(&self) {
        #[cfg(not(parsim_model))]
        if let Some(a) = &self.arena {
            a.maintain();
        }
    }
}

/// Moves each node's `valid_until` and consumption-cursor atomics into
/// cache-line-packed SoA blocks carved from its home worker's arena —
/// all of a partition's `valid_until` words first (one contiguous run),
/// then its cursor arrays. Driverless nodes (and all nodes when no
/// partition exists) group under the builder slot. A node whose cursor
/// array exceeds one arena block keeps its inline storage.
#[cfg(not(parsim_model))]
fn install_soa_slots(
    nodes: &mut [NodeState],
    netlist: &Netlist,
    owner: &[u32],
    domain: &ArenaDomain,
) {
    use parsim_queue::arena::MAX_CLASS;

    const SLOT: usize = std::mem::size_of::<AtomicU64>();

    let n_workers = domain.n_workers();
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); n_workers + 1];
    for (i, nd) in netlist.nodes().iter().enumerate() {
        let home = match nd.driver() {
            Some((drv, _)) if !owner.is_empty() => owner[drv.index()] as usize,
            _ => n_workers,
        };
        groups[home].push(i);
    }

    /// Bump carver over zeroed MAX_CLASS blocks. The blocks are never
    /// individually retired: their spans are released wholesale when the
    /// domain drops (which the engine orders after the nodes).
    struct Carver<'a> {
        arena: &'a WorkerArena,
        cur: *mut u8,
        left: usize,
    }
    impl Carver<'_> {
        fn take(&mut self, slots: usize) -> *const AtomicU64 {
            let bytes = slots * SLOT;
            debug_assert!(0 < bytes && bytes <= MAX_CLASS);
            if bytes > self.left {
                let block = self.arena.alloc(MAX_CLASS);
                // SAFETY: a fresh, exclusively-owned MAX_CLASS-byte
                // block; zeroed AtomicU64s start at 0 as
                // `set_ext_slots` requires.
                unsafe { std::ptr::write_bytes(block, 0, MAX_CLASS) };
                self.cur = block;
                self.left = MAX_CLASS;
            }
            let p = self.cur as *const AtomicU64;
            // SAFETY: bounds-checked against `left` just above.
            self.cur = unsafe { self.cur.add(bytes) };
            self.left -= bytes;
            p
        }
    }

    for (w, group) in groups.iter().enumerate() {
        let eligible: Vec<usize> = group
            .iter()
            .copied()
            .filter(|&i| netlist.nodes()[i].fanout().len().max(1) * SLOT <= MAX_CLASS)
            .collect();
        if eligible.is_empty() {
            continue;
        }
        // A transient arena handle for slot `w`: its spans outlive it
        // (graveyarded into the domain on drop), only its free lists die.
        let arena = domain.worker(w);
        let mut carver = Carver {
            arena: &arena,
            cur: std::ptr::null_mut(),
            left: 0,
        };
        let valids: Vec<*const AtomicU64> =
            eligible.iter().map(|_| carver.take(1)).collect();
        for (k, &i) in eligible.iter().enumerate() {
            let cursors = carver.take(netlist.nodes()[i].fanout().len().max(1));
            // SAFETY: zeroed AtomicU64 slots in domain-owned spans that
            // outlive the nodes (`Ctx` declares `domain` last).
            unsafe { nodes[i].set_ext_slots(valids[k], cursors) };
        }
    }
}

/// Executes one element activation: §4's "get as much of the new output
/// behavior from the inputs as possible".
///
/// # Safety
///
/// The caller must hold the element exclusively (activation machine), which
/// makes `runs[e]`, the output nodes' writer sides, and `last_scheduled`
/// state single-writer.
#[allow(clippy::too_many_arguments)]
unsafe fn run_element(
    ctx: &Ctx<'_>,
    e: usize,
    sched: &mut Sched,
    changes: &mut Vec<(Time, NodeId, Value)>,
    overflow: &mut Vec<PendingEvent>,
    alloc: &mut ChunkAlloc,
    tm: &mut ThreadMetrics,
    tr: &mut WorkerTracer,
) {
    let meta = &ctx.meta[e];
    let run = ctx.runs.get_mut(e);
    let mut outputs_touched = false;
    let mut validity_extended = false;
    // First-touch pipelining: wake each output's fan-out once, as soon as
    // the first event of this run lands, so consumers overlap with the
    // rest of the batch; the end-of-run activation catches anything
    // appended after a consumer drained and went idle again.
    let mut woken = [false; 2];

    // The minimum time through which *all* inputs are known.
    let min_valid = meta
        .inputs
        .iter()
        .map(|&(node, _)| ctx.nodes[node as usize].valid_until().load(Ordering::Acquire))
        .min()
        .unwrap_or(ctx.end);

    // ---- replay every input event at or before min_valid ------------------
    // Allocation invariant: this loop is allocation-free in steady state.
    // Input replay reuses the pre-sized `run.cursors` / `run.cur_vals`,
    // `evaluate` returns the stack-only `Outputs` (and `Value::resolve` is
    // pure bit-plane arithmetic with no temporaries), and `Node::push`
    // appends into chunked arenas whose growth is amortized. Keep it that
    // way: never construct a `Vec` per activation here.
    loop {
        let mut t_next = u64::MAX;
        for (i, &(node, _)) in meta.inputs.iter().enumerate() {
            if let Some((t, _)) = run.cursors[i].peek(&ctx.nodes[node as usize]) {
                if t <= min_valid && t < t_next {
                    t_next = t;
                }
            }
        }
        if t_next == u64::MAX {
            break;
        }
        // Advance every input through time t_next.
        for (i, &(node, _)) in meta.inputs.iter().enumerate() {
            let node = &ctx.nodes[node as usize];
            while let Some((t, _)) = run.cursors[i].peek(node) {
                if t > t_next {
                    break;
                }
                run.cursors[i].consume(node);
            }
            run.cur_vals[i] = run.cursors[i].value;
        }
        let out = evaluate(&meta.kind, &run.cur_vals, &mut run.state);
        tm.evaluations += 1;
        tr.instant(EventKind::Eval, e as u32);
        // Inputs are known through t_next, so every output is now known
        // through t_next + delay — publish that *immediately* so fan-out
        // elements running concurrently can consume this run's events
        // while it is still producing. This is the paper's pipelining:
        // "one processor may be evaluating an element producing events and
        // another processor can be evaluating one of the elements on the
        // fan-out of that element."
        let known_through = (t_next + meta.delay).min(ctx.end);
        for (port, v) in out.iter() {
            let out_node = meta.outputs[port] as usize;
            let changed = run.last_out[port] != v;
            if changed {
                let td = transition_delay(&run.last_out[port], &v, meta.rise, meta.fall);
                // Monotone transport (see Builder::element_with_delays).
                let te = (t_next + td.ticks()).max(run.last_te[port] + 1);
                if te <= ctx.end {
                    // Only a kept event updates the last-value tracking
                    // (a drop beyond the horizon must not, or a flip-back
                    // would duplicate the kept value on the node).
                    run.last_out[port] = v;
                    run.last_te[port] = te;
                    run.cut_val[port] = v;
                    ctx.nodes[out_node].push(te, v, alloc);
                    tm.events += 1;
                    tr.instant(EventKind::EventInsert, out_node as u32);
                    if ctx.watched[out_node] {
                        changes.push((Time(te), NodeId::from_index(out_node), v));
                    }
                    outputs_touched = true;
                } else if ctx.capture && te <= ctx.horizon {
                    // Beyond the cut but inside the run's horizon: the
                    // uninterrupted run would keep this event, so it goes
                    // into the snapshot's pending set — with the same
                    // bookkeeping a kept event gets (the next segment's
                    // monotone transport must see it).
                    run.last_out[port] = v;
                    run.last_te[port] = te;
                    overflow.push(PendingEvent {
                        time: te,
                        node: out_node as u32,
                        value: v,
                    });
                }
            }
            let vu = ctx.nodes[out_node].valid_until();
            // Relaxed is sufficient: `valid_until` of an output node is
            // stored only by this element's run, and successive runs are
            // ordered by the activation machine's AcqRel RMW chain
            // (`finish_run` -> `try_activate` -> `begin_run`), so this
            // load can never see anything older than the previous run's
            // store. The Release store is for the concurrent input-side
            // Acquire readers (lookahead/replay gating), not for us.
            // Model-checked: `valid_until_relaxed_rmw_is_exclusive` in
            // crates/core/tests/model_chaotic.rs.
            if vu.load(Ordering::Relaxed) < known_through {
                vu.store(known_through, Ordering::Release);
                validity_extended = true;
            }
            if changed && !woken[port] {
                woken[port] = true;
                for &(consumer, _) in ctx.netlist.nodes()[out_node].fanout() {
                    let c = consumer.index();
                    if ctx.act(c).try_activate() {
                        ctx.pending.fetch_add(1, Ordering::AcqRel);
                        sched.enqueue_eager(ctx, c as u32, tm, tr);
                    }
                }
            }
        }
    }

    // ---- controlling-value lookahead (§4's AND-gate shortcut) -------------
    let mut effective_valid = min_valid;
    if ctx.lookahead && meta.lookahead_ok {
        let ctrl = meta.kind.controlling().expect("lookahead_ok checked");
        loop {
            // How long does some input pin the output?
            let mut pin_end = 0u64;
            let mut pinned = false;
            for (i, &(node, _)) in meta.inputs.iter().enumerate() {
                if bit_of(&run.cur_vals[i]) != Some(ctrl.input) {
                    continue;
                }
                let node = &ctx.nodes[node as usize];
                let hold_end = match run.cursors[i].peek(node) {
                    Some((t, _)) => t.saturating_sub(1),
                    None => node.valid_until().load(Ordering::Acquire),
                };
                pin_end = pin_end.max(hold_end);
                pinned = true;
            }
            if !pinned || pin_end <= effective_valid {
                break;
            }
            effective_valid = pin_end;
            // Skip events the pinned output makes irrelevant; the values
            // still update so later evaluations start from the right state.
            let mut consumed_any = false;
            for (i, &(node, _)) in meta.inputs.iter().enumerate() {
                let node = &ctx.nodes[node as usize];
                while let Some((t, _)) = run.cursors[i].peek(node) {
                    if t > pin_end {
                        break;
                    }
                    run.cursors[i].consume(node);
                    consumed_any = true;
                }
                run.cur_vals[i] = run.cursors[i].value;
            }
            if !consumed_any {
                break;
            }
        }
    }

    // ---- publish consumption cursors (enables GC) --------------------------
    for (i, &(node, fanout_pos)) in meta.inputs.iter().enumerate() {
        ctx.nodes[node as usize].consumed[fanout_pos as usize]
            .store(run.cursors[i].global, Ordering::Release);
    }

    // ---- extend output valid times (incremental clock values) --------------
    let out_valid = effective_valid.saturating_add(meta.delay).min(ctx.end);
    for &out in &meta.outputs {
        let vu = ctx.nodes[out as usize].valid_until();
        // Relaxed load justified by writer exclusivity — same argument as
        // the `known_through` site above (and the same model test).
        if vu.load(Ordering::Relaxed) < out_valid {
            vu.store(out_valid, Ordering::Release);
            validity_extended = true;
        }
    }

    // ---- stimulate fan-out at most once ------------------------------------
    if outputs_touched || validity_extended {
        for &out in &meta.outputs {
            for &(consumer, _) in ctx.netlist.nodes()[out as usize].fanout() {
                let c = consumer.index();
                if ctx.act(c).try_activate() {
                    ctx.pending.fetch_add(1, Ordering::AcqRel);
                    sched.enqueue(ctx, c as u32, tm, tr);
                }
            }
        }
    }

    // ---- asynchronous garbage collection ------------------------------------
    if ctx.gc {
        for &out in &meta.outputs {
            let freed = ctx.nodes[out as usize].gc(alloc);
            if freed > 0 {
                ctx.chunks_freed.fetch_add(freed, Ordering::Relaxed);
            }
        }
    }
}

/// Extracts a single known bit, if the value is 1-bit and known.
fn bit_of(v: &Value) -> Option<Bit> {
    if v.width() != 1 {
        return None;
    }
    match v.bit_at(0) {
        Bit::Zero => Some(Bit::Zero),
        Bit::One => Some(Bit::One),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::assert_equivalent;
    use crate::seq::EventDriven;
    use parsim_logic::Delay;
    use parsim_netlist::Builder;

    fn pipeline_circuit() -> (Netlist, Vec<NodeId>) {
        // gen -> e1 -> e2 <- e3 feedback: the paper's Fig. 4 example shape.
        let mut b = Builder::new();
        let n1 = b.node("n1", 1);
        let n2 = b.node("n2", 1);
        let n3 = b.node("n3", 1);
        let n4 = b.node("n4", 1);
        b.element(
            "gen",
            ElementKind::Clock {
                half_period: 3,
                offset: 3,
            },
            Delay(1),
            &[],
            &[n1],
        )
        .unwrap();
        b.element("e1", ElementKind::Not, Delay(1), &[n1], &[n2])
            .unwrap();
        b.element("e2", ElementKind::Nand, Delay(2), &[n2, n4], &[n3])
            .unwrap();
        b.element("e3", ElementKind::Not, Delay(1), &[n3], &[n4])
            .unwrap();
        (b.finish().unwrap(), vec![n1, n2, n3, n4])
    }

    #[test]
    fn matches_sequential_on_feedback_circuit() {
        let (n, watch) = pipeline_circuit();
        let cfg = SimConfig::new(Time(100)).watch_all(watch);
        let seq = EventDriven::run(&n, &cfg).unwrap();
        for threads in [1, 2, 4] {
            let a = ChaoticAsync::run(&n, &cfg.clone().threads(threads)).unwrap();
            assert_equivalent(&seq, &a, &format!("chaotic x{threads}"));
        }
    }

    #[test]
    fn event_counts_match_sequential() {
        let (n, watch) = pipeline_circuit();
        let cfg = SimConfig::new(Time(200)).watch_all(watch);
        let seq = EventDriven::run(&n, &cfg).unwrap();
        let a = ChaoticAsync::run(&n, &cfg).unwrap();
        assert_eq!(seq.metrics.events_processed, a.metrics.events_processed);
    }

    #[test]
    fn lookahead_does_not_change_waveforms() {
        let (n, watch) = pipeline_circuit();
        let cfg = SimConfig::new(Time(150)).watch_all(watch).threads(2);
        let with = ChaoticAsync::run(&n, &cfg).unwrap();
        let without = ChaoticAsync::run(&n, &cfg.clone().without_lookahead()).unwrap();
        assert_equivalent(&with, &without, "lookahead");
    }

    #[test]
    fn gc_does_not_change_waveforms_and_frees_chunks() {
        // A long simulation of a deep chain accumulates many events.
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 1,
                offset: 1,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        let mut prev = clk;
        let mut watch = vec![clk];
        for i in 0..8 {
            let n = b.node(&format!("n{i}"), 1);
            b.element(&format!("inv{i}"), ElementKind::Not, Delay(1), &[prev], &[n])
                .unwrap();
            watch.push(n);
            prev = n;
        }
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(2000)).watch_all(watch);
        let seq = EventDriven::run(&n, &cfg).unwrap();
        let gc_run = ChaoticAsync::run(&n, &cfg).unwrap();
        let no_gc = ChaoticAsync::run(&n, &cfg.clone().without_gc()).unwrap();
        assert_equivalent(&seq, &gc_run, "gc on");
        assert_equivalent(&seq, &no_gc, "gc off");
    }

    #[test]
    fn deep_batching_on_generator_fed_chain() {
        // With all inputs valid for all time, each element should process
        // its whole history in very few activations (§4: "determine the
        // behavior ... for the entire simulation").
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 2,
                offset: 2,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        let out = b.node("out", 1);
        b.element("inv", ElementKind::Not, Delay(1), &[clk], &[out])
            .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(10_000)).watch(out);
        let r = ChaoticAsync::run(&n, &cfg).unwrap();
        // ~5000 clock edges, processed in O(1) activations.
        assert!(r.metrics.evaluations > 4000);
        assert!(
            r.metrics.activations < 10,
            "expected deep batching, got {} activations",
            r.metrics.activations
        );
    }

    #[test]
    fn wide_functional_elements_match() {
        let mut b = Builder::new();
        let a = b.node("a", 8);
        let c = b.node("c", 8);
        let cin = b.node("cin", 1);
        let sum = b.node("sum", 8);
        let cout = b.node("cout", 1);
        b.element(
            "agen",
            ElementKind::Lfsr {
                width: 8,
                period: 7,
                seed: 3,
            },
            Delay(1),
            &[],
            &[a],
        )
        .unwrap();
        b.element(
            "bgen",
            ElementKind::Lfsr {
                width: 8,
                period: 5,
                seed: 9,
            },
            Delay(1),
            &[],
            &[c],
        )
        .unwrap();
        b.element(
            "cgen",
            ElementKind::Clock {
                half_period: 11,
                offset: 11,
            },
            Delay(1),
            &[],
            &[cin],
        )
        .unwrap();
        b.element(
            "add",
            ElementKind::Adder { width: 8 },
            Delay(2),
            &[a, c, cin],
            &[sum, cout],
        )
        .unwrap();
        let n = b.finish().unwrap();
        let cfg = SimConfig::new(Time(500)).watch(sum).watch(cout);
        let seq = EventDriven::run(&n, &cfg).unwrap();
        let asy = ChaoticAsync::run(&n, &cfg.clone().threads(3)).unwrap();
        assert_equivalent(&seq, &asy, "adder");
    }
}
