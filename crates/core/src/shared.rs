//! Shared-memory slices with phase-disciplined access.
//!
//! The parallel engines partition mutable state so that, at any instant,
//! each slot has at most one writer (enforced by barriers or by the
//! activation state machine). [`SharedSlice`] is the thin unsafe cell that
//! makes such state shareable across `std::thread::scope` threads.

use std::cell::UnsafeCell;

/// A heap slice of `UnsafeCell`s that may be shared across threads.
///
/// # Safety discipline
///
/// `SharedSlice` itself performs no synchronization. Callers must
/// guarantee, by construction, that no slot is accessed mutably by two
/// threads at once and that cross-thread visibility is established by an
/// external synchronization edge (a barrier, an atomic publish, or a
/// channel transfer). Every engine in this crate documents which mechanism
/// protects which slice.
pub(crate) struct SharedSlice<T> {
    slots: Box<[UnsafeCell<T>]>,
}

// SAFETY: access discipline is the caller's responsibility (see type docs);
// the type is only used inside this crate under barrier/activation
// protocols.
unsafe impl<T: Send> Sync for SharedSlice<T> {}
unsafe impl<T: Send> Send for SharedSlice<T> {}

impl<T> SharedSlice<T> {
    /// Builds a slice from per-slot initial values.
    pub fn new(values: Vec<T>) -> SharedSlice<T> {
        SharedSlice {
            slots: values.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    /// Builds a slice of `len` slots with `f(i)` initial values.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> T) -> SharedSlice<T> {
        SharedSlice::new((0..len).map(f).collect())
    }

    /// The number of slots.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Returns a shared reference to slot `i`.
    ///
    /// # Safety
    ///
    /// No thread may concurrently write slot `i`, and a synchronization
    /// edge must order this read after the last write.
    #[inline]
    pub unsafe fn get(&self, i: usize) -> &T {
        &*self.slots[i].get()
    }

    /// Returns an exclusive reference to slot `i`.
    ///
    /// # Safety
    ///
    /// No other thread may concurrently access slot `i`, and
    /// synchronization edges must order accesses across phases.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut(&self, i: usize) -> &mut T {
        &mut *self.slots[i].get()
    }

    /// Returns a shared reference to the contiguous slot range.
    ///
    /// # Safety
    ///
    /// As for [`SharedSlice::get`], applied to every slot in `range`.
    /// `UnsafeCell<T>` has the same layout as `T`, so the cast is sound.
    #[inline]
    pub unsafe fn slice(&self, range: std::ops::Range<usize>) -> &[T] {
        let slots = &self.slots[range];
        &*(slots as *const [UnsafeCell<T>] as *const [T])
    }

    /// Returns an exclusive reference to the contiguous slot range.
    ///
    /// # Safety
    ///
    /// As for [`SharedSlice::get_mut`], applied to every slot in `range`.
    #[inline]
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn slice_mut(&self, range: std::ops::Range<usize>) -> &mut [T] {
        let slots = &self.slots[range];
        if slots.is_empty() {
            return &mut [];
        }
        // `UnsafeCell::get` is the sanctioned `&self -> *mut T` door;
        // adjacent cells are contiguous and layout-identical to `T`.
        std::slice::from_raw_parts_mut(slots[0].get(), slots.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn single_threaded_access() {
        let s = SharedSlice::from_fn(4, |i| i * 10);
        unsafe {
            *s.get_mut(2) = 99;
            assert_eq!(*s.get(2), 99);
            assert_eq!(*s.get(0), 0);
        }
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn disjoint_parallel_writes() {
        let s = SharedSlice::from_fn(8, |_| 0usize);
        let done = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for t in 0..2 {
                let s = &s;
                let done = &done;
                scope.spawn(move || {
                    for i in (t..8).step_by(2) {
                        // SAFETY: threads write disjoint (odd/even) slots;
                        // the join below is the synchronization edge.
                        unsafe { *s.get_mut(i) = i + 1 };
                    }
                    done.fetch_add(1, Ordering::Release);
                });
            }
        });
        for i in 0..8 {
            // SAFETY: threads joined; exclusive access.
            assert_eq!(unsafe { *s.get(i) }, i + 1);
        }
    }
}
