//! Structured simulation errors and stall diagnostics.
//!
//! Every engine entry point returns `Result<SimResult, SimError>`: a
//! worker panic, a progress stall, a blown deadline, or an invalid
//! configuration surfaces as a typed error instead of a hung process or
//! an opaque abort. The parallel engines guarantee *containment* — a
//! failing worker poisons its peers' synchronization primitives so every
//! thread is joined before the error is returned, never leaving detached
//! threads spinning on shared state.

use std::error::Error;
use std::fmt;
use std::time::Duration;

use parsim_logic::Time;

/// A structured simulation failure.
///
/// # Examples
///
/// ```
/// use parsim_core::{SimConfig, SimError};
/// use parsim_logic::Time;
///
/// let err = SimConfig::new(Time(10)).try_watch_named(
///     &parsim_netlist::Builder::new().finish().unwrap(),
///     ["nope"],
/// ).unwrap_err();
/// assert!(matches!(err, SimError::UnknownNode { .. }));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A worker thread panicked. The engine cancelled and joined every
    /// peer before returning; `payload` is the panic message.
    WorkerPanicked {
        /// Which engine was running.
        engine: &'static str,
        /// Index of the worker that panicked.
        worker: usize,
        /// The panic payload, rendered to a string.
        payload: String,
    },
    /// No worker made progress for at least
    /// [`SimConfig::stall_timeout`](crate::SimConfig::stall_timeout); the
    /// watchdog cancelled the run.
    Stalled {
        /// Which engine was running.
        engine: &'static str,
        /// How long every heartbeat had been frozen when the watchdog
        /// fired.
        stalled_for: Duration,
        /// Snapshot of engine state at cancellation (boxed to keep the
        /// `Err` variant small on the hot `Result` path).
        diagnostic: Box<StallDiagnostic>,
    },
    /// The run exceeded [`SimConfig::deadline`](crate::SimConfig::deadline)
    /// in wall time and was cancelled.
    DeadlineExceeded {
        /// Which engine was running.
        engine: &'static str,
        /// The configured deadline.
        deadline: Duration,
        /// Snapshot of engine state at cancellation (boxed to keep the
        /// `Err` variant small on the hot `Result` path).
        diagnostic: Box<StallDiagnostic>,
    },
    /// The configuration cannot drive this run (e.g. a partition whose
    /// part count differs from the thread count).
    InvalidConfig {
        /// What was wrong.
        reason: String,
    },
    /// A watch request named a node the netlist does not have.
    UnknownNode {
        /// The unresolved name.
        name: String,
    },
    /// A checkpoint write, scan, or restore failed (see
    /// [`parsim_checkpoint::CheckpointError`]). Injected storage faults
    /// surface here too: the simulated machine "died" mid-protocol.
    Checkpoint(parsim_checkpoint::CheckpointError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::WorkerPanicked {
                engine,
                worker,
                payload,
            } => write!(f, "{engine}: worker {worker} panicked: {payload}"),
            SimError::Stalled {
                engine,
                stalled_for,
                diagnostic,
            } => write!(
                f,
                "{engine}: no worker made progress for {stalled_for:?}; cancelled \
                 ({diagnostic})"
            ),
            SimError::DeadlineExceeded {
                engine,
                deadline,
                diagnostic,
            } => write!(
                f,
                "{engine}: wall-time deadline of {deadline:?} exceeded; cancelled \
                 ({diagnostic})"
            ),
            SimError::InvalidConfig { reason } => {
                write!(f, "invalid simulation config: {reason}")
            }
            SimError::UnknownNode { name } => write!(f, "unknown node `{name}`"),
            SimError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
        }
    }
}

impl Error for SimError {}

impl From<parsim_checkpoint::CheckpointError> for SimError {
    fn from(e: parsim_checkpoint::CheckpointError) -> SimError {
        SimError::Checkpoint(e)
    }
}

/// What the engine was doing when the watchdog cancelled it.
///
/// Collected by the driver thread after all workers have been joined, so
/// every field is a quiescent post-mortem view, not a racing sample.
/// Fields that only one engine can populate are `Option`/empty elsewhere.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StallDiagnostic {
    /// Per-worker heartbeat counts (activations processed) at cancellation.
    pub heartbeats: Vec<u64>,
    /// Outstanding activations on the scheduling grid (the asynchronous
    /// engine's global queue depth), if the engine tracks one.
    pub pending_activations: Option<i64>,
    /// Activation-state histogram: elements idle vs. queued/running
    /// (asynchronous engine).
    pub activations_idle: Option<usize>,
    /// Elements still queued or running at cancellation.
    pub activations_pending: Option<usize>,
    /// The minimum per-node valid-until horizon — how far simulated time
    /// had been fully computed (asynchronous engine).
    pub min_valid_until: Option<Time>,
    /// The last globally completed simulated time (synchronous engines).
    pub sim_time: Option<Time>,
    /// Ordinal of the last checkpoint that committed before the failure
    /// (set by the [`checkpoint`](crate::checkpoint) driver), so a
    /// post-mortem says exactly what is recoverable. `None` when
    /// checkpointing was off or nothing had committed yet.
    pub last_checkpoint_step: Option<u64>,
}

impl fmt::Display for StallDiagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "heartbeats={:?}", self.heartbeats)?;
        if let Some(p) = self.pending_activations {
            write!(f, ", pending={p}")?;
        }
        if let (Some(i), Some(q)) = (self.activations_idle, self.activations_pending) {
            write!(f, ", elements idle/pending={i}/{q}")?;
        }
        if let Some(v) = self.min_valid_until {
            write!(f, ", min valid_until={v}")?;
        }
        if let Some(t) = self.sim_time {
            write!(f, ", sim time={t}")?;
        }
        if let Some(s) = self.last_checkpoint_step {
            write!(f, ", last checkpoint=#{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_usefully() {
        let e = SimError::WorkerPanicked {
            engine: "chaotic",
            worker: 3,
            payload: "index out of bounds".to_string(),
        };
        let s = e.to_string();
        assert!(s.contains("chaotic") && s.contains("worker 3") && s.contains("index"));

        let d = StallDiagnostic {
            heartbeats: vec![10, 0],
            pending_activations: Some(4),
            activations_idle: Some(90),
            activations_pending: Some(10),
            min_valid_until: Some(Time(17)),
            sim_time: None,
            last_checkpoint_step: Some(4),
        };
        let e = SimError::Stalled {
            engine: "sync",
            stalled_for: Duration::from_millis(250),
            diagnostic: Box::new(d),
        };
        let s = e.to_string();
        assert!(s.contains("250ms") && s.contains("pending=4") && s.contains("17"));

        let e = SimError::DeadlineExceeded {
            engine: "compiled",
            deadline: Duration::from_secs(1),
            diagnostic: Box::default(),
        };
        assert!(e.to_string().contains("deadline"));
    }
}
