//! Engine equivalence and behavior on circuits with memory elements (the
//! paper's coarse functional level: "entire complex microprocessors").

use parsim_circuits::functional_cpu;
use parsim_core::{assert_equivalent, ChaoticAsync, EventDriven, SimConfig, SyncEventDriven};
use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::Builder;

#[test]
fn functional_cpu_all_engines_agree() {
    let cpu = functional_cpu(32).unwrap();
    let cfg = SimConfig::new(Time(2000)).watch(cpu.acc).watch(cpu.mem_out);
    let seq = EventDriven::run(&cpu.netlist, &cfg).unwrap();
    for threads in [1, 2, 4] {
        let cfg_t = cfg.clone().threads(threads);
        assert_equivalent(&seq, &SyncEventDriven::run(&cpu.netlist, &cfg_t).unwrap(), "sync");
        assert_equivalent(&seq, &ChaoticAsync::run(&cpu.netlist, &cfg_t).unwrap(), "async");
    }
}

#[test]
fn functional_cpu_accumulator_computes() {
    let cpu = functional_cpu(32).unwrap();
    let cfg = SimConfig::new(Time(4000)).watch(cpu.acc);
    let r = EventDriven::run(&cpu.netlist, &cfg).unwrap();
    let w = r.waveform(cpu.acc).unwrap();
    // The accumulator leaves reset and keeps taking new values. Reads of
    // never-written memory cells legitimately poison it to X (read-first
    // RAM starts all-X), and arithmetic propagates the X until the next
    // `acc = imm` instruction — so we assert recurring recovery, not
    // permanent knownness.
    assert!(w.num_changes() >= 10, "acc changed {} times", w.num_changes());
    let mut known = 0;
    let mut distinct_known = std::collections::HashSet::new();
    for cycle in 4..60u64 {
        let t = Time(cycle * 64 + 40);
        let v = w.value_at(t);
        if let Some(val) = v.to_u64() {
            known += 1;
            distinct_known.insert(val);
        }
    }
    assert!(known >= 5, "acc known in only {known}/56 samples");
    assert!(
        distinct_known.len() >= 3,
        "acc should take several distinct known values: {distinct_known:?}"
    );
}

/// A directed memory test: write a known pattern, read it back through
/// the simulator, byte for byte.
#[test]
fn memory_write_read_cycle_via_simulation() {
    // addr cycles 0,1,2,3; we is high for the first 4 writes then low;
    // wdata = addr * 3 + 1. After the write pass, reads must return the
    // written values.
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    b.element(
        "clkgen",
        ElementKind::Clock {
            half_period: 8,
            offset: 8,
        },
        Delay(1),
        &[],
        &[clk],
    )
    .unwrap();
    let addr = b.node("addr", 2);
    let addr_vals: Vec<Value> = (0..4u64).map(|a| Value::from_u64(a, 2)).collect();
    b.element(
        "addrgen",
        ElementKind::Pattern {
            period: 16,
            values: addr_vals.into(),
        },
        Delay(1),
        &[],
        &[addr],
    )
    .unwrap();
    let we = b.node("we", 1);
    b.element(
        "wegen",
        ElementKind::Pulse { at: 0, width: 64 },
        Delay(1),
        &[],
        &[we],
    )
    .unwrap();
    let wdata = b.node("wdata", 8);
    let data_vals: Vec<Value> = (0..4u64).map(|a| Value::from_u64(a * 3 + 1, 8)).collect();
    b.element(
        "datagen",
        ElementKind::Pattern {
            period: 16,
            values: data_vals.into(),
        },
        Delay(1),
        &[],
        &[wdata],
    )
    .unwrap();
    let rdata = b.node("rdata", 8);
    b.element(
        "mem",
        ElementKind::Memory {
            addr_bits: 2,
            width: 8,
        },
        Delay(1),
        &[clk, we, addr, wdata],
        &[rdata],
    )
    .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(200)).watch(rdata);
    let seq = EventDriven::run(&n, &cfg).unwrap();
    let asy = ChaoticAsync::run(&n, &cfg.clone().threads(2)).unwrap();
    assert_equivalent(&seq, &asy, "memory rw");

    // Writes land on rising edges at t = 8, 24, 40, 56 (addr 0..3).
    // The second pass (t = 72, 88, 104, 120) re-reads the same addresses
    // with we low; rdata updates one delay after each edge.
    let w = seq.waveform(rdata).unwrap();
    for (k, expected) in (0..4u64).map(|a| a * 3 + 1).enumerate() {
        let t = Time(72 + 16 * k as u64 + 4);
        assert_eq!(
            w.value_at(t).to_u64(),
            Some(expected),
            "readback of cell {k} at {t}"
        );
    }
}
