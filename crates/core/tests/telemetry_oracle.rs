//! Oracle equivalence between the telemetry registry and [`Metrics`].
//!
//! The registry is the *same run* counted a second way: engines publish
//! batched deltas into per-worker shards while also accumulating their
//! own `Metrics`. If the two ever disagree the publish cadence dropped
//! or double-counted a delta somewhere, so the end-of-run aggregate must
//! match the merged `Metrics` *exactly* — every counter, every histogram
//! bucket — for all four engines, with in-run sampling both off and on.
//!
//! `MonitorWakeups` is the one deliberate exclusion: it counts sampler
//! ticks, which have no `Metrics` counterpart. `CheckpointRestoreNs`
//! does not exist as a counter at all (restores happen before the run's
//! registry is created), so `Metrics::checkpoint.restore_ns` has no
//! registry twin either.

use std::time::Duration;

use parsim_circuits::inverter_array;
use parsim_core::{
    ChaoticAsync, CompiledMode, EventDriven, Metrics, SimConfig, SyncEventDriven,
};
use parsim_logic::Time;
use parsim_netlist::Netlist;
use parsim_telemetry::{Counter, RunTelemetry, Snapshot};

/// Every counter with a `Metrics` twin, and the twin's value.
fn expected(m: &Metrics) -> Vec<(Counter, u64)> {
    let busy: u64 = m.per_thread.iter().map(|t| t.busy.as_nanos() as u64).sum();
    let idle: u64 = m.per_thread.iter().map(|t| t.idle.as_nanos() as u64).sum();
    vec![
        (Counter::EventsProcessed, m.events_processed),
        (Counter::Evaluations, m.evaluations),
        (Counter::Activations, m.activations),
        (Counter::TimeSteps, m.time_steps),
        (Counter::LocalHits, m.locality.local_hits),
        (Counter::GridSends, m.locality.grid_sends),
        (Counter::GridBatches, m.locality.grid_batches),
        (Counter::Steals, m.locality.steals),
        (Counter::BackoffParks, m.locality.backoff_parks),
        (Counter::PoolMisses, m.pool_misses),
        (Counter::MailboxRecycled, m.arena.mailbox_recycled),
        (Counter::GcChunksFreed, m.gc_chunks_freed),
        (Counter::BlocksSkipped, m.blocks_skipped),
        (Counter::EvalsSkipped, m.evals_skipped),
        (Counter::ArenaChunkAllocs, m.arena.chunk_allocs),
        (Counter::ArenaChunkFrees, m.arena.chunk_frees),
        (Counter::ArenaSlabAllocs, m.arena.slab.slab_allocs),
        (Counter::ArenaSlabBytes, m.arena.slab.slab_bytes),
        (Counter::ArenaRecycled, m.arena.slab.recycled),
        (Counter::ArenaFresh, m.arena.slab.fresh),
        (Counter::ArenaReclaimed, m.arena.slab.reclaimed),
        (Counter::CheckpointWrites, m.checkpoint.writes),
        (Counter::CheckpointBytes, m.checkpoint.bytes),
        (Counter::CheckpointWriteNs, m.checkpoint.write_ns),
        (Counter::BusyNs, busy),
        (Counter::IdleNs, idle),
    ]
}

fn assert_finals_match(label: &str, finals: &Snapshot, m: &Metrics) {
    for (c, want) in expected(m) {
        assert_eq!(
            finals.counter(c),
            want,
            "{label}: registry {c:?} diverges from Metrics"
        );
    }
    let h = &finals.hist;
    assert_eq!(h.count, m.events_per_step.steps(), "{label}: hist step count");
    assert_eq!(h.sum, m.events_per_step.events(), "{label}: hist event sum");
    assert_eq!(h.max, m.events_per_step.max(), "{label}: hist max");
}

/// Sampled runs must also be *internally* consistent: every in-run
/// sample is monotone in counters, and the last sample IS the finals.
fn assert_samples_consistent(label: &str, run: &RunTelemetry) {
    let last = run.samples.last().unwrap_or_else(|| {
        panic!("{label}: sampling was on but the ring is empty")
    });
    for (c, v) in expected_counters_of(&last.snap) {
        assert_eq!(
            v,
            run.finals.counter(c),
            "{label}: final sample disagrees with finals on {c:?}"
        );
    }
    for pair in run.samples.windows(2) {
        assert!(pair[0].t_ns <= pair[1].t_ns, "{label}: sample times regress");
        for (c, v) in expected_counters_of(&pair[0].snap) {
            assert!(
                v <= pair[1].snap.counter(c),
                "{label}: counter {c:?} regressed between samples"
            );
        }
    }
}

/// All monotone counters of a snapshot (excludes nothing — even
/// `MonitorWakeups` must be monotone across samples).
fn expected_counters_of(s: &Snapshot) -> Vec<(Counter, u64)> {
    Counter::ALL.iter().map(|&c| (c, s.counter(c))).collect()
}

fn circuit() -> parsim_circuits::InverterArray {
    inverter_array(8, 8, 2).unwrap()
}

fn run_all(netlist: &Netlist, cfg: &SimConfig, label: &str, sampled: bool) {
    let seq = EventDriven::run(netlist, cfg).unwrap();
    let rt = seq.telemetry.as_ref().expect("seq telemetry missing");
    assert_finals_match(&format!("{label}/seq"), &rt.finals, &seq.metrics);
    if sampled {
        assert_samples_consistent(&format!("{label}/seq"), rt);
    }

    for threads in [1, 2, 4] {
        let cfg_t = cfg.clone().threads(threads);
        for (name, result) in [
            ("sync", SyncEventDriven::run(netlist, &cfg_t).unwrap()),
            ("async", ChaoticAsync::run(netlist, &cfg_t).unwrap()),
            ("compiled", CompiledMode::run(netlist, &cfg_t).unwrap()),
        ] {
            let tag = format!("{label}/{name} x{threads}");
            let rt = result
                .telemetry
                .as_ref()
                .unwrap_or_else(|| panic!("{tag}: telemetry missing"));
            assert_finals_match(&tag, &rt.finals, &result.metrics);
            if sampled {
                assert_samples_consistent(&tag, rt);
            }
        }
    }
}

#[test]
fn registry_matches_metrics_unsampled() {
    let arr = circuit();
    let cfg = SimConfig::new(Time(120)).watch_all(arr.taps.clone());
    run_all(&arr.netlist, &cfg, "unsampled", false);
}

#[test]
fn registry_matches_metrics_sampled() {
    let arr = circuit();
    // An aggressive 1 ms cadence so short test runs still catch a few
    // in-flight snapshots; finals equality must hold regardless of how
    // many ticks landed mid-run.
    let cfg = SimConfig::new(Time(120))
        .watch_all(arr.taps.clone())
        .sample_every(Duration::from_millis(1));
    run_all(&arr.netlist, &cfg, "sampled", true);
}

#[test]
fn sampling_does_not_change_waveforms() {
    let arr = circuit();
    let cfg = SimConfig::new(Time(120)).watch_all(arr.taps.clone());
    let plain = ChaoticAsync::run(&arr.netlist, &cfg.clone().threads(2)).unwrap();
    let sampled = ChaoticAsync::run(
        &arr.netlist,
        &cfg.threads(2).sample_every(Duration::from_millis(1)),
    )
    .unwrap();
    parsim_core::assert_equivalent(&plain, &sampled, "sampled vs unsampled");
}
