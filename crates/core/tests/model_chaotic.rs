//! Model checking of the chaotic engine's per-node behavior-list
//! protocols (`parsim_core::behavior`) under the vendored interleaving
//! explorer. Compiled only under `RUSTFLAGS="--cfg parsim_model"`.
//!
//! Three protocols from the chaotic engine's lock-freedom inventory are
//! checked here (the scheduling-side protocols live in
//! `crates/queue/tests/model.rs`):
//!
//! 1. publication: slot write → `len` release store vs. `len` acquire
//!    load → slot read, across a chunk-link boundary (model `CHUNK` = 2);
//! 2. garbage collection: a chunk is reclaimed only when every consumer
//!    has consumed strictly past it — under the model, `gc` tombstones
//!    reclaimed chunks, so any schedule in which a consumer can still
//!    reach one is reported as a data race on the tombstone write;
//! 3. the `valid_until` writer-exclusive read-modify-write (`Relaxed`
//!    load + `Release` store), whose safety rests entirely on the
//!    activation machine's AcqRel handoff chain — the justification for
//!    the two `Relaxed` loads in `chaotic.rs` (`known_through` and
//!    `out_valid` extension sites).
#![cfg(parsim_model)]

use parsim_core::behavior::{ChunkAlloc, Cursor, NodeState, CHUNK};
use parsim_logic::Value;
use parsim_model_check::{thread, Explorer};
use parsim_queue::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use parsim_queue::sync::Arc;
use parsim_queue::{ActivationState, EpochDomain};

/// The writer appends events across a chunk boundary while the consumer
/// replays them concurrently: every event must arrive intact, in order,
/// and the cursor's `value` tracking must follow. An unpublished slot
/// read would be a data race on the slot cell.
#[test]
fn behavior_publish_consume_across_chunks() {
    assert_eq!(CHUNK, 2, "model builds shrink the chunk size");
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let mut alloc = ChunkAlloc::global();
        let node = Arc::new(NodeState::new(1, &mut alloc));
        let n2 = Arc::clone(&node);
        let writer = thread::spawn(move || {
            let mut a = ChunkAlloc::global();
            for t in 0..3u64 {
                // SAFETY: this thread is the node's only writer.
                unsafe { n2.push(t, Value::bit(t % 2 == 1), &mut a) };
            }
        });
        let mut cursor = Cursor::new(&node, Value::x(1));
        let mut next = 0u64;
        while next < 3 {
            // SAFETY: this thread is the element's only runner.
            match unsafe { cursor.peek(&node) } {
                Some((t, v)) => {
                    assert_eq!(t, next, "events replay in append order");
                    assert_eq!(v, Value::bit(t % 2 == 1), "torn event");
                    unsafe { cursor.consume(&node) };
                    assert_eq!(cursor.value, v);
                    next += 1;
                }
                None => thread::yield_now(),
            }
        }
        assert!(unsafe { cursor.peek(&node) }.is_none());
        writer.join();
    });
    outcome.assert_pass("behavior-list publication across chunks");
}

/// The writer garbage-collects after every append while the consumer is
/// still replaying: no schedule may reclaim a chunk the consumer's
/// cursor can still reach. The consumer publishes its progress with a
/// release store into `consumed[0]` after each consume — exactly the
/// engine's cursor-publication step — and the strict `>` in `gc`'s
/// reachability check is what keeps the in-progress chunk alive.
#[test]
fn behavior_gc_never_reclaims_reachable_chunk() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let mut alloc = ChunkAlloc::global();
        let node = Arc::new(NodeState::new(1, &mut alloc));
        let n2 = Arc::clone(&node);
        let writer = thread::spawn(move || {
            let mut a = ChunkAlloc::global();
            let mut freed = 0u64;
            for t in 0..4u64 {
                // SAFETY: this thread is the node's only writer (push and
                // gc are both writer-side operations).
                unsafe {
                    n2.push(t, Value::bit(t % 2 == 1), &mut a);
                    freed += n2.gc(&mut a);
                }
            }
            freed
        });
        let mut cursor = Cursor::new(&node, Value::x(1));
        let mut next = 0u64;
        while next < 4 {
            // SAFETY: this thread is the element's only runner.
            match unsafe { cursor.peek(&node) } {
                Some((t, v)) => {
                    assert_eq!(t, next);
                    assert_eq!(v, Value::bit(t % 2 == 1), "read a reclaimed slot");
                    unsafe { cursor.consume(&node) };
                    node.consumed[0].store(cursor.global, Ordering::Release);
                    next += 1;
                }
                None => thread::yield_now(),
            }
        }
        let freed_concurrent = writer.join();
        // After the consumer has consumed everything (4 events = 2 full
        // chunks) a final writer-side gc must reclaim at least the first
        // chunk; `consumed` must exceed base + CHUNK strictly, which 4 > 3
        // satisfies for the chunk based at 0... only once the cursor is
        // past it. SAFETY: the writer thread has exited; exclusivity
        // transfers through the join edge.
        let freed_final = unsafe { node.gc(&mut ChunkAlloc::global()) };
        assert!(
            freed_concurrent + freed_final >= 1,
            "fully consumed chunks must eventually be reclaimed"
        );
    });
    outcome.assert_pass("behavior-list GC reachability");
}

/// The `valid_until` read-modify-write as the chaotic engine performs it:
/// a `Relaxed` load followed by a `Release` store, with no RMW atomicity.
/// This is only correct because the store is writer-exclusive and
/// successive writers are ordered by the activation machine's AcqRel
/// chain. Two threads race to activate the same element and whoever runs
/// performs the split increment; a stale `Relaxed` read in any schedule
/// would make two runs write the same value and the final count come up
/// short.
#[test]
fn valid_until_relaxed_rmw_is_exclusive() {
    let outcome = Explorer::new().max_preemptions(3).check(|| {
        let st = Arc::new(ActivationState::new());
        let vu = Arc::new(AtomicU64::new(0));
        let runs = Arc::new(AtomicUsize::new(0));

        let driver = |st: &ActivationState, vu: &AtomicU64, runs: &AtomicUsize| {
            if st.try_activate() {
                loop {
                    st.begin_run();
                    // The chaotic.rs pattern (known_through / out_valid
                    // extension): Relaxed load, monotone Release store.
                    let v = vu.load(Ordering::Relaxed);
                    vu.store(v + 1, Ordering::Release);
                    runs.fetch_add(1, Ordering::Relaxed);
                    if !st.finish_run() {
                        break;
                    }
                }
            }
        };

        let (s2, v2, r2) = (Arc::clone(&st), Arc::clone(&vu), Arc::clone(&runs));
        let t = thread::spawn(move || driver(&s2, &v2, &r2));
        driver(&st, &vu, &runs);
        t.join();

        // An activation absorbed into a *running* element forces a rerun
        // (2 runs); one absorbed into a merely *queued* element coalesces
        // into the single pending run (1 run). Both are correct — what
        // must never happen is a run observing a stale `valid_until` and
        // collapsing an increment, so the count tracks runs exactly.
        let r = runs.load(Ordering::Relaxed);
        assert!((1..=2).contains(&r), "every activation leads to a run");
        assert_eq!(
            vu.load(Ordering::Relaxed),
            r as u64,
            "a run observed a stale valid_until despite the handoff chain"
        );
    });
    outcome.assert_pass("valid_until writer-exclusive relaxed RMW");
}

/// The engine's full per-element memory discipline in one model: the
/// consumer pins its epoch slot around each replay step (as `WorkerMem`
/// does around `run_element`) while the writer appends and retires
/// fully-consumed chunks (`gc` → tombstone quarantine under the model,
/// the stand-in for the arena's epoch quarantine). Chunk reclamation is
/// structurally protected by the consumer's cursor-publication release
/// store; the epochs are defense-in-depth for objects the cursors don't
/// cover (SPSC segments, SoA slots). No schedule may let the consumer
/// reach a tombstoned chunk — pinned or between pins — and the epoch
/// traffic must not unblock a reclaim the cursor protocol forbids.
#[test]
fn pinned_consumer_replay_vs_writer_retire() {
    let outcome = Explorer::new().max_preemptions(2).check(|| {
        let epochs = Arc::new(EpochDomain::new(2));
        let mut alloc = ChunkAlloc::global();
        let node = Arc::new(NodeState::new(1, &mut alloc));
        let n2 = Arc::clone(&node);
        let e2 = Arc::clone(&epochs);
        let writer = thread::spawn(move || {
            let mut a = ChunkAlloc::global();
            for t in 0..3u64 {
                e2.pin(1);
                // SAFETY: this thread is the node's only writer.
                unsafe {
                    n2.push(t, Value::bit(t % 2 == 1), &mut a);
                    n2.gc(&mut a);
                }
                e2.unpin(1);
            }
        });
        // Pinned across the whole replay, as a worker is across
        // `run_element`. (Pin/unpin per peek would put a store on the
        // empty-wait path and defeat the model's park-until-write spin
        // handling.)
        epochs.pin(0);
        let mut cursor = Cursor::new(&node, Value::x(1));
        let mut next = 0u64;
        while next < 3 {
            // SAFETY: this thread is the element's only runner.
            match unsafe { cursor.peek(&node) } {
                Some((t, v)) => {
                    assert_eq!(t, next);
                    assert_eq!(v, Value::bit(t % 2 == 1), "read a reclaimed slot");
                    unsafe { cursor.consume(&node) };
                    node.consumed[0].store(cursor.global, Ordering::Release);
                    next += 1;
                }
                None => thread::yield_now(),
            }
        }
        epochs.unpin(0);
        writer.join();
    });
    outcome.assert_pass("pinned consumer replay vs writer retire");
}
