//! Transparent-latch circuits across all engines — level-sensitive state
//! is the classic cross-engine hazard (a latch is transparent for whole
//! intervals, not just at edges).

use parsim_core::{assert_equivalent, ChaoticAsync, EventDriven, SimConfig, SyncEventDriven};
use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::{Builder, Netlist, NodeId};

/// A latch following a fast data signal while enabled by a slow gate.
fn latch_follower() -> (Netlist, Vec<NodeId>) {
    let mut b = Builder::new();
    let en = b.node("en", 1);
    let d = b.node("d", 1);
    let q = b.node("q", 1);
    b.element(
        "engen",
        ElementKind::Clock {
            half_period: 20,
            offset: 20,
        },
        Delay(1),
        &[],
        &[en],
    )
    .unwrap();
    b.element(
        "dgen",
        ElementKind::Clock {
            half_period: 3,
            offset: 3,
        },
        Delay(1),
        &[],
        &[d],
    )
    .unwrap();
    b.element("l", ElementKind::Latch { width: 1 }, Delay(1), &[en, d], &[q])
        .unwrap();
    (b.finish().unwrap(), vec![en, d, q])
}

#[test]
fn latch_follower_all_engines_agree() {
    let (n, watch) = latch_follower();
    let cfg = SimConfig::new(Time(300)).watch_all(watch);
    let seq = EventDriven::run(&n, &cfg).unwrap();
    for threads in [1, 2, 4] {
        let cfg_t = cfg.clone().threads(threads);
        assert_equivalent(&seq, &SyncEventDriven::run(&n, &cfg_t).unwrap(), "sync");
        assert_equivalent(&seq, &ChaoticAsync::run(&n, &cfg_t).unwrap(), "async");
    }
}

#[test]
fn latch_transparency_semantics() {
    let (n, watch) = latch_follower();
    let q = watch[2];
    let cfg = SimConfig::new(Time(300)).watch_all(watch);
    let r = EventDriven::run(&n, &cfg).unwrap();
    let wq = r.waveform(q).unwrap();
    // While en=1 (e.g. ticks 21..40 after the latch delay), q follows d
    // (period-3 toggles); while en=0 (41..60), q freezes.
    let transparent_changes = wq
        .changes()
        .iter()
        .filter(|(t, _)| (22..40).contains(&t.ticks()))
        .count();
    let opaque_changes = wq
        .changes()
        .iter()
        .filter(|(t, _)| (42..60).contains(&t.ticks()))
        .count();
    assert!(
        transparent_changes >= 4,
        "q should follow d while transparent: {transparent_changes}"
    );
    assert_eq!(opaque_changes, 0, "q must freeze while opaque");
}

/// A latch-based divider loop: q feeds back through an inverter into its
/// own data, gated by a narrow enable — a pathological level-sensitive
/// feedback structure.
#[test]
fn gated_latch_feedback_loop_agrees() {
    let mut b = Builder::new();
    let en = b.node("en", 1);
    let d = b.node("d", 1);
    let q = b.node("q", 1);
    // Narrow enable pulses: transparent for 2 ticks every 16.
    let values: Vec<Value> = (0..8)
        .map(|k| Value::bit(k == 0))
        .collect();
    b.element(
        "engen",
        ElementKind::Pattern {
            period: 2,
            values: values.into(),
        },
        Delay(1),
        &[],
        &[en],
    )
    .unwrap();
    b.element("l", ElementKind::Latch { width: 1 }, Delay(3), &[en, d], &[q])
        .unwrap();
    b.element("inv", ElementKind::Not, Delay(2), &[q], &[d])
        .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(400)).watch(q).watch(d).watch(en);
    let seq = EventDriven::run(&n, &cfg).unwrap();
    for threads in [1, 3] {
        let cfg_t = cfg.clone().threads(threads);
        assert_equivalent(&seq, &SyncEventDriven::run(&n, &cfg_t).unwrap(), "sync");
        assert_equivalent(&seq, &ChaoticAsync::run(&n, &cfg_t).unwrap(), "async");
    }
    // The loop resolves from X (enable gating lets the inverted X...
    // actually X holds until a known value enters; verify q eventually
    // leaves X or stays X consistently — the equivalence above is the
    // real assertion; here we just confirm activity exists on d.
    assert!(seq.waveform(en).unwrap().num_changes() > 10);
}

/// Wide (bus) latches across engines.
#[test]
fn wide_latch_agrees() {
    let mut b = Builder::new();
    let en = b.node("en", 1);
    let d = b.node("d", 8);
    let q = b.node("q", 8);
    b.element(
        "engen",
        ElementKind::Clock {
            half_period: 12,
            offset: 12,
        },
        Delay(1),
        &[],
        &[en],
    )
    .unwrap();
    b.element(
        "dgen",
        ElementKind::Lfsr {
            width: 8,
            period: 5,
            seed: 77,
        },
        Delay(1),
        &[],
        &[d],
    )
    .unwrap();
    b.element("l", ElementKind::Latch { width: 8 }, Delay(2), &[en, d], &[q])
        .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(300)).watch(q);
    let seq = EventDriven::run(&n, &cfg).unwrap();
    let asy = ChaoticAsync::run(&n, &cfg.clone().threads(2)).unwrap();
    assert_equivalent(&seq, &asy, "wide latch");
    assert!(
        seq.waveform(q).unwrap().num_changes() > 3,
        "q changed {} times",
        seq.waveform(q).unwrap().num_changes()
    );
}
