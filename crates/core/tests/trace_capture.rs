//! End-to-end tracing: every engine run with [`SimConfig::with_trace`]
//! yields a drained [`Trace`] whose Chrome export is well-formed JSON and
//! whose [`RunReport`] carries per-phase utilization — and, crucially,
//! waveforms are identical with and without tracing (the hooks must
//! observe, never perturb).

use parsim_core::{
    assert_equivalent, ChaoticAsync, CompiledMode, EventDriven, SimConfig, SyncEventDriven,
    TraceConfig,
};
use parsim_logic::{Delay, ElementKind, Time};
use parsim_netlist::{Builder, Netlist, NodeId};

/// A clocked inverter tree with feedback: enough events to touch every
/// hook (activations, inserts, barriers, grid traffic).
fn circuit() -> (Netlist, Vec<NodeId>) {
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 3,
            offset: 3,
        },
        Delay(1),
        &[],
        &[clk],
    )
    .unwrap();
    let mut prev = clk;
    let mut watch = vec![clk];
    for i in 0..6 {
        let n = b.node(&format!("n{i}"), 1);
        b.element(&format!("inv{i}"), ElementKind::Not, Delay(1), &[prev], &[n])
            .unwrap();
        watch.push(n);
        prev = n;
    }
    (b.finish().unwrap(), watch)
}

fn traced_config(watch: &[NodeId]) -> SimConfig {
    SimConfig::new(Time(200))
        .watch_all(watch.to_vec())
        .with_trace(TraceConfig::default())
}

#[test]
fn tracing_does_not_change_waveforms() {
    let (n, watch) = circuit();
    let plain = SimConfig::new(Time(200)).watch_all(watch.clone());
    let traced = traced_config(&watch);
    let base = EventDriven::run(&n, &plain).unwrap();
    assert_equivalent(&base, &EventDriven::run(&n, &traced).unwrap(), "seq traced");
    assert_equivalent(
        &base,
        &SyncEventDriven::run(&n, &traced.clone().threads(2)).unwrap(),
        "sync traced",
    );
    assert_equivalent(
        &base,
        &ChaoticAsync::run(&n, &traced.clone().threads(2)).unwrap(),
        "chaotic traced",
    );
    assert_equivalent(
        &base,
        &CompiledMode::run(&n, &traced.clone().threads(2)).unwrap(),
        "compiled traced",
    );
}

#[cfg(feature = "trace")]
mod with_feature {
    use super::*;
    use parsim_core::RunReport;

    /// Runs one engine and sanity-checks the drained trace: every worker
    /// present, at least one span per worker, Chrome JSON lints, and the
    /// report renders with finite utilization.
    fn check(name: &str, result: parsim_core::SimResult, workers: usize) {
        let trace = result
            .trace
            .unwrap_or_else(|| panic!("{name}: trace feature on + config set => Some"));
        assert_eq!(trace.num_workers(), workers, "{name}: all workers drained");
        for w in &trace.workers {
            assert!(
                w.span_count() > 0,
                "{name}: worker {} recorded no spans",
                w.worker
            );
        }
        let json = trace.to_chrome_json();
        parsim_trace::json::lint(&json)
            .unwrap_or_else(|e| panic!("{name}: chrome export not valid JSON: {e}"));
        let report = RunReport::from_trace(&trace);
        assert_eq!(report.workers.len(), workers);
        let util = report.utilization();
        assert!(
            (0.0..=1.0).contains(&util),
            "{name}: utilization {util} out of range"
        );
        parsim_trace::json::lint(&report.to_json())
            .unwrap_or_else(|e| panic!("{name}: report JSON invalid: {e}"));
        assert!(!report.to_string().is_empty());
    }

    #[test]
    fn every_engine_produces_spans_from_every_worker() {
        let (n, watch) = circuit();
        let cfg = traced_config(&watch);
        check("seq", EventDriven::run(&n, &cfg).unwrap(), 1);
        check(
            "sync",
            SyncEventDriven::run(&n, &cfg.clone().threads(2)).unwrap(),
            2,
        );
        check(
            "chaotic",
            ChaoticAsync::run(&n, &cfg.clone().threads(2)).unwrap(),
            2,
        );
        check(
            "compiled",
            CompiledMode::run(&n, &cfg.clone().threads(2)).unwrap(),
            2,
        );
    }

    #[test]
    fn untraced_config_yields_no_trace() {
        let (n, watch) = circuit();
        let cfg = SimConfig::new(Time(50)).watch_all(watch);
        assert!(EventDriven::run(&n, &cfg).unwrap().trace.is_none());
    }

    #[test]
    fn tiny_ring_capacity_drops_but_stays_valid() {
        let (n, watch) = circuit();
        let cfg = SimConfig::new(Time(200))
            .watch_all(watch)
            .with_trace(TraceConfig::with_capacity(32));
        let r = EventDriven::run(&n, &cfg).unwrap();
        let trace = r.trace.unwrap();
        assert!(trace.dropped() > 0, "32-slot ring must overflow here");
        parsim_trace::json::lint(&trace.to_chrome_json()).unwrap();
    }
}

#[cfg(not(feature = "trace"))]
#[test]
fn trace_request_is_a_noop_without_the_feature() {
    let (n, watch) = circuit();
    let r = EventDriven::run(&n, &traced_config(&watch)).unwrap();
    assert!(
        r.trace.is_none(),
        "without the trace feature, hooks are no-ops and no trace is drained"
    );
}
