//! Arena memory architecture: oracle equivalence with the slab arenas on
//! and off, allocator-accounting invariants, and slab-leak checks —
//! including the `SimError` early-exit path, where every span must still
//! return to the global allocator when the engine is torn down.
//!
//! `live_slab_blocks` is a process-global counter, so every test here
//! serializes on one mutex: a leak assertion must not observe another
//! test's transient spans.

use std::sync::Mutex;

use parsim_circuits::{inverter_array, random_circuit, RandomCircuitParams};
use parsim_core::{
    equivalence_report, ChaoticAsync, EventDriven, FaultPlan, SimConfig, SimError,
};
use parsim_logic::Time;
use parsim_queue::arena::live_slab_blocks;
use proptest::prelude::*;

static SERIAL: Mutex<()> = Mutex::new(());

fn serial() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn params_strategy() -> impl Strategy<Value = RandomCircuitParams> {
    (
        5usize..80,   // elements
        1usize..6,    // inputs
        0u64..4,      // seq fraction in quarters
        1u64..4,      // max delay
        any::<u64>(), // seed
    )
        .prop_map(|(elements, inputs, seqq, max_delay, seed)| RandomCircuitParams {
            elements,
            inputs,
            seq_fraction: seqq as f64 * 0.25,
            max_delay,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The arena is a pure allocation strategy: with it on or off, at any
    /// thread count, the chaotic engine must reproduce the sequential
    /// oracle's waveforms bit-identically.
    #[test]
    fn arena_ablation_matches_reference(
        params in params_strategy(),
        threads in 1usize..9,
    ) {
        let _g = serial();
        let c = random_circuit(&params).unwrap();
        let cfg = SimConfig::new(Time(150)).watch_all(c.watch.clone());
        let seq = EventDriven::run(&c.netlist, &cfg).unwrap();

        let mut on_cfg = cfg.clone().threads(threads);
        on_cfg.arena = true; // robust against PARSIM_NO_ARENA in the env
        let on = ChaoticAsync::run(&c.netlist, &on_cfg).unwrap();
        let rep = equivalence_report(&seq, &on);
        prop_assert!(rep.is_equivalent(), "seed {} arena x{threads}: {rep}", params.seed);
        prop_assert!(on.metrics.arena.enabled);

        let off = ChaoticAsync::run(
            &c.netlist,
            &cfg.clone().threads(threads).without_arena(),
        ).unwrap();
        let rep = equivalence_report(&seq, &off);
        prop_assert!(rep.is_equivalent(), "seed {} no-arena x{threads}: {rep}", params.seed);
        prop_assert!(!off.metrics.arena.enabled);
        prop_assert_eq!(off.metrics.arena.slab.slab_allocs, 0);
    }
}

/// Steady-state accounting: with the arena on, the only global-allocator
/// calls on the chunk path are slab-span grows, and there are far fewer
/// of them than the ablation's one-malloc-per-chunk.
#[test]
fn arena_cuts_global_allocator_calls() {
    let _g = serial();
    let arr = inverter_array(16, 16, 2).unwrap();
    let cfg = SimConfig::new(Time(600)).threads(4);
    let mut on_cfg = cfg.clone();
    on_cfg.arena = true;
    let on = ChaoticAsync::run(&arr.netlist, &on_cfg).unwrap();
    let off = ChaoticAsync::run(&arr.netlist, &cfg.clone().without_arena()).unwrap();

    let a = &on.metrics.arena;
    assert!(a.enabled);
    assert_eq!(a.global_allocs(), a.slab.slab_allocs);
    assert!(
        a.slab.recycled + a.slab.fresh >= a.chunk_allocs,
        "every chunk comes out of the slab layer: {a:?}"
    );

    let b = &off.metrics.arena;
    assert!(!b.enabled);
    assert_eq!(b.global_allocs(), b.chunk_allocs);
    assert!(
        b.global_allocs() >= 10 * a.global_allocs().max(1),
        "ablation {} vs arena {} global allocs",
        b.global_allocs(),
        a.global_allocs()
    );
}

/// Every slab span allocated during a run is returned to the global
/// allocator when the engine is dropped — across repeated runs and
/// thread counts, the live-span counter always lands back where it was.
#[test]
fn clean_runs_leak_no_slab_spans() {
    let _g = serial();
    let arr = inverter_array(8, 8, 2).unwrap();
    let before = live_slab_blocks();
    for threads in [1usize, 2, 4, 8] {
        let mut cfg = SimConfig::new(Time(400)).threads(threads);
        cfg.arena = true;
        let r = ChaoticAsync::run(&arr.netlist, &cfg).unwrap();
        assert!(r.metrics.arena.slab.slab_allocs > 0, "x{threads}: arena unused");
    }
    assert_eq!(
        live_slab_blocks(),
        before,
        "slab spans leaked across clean runs"
    );
}

/// The `SimError` early exit must tear the arena down just as completely:
/// a worker panic mid-run unwinds through pinned epochs, live chunks, and
/// in-flight ring segments, and still every span is freed.
#[test]
fn early_exit_leaks_no_slab_spans() {
    let _g = serial();
    let arr = inverter_array(8, 8, 1).unwrap();
    let before = live_slab_blocks();
    for threads in [2usize, 4] {
        let victim = threads - 1;
        let mut cfg = SimConfig::new(Time(1_000))
            .threads(threads)
            .with_fault(FaultPlan::panic_at(victim, 3));
        cfg.arena = true;
        let err = ChaoticAsync::run(&arr.netlist, &cfg)
            .expect_err("injected panic must surface as an error");
        assert!(
            matches!(err, SimError::WorkerPanicked { worker, .. } if worker == victim),
            "x{threads}: got {err}"
        );
    }
    assert_eq!(
        live_slab_blocks(),
        before,
        "slab spans leaked on the SimError path"
    );
}
