//! Cross-engine equivalence on the paper's benchmark circuits.
//!
//! The sequential, synchronous-parallel, and asynchronous engines must
//! produce identical waveforms on every circuit at every thread count; the
//! compiled-mode engine must match on unit-delay circuits. These tests run
//! all four engines on scaled-down versions of the paper's workloads
//! (inverter array, gate-level multiplier, functional multiplier,
//! pipelined CPU).

use parsim_circuits::{
    functional_multiplier, gate_multiplier, inverter_array, pipelined_cpu,
};
use parsim_core::{
    assert_equivalent, ChaoticAsync, CompiledMode, EventDriven, SimConfig, SyncEventDriven,
};
use parsim_logic::Time;
use parsim_netlist::{Netlist, NodeId};

fn check_all_engines(netlist: &Netlist, watch: Vec<NodeId>, end: Time, unit_delay: bool) {
    let cfg = SimConfig::new(end).watch_all(watch);
    let seq = EventDriven::run(netlist, &cfg).unwrap();
    for threads in [1, 2, 4] {
        let cfg_t = cfg.clone().threads(threads);
        let sync = SyncEventDriven::run(netlist, &cfg_t).unwrap();
        assert_equivalent(&seq, &sync, &format!("sync x{threads}"));
        let asy = ChaoticAsync::run(netlist, &cfg_t).unwrap();
        assert_equivalent(&seq, &asy, &format!("async x{threads}"));
        if unit_delay {
            let comp = CompiledMode::run(netlist, &cfg_t).unwrap();
            assert_equivalent(&seq, &comp, &format!("compiled x{threads}"));
        }
    }
}

#[test]
fn inverter_array_all_engines() {
    let arr = inverter_array(8, 8, 2).unwrap();
    let mut watch = arr.taps.clone();
    watch.extend(arr.inputs.iter().copied());
    check_all_engines(&arr.netlist, watch, Time(120), true);
}

#[test]
fn inverter_array_sparse_events() {
    // Slow toggling: few events per step, lots of idle time steps.
    let arr = inverter_array(4, 16, 16).unwrap();
    check_all_engines(&arr.netlist, arr.taps.clone(), Time(300), true);
}

#[test]
fn gate_multiplier_all_engines_and_correct_products() {
    let operands = vec![(0u64, 0u64), (3, 5), (255, 255), (170, 85), (200, 13)];
    let m = gate_multiplier(8, &operands, 160).unwrap();
    let watch = m.product.clone();
    check_all_engines(&m.netlist, watch, m.schedule_end(), true);

    // Functional correctness: sampled products equal native arithmetic.
    let cfg = SimConfig::new(m.schedule_end()).watch_all(m.product.clone());
    let r = EventDriven::run(&m.netlist, &cfg).unwrap();
    for (k, expected) in m.expected_products().into_iter().enumerate() {
        let got = r
            .bus_value_at(&m.product, m.sample_time(k))
            .unwrap_or_else(|| panic!("product {k} unreadable at {:?}", m.sample_time(k)));
        assert_eq!(got, expected, "product {k}");
    }
}

#[test]
fn gate_multiplier_async_products_match_native() {
    let operands = vec![(12u64, 11u64), (250, 250), (1, 255)];
    let m = gate_multiplier(8, &operands, 160).unwrap();
    let cfg = SimConfig::new(m.schedule_end())
        .watch_all(m.product.clone())
        .threads(4);
    let r = ChaoticAsync::run(&m.netlist, &cfg).unwrap();
    for (k, expected) in m.expected_products().into_iter().enumerate() {
        assert_eq!(
            r.bus_value_at(&m.product, m.sample_time(k)),
            Some(expected),
            "product {k}"
        );
    }
}

#[test]
fn functional_multiplier_all_engines_and_correct_products() {
    let operands = vec![(0u64, 0u64), (7, 9), (65_535, 65_535), (40_000, 3)];
    let m = functional_multiplier(&operands, 64).unwrap();
    // Delays are 1 and 2: compiled mode does not apply.
    check_all_engines(&m.netlist, vec![m.product], m.schedule_end(), false);

    let cfg = SimConfig::new(m.schedule_end()).watch(m.product).threads(2);
    let r = ChaoticAsync::run(&m.netlist, &cfg).unwrap();
    for (k, expected) in m.expected_products().into_iter().enumerate() {
        let got = r
            .waveform(m.product)
            .unwrap()
            .value_at(m.sample_time(k))
            .to_u64();
        assert_eq!(got, Some(expected), "product {k}");
    }
}

#[test]
fn pipelined_cpu_all_engines() {
    let cpu = pipelined_cpu(8, 48).unwrap();
    let mut watch = cpu.pc.clone();
    watch.extend(cpu.wb_result.iter().copied());
    check_all_engines(&cpu.netlist, watch, Time(600), true);
}

#[test]
fn pipelined_cpu_pc_advances() {
    let cpu = pipelined_cpu(8, 48).unwrap();
    let cfg = SimConfig::new(Time(1500)).watch_all(cpu.pc.clone());
    let r = EventDriven::run(&cpu.netlist, &cfg).unwrap();
    // After a few clock cycles the PC should count upwards. Sample after
    // each rising edge (clock: offset 48, half-period 48 -> rising at 48,
    // 144, 240...). The PC register captures pc+1 each edge.
    let mut values = Vec::new();
    for k in 0..8u64 {
        let t = Time(48 + 96 * k + 40); // well after the edge settles
        if let Some(v) = r.bus_value_at(&cpu.pc, t) {
            values.push(v);
        }
    }
    assert!(values.len() >= 6, "pc unreadable: {values:?}");
    for w in values.windows(2) {
        assert_eq!(w[1], (w[0] + 1) & 0xff, "pc sequence {values:?}");
    }
}
