//! Property: [`Metrics::merge`] is split-invariant. Merging a run's
//! per-worker metrics in one pass must equal merging any contiguous
//! two-group partition and then merging the group aggregates — i.e. the
//! aggregate an engine reports cannot depend on how its reduction tree
//! happens to group workers.
//!
//! The vendored proptest has no collection strategies, so the worker
//! list is derived deterministically from a generated seed: each
//! worker's counters come from a splitmix64 stream keyed by
//! `seed ^ worker_index`.

use std::time::Duration;

use parsim_core::{LocalityMetrics, Metrics, ThreadMetrics};
use proptest::prelude::*;

/// splitmix64: cheap, well-mixed stream for deriving counter values.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Builds one worker's metrics from a deterministic stream. Counters are
/// kept small so sums never overflow, and every field — including the
/// histogram, locality counters, and a per-thread entry — is exercised.
fn worker_metrics(seed: u64, index: usize) -> Metrics {
    let mut s = seed ^ (index as u64).wrapping_mul(0xa076_1d64_78bd_642f);
    let mut m = Metrics {
        events_processed: mix(&mut s) % 10_000,
        evaluations: mix(&mut s) % 10_000,
        activations: mix(&mut s) % 10_000,
        time_steps: mix(&mut s) % 1_000,
        gc_chunks_freed: mix(&mut s) % 100,
        blocks_skipped: mix(&mut s) % 100,
        evals_skipped: mix(&mut s) % 100,
        pool_misses: mix(&mut s) % 100,
        // max-merged, like wall: the run's lane width is the widest any
        // chunk used.
        lane_width: 64 << (mix(&mut s) % 4),
        locality: LocalityMetrics {
            local_hits: mix(&mut s) % 1_000,
            grid_sends: mix(&mut s) % 1_000,
            grid_batches: mix(&mut s) % 500,
            steals: mix(&mut s) % 100,
            backoff_parks: mix(&mut s) % 100,
        },
        wall: Duration::from_nanos(mix(&mut s) % 5_000_000),
        ..Metrics::default()
    };
    // A few histogram records spanning several buckets, plus the
    // occasional empty histogram (merge must tolerate both sides).
    for _ in 0..(mix(&mut s) % 5) {
        m.events_per_step.record(mix(&mut s) % 300);
    }
    m.per_thread.push(ThreadMetrics {
        busy: Duration::from_nanos(mix(&mut s) % 1_000_000),
        idle: Duration::from_nanos(mix(&mut s) % 1_000_000),
        evaluations: mix(&mut s) % 10_000,
        events: mix(&mut s) % 10_000,
        sched: LocalityMetrics {
            local_hits: mix(&mut s) % 1_000,
            grid_sends: mix(&mut s) % 1_000,
            grid_batches: mix(&mut s) % 500,
            steals: mix(&mut s) % 100,
            backoff_parks: mix(&mut s) % 100,
        },
    });
    m
}

/// Folds a slice of worker metrics into one aggregate, left to right.
fn merge_all(workers: &[Metrics]) -> Metrics {
    let mut acc = Metrics::default();
    for w in workers {
        acc.merge(w);
    }
    acc
}

/// Field-by-field equality check (`Metrics` has no `PartialEq`: its
/// engine-facing API never needs one, and deriving it just for tests
/// would invite accidental float comparisons elsewhere).
fn assert_metrics_eq(a: &Metrics, b: &Metrics) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.events_processed, b.events_processed);
    prop_assert_eq!(a.evaluations, b.evaluations);
    prop_assert_eq!(a.activations, b.activations);
    prop_assert_eq!(a.time_steps, b.time_steps);
    prop_assert_eq!(a.gc_chunks_freed, b.gc_chunks_freed);
    prop_assert_eq!(a.blocks_skipped, b.blocks_skipped);
    prop_assert_eq!(a.evals_skipped, b.evals_skipped);
    prop_assert_eq!(a.pool_misses, b.pool_misses);
    prop_assert_eq!(a.lane_width, b.lane_width);
    prop_assert_eq!(a.wall, b.wall);
    prop_assert_eq!(&a.events_per_step, &b.events_per_step);
    prop_assert_eq!(a.locality, b.locality);
    prop_assert_eq!(a.per_thread.len(), b.per_thread.len());
    for (x, y) in a.per_thread.iter().zip(&b.per_thread) {
        prop_assert_eq!(x.busy, y.busy);
        prop_assert_eq!(x.idle, y.idle);
        prop_assert_eq!(x.evaluations, y.evaluations);
        prop_assert_eq!(x.events, y.events);
        prop_assert_eq!(x.sched, y.sched);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_over_any_split_equals_unsplit_aggregate(
        seed in any::<u64>(),
        num_workers in 2usize..9,
        split_raw in 0usize..64,
    ) {
        let workers: Vec<Metrics> =
            (0..num_workers).map(|i| worker_metrics(seed, i)).collect();
        let split = 1 + split_raw % (num_workers - 1);

        let unsplit = merge_all(&workers);

        let mut grouped = merge_all(&workers[..split]);
        grouped.merge(&merge_all(&workers[split..]));

        assert_metrics_eq(&unsplit, &grouped)?;

        // Sanity on the non-trivial reductions: wall is a max, not a
        // sum, and per_thread preserves worker order across the split.
        let max_wall = workers.iter().map(|w| w.wall).max().unwrap();
        prop_assert_eq!(unsplit.wall, max_wall);
        prop_assert_eq!(unsplit.per_thread.len(), num_workers);
    }

    #[test]
    fn merging_empty_metrics_is_identity(seed in any::<u64>()) {
        let w = worker_metrics(seed, 0);
        let mut left = Metrics::default();
        left.merge(&w);
        let mut right = w.clone();
        right.merge(&Metrics::default());
        assert_metrics_eq(&left, &right)?;
        assert_metrics_eq(&left, &w)?;
    }
}
