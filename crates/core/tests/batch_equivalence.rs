//! Per-lane equivalence of the word-parallel batch kernel.
//!
//! Every lane of a [`CompiledMode::run_batch`] run must be bit-identical
//! to simulating that lane's stimulus alone with the sequential
//! [`EventDriven`] oracle — on random unit-delay netlists (combinational
//! gates, muxes, flip-flops, latches, tri-states, and fallback RTL ops),
//! and on ISCAS c17. Plus: activity gating must eliminate the work of
//! quiescent sub-circuits without touching waveforms.

use std::sync::Arc;

use parsim_core::{
    equivalence_report, BatchSync, CompiledMode, EventDriven, LaneStimulus, SimConfig,
};
use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::bench_fmt::{from_bench, BenchOptions, C17};
use parsim_netlist::{Builder, Netlist, NodeId};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One lane's input schedules, one per circuit input.
type Schedules = Vec<Vec<(Time, Value)>>;

/// Builds a deterministic random unit-delay circuit: a clock, `num_inputs`
/// stimulus nodes, and `num_gates` 1-bit elements drawn from the kinds
/// with native packed kernels. When `drive` is `Some`, the inputs get
/// `Vector` drivers (the scalar oracle form); when `None` they are left
/// floating for `run_batch` overrides. Node creation order is identical
/// either way, so `NodeId`s line up across the two forms.
fn gate_circuit(
    seed: u64,
    num_inputs: usize,
    num_gates: usize,
    drive: Option<&Schedules>,
) -> (Netlist, Vec<NodeId>, Vec<NodeId>) {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    let inputs: Vec<NodeId> = (0..num_inputs)
        .map(|i| b.node(&format!("in{i}"), 1))
        .collect();
    let gates: Vec<NodeId> = (0..num_gates)
        .map(|i| b.node(&format!("g{i}"), 1))
        .collect();
    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 4,
            offset: 4,
        },
        Delay(1),
        &[],
        &[clk],
    )
    .unwrap();
    if let Some(schedules) = drive {
        for (i, sched) in schedules.iter().enumerate() {
            let changes: Arc<[(u64, Value)]> = sched
                .iter()
                .map(|&(t, v)| (t.ticks(), v))
                .collect::<Vec<_>>()
                .into();
            b.element(
                &format!("vec{i}"),
                ElementKind::Vector { changes },
                Delay(1),
                &[],
                &[inputs[i]],
            )
            .unwrap();
        }
    }
    let mut pool = inputs.clone();
    for (i, &out) in gates.iter().enumerate() {
        let pick = |rng: &mut SmallRng| pool[rng.gen_range(0..pool.len())];
        let (kind, ins): (ElementKind, Vec<NodeId>) = match rng.gen_range(0..12u32) {
            0 => (ElementKind::Not, vec![pick(&mut rng)]),
            1 => (ElementKind::Buf, vec![pick(&mut rng)]),
            k @ 2..=5 => {
                let fanin = rng.gen_range(2..=3usize);
                let ins = (0..fanin).map(|_| pick(&mut rng)).collect();
                let kind = [
                    ElementKind::And,
                    ElementKind::Or,
                    ElementKind::Nand,
                    ElementKind::Nor,
                ][k as usize - 2]
                    .clone();
                (kind, ins)
            }
            6 => (ElementKind::Xor, vec![pick(&mut rng), pick(&mut rng)]),
            7 => (ElementKind::Xnor, vec![pick(&mut rng), pick(&mut rng)]),
            8 => (
                ElementKind::Mux { width: 1 },
                vec![pick(&mut rng), pick(&mut rng), pick(&mut rng)],
            ),
            9 => (
                ElementKind::Dff { width: 1 },
                vec![clk, pick(&mut rng)],
            ),
            10 => (
                ElementKind::Latch { width: 1 },
                vec![pick(&mut rng), pick(&mut rng)],
            ),
            _ => (
                ElementKind::TriBuf { width: 1 },
                vec![pick(&mut rng), pick(&mut rng)],
            ),
        };
        b.element(&format!("e{i}"), kind, Delay(1), &ins, &[out])
            .unwrap();
        pool.push(out);
    }
    let mut watch = gates;
    watch.extend(inputs.iter().copied());
    watch.push(clk);
    (b.finish().unwrap(), watch, inputs)
}

/// Random per-input schedule: strictly increasing times, mostly 0/1 with
/// occasional X to exercise unknown propagation.
fn random_schedule(rng: &mut SmallRng, end: u64) -> Vec<(Time, Value)> {
    let mut t = rng.gen_range(0..4u64);
    let mut out = Vec::new();
    while t < end {
        let v = match rng.gen_range(0..8u32) {
            0 => Value::x(1),
            k => Value::bit(k % 2 == 1),
        };
        out.push((Time(t), v));
        t += rng.gen_range(1..7u64);
    }
    if out.is_empty() {
        out.push((Time(0), Value::bit(false)));
    }
    out
}

fn lane_schedules(rng: &mut SmallRng, lanes: usize, num_inputs: usize, end: u64) -> Vec<Schedules> {
    (0..lanes)
        .map(|_| (0..num_inputs).map(|_| random_schedule(rng, end)).collect())
        .collect()
}

/// Runs the batch and checks every lane against its own oracle run.
fn check_lanes(
    seed: u64,
    num_inputs: usize,
    num_gates: usize,
    per_lane: &[Schedules],
    threads: usize,
    end: Time,
) -> Result<(), TestCaseError> {
    check_lanes_cfg(seed, num_inputs, num_gates, per_lane, threads, end, |c| c)
}

/// [`check_lanes`] with a config hook (lane width, sync mode, …).
#[allow(clippy::too_many_arguments)]
fn check_lanes_cfg(
    seed: u64,
    num_inputs: usize,
    num_gates: usize,
    per_lane: &[Schedules],
    threads: usize,
    end: Time,
    tweak: impl Fn(SimConfig) -> SimConfig,
) -> Result<(), TestCaseError> {
    let (netlist, watch, inputs) = gate_circuit(seed, num_inputs, num_gates, None);
    let cfg = tweak(SimConfig::new(end).watch_all(watch.clone()).threads(threads));
    let stimuli: Vec<LaneStimulus> = per_lane
        .iter()
        .map(|schedules| LaneStimulus {
            overrides: inputs
                .iter()
                .zip(schedules)
                .map(|(&n, s)| (n, s.clone()))
                .collect(),
        })
        .collect();
    let batch = CompiledMode::run_batch(&netlist, &cfg, &stimuli).unwrap();
    prop_assert_eq!(batch.lanes.len(), per_lane.len());
    for (l, schedules) in per_lane.iter().enumerate() {
        let (oracle_netlist, _, _) = gate_circuit(seed, num_inputs, num_gates, Some(schedules));
        let oracle_cfg = SimConfig::new(end).watch_all(watch.clone());
        let oracle = EventDriven::run(&oracle_netlist, &oracle_cfg).unwrap();
        let rep = equivalence_report(&oracle, &batch.lanes[l]);
        prop_assert!(
            rep.is_equivalent(),
            "seed {} lane {}/{} x{}: {}",
            seed,
            l,
            per_lane.len(),
            threads,
            rep
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn batch_lanes_match_event_driven_oracle(
        seed in any::<u64>(),
        lanes in 1usize..=8,
        threads in 1usize..4,
        num_gates in 5usize..60,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let num_inputs = rng.gen_range(1..5usize);
        let end = 80u64;
        let per_lane = lane_schedules(&mut rng, lanes, num_inputs, end);
        check_lanes(seed, num_inputs, num_gates, &per_lane, threads, Time(end))?;
    }
}

/// A full 64-lane batch on a fixed random circuit.
#[test]
fn full_64_lane_batch_matches_oracle() {
    let seed = 0x5eed_2026;
    let mut rng = SmallRng::seed_from_u64(seed);
    let per_lane = lane_schedules(&mut rng, 64, 3, 60);
    check_lanes(seed, 3, 40, &per_lane, 2, Time(60)).unwrap();
}

/// Ragged lane counts around every word and word-group boundary: a tail
/// chunk narrower than the word group leaves dead lanes whose garbage
/// must be masked out of events, waveforms, and gating decisions.
#[test]
fn ragged_lane_tails_match_oracle() {
    let seed = 0x7a11_5eed;
    for &lanes in &[1usize, 63, 65, 127, 513] {
        let mut rng = SmallRng::seed_from_u64(seed + lanes as u64);
        let per_lane = lane_schedules(&mut rng, lanes, 2, 40);
        check_lanes_cfg(seed, 2, 12, &per_lane, 2, Time(40), |c| {
            // Force 512-bit groups so 1/63/65/127 all exercise partially
            // dead words (and 513 a one-lane tail chunk). On hosts
            // without AVX-512 the same shapes run on the portable path.
            c.with_lane_width(512)
        })
        .unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The full execution matrix: every lane width (64 = portable scalar
    /// fallback through 512 = widest SIMD tier) crossed with both step
    /// synchronization modes, on random circuits and lane counts. Widths
    /// beyond the CPU's SIMD tier run the portable word-group path, so
    /// the matrix is meaningful on any host.
    #[test]
    fn width_by_sync_matrix_matches_oracle(
        seed in any::<u64>(),
        width_idx in 0usize..4,
        barrier in any::<bool>(),
        lanes in 1usize..=6,
        threads in 1usize..4,
    ) {
        let width = [64usize, 128, 256, 512][width_idx];
        let sync = if barrier { BatchSync::Barrier } else { BatchSync::Neighbor };
        let mut rng = SmallRng::seed_from_u64(seed);
        let num_inputs = rng.gen_range(1..4usize);
        let end = 50u64;
        let per_lane = lane_schedules(&mut rng, lanes, num_inputs, end);
        check_lanes_cfg(seed, num_inputs, 20, &per_lane, threads, Time(end), |c| {
            c.with_lane_width(width).with_batch_sync(sync)
        })?;
    }
}

/// ISCAS c17 under 64 random stimulus lanes, each checked against its own
/// sequential oracle run.
#[test]
fn c17_batch_matches_oracle_per_lane() {
    // Parse c17 with floating inputs; the batch drives them via overrides,
    // the oracle builds the same netlist with Vector drivers bound in.
    // Both builds create the `drive_*` nodes before instantiating, so
    // NodeIds line up.
    let input_names = ["1", "2", "3", "6", "7"];
    let parsed = from_bench(
        C17,
        &BenchOptions {
            input_period: None,
            ..Default::default()
        },
    )
    .unwrap();
    let build = |schedules: Option<&Schedules>| -> (Netlist, Vec<NodeId>, Vec<NodeId>) {
        let mut b = Builder::new();
        let bound: Vec<NodeId> = input_names
            .iter()
            .map(|name| b.node(&format!("drive_{name}"), 1))
            .collect();
        if let Some(schedules) = schedules {
            for (k, sched) in schedules.iter().enumerate() {
                let changes: Arc<[(u64, Value)]> = sched
                    .iter()
                    .map(|&(t, v)| (t.ticks(), v))
                    .collect::<Vec<_>>()
                    .into();
                b.element(
                    &format!("vec_{k}"),
                    ElementKind::Vector { changes },
                    Delay(1),
                    &[],
                    &[bound[k]],
                )
                .unwrap();
            }
        }
        let bindings: Vec<(&str, NodeId)> = input_names
            .iter()
            .zip(&bound)
            .map(|(&name, &n)| (name, n))
            .collect();
        let map = b.instantiate(&parsed.netlist, "c17", &bindings).unwrap();
        let mut watch = vec![map["22"], map["23"]];
        watch.extend(bound.iter().copied());
        (b.finish().unwrap(), watch, bound)
    };

    let mut rng = SmallRng::seed_from_u64(17);
    let end = 100u64;
    let per_lane = lane_schedules(&mut rng, 64, input_names.len(), end);
    let (netlist, watch, inputs) = build(None);
    let cfg = SimConfig::new(Time(end)).watch_all(watch.clone()).threads(2);
    let stimuli: Vec<LaneStimulus> = per_lane
        .iter()
        .map(|schedules| LaneStimulus {
            overrides: inputs
                .iter()
                .zip(schedules)
                .map(|(&n, s)| (n, s.clone()))
                .collect(),
        })
        .collect();
    let batch = CompiledMode::run_batch(&netlist, &cfg, &stimuli).unwrap();
    for (l, schedules) in per_lane.iter().enumerate() {
        let (oracle_netlist, oracle_watch, _) = build(Some(schedules));
        assert_eq!(oracle_watch, watch);
        let oracle =
            EventDriven::run(&oracle_netlist, &SimConfig::new(Time(end)).watch_all(watch.clone()))
                .unwrap();
        let rep = equivalence_report(&oracle, &batch.lanes[l]);
        assert!(rep.is_equivalent(), "c17 lane {l}: {rep}");
    }
}

/// Fallback (lane-serial) opcodes inside a batch: an adder + comparator
/// datapath has no native packed kernel, so the executor gathers each
/// lane, runs the scalar evaluator, and scatters the result. Waveforms
/// must still match the oracle exactly.
#[test]
fn fallback_opcodes_match_oracle() {
    let build = |schedules: Option<&Schedules>| -> (Netlist, Vec<NodeId>, Vec<NodeId>) {
        let mut b = Builder::new();
        let a = b.node("a", 4);
        let c = b.node("c", 4);
        let cin = b.node("cin", 1);
        let sum = b.node("sum", 4);
        let cout = b.node("cout", 1);
        let eq = b.node("eq", 1);
        let lt = b.node("lt", 1);
        if let Some(schedules) = schedules {
            for (k, (name, node)) in [("a", a), ("c", c), ("cin", cin)].iter().enumerate() {
                let changes: Arc<[(u64, Value)]> = schedules[k]
                    .iter()
                    .map(|&(t, v)| (t.ticks(), v))
                    .collect::<Vec<_>>()
                    .into();
                b.element(
                    &format!("vec_{name}"),
                    ElementKind::Vector { changes },
                    Delay(1),
                    &[],
                    &[*node],
                )
                .unwrap();
            }
        }
        b.element(
            "add",
            ElementKind::Adder { width: 4 },
            Delay(1),
            &[a, c, cin],
            &[sum, cout],
        )
        .unwrap();
        b.element(
            "cmpu",
            ElementKind::Comparator { width: 4 },
            Delay(1),
            &[sum, c],
            &[eq, lt],
        )
        .unwrap();
        (b.finish().unwrap(), vec![sum, cout, eq, lt], vec![a, c, cin])
    };

    let mut rng = SmallRng::seed_from_u64(99);
    let end = 60u64;
    let wide_schedule = |rng: &mut SmallRng, width: u8| -> Vec<(Time, Value)> {
        let mut t = 0u64;
        let mut out = Vec::new();
        while t < end {
            out.push((
                Time(t),
                Value::from_u64(rng.gen_range(0..(1u64 << width)), width),
            ));
            t += rng.gen_range(1..6u64);
        }
        out
    };
    let per_lane: Vec<Schedules> = (0..32)
        .map(|_| {
            vec![
                wide_schedule(&mut rng, 4),
                wide_schedule(&mut rng, 4),
                wide_schedule(&mut rng, 1),
            ]
        })
        .collect();
    let (netlist, watch, inputs) = build(None);
    let cfg = SimConfig::new(Time(end)).watch_all(watch.clone()).threads(2);
    let stimuli: Vec<LaneStimulus> = per_lane
        .iter()
        .map(|schedules| LaneStimulus {
            overrides: inputs
                .iter()
                .zip(schedules)
                .map(|(&n, s)| (n, s.clone()))
                .collect(),
        })
        .collect();
    let batch = CompiledMode::run_batch(&netlist, &cfg, &stimuli).unwrap();
    for (l, schedules) in per_lane.iter().enumerate() {
        let (oracle_netlist, _, _) = build(Some(schedules));
        let oracle =
            EventDriven::run(&oracle_netlist, &SimConfig::new(Time(end)).watch_all(watch.clone()))
                .unwrap();
        let rep = equivalence_report(&oracle, &batch.lanes[l]);
        assert!(rep.is_equivalent(), "fallback lane {l}: {rep}");
    }
}

/// A quiescent sub-circuit must contribute (almost) zero evaluations once
/// it settles: activity gating skips its blocks every remaining step.
#[test]
fn quiescent_subcircuit_is_gated_out() {
    // Active part: clock + one inverter. Quiescent part: a 200-gate
    // inverter chain fed by a constant, silent after the X→value wavefront
    // passes (~200 steps out of 4000).
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    let act = b.node("act", 1);
    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 5,
            offset: 5,
        },
        Delay(1),
        &[],
        &[clk],
    )
    .unwrap();
    b.element("inv_act", ElementKind::Not, Delay(1), &[clk], &[act])
        .unwrap();
    let seed = b.node("seed", 1);
    b.element(
        "const",
        ElementKind::Const {
            value: Value::bit(true),
        },
        Delay(1),
        &[],
        &[seed],
    )
    .unwrap();
    let mut prev = seed;
    for i in 0..200 {
        let n = b.node(&format!("q{i}"), 1);
        b.element(&format!("qi{i}"), ElementKind::Not, Delay(1), &[prev], &[n])
            .unwrap();
        prev = n;
    }
    let n = b.finish().unwrap();

    let end = Time(4000);
    let watch = vec![clk, act, prev];
    let gated_cfg = SimConfig::new(end).watch_all(watch.clone()).threads(2);
    let gated = CompiledMode::run(&n, &gated_cfg).unwrap();
    let ungated = CompiledMode::run(&n, &gated_cfg.clone().without_activity_gating()).unwrap();

    // Identical waveforms; gating is purely a work optimization.
    let rep = equivalence_report(&ungated, &gated);
    assert!(rep.is_equivalent(), "gating changed waveforms: {rep}");

    // Ungated: every element every step. Gated: accounting still covers
    // every (element, step) pair, but >90% is skipped, not evaluated.
    let elements = 201u64; // inv_act + 200 chain inverters (generators excluded)
    assert_eq!(ungated.metrics.evaluations, elements * end.ticks());
    assert_eq!(ungated.metrics.evals_skipped, 0);
    assert_eq!(
        gated.metrics.evaluations + gated.metrics.evals_skipped,
        elements * end.ticks()
    );
    assert!(gated.metrics.blocks_skipped > 0);
    assert!(
        gated.metrics.gating_ratio() > 0.9,
        "only {:.1}% of evaluations eliminated ({} evals, {} skipped)",
        gated.metrics.gating_ratio() * 100.0,
        gated.metrics.evaluations,
        gated.metrics.evals_skipped
    );

    // The quiescent chain itself contributes zero evaluations after its
    // wavefront settles: all work beyond the settle budget belongs to the
    // active pair. Chain blocks can each be touched a handful of times
    // while the wavefront crosses them; bound that settle work generously
    // and require everything else to have been skipped.
    let active_insns = 2u64; // inv_act shares no block with the chain? (bound below is safe either way)
    let settle_budget = 200u64 * 64; // chain insns × generous wavefront passes
    assert!(
        gated.metrics.evaluations <= active_insns * end.ticks() + settle_budget,
        "quiescent chain kept evaluating: {} evaluations",
        gated.metrics.evaluations
    );
}
