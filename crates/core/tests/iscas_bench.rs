//! Simulating ISCAS `.bench` circuits: truth-table verification of c17
//! and cross-engine equivalence under LFSR stimulus.

use parsim_core::{assert_equivalent, ChaoticAsync, EventDriven, SimConfig, SyncEventDriven};
use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::bench_fmt::{from_bench, BenchOptions, C17};
use parsim_netlist::Builder;

/// Software model of c17.
fn c17_reference(i1: bool, i2: bool, i3: bool, i6: bool, i7: bool) -> (bool, bool) {
    let nand = |a: bool, b: bool| !(a && b);
    let n10 = nand(i1, i3);
    let n11 = nand(i3, i6);
    let n16 = nand(i2, n11);
    let n19 = nand(n11, i7);
    (nand(n10, n16), nand(n16, n19))
}

#[test]
fn c17_truth_table_exhaustive() {
    // All 32 input combinations, applied via constant drivers.
    for combo in 0..32u32 {
        let bits: Vec<bool> = (0..5).map(|k| combo & (1 << k) != 0).collect();
        // Parse with floating inputs, then rebuild with Const drivers by
        // round-tripping through the text format and a fresh builder.
        let parsed = from_bench(
            C17,
            &BenchOptions {
                input_period: None,
                ..Default::default()
            },
        )
        .unwrap();
        // Attach drivers by instantiating the parsed netlist into a new
        // builder with the inputs bound to constant nodes.
        let mut b = Builder::new();
        let input_names = ["1", "2", "3", "6", "7"];
        let mut bindings = Vec::new();
        let mut bound_nodes = Vec::new();
        for (k, name) in input_names.iter().enumerate() {
            let n = b.node(&format!("drive_{name}"), 1);
            b.element(
                &format!("const_{name}"),
                ElementKind::Const {
                    value: Value::bit(bits[k]),
                },
                Delay(1),
                &[],
                &[n],
            )
            .unwrap();
            bound_nodes.push(n);
        }
        for (k, name) in input_names.iter().enumerate() {
            bindings.push((*name, bound_nodes[k]));
        }
        let map = b.instantiate(&parsed.netlist, "c17", &bindings).unwrap();
        let out22 = map["22"];
        let out23 = map["23"];
        let n = b.finish().unwrap();

        let cfg = SimConfig::new(Time(20)).watch(out22).watch(out23);
        let r = EventDriven::run(&n, &cfg).unwrap();
        let (e22, e23) = c17_reference(bits[0], bits[1], bits[2], bits[3], bits[4]);
        assert_eq!(
            r.final_value(out22),
            Some(Value::bit(e22)),
            "combo {combo:05b} out 22"
        );
        assert_eq!(
            r.final_value(out23),
            Some(Value::bit(e23)),
            "combo {combo:05b} out 23"
        );
    }
}

#[test]
fn c17_all_engines_agree_under_lfsr_stimulus() {
    let c = from_bench(C17, &BenchOptions::default()).unwrap();
    let mut watch = c.outputs.clone();
    watch.extend(c.inputs.iter().copied());
    let cfg = SimConfig::new(Time(400)).watch_all(watch);
    let seq = EventDriven::run(&c.netlist, &cfg).unwrap();
    for threads in [1, 2, 4] {
        let cfg_t = cfg.clone().threads(threads);
        assert_equivalent(&seq, &SyncEventDriven::run(&c.netlist, &cfg_t).unwrap(), "sync");
        assert_equivalent(&seq, &ChaoticAsync::run(&c.netlist, &cfg_t).unwrap(), "async");
    }
    // The outputs actually toggle under stimulus.
    for &o in &c.outputs {
        assert!(
            seq.waveform(o).unwrap().num_changes() > 5,
            "output {o} is stuck"
        );
    }
}

#[test]
fn sequential_bench_circuit_simulates() {
    // A 3-bit LFSR described in .bench form (XOR feedback).
    let text = "\
INPUT(seed)
OUTPUT(q2)
q0 = DFF(fb)
q1 = DFF(q0)
q2 = DFF(q1)
fb = XOR(q1, q2, seed)
";
    let c = from_bench(text, &BenchOptions::default()).unwrap();
    let cfg = SimConfig::new(Time(800)).watch(c.outputs[0]);
    let seq = EventDriven::run(&c.netlist, &cfg).unwrap();
    let asy = ChaoticAsync::run(&c.netlist, &cfg.clone().threads(2)).unwrap();
    assert_equivalent(&seq, &asy, "bench lfsr");
}
