//! Defensive edge cases every engine must survive: empty circuits,
//! zero-length simulations, delays beyond the horizon, and maximum
//! widths.

use parsim_core::{
    assert_equivalent, ChaoticAsync, CompiledMode, EventDriven, SimConfig, SyncEventDriven,
};
use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::{Builder, Netlist};

fn run_all(netlist: &Netlist, cfg: &SimConfig) {
    let seq = EventDriven::run(netlist, cfg).unwrap();
    for threads in [1, 3] {
        let cfg_t = cfg.clone().threads(threads);
        assert_equivalent(&seq, &SyncEventDriven::run(netlist, &cfg_t).unwrap(), "sync");
        assert_equivalent(&seq, &ChaoticAsync::run(netlist, &cfg_t).unwrap(), "async");
        assert_equivalent(&seq, &CompiledMode::run(netlist, &cfg_t).unwrap(), "compiled");
    }
}

#[test]
fn empty_netlist() {
    let n = Builder::new().finish().unwrap();
    run_all(&n, &SimConfig::new(Time(100)));
}

#[test]
fn nodes_without_elements() {
    let mut b = Builder::new();
    let a = b.node("a", 8);
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(50)).watch(a);
    run_all(&n, &cfg);
    let r = EventDriven::run(&n, &cfg).unwrap();
    assert_eq!(r.final_value(a), Some(Value::x(8)));
}

#[test]
fn generator_only_circuit() {
    let mut b = Builder::new();
    let c = b.node("c", 1);
    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 3,
            offset: 3,
        },
        Delay(1),
        &[],
        &[c],
    )
    .unwrap();
    let n = b.finish().unwrap();
    run_all(&n, &SimConfig::new(Time(30)).watch(c));
}

#[test]
fn zero_end_time() {
    let mut b = Builder::new();
    let c = b.node("c", 1);
    let y = b.node("y", 1);
    b.element(
        "k",
        ElementKind::Const {
            value: Value::bit(true),
        },
        Delay(1),
        &[],
        &[c],
    )
    .unwrap();
    b.element("inv", ElementKind::Not, Delay(1), &[c], &[y])
        .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(0)).watch(c).watch(y);
    run_all(&n, &cfg);
    let r = EventDriven::run(&n, &cfg).unwrap();
    // The constant lands at t=0; the inverter's response would land at
    // t=1, beyond the horizon.
    assert_eq!(r.final_value(c), Some(Value::bit(true)));
    assert_eq!(r.final_value(y), Some(Value::x(1)));
}

#[test]
fn delay_beyond_horizon_never_fires() {
    let mut b = Builder::new();
    let c = b.node("c", 1);
    let y = b.node("y", 1);
    b.element(
        "k",
        ElementKind::Const {
            value: Value::bit(false),
        },
        Delay(1),
        &[],
        &[c],
    )
    .unwrap();
    b.element("slow", ElementKind::Not, Delay(1_000_000), &[c], &[y])
        .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(100)).watch(y);
    // Compiled mode is excluded: it imposes unit delay by definition, so
    // this deliberately non-unit-delay circuit is outside its model.
    let seq = EventDriven::run(&n, &cfg).unwrap();
    for threads in [1, 3] {
        let cfg_t = cfg.clone().threads(threads);
        assert_equivalent(&seq, &SyncEventDriven::run(&n, &cfg_t).unwrap(), "sync");
        assert_equivalent(&seq, &ChaoticAsync::run(&n, &cfg_t).unwrap(), "async");
    }
    let r = ChaoticAsync::run(&n, &cfg).unwrap();
    assert_eq!(r.final_value(y), Some(Value::x(1)));
}

#[test]
fn width_64_datapath() {
    let mut b = Builder::new();
    let a = b.node("a", 64);
    let c = b.node("c", 64);
    let cin = b.node("cin", 1);
    let sum = b.node("sum", 64);
    let cout = b.node("cout", 1);
    b.element(
        "ga",
        ElementKind::Const {
            value: Value::from_u64(u64::MAX, 64),
        },
        Delay(1),
        &[],
        &[a],
    )
    .unwrap();
    b.element(
        "gb",
        ElementKind::Const {
            value: Value::from_u64(1, 64),
        },
        Delay(1),
        &[],
        &[c],
    )
    .unwrap();
    b.element(
        "gc",
        ElementKind::Const {
            value: Value::bit(false),
        },
        Delay(1),
        &[],
        &[cin],
    )
    .unwrap();
    b.element(
        "add",
        ElementKind::Adder { width: 64 },
        Delay(1),
        &[a, c, cin],
        &[sum, cout],
    )
    .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(10)).watch(sum).watch(cout);
    run_all(&n, &cfg);
    let r = EventDriven::run(&n, &cfg).unwrap();
    assert_eq!(r.final_value(sum), Some(Value::from_u64(0, 64)));
    assert_eq!(r.final_value(cout), Some(Value::bit(true)));
}

#[test]
fn more_threads_than_elements() {
    let mut b = Builder::new();
    let c = b.node("c", 1);
    let y = b.node("y", 1);
    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 2,
            offset: 2,
        },
        Delay(1),
        &[],
        &[c],
    )
    .unwrap();
    b.element("inv", ElementKind::Not, Delay(1), &[c], &[y])
        .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(40)).watch(y).threads(8);
    let seq = EventDriven::run(&n, &cfg).unwrap();
    assert_equivalent(&seq, &SyncEventDriven::run(&n, &cfg).unwrap(), "sync x8");
    assert_equivalent(&seq, &ChaoticAsync::run(&n, &cfg).unwrap(), "async x8");
    assert_equivalent(&seq, &CompiledMode::run(&n, &cfg).unwrap(), "compiled x8");
}

#[test]
fn self_loop_element() {
    // A DFF whose data input is its own output, kicked by a reset: q
    // holds 0 forever after reset, but the wiring exercises
    // self-activation in the asynchronous engine.
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    let rst = b.node("rst", 1);
    let q = b.node("q", 1);
    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 3,
            offset: 3,
        },
        Delay(1),
        &[],
        &[clk],
    )
    .unwrap();
    b.element(
        "porst",
        ElementKind::Pulse { at: 0, width: 2 },
        Delay(1),
        &[],
        &[rst],
    )
    .unwrap();
    b.element(
        "ff",
        ElementKind::DffR { width: 1 },
        Delay(1),
        &[clk, q, rst],
        &[q],
    )
    .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(60)).watch(q);
    run_all(&n, &cfg);
    let r = EventDriven::run(&n, &cfg).unwrap();
    assert_eq!(r.final_value(q), Some(Value::bit(false)));
}

#[test]
fn watching_the_same_node_twice_is_harmless() {
    let mut b = Builder::new();
    let c = b.node("c", 1);
    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 4,
            offset: 4,
        },
        Delay(1),
        &[],
        &[c],
    )
    .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(20)).watch(c).watch(c);
    run_all(&n, &cfg);
}
