//! Directed tests of asymmetric rise/fall delays and the
//! monotone-transport rule.

use parsim_core::{assert_equivalent, ChaoticAsync, EventDriven, SimConfig, SyncEventDriven};
use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::Builder;

/// A buffer with rise 5 / fall 1 driven by a slow clock: edges shift by
/// the direction-specific delay.
#[test]
fn asymmetric_buffer_shifts_edges_by_direction() {
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    let out = b.node("out", 1);
    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 20,
            offset: 20,
        },
        Delay(1),
        &[],
        &[clk],
    )
    .unwrap();
    b.element_with_delays("buf", ElementKind::Buf, Delay(5), Delay(1), &[clk], &[out])
        .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(100)).watch(out);
    let r = EventDriven::run(&n, &cfg).unwrap();
    let w = r.waveform(out).unwrap();
    // clk rises at 20 (out -> 1 at 25), falls at 40 (out -> 0 at 41),
    // rises at 60 (out -> 1 at 65), falls at 80 (out -> 0 at 81).
    // The initial X -> 0 evaluation at t=0 lands at max-delay: t=5.
    assert_eq!(
        w.changes(),
        &[
            (Time(5), Value::bit(false)),
            (Time(25), Value::bit(true)),
            (Time(41), Value::bit(false)),
            (Time(65), Value::bit(true)),
            (Time(81), Value::bit(false)),
        ]
    );
}

/// A pulse narrower than the rise/fall difference stretches instead of
/// collapsing out of order (the monotone-transport rule).
#[test]
fn short_pulse_stretches_not_reorders() {
    let mut b = Builder::new();
    let p = b.node("p", 1);
    let out = b.node("out", 1);
    // 2-tick-wide pulse through a buffer with rise 10 / fall 1: the raw
    // schedule would be rise at t=5+10=15 and fall at t=7+1=8 — out of
    // order. The monotone rule stretches the fall to t=16.
    b.element("pg", ElementKind::Pulse { at: 5, width: 2 }, Delay(1), &[], &[p])
        .unwrap();
    b.element_with_delays("buf", ElementKind::Buf, Delay(10), Delay(1), &[p], &[out])
        .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(60)).watch(out);
    let r = EventDriven::run(&n, &cfg).unwrap();
    let w = r.waveform(out).unwrap();
    assert_eq!(
        w.changes(),
        &[
            (Time(10), Value::bit(false)), // initial X -> 0 via max delay
            (Time(15), Value::bit(true)),
            (Time(16), Value::bit(false)), // stretched, not reordered
        ],
        "got {:?}",
        w.changes()
    );
    // Event times stay strictly monotone per node by construction.
    assert!(w.changes().windows(2).all(|x| x[0].0 < x[1].0));
}

/// All engines agree under asymmetric delays, including on feedback.
#[test]
fn engines_agree_with_asymmetric_delays() {
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 7,
            offset: 7,
        },
        Delay(1),
        &[],
        &[clk],
    )
    .unwrap();
    let a = b.node("a", 1);
    let c = b.node("c", 1);
    let d = b.node("d", 1);
    b.element_with_delays("g1", ElementKind::Not, Delay(4), Delay(1), &[clk], &[a])
        .unwrap();
    b.element_with_delays("g2", ElementKind::Not, Delay(1), Delay(6), &[a], &[c])
        .unwrap();
    b.element_with_delays("g3", ElementKind::Xor, Delay(2), Delay(3), &[a, c], &[d])
        .unwrap();
    let n = b.finish().unwrap();
    let cfg = SimConfig::new(Time(200)).watch(a).watch(c).watch(d);
    let seq = EventDriven::run(&n, &cfg).unwrap();
    for threads in [1, 2, 4] {
        let cfg_t = cfg.clone().threads(threads);
        assert_equivalent(&seq, &SyncEventDriven::run(&n, &cfg_t).unwrap(), "sync");
        assert_equivalent(&seq, &ChaoticAsync::run(&n, &cfg_t).unwrap(), "async");
    }
}

/// Text-format round trip preserves asymmetric delays.
#[test]
fn rise_fall_survives_text_round_trip() {
    let mut b = Builder::new();
    let a = b.node("a", 1);
    let y = b.node("y", 1);
    b.element_with_delays("g", ElementKind::Not, Delay(3), Delay(7), &[a], &[y])
        .unwrap();
    let n = b.finish().unwrap();
    let text = n.to_text();
    assert!(text.contains("delay=3/7"), "{text}");
    let reparsed = parsim_netlist::Netlist::from_text(&text).unwrap();
    let g = reparsed.element_by_name("g").unwrap();
    assert_eq!(reparsed.element(g).rise_delay(), Delay(3));
    assert_eq!(reparsed.element(g).fall_delay(), Delay(7));
}
