//! Crash-consistent checkpoint/restore: segmented runs must be
//! bit-identical to uninterrupted ones on every engine, resume must
//! continue from the newest valid snapshot after a simulated crash, and
//! recovery must survive every storage fault the write protocol can
//! suffer — torn writes at every byte, silent bit flips, fsync and
//! rename crashes — without panicking, hanging, or changing a waveform.

use std::fs;
use std::path::PathBuf;

use parsim_circuits::{inverter_array, random_circuit, RandomCircuitParams};
use parsim_core::{
    checkpoint, equivalence_report, CheckpointError, CheckpointStore, EngineKind, EventDriven,
    FaultPlan, SimConfig, SimError, StorageFault,
};
use parsim_logic::Time;
use proptest::prelude::*;

const ALL_ENGINES: [EngineKind; 4] = [
    EngineKind::Sequential,
    EngineKind::Synchronous,
    EngineKind::Compiled,
    EngineKind::Chaotic,
];

/// A fresh scratch directory, unique per test *and* process, so
/// parallel test binaries never collide.
fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parsim-ckpt-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Unit-delay circuit every engine (including compiled mode) can run.
fn test_circuit() -> (parsim_netlist::Netlist, Vec<parsim_netlist::NodeId>) {
    let arr = inverter_array(8, 6, 2).unwrap();
    let mut watch = arr.taps.clone();
    watch.extend(arr.inputs.iter().copied());
    (arr.netlist, watch)
}

fn expect_injected_crash(err: SimError) {
    match err {
        SimError::Checkpoint(CheckpointError::InjectedCrash { .. }) => {}
        other => panic!("expected injected crash, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Segmented == uninterrupted, all engines
// ---------------------------------------------------------------------------

#[test]
fn checkpointed_run_matches_uninterrupted_all_engines() {
    let (netlist, watch) = test_circuit();
    let oracle = EventDriven::run(&netlist, &SimConfig::new(Time(400)).watch_all(watch.clone()))
        .unwrap();
    for kind in ALL_ENGINES {
        let dir = tmpdir(&format!("seg-{}", kind.name()));
        let cfg = SimConfig::new(Time(400))
            .watch_all(watch.clone())
            .threads(2)
            .with_checkpoint_dir(&dir)
            .with_checkpoint_every(60);
        let r = checkpoint::run(kind, &netlist, &cfg).unwrap();
        let rep = equivalence_report(&oracle, &r);
        assert!(rep.is_equivalent(), "{}: {rep}", kind.name());
        // Cuts at 60..360 → six captured snapshots, and the counters
        // must say so.
        assert_eq!(r.metrics.checkpoint.writes, 6, "{}", kind.name());
        assert!(r.metrics.checkpoint.bytes > 0, "{}", kind.name());
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn interval_larger_than_run_is_one_plain_segment() {
    let (netlist, watch) = test_circuit();
    let dir = tmpdir("oneseg");
    let cfg = SimConfig::new(Time(100))
        .watch_all(watch.clone())
        .with_checkpoint_dir(&dir)
        .with_checkpoint_every(1000);
    let r = checkpoint::run(EngineKind::Sequential, &netlist, &cfg).unwrap();
    let oracle =
        EventDriven::run(&netlist, &SimConfig::new(Time(100)).watch_all(watch)).unwrap();
    assert!(equivalence_report(&oracle, &r).is_equivalent());
    assert_eq!(r.metrics.checkpoint.writes, 0, "final segment never captures");
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Crash + resume, all engines, every protocol phase
// ---------------------------------------------------------------------------

#[test]
fn crash_then_resume_is_bit_identical_all_engines() {
    let (netlist, watch) = test_circuit();
    let oracle = EventDriven::run(&netlist, &SimConfig::new(Time(400)).watch_all(watch.clone()))
        .unwrap();
    for kind in ALL_ENGINES {
        let dir = tmpdir(&format!("crash-{}", kind.name()));
        let cfg = SimConfig::new(Time(400))
            .watch_all(watch.clone())
            .threads(2)
            .with_checkpoint_dir(&dir)
            .with_checkpoint_every(60);
        // The machine dies during the third checkpoint's fsync.
        let crashing = cfg
            .clone()
            .with_fault(FaultPlan::storage_fault(2, StorageFault::FsyncCrash));
        expect_injected_crash(checkpoint::run(kind, &netlist, &crashing).unwrap_err());

        let r = checkpoint::resume(kind, &netlist, &cfg).unwrap();
        let rep = equivalence_report(&oracle, &r);
        assert!(rep.is_equivalent(), "{} resumed: {rep}", kind.name());
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn every_fault_kind_at_every_write_recovers() {
    let (netlist, watch) = test_circuit();
    let oracle = EventDriven::run(&netlist, &SimConfig::new(Time(300)).watch_all(watch.clone()))
        .unwrap();
    let faults = [
        StorageFault::TornWrite { at_byte: 100 },
        StorageFault::BitFlip { at_byte: 41 },
        StorageFault::FsyncCrash,
        StorageFault::RenameCrash,
    ];
    // end 300, every 60 → four capturing cuts (60..240), so writes 0..=3.
    for fault in faults {
        for nth in 0..4u64 {
            let dir = tmpdir(&format!("phase-{fault:?}-{nth}").replace([' ', '{', '}', ':'], ""));
            let cfg = SimConfig::new(Time(300))
                .watch_all(watch.clone())
                .with_checkpoint_dir(&dir)
                .with_checkpoint_every(60);
            let crashing = cfg.clone().with_fault(FaultPlan::storage_fault(nth, fault));
            match checkpoint::run(EngineKind::Sequential, &netlist, &crashing) {
                // A bit flip is silent at write time: the run completes
                // and only a later load can notice.
                Ok(r) => {
                    assert!(matches!(fault, StorageFault::BitFlip { .. }), "{fault:?}");
                    assert!(equivalence_report(&oracle, &r).is_equivalent());
                }
                Err(e) => expect_injected_crash(e),
            }
            // Recovery: fall back past whatever the fault left behind and
            // still finish with the oracle's exact waveforms.
            let r = checkpoint::resume(EngineKind::Sequential, &netlist, &cfg).unwrap();
            let rep = equivalence_report(&oracle, &r);
            assert!(rep.is_equivalent(), "{fault:?} at write {nth}: {rep}");
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn torn_newest_falls_back_to_previous_snapshot() {
    let (netlist, watch) = test_circuit();
    let dir = tmpdir("fallback");
    let cfg = SimConfig::new(Time(300))
        .watch_all(watch.clone())
        .with_checkpoint_dir(&dir)
        .with_checkpoint_every(60);
    // Write 0 commits clean; write 1 commits a torn file then dies.
    let crashing = cfg.clone().with_fault(FaultPlan::storage_fault(
        1,
        StorageFault::TornWrite { at_byte: 64 },
    ));
    expect_injected_crash(
        checkpoint::run(EngineKind::Sequential, &netlist, &crashing).unwrap_err(),
    );

    // The store itself must report the fallback: newest is skipped as
    // corrupt, the previous snapshot loads.
    let digest = checkpoint::netlist_digest(&netlist);
    let store = CheckpointStore::open(&dir, digest, 4).unwrap();
    let rec = store.recover().unwrap();
    assert_eq!(rec.skipped.len(), 1, "torn newest must be skipped");
    assert!(matches!(
        rec.skipped[0].1,
        CheckpointError::Corrupt { .. }
    ));
    assert_eq!(rec.snapshot.as_ref().map(|s| s.time), Some(60));

    let oracle =
        EventDriven::run(&netlist, &SimConfig::new(Time(300)).watch_all(watch)).unwrap();
    let r = checkpoint::resume(EngineKind::Sequential, &netlist, &cfg).unwrap();
    assert!(equivalence_report(&oracle, &r).is_equivalent());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn crash_before_any_commit_resumes_fresh() {
    let (netlist, watch) = test_circuit();
    let dir = tmpdir("fresh");
    let cfg = SimConfig::new(Time(200))
        .watch_all(watch.clone())
        .with_checkpoint_dir(&dir)
        .with_checkpoint_every(50);
    let crashing = cfg
        .clone()
        .with_fault(FaultPlan::storage_fault(0, StorageFault::RenameCrash));
    expect_injected_crash(
        checkpoint::run(EngineKind::Sequential, &netlist, &crashing).unwrap_err(),
    );
    // Nothing committed — only a stale temp file may exist.
    let digest = checkpoint::netlist_digest(&netlist);
    let store = CheckpointStore::open(&dir, digest, 4).unwrap();
    assert_eq!(store.num_snapshots(), 0);

    let oracle =
        EventDriven::run(&netlist, &SimConfig::new(Time(200)).watch_all(watch)).unwrap();
    let r = checkpoint::resume(EngineKind::Sequential, &netlist, &cfg).unwrap();
    assert!(equivalence_report(&oracle, &r).is_equivalent());
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Torn-write matrix: every byte truncation point
// ---------------------------------------------------------------------------

#[test]
fn torn_write_matrix_every_truncation_point() {
    let (netlist, watch) = test_circuit();
    let dir = tmpdir("matrix");
    let cfg = SimConfig::new(Time(200))
        .watch_all(watch.clone())
        .with_checkpoint_dir(&dir)
        .with_checkpoint_every(60)
        .with_checkpoint_keep(8);
    // Crash right after the second commit so steps 1 and 2 are on disk.
    let crashing = cfg
        .clone()
        .with_fault(FaultPlan::storage_fault(2, StorageFault::FsyncCrash));
    expect_injected_crash(
        checkpoint::run(EngineKind::Sequential, &netlist, &crashing).unwrap_err(),
    );

    let digest = checkpoint::netlist_digest(&netlist);
    let store = CheckpointStore::open(&dir, digest, 8).unwrap();
    let newest = dir.join("ckpt-0000000002.psnap");
    let full = fs::read(&newest).unwrap();
    assert!(full.len() > 64, "snapshot should be non-trivial");

    for cut in 0..=full.len() {
        fs::write(&newest, &full[..cut]).unwrap();
        let rec = store
            .recover()
            .unwrap_or_else(|e| panic!("recover must not fail at cut {cut}: {e}"));
        let snap = rec
            .snapshot
            .unwrap_or_else(|| panic!("a fallback must exist at cut {cut}"));
        if cut == full.len() {
            assert_eq!(snap.time, 120, "full file loads fully");
            assert!(rec.skipped.is_empty());
        } else {
            assert_eq!(snap.time, 60, "truncated newest must fall back (cut {cut})");
            assert_eq!(rec.skipped.len(), 1, "cut {cut}");
        }
    }

    // And through the whole driver at representative tear points: the
    // resumed waveforms stay exactly the oracle's.
    let oracle =
        EventDriven::run(&netlist, &SimConfig::new(Time(200)).watch_all(watch)).unwrap();
    for cut in [0, 1, full.len() / 2, full.len() - 1] {
        fs::write(&newest, &full[..cut]).unwrap();
        let r = checkpoint::resume(EngineKind::Sequential, &netlist, &cfg).unwrap();
        let rep = equivalence_report(&oracle, &r);
        assert!(rep.is_equivalent(), "driver resume at cut {cut}: {rep}");
        // The resume re-checkpointed; restore the torn state for the
        // next iteration's scan.
        let _ = fs::remove_dir_all(&dir);
        expect_injected_crash(
            checkpoint::run(EngineKind::Sequential, &netlist, &crashing).unwrap_err(),
        );
    }
    let _ = fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Guard rails
// ---------------------------------------------------------------------------

#[test]
fn resume_with_different_end_time_is_rejected() {
    let (netlist, watch) = test_circuit();
    let dir = tmpdir("horizon");
    let cfg = SimConfig::new(Time(300))
        .watch_all(watch.clone())
        .with_checkpoint_dir(&dir)
        .with_checkpoint_every(60);
    let crashing = cfg
        .clone()
        .with_fault(FaultPlan::storage_fault(1, StorageFault::FsyncCrash));
    expect_injected_crash(
        checkpoint::run(EngineKind::Sequential, &netlist, &crashing).unwrap_err(),
    );
    let other = SimConfig::new(Time(500))
        .watch_all(watch)
        .with_checkpoint_dir(&dir)
        .with_checkpoint_every(60);
    match checkpoint::resume(EngineKind::Sequential, &netlist, &other) {
        Err(SimError::Checkpoint(CheckpointError::EndTimeMismatch { snapshot, config })) => {
            assert_eq!((snapshot, config), (300, 500));
        }
        other => panic!("expected EndTimeMismatch, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn snapshot_for_different_netlist_is_skipped() {
    let (netlist, watch) = test_circuit();
    let dir = tmpdir("digest");
    let cfg = SimConfig::new(Time(200))
        .watch_all(watch.clone())
        .with_checkpoint_dir(&dir)
        .with_checkpoint_every(60);
    let crashing = cfg
        .clone()
        .with_fault(FaultPlan::storage_fault(1, StorageFault::FsyncCrash));
    expect_injected_crash(
        checkpoint::run(EngineKind::Sequential, &netlist, &crashing).unwrap_err(),
    );

    // A different circuit must refuse these snapshots and start fresh.
    let other = inverter_array(4, 4, 2).unwrap();
    let cfg2 = SimConfig::new(Time(200))
        .watch_all(other.taps.clone())
        .with_checkpoint_dir(&dir)
        .with_checkpoint_every(60);
    let oracle = EventDriven::run(
        &other.netlist,
        &SimConfig::new(Time(200)).watch_all(other.taps.clone()),
    )
    .unwrap();
    let r = checkpoint::resume(EngineKind::Sequential, &other.netlist, &cfg2).unwrap();
    assert!(equivalence_report(&oracle, &r).is_equivalent());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_policy_is_a_typed_error() {
    let (netlist, _) = test_circuit();
    let cfg = SimConfig::new(Time(100));
    match checkpoint::run(EngineKind::Sequential, &netlist, &cfg) {
        Err(SimError::Checkpoint(CheckpointError::BadPolicy { .. })) => {}
        other => panic!("expected BadPolicy, got {other:?}"),
    }
    let cfg = SimConfig::new(Time(100)).with_checkpoint_dir(tmpdir("nopol"));
    match checkpoint::run(EngineKind::Sequential, &netlist, &cfg) {
        Err(SimError::Checkpoint(CheckpointError::BadPolicy { .. })) => {}
        other => panic!("expected BadPolicy for zero interval, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Cross-engine portability
// ---------------------------------------------------------------------------

#[test]
fn snapshots_are_engine_portable() {
    let (netlist, watch) = test_circuit();
    let oracle = EventDriven::run(&netlist, &SimConfig::new(Time(300)).watch_all(watch.clone()))
        .unwrap();
    for capture_kind in ALL_ENGINES {
        for resume_kind in ALL_ENGINES {
            let dir = tmpdir(&format!(
                "xeng-{}-{}",
                capture_kind.name(),
                resume_kind.name()
            ));
            let cfg = SimConfig::new(Time(300))
                .watch_all(watch.clone())
                .threads(2)
                .with_checkpoint_dir(&dir)
                .with_checkpoint_every(70);
            let crashing = cfg
                .clone()
                .with_fault(FaultPlan::storage_fault(1, StorageFault::FsyncCrash));
            expect_injected_crash(
                checkpoint::run(capture_kind, &netlist, &crashing).unwrap_err(),
            );
            let r = checkpoint::resume(resume_kind, &netlist, &cfg).unwrap();
            let rep = equivalence_report(&oracle, &r);
            assert!(
                rep.is_equivalent(),
                "{} -> {}: {rep}",
                capture_kind.name(),
                resume_kind.name()
            );
            let _ = fs::remove_dir_all(&dir);
        }
    }
}

// ---------------------------------------------------------------------------
// Property: random circuits, random cut points, every engine
// ---------------------------------------------------------------------------

fn params_strategy() -> impl Strategy<Value = RandomCircuitParams> {
    (
        5usize..60,   // elements
        1usize..5,    // inputs
        0u64..4,      // seq fraction in quarters
        1u64..4,      // max delay
        any::<u64>(), // seed
    )
        .prop_map(|(elements, inputs, seqq, max_delay, seed)| RandomCircuitParams {
            elements,
            inputs,
            seq_fraction: seqq as f64 * 0.25,
            max_delay,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Run k steps, snapshot, crash, restore, run to the end: the result
    /// must be bit-identical to the uninterrupted oracle — for random
    /// circuits, random checkpoint intervals, and every engine that can
    /// run the circuit (compiled mode needs unit delays).
    #[test]
    fn roundtrip_resume_matches_oracle(
        params in params_strategy(),
        every in 15u64..90,
        crash_at in 0u64..3,
        case in 0u64..u64::MAX,
    ) {
        let c = random_circuit(&params).unwrap();
        let base = SimConfig::new(Time(150)).watch_all(c.watch.clone()).threads(2);
        let oracle = EventDriven::run(&c.netlist, &base).unwrap();
        for kind in ALL_ENGINES {
            if kind == EngineKind::Compiled && params.max_delay != 1 {
                continue;
            }
            let dir = tmpdir(&format!("prop-{case}-{}", kind.name()));
            let cfg = base
                .clone()
                .with_checkpoint_dir(&dir)
                .with_checkpoint_every(every);
            // Plain segmented run.
            let r = checkpoint::run(kind, &c.netlist, &cfg).unwrap();
            let rep = equivalence_report(&oracle, &r);
            prop_assert!(rep.is_equivalent(), "seed {} {} segmented: {rep}", params.seed, kind.name());
            let _ = fs::remove_dir_all(&dir);

            // Crash mid-run (if any checkpoint commits before the end),
            // then resume.
            let crashing = cfg
                .clone()
                .with_fault(FaultPlan::storage_fault(crash_at, StorageFault::FsyncCrash));
            match checkpoint::run(kind, &c.netlist, &crashing) {
                Err(SimError::Checkpoint(CheckpointError::InjectedCrash { .. })) => {
                    let r = checkpoint::resume(kind, &c.netlist, &cfg).unwrap();
                    let rep = equivalence_report(&oracle, &r);
                    prop_assert!(
                        rep.is_equivalent(),
                        "seed {} {} resumed: {rep}", params.seed, kind.name()
                    );
                }
                // Fewer than crash_at+1 captures: the run finished first.
                Ok(r) => {
                    let rep = equivalence_report(&oracle, &r);
                    prop_assert!(rep.is_equivalent(), "seed {} {}: {rep}", params.seed, kind.name());
                }
                Err(e) => return Err(TestCaseError::fail(format!("{}: {e:?}", kind.name()))),
            }
            let _ = fs::remove_dir_all(&dir);
        }
    }
}
