//! Engine equivalence on the paper's §6 future-work circuits: tristate
//! buses and long feedback chains.

use parsim_circuits::{feedback_chain, shared_bus};
use parsim_core::{assert_equivalent, ChaoticAsync, EventDriven, SimConfig, SyncEventDriven};
use parsim_logic::{Bit, Time};

#[test]
fn shared_bus_all_engines_agree() {
    let bus = shared_bus(4, 8, 16).unwrap();
    let cfg = SimConfig::new(Time(400)).watch(bus.bus).watch(bus.captured);
    let seq = EventDriven::run(&bus.netlist, &cfg).unwrap();
    for threads in [1, 2, 4] {
        let cfg_t = cfg.clone().threads(threads);
        assert_equivalent(&seq, &SyncEventDriven::run(&bus.netlist, &cfg_t).unwrap(), "sync");
        assert_equivalent(&seq, &ChaoticAsync::run(&bus.netlist, &cfg_t).unwrap(), "async");
    }
}

#[test]
fn bus_is_never_left_floating_or_fought_over_in_steady_state() {
    let bus = shared_bus(3, 8, 16).unwrap();
    let cfg = SimConfig::new(Time(400)).watch(bus.bus);
    let r = EventDriven::run(&bus.netlist, &cfg).unwrap();
    let w = r.waveform(bus.bus).unwrap();
    // After the rotation settles, sample mid-slot: the bus must carry a
    // fully known value (one-hot enables guarantee a single driver).
    for k in 2..20u64 {
        let t = Time(k * 16 + 8);
        let v = w.value_at(t);
        assert!(
            v.is_fully_known(),
            "bus not cleanly driven at {t}: {v}"
        );
    }
    // During handover the bus may glitch, but it must never stay floating
    // (Z on every bit) for a whole slot.
    for k in 2..20u64 {
        let any_known = (0..16).any(|dt| {
            w.value_at(Time(k * 16 + dt)).is_fully_known()
        });
        assert!(any_known, "bus floated through slot {k}");
    }
}

#[test]
fn feedback_rings_oscillate_identically_across_engines() {
    let fb = feedback_chain(3, 8).unwrap();
    let cfg = SimConfig::new(Time(300)).watch_all(fb.taps.iter().copied());
    let seq = EventDriven::run(&fb.netlist, &cfg).unwrap();
    // Rings oscillate with period 2 * length once kicked.
    for &tap in &fb.taps {
        let w = seq.waveform(tap).unwrap();
        assert!(
            w.num_changes() > 250 / (2 * 8),
            "ring should oscillate: {} changes",
            w.num_changes()
        );
    }
    for threads in [1, 2, 4] {
        let cfg_t = cfg.clone().threads(threads);
        assert_equivalent(&seq, &SyncEventDriven::run(&fb.netlist, &cfg_t).unwrap(), "sync");
        assert_equivalent(&seq, &ChaoticAsync::run(&fb.netlist, &cfg_t).unwrap(), "async");
    }
}

#[test]
fn feedback_destroys_async_batching() {
    // §4: on a feedback chain the asynchronous algorithm degrades to
    // event-at-a-time processing — the batching factor collapses to ~1.
    let fb = feedback_chain(1, 16).unwrap();
    let pipe = parsim_circuits::inverter_array(1, 16, 2).unwrap();
    let cfg = SimConfig::new(Time(1000));
    let ring = ChaoticAsync::run(&fb.netlist, &cfg).unwrap();
    let open = ChaoticAsync::run(&pipe.netlist, &cfg).unwrap();
    let ring_batch = ring.metrics.evaluations as f64 / ring.metrics.activations.max(1) as f64;
    let open_batch = open.metrics.evaluations as f64 / open.metrics.activations.max(1) as f64;
    assert!(
        ring_batch < 3.0,
        "feedback should force event-at-a-time: {ring_batch:.2}"
    );
    assert!(
        open_batch > 20.0 * ring_batch,
        "open chain should batch deeply: {open_batch:.2} vs ring {ring_batch:.2}"
    );
}

#[test]
fn tristate_z_reaches_watched_waveforms() {
    // Between rotations nothing drives the bus tap of a disabled driver:
    // the waveform must actually show Z (not X).
    let bus = shared_bus(2, 4, 16).unwrap();
    let tap0 = bus.netlist.node_by_name("tap0").unwrap();
    let cfg = SimConfig::new(Time(200)).watch(tap0);
    let r = EventDriven::run(&bus.netlist, &cfg).unwrap();
    let w = r.waveform(tap0).unwrap();
    let saw_z = w
        .changes()
        .iter()
        .any(|(_, v)| (0..4).all(|i| v.bit_at(i) == Bit::Z));
    assert!(saw_z, "expected the tap to float while disabled");
}
