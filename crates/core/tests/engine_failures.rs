//! Failure containment: every injected fault must terminate with a
//! structured [`SimError`] — never a hang, never a detached thread.
//!
//! Each scenario runs the engine on a helper thread and waits on a
//! channel with a 30-second timeout, so a containment regression fails
//! the test instead of wedging the whole suite.

use std::sync::mpsc;
use std::thread;
use std::time::Duration;

use parsim_circuits::inverter_array;
use parsim_core::{
    equivalence_report, ChaoticAsync, CompiledMode, EventDriven, FaultPlan, SimConfig,
    SimError, SimResult, SyncEventDriven,
};
use parsim_logic::Time;
use parsim_netlist::Netlist;

/// Outer hang guard: runs `f` on its own thread and panics if it has not
/// produced a result (ok or error) within 30 seconds.
fn guarded<F>(context: &str, f: F) -> Result<SimResult, SimError>
where
    F: FnOnce() -> Result<SimResult, SimError> + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let handle = thread::spawn(move || {
        let _ = tx.send(f());
    });
    let result = rx
        .recv_timeout(Duration::from_secs(30))
        .unwrap_or_else(|_| panic!("{context}: engine hung past the 30s containment guard"));
    let _ = handle.join();
    result
}

/// A unit-delay circuit with steady activity on every worker: an 8×8
/// inverter array toggling every tick (valid for all four engines,
/// including compiled mode).
fn busy_netlist() -> Netlist {
    inverter_array(8, 8, 1).expect("valid generator parameters").netlist
}

type Engine = fn(&Netlist, &SimConfig) -> Result<SimResult, SimError>;

const PARALLEL_ENGINES: [(&str, Engine); 3] = [
    ("chaotic-async", ChaoticAsync::run as Engine),
    ("sync-event-driven", SyncEventDriven::run as Engine),
    ("compiled-mode", CompiledMode::run as Engine),
];

#[test]
fn injected_worker_panic_is_contained_in_every_parallel_engine() {
    for (tag, run) in PARALLEL_ENGINES {
        for threads in [2usize, 4] {
            // The last worker panics a few activations in, with peers
            // mid-protocol on barriers or queues.
            let victim = threads - 1;
            let cfg = SimConfig::new(Time(1_000))
                .threads(threads)
                .with_fault(FaultPlan::panic_at(victim, 3));
            let err = guarded(&format!("{tag} x{threads} panic"), move || {
                run(&busy_netlist(), &cfg)
            })
            .expect_err("injected panic must surface as an error");
            match err {
                SimError::WorkerPanicked {
                    engine,
                    worker,
                    payload,
                } => {
                    assert_eq!(engine, tag);
                    assert_eq!(worker, victim, "{tag}: wrong worker blamed");
                    assert!(
                        payload.contains("injected fault"),
                        "{tag}: unexpected payload {payload:?}"
                    );
                }
                other => panic!("{tag}: expected WorkerPanicked, got {other}"),
            }
        }
    }
}

#[test]
fn panic_containment_needs_no_watchdog() {
    // No deadline, no stall timeout: containment must come from the
    // poison/cancel protocol alone.
    for (tag, run) in PARALLEL_ENGINES {
        let cfg = SimConfig::new(Time(1_000))
            .threads(3)
            .with_fault(FaultPlan::panic_at(0, 0));
        let err = guarded(&format!("{tag} watchdogless panic"), move || {
            run(&busy_netlist(), &cfg)
        })
        .expect_err("injected panic must surface as an error");
        assert!(
            matches!(err, SimError::WorkerPanicked { engine, worker: 0, .. } if engine == tag),
            "{tag}: got {err}"
        );
    }
}

#[test]
fn stalled_worker_trips_the_watchdog_with_a_diagnostic() {
    for (tag, run) in PARALLEL_ENGINES {
        let threads = 3usize;
        let cfg = SimConfig::new(Time(100_000))
            .threads(threads)
            .with_fault(FaultPlan::stall_at(0, 0))
            .with_stall_timeout(Duration::from_millis(100));
        let err = guarded(&format!("{tag} stall"), move || run(&busy_netlist(), &cfg))
            .expect_err("a frozen worker must surface as an error");
        match err {
            SimError::Stalled {
                engine,
                stalled_for,
                diagnostic,
            } => {
                assert_eq!(engine, tag);
                assert!(
                    stalled_for >= Duration::from_millis(100),
                    "{tag}: fired early at {stalled_for:?}"
                );
                // The diagnostic covers every worker. (Absolute counts are
                // engine-specific: the synchronous engines also beat once
                // per step for liveness, so a stalled worker may show a
                // beat or two from before it froze.)
                assert_eq!(
                    diagnostic.heartbeats.len(),
                    threads,
                    "{tag}: diagnostic must cover every worker"
                );
            }
            other => panic!("{tag}: expected Stalled, got {other}"),
        }
    }
}

#[test]
fn deadline_cancels_parallel_engines_mid_stall() {
    // A worker wedged forever, watched only by the wall-time deadline:
    // the run must end with DeadlineExceeded, not a hang.
    for (tag, run) in PARALLEL_ENGINES {
        let cfg = SimConfig::new(Time(100_000))
            .threads(2)
            .with_fault(FaultPlan::stall_at(1, 0))
            .with_deadline(Duration::from_millis(50));
        let err = guarded(&format!("{tag} deadline"), move || {
            run(&busy_netlist(), &cfg)
        })
        .expect_err("a blown deadline must surface as an error");
        assert!(
            matches!(
                err,
                SimError::DeadlineExceeded { engine, deadline, .. }
                    if engine == tag && deadline == Duration::from_millis(50)
            ),
            "{tag}: got {err}"
        );
    }
}

#[test]
fn deadline_cancels_the_sequential_engine() {
    // Far more work than a 5ms budget allows; the inline deadline poll
    // must cut the run short with the last completed sim time recorded.
    let cfg = SimConfig::new(Time(100_000)).with_deadline(Duration::from_millis(5));
    let err = guarded("event-driven deadline", move || {
        EventDriven::run(&inverter_array(32, 16, 1).unwrap().netlist, &cfg)
    })
    .expect_err("a blown deadline must surface as an error");
    match err {
        SimError::DeadlineExceeded {
            engine, diagnostic, ..
        } => {
            assert_eq!(engine, "event-driven");
            assert!(diagnostic.sim_time.is_some());
        }
        other => panic!("expected DeadlineExceeded, got {other}"),
    }
}

#[test]
fn watchdog_does_not_perturb_a_healthy_run() {
    // Generous bounds on a fast run: results must match a watchdog-free
    // run exactly.
    let arr = inverter_array(4, 4, 1).unwrap();
    let cfg = SimConfig::new(Time(200)).watch_all(arr.taps.clone());
    let plain = EventDriven::run(&arr.netlist, &cfg).unwrap();
    let bounded = cfg
        .clone()
        .with_deadline(Duration::from_secs(60))
        .with_stall_timeout(Duration::from_secs(30));
    for (tag, run) in PARALLEL_ENGINES {
        let r = run(&arr.netlist, &bounded.clone().threads(3)).unwrap();
        let rep = equivalence_report(&plain, &r);
        assert!(rep.is_equivalent(), "{tag} diverged under watchdog: {rep}");
    }
    let seq = EventDriven::run(&arr.netlist, &bounded).unwrap();
    assert!(equivalence_report(&plain, &seq).is_equivalent());
}

/// The chaotic engine's containment must hold in both scheduling modes:
/// the default locality-aware mode (local deques + batched sends, where a
/// worker may die holding unflushed batches) and the pure-grid ablation.
#[test]
fn chaotic_faults_are_contained_in_both_scheduling_modes() {
    type Ablation = fn(SimConfig) -> SimConfig;
    let modes: [(&str, Ablation); 2] = [
        ("locality", |c| c),
        ("pure-grid", SimConfig::without_local_queue),
    ];
    for (mode, ablate) in modes {
        // Panic mid-run: peers must be cancelled even if the victim's
        // outbox still held batched activations.
        let cfg = ablate(
            SimConfig::new(Time(1_000))
                .threads(4)
                .with_fault(FaultPlan::panic_at(2, 5)),
        );
        let err = guarded(&format!("chaotic {mode} panic"), move || {
            ChaoticAsync::run(&busy_netlist(), &cfg)
        })
        .expect_err("injected panic must surface as an error");
        assert!(
            matches!(err, SimError::WorkerPanicked { worker: 2, .. }),
            "{mode}: got {err}"
        );

        // Stall: a frozen worker must trip the watchdog while its peers
        // sit in the backoff idle branch.
        let cfg = ablate(
            SimConfig::new(Time(100_000))
                .threads(3)
                .with_fault(FaultPlan::stall_at(1, 0))
                .with_stall_timeout(Duration::from_millis(100)),
        );
        let err = guarded(&format!("chaotic {mode} stall"), move || {
            ChaoticAsync::run(&busy_netlist(), &cfg)
        })
        .expect_err("a frozen worker must surface as an error");
        assert!(
            matches!(err, SimError::Stalled { .. }),
            "{mode}: got {err}"
        );
    }
}

/// With the `chaos` feature on, the queue layer injects seeded yields and
/// delayed publication into the SPSC protocol. Waveforms must be bit-for-
/// bit identical to the sequential oracle anyway.
#[cfg(feature = "chaos")]
#[test]
fn chaos_schedule_perturbation_never_changes_waveforms() {
    let arr = inverter_array(16, 8, 2).unwrap();
    let cfg = SimConfig::new(Time(400)).watch_all(arr.taps.clone());
    let oracle = EventDriven::run(&arr.netlist, &cfg).unwrap();
    for threads in [2usize, 3, 4] {
        let cfg_t = cfg.clone().threads(threads);
        let asy = guarded(&format!("chaos async x{threads}"), {
            let netlist = arr.netlist.clone();
            let cfg_t = cfg_t.clone();
            move || ChaoticAsync::run(&netlist, &cfg_t)
        })
        .unwrap();
        let rep = equivalence_report(&oracle, &asy);
        assert!(rep.is_equivalent(), "async x{threads} under chaos: {rep}");

        let sync = guarded(&format!("chaos sync x{threads}"), {
            let netlist = arr.netlist.clone();
            let cfg_t = cfg_t.clone();
            move || SyncEventDriven::run(&netlist, &cfg_t)
        })
        .unwrap();
        let rep = equivalence_report(&oracle, &sync);
        assert!(rep.is_equivalent(), "sync x{threads} under chaos: {rep}");
    }
}
