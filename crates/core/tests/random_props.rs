//! Property-based cross-engine equivalence on random circuits.
//!
//! Random well-formed circuits (combinational DAGs plus sequential
//! feedback) are the sharpest test of the asynchronous engine's
//! valid-time protocol: every waveform must match the sequential
//! reference exactly, at every thread count, with and without lookahead
//! and garbage collection.

use parsim_circuits::{random_circuit, RandomCircuitParams};
use parsim_core::{
    equivalence_report, ChaoticAsync, CompiledMode, EventDriven, SimConfig, SyncEventDriven,
};
use parsim_logic::Time;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = RandomCircuitParams> {
    (
        5usize..80,   // elements
        1usize..6,    // inputs
        0u64..4,      // seq fraction in quarters
        1u64..4,      // max delay
        any::<u64>(), // seed
    )
        .prop_map(|(elements, inputs, seqq, max_delay, seed)| RandomCircuitParams {
            elements,
            inputs,
            seq_fraction: seqq as f64 * 0.25,
            max_delay,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn async_engine_matches_reference(params in params_strategy(), threads in 1usize..4) {
        let c = random_circuit(&params).unwrap();
        let cfg = SimConfig::new(Time(150)).watch_all(c.watch.clone());
        let seq = EventDriven::run(&c.netlist, &cfg).unwrap();
        let asy = ChaoticAsync::run(&c.netlist, &cfg.clone().threads(threads)).unwrap();
        let rep = equivalence_report(&seq, &asy);
        prop_assert!(rep.is_equivalent(), "seed {}: {rep}", params.seed);
    }

    #[test]
    fn sync_engine_matches_reference(params in params_strategy(), threads in 1usize..4) {
        let c = random_circuit(&params).unwrap();
        let cfg = SimConfig::new(Time(150)).watch_all(c.watch.clone());
        let seq = EventDriven::run(&c.netlist, &cfg).unwrap();
        let sync = SyncEventDriven::run(&c.netlist, &cfg.clone().threads(threads)).unwrap();
        let rep = equivalence_report(&seq, &sync);
        prop_assert!(rep.is_equivalent(), "seed {}: {rep}", params.seed);
    }

    #[test]
    fn compiled_matches_on_unit_delay(mut params in params_strategy(), threads in 1usize..4) {
        params.max_delay = 1;
        let c = random_circuit(&params).unwrap();
        let cfg = SimConfig::new(Time(100)).watch_all(c.watch.clone());
        let seq = EventDriven::run(&c.netlist, &cfg).unwrap();
        let comp = CompiledMode::run(&c.netlist, &cfg.clone().threads(threads)).unwrap();
        let rep = equivalence_report(&seq, &comp);
        prop_assert!(rep.is_equivalent(), "seed {}: {rep}", params.seed);
    }

    #[test]
    fn lookahead_and_gc_flags_are_transparent(params in params_strategy()) {
        let c = random_circuit(&params).unwrap();
        let cfg = SimConfig::new(Time(120)).watch_all(c.watch.clone()).threads(2);
        let base = ChaoticAsync::run(&c.netlist, &cfg).unwrap();
        let plain = ChaoticAsync::run(
            &c.netlist,
            &cfg.clone().without_lookahead().without_gc(),
        ).unwrap();
        let rep = equivalence_report(&base, &plain);
        prop_assert!(rep.is_equivalent(), "seed {}: {rep}", params.seed);
    }

    #[test]
    fn engines_are_deterministic_across_runs(params in params_strategy()) {
        let c = random_circuit(&params).unwrap();
        let cfg = SimConfig::new(Time(100)).watch_all(c.watch.clone()).threads(3);
        let a = ChaoticAsync::run(&c.netlist, &cfg).unwrap();
        let b = ChaoticAsync::run(&c.netlist, &cfg).unwrap();
        let rep = equivalence_report(&a, &b);
        prop_assert!(rep.is_equivalent(), "nondeterminism at seed {}: {rep}", params.seed);
    }
}

/// A long-running oversubscribed stress case outside proptest (more
/// threads than cores exercises preemption-driven interleavings).
#[test]
fn oversubscribed_stress() {
    let params = RandomCircuitParams {
        elements: 150,
        inputs: 6,
        seq_fraction: 0.25,
        max_delay: 3,
        seed: 20260705,
    };
    let c = random_circuit(&params).unwrap();
    let cfg = SimConfig::new(Time(400)).watch_all(c.watch.clone());
    let seq = EventDriven::run(&c.netlist, &cfg).unwrap();
    for threads in [6, 8] {
        let asy = ChaoticAsync::run(&c.netlist, &cfg.clone().threads(threads)).unwrap();
        let rep = equivalence_report(&seq, &asy);
        assert!(rep.is_equivalent(), "x{threads}: {rep}");
    }
}
