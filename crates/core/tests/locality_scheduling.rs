//! Locality-aware scheduling in the asynchronous engine: waveform
//! equivalence against the sequential oracle at every thread count, the
//! `without_local_queue` ablation contract, and the scheduling-counter
//! invariants (owner routing steals nothing, batches never exceed sends,
//! chain circuits stay processor-local).

use parsim_circuits::{inverter_array, random_circuit, RandomCircuitParams};
use parsim_core::{equivalence_report, ChaoticAsync, EventDriven, SimConfig};
use parsim_logic::Time;
use parsim_netlist::partition::cone_cluster;
use parsim_netlist::partition::Partition;
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = RandomCircuitParams> {
    (
        5usize..80,   // elements
        1usize..6,    // inputs
        0u64..4,      // seq fraction in quarters
        1u64..4,      // max delay
        any::<u64>(), // seed
    )
        .prop_map(|(elements, inputs, seqq, max_delay, seed)| RandomCircuitParams {
            elements,
            inputs,
            seq_fraction: seqq as f64 * 0.25,
            max_delay,
            seed,
        })
}

#[test]
fn locality_scheduled_waveforms_match_oracle_on_fixed_circuit() {
    let arr = inverter_array(16, 8, 2).unwrap();
    let cfg = SimConfig::new(Time(400)).watch_all(arr.taps.clone());
    let oracle = EventDriven::run(&arr.netlist, &cfg).unwrap();
    for threads in [1usize, 2, 4, 8] {
        let r = ChaoticAsync::run(&arr.netlist, &cfg.clone().threads(threads)).unwrap();
        let rep = equivalence_report(&oracle, &r);
        assert!(rep.is_equivalent(), "locality x{threads}: {rep}");
    }
}

#[test]
fn pure_grid_ablation_reproduces_scatter_behavior() {
    let arr = inverter_array(8, 8, 1).unwrap();
    let cfg = SimConfig::new(Time(300)).watch_all(arr.taps.clone()).threads(4);
    let oracle = EventDriven::run(&arr.netlist, &cfg).unwrap();

    let grid_only = ChaoticAsync::run(&arr.netlist, &cfg.clone().without_local_queue()).unwrap();
    let rep = equivalence_report(&oracle, &grid_only);
    assert!(rep.is_equivalent(), "pure grid: {rep}");
    // Ablation contract: nothing goes through local deques, every id
    // travels in its own single-id batch, and owner bookkeeping is off.
    let l = &grid_only.metrics.locality;
    assert_eq!(l.local_hits, 0, "ablation must not use local deques");
    assert_eq!(
        l.grid_batches, l.grid_sends,
        "ablation sends single-id batches only"
    );
    assert!(l.grid_sends > 0, "the grid must carry the whole run");
    assert_eq!(l.steals, 0, "no owner bookkeeping without a partition");

    let local = ChaoticAsync::run(&arr.netlist, &cfg).unwrap();
    let l = &local.metrics.locality;
    assert!(l.local_hits > 0, "default scheduling must hit local deques");
}

#[test]
fn chain_circuits_stay_processor_local() {
    // Independent inverter chains are pure fan-out cones: the partitioner
    // must keep each chain on one worker, so well over half (here: all)
    // of the scheduled activations bypass the grid.
    let arr = inverter_array(16, 8, 2).unwrap();
    let cfg = SimConfig::new(Time(400));
    for threads in [2usize, 4] {
        let r = ChaoticAsync::run(&arr.netlist, &cfg.clone().threads(threads)).unwrap();
        let l = &r.metrics.locality;
        assert!(
            l.locality_ratio() >= 0.5,
            "x{threads}: locality ratio {:.3} below 0.5 ({l:?})",
            l.locality_ratio()
        );
    }
}

#[test]
fn owner_routing_never_steals_and_batches_never_exceed_sends() {
    let c = random_circuit(&RandomCircuitParams {
        elements: 120,
        inputs: 6,
        seq_fraction: 0.25,
        max_delay: 3,
        seed: 7,
    })
    .unwrap();
    let cfg = SimConfig::new(Time(300)).threads(4);
    let r = ChaoticAsync::run(&c.netlist, &cfg).unwrap();
    let l = &r.metrics.locality;
    assert_eq!(l.steals, 0, "owner routing must execute on owners: {l:?}");
    assert!(
        l.grid_batches <= l.grid_sends,
        "a batch carries at least one id: {l:?}"
    );
    if l.grid_sends > 0 {
        assert!(l.batch_occupancy() >= 1.0, "{l:?}");
    }
}

#[test]
fn explicit_partition_is_respected() {
    let arr = inverter_array(8, 4, 2).unwrap();
    let cfg = SimConfig::new(Time(200)).watch_all(arr.taps.clone());
    let oracle = EventDriven::run(&arr.netlist, &cfg).unwrap();

    // A cone partition passed explicitly behaves like the built-in one.
    let cones = cone_cluster(&arr.netlist, 2);
    let r = ChaoticAsync::run(
        &arr.netlist,
        &cfg.clone().threads(2).with_partition(cones),
    )
    .unwrap();
    assert!(equivalence_report(&oracle, &r).is_equivalent());

    // Degenerate placement: every element owned by worker 0 of 2. The
    // run stays correct and never needs the grid (all fan-out is owned;
    // worker 1 simply idles until termination).
    let all_zero = Partition::from_assignment(2, vec![0; arr.netlist.num_elements()]);
    let r = ChaoticAsync::run(
        &arr.netlist,
        &cfg.clone().threads(2).with_partition(all_zero),
    )
    .unwrap();
    assert!(equivalence_report(&oracle, &r).is_equivalent());
    let l = &r.metrics.locality;
    assert_eq!(l.grid_sends, 0, "single-owner placement needs no grid: {l:?}");
    assert!((l.locality_ratio() - 1.0).abs() < 1e-12);
}

#[test]
#[should_panic(expected = "part count must equal the thread count")]
fn mismatched_partition_width_panics() {
    let arr = inverter_array(4, 4, 2).unwrap();
    let p = cone_cluster(&arr.netlist, 3);
    let cfg = SimConfig::new(Time(50)).threads(2).with_partition(p);
    let _ = ChaoticAsync::run(&arr.netlist, &cfg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn locality_and_ablation_match_reference(
        params in params_strategy(),
        threads in 1usize..5,
    ) {
        let c = random_circuit(&params).unwrap();
        let cfg = SimConfig::new(Time(150)).watch_all(c.watch.clone());
        let seq = EventDriven::run(&c.netlist, &cfg).unwrap();

        let local = ChaoticAsync::run(&c.netlist, &cfg.clone().threads(threads)).unwrap();
        let rep = equivalence_report(&seq, &local);
        prop_assert!(rep.is_equivalent(), "seed {} local x{threads}: {rep}", params.seed);

        let grid = ChaoticAsync::run(
            &c.netlist,
            &cfg.clone().threads(threads).without_local_queue(),
        ).unwrap();
        let rep = equivalence_report(&seq, &grid);
        prop_assert!(rep.is_equivalent(), "seed {} grid x{threads}: {rep}", params.seed);
        prop_assert_eq!(grid.metrics.locality.local_hits, 0);
    }
}
