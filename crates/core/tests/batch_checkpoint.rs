//! Checkpoint segments through the SIMD batch kernel.
//!
//! A batch cut at time `T` must behave like the scalar engine's segment
//! contract, per lane: resuming the captured snapshots reproduces the
//! exact waveform tail of an uncut run, and the final snapshots of a
//! cut-and-resumed run are identical to those of a straight-through run.

use std::sync::Arc;

use parsim_core::{BatchSync, CompiledMode, LaneStimulus, SimConfig};
use parsim_logic::{Delay, ElementKind, Time, Value};
use parsim_netlist::{Builder, Netlist, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A circuit exercising every state-capture path: native edge state
/// (dff), native level state (latch), pure combinational gates, and a
/// fallback RTL op (adder) whose per-lane `ElemState` rides `fb_state`.
fn circuit() -> (Netlist, Vec<NodeId>, Vec<NodeId>) {
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    let d0 = b.node("d0", 1);
    let d1 = b.node("d1", 1);
    let q0 = b.node("q0", 1);
    let q1 = b.node("q1", 1);
    let lq = b.node("lq", 1);
    let x = b.node("x", 1);
    let a = b.node("a", 4);
    let sum = b.node("sum", 4);
    let cout = b.node("cout", 1);
    b.element(
        "osc",
        ElementKind::Clock {
            half_period: 3,
            offset: 3,
        },
        Delay(1),
        &[],
        &[clk],
    )
    .unwrap();
    b.element("ff0", ElementKind::Dff { width: 1 }, Delay(1), &[clk, d0], &[q0])
        .unwrap();
    b.element("ff1", ElementKind::Dff { width: 1 }, Delay(1), &[clk, q0], &[q1])
        .unwrap();
    b.element("lat", ElementKind::Latch { width: 1 }, Delay(1), &[clk, d1], &[lq])
        .unwrap();
    b.element("x1", ElementKind::Xor, Delay(1), &[q1, lq], &[x])
        .unwrap();
    b.element(
        "add",
        ElementKind::Adder { width: 4 },
        Delay(1),
        &[a, a, x],
        &[sum, cout],
    )
    .unwrap();
    let watch = vec![clk, q0, q1, lq, x, sum, cout];
    (b.finish().unwrap(), watch, vec![d0, d1, a])
}

fn stimuli(lanes: usize, end: u64) -> Vec<LaneStimulus> {
    let mut rng = SmallRng::seed_from_u64(0xc4ec_2026);
    let (_, _, inputs) = circuit();
    (0..lanes)
        .map(|_| {
            let mut s = LaneStimulus::base();
            for (k, &n) in inputs.iter().enumerate() {
                let width = if k == 2 { 4 } else { 1 };
                let mut t = 0u64;
                let mut sched = Vec::new();
                while t < end {
                    sched.push((
                        Time(t),
                        Value::from_u64(rng.gen_range(0..(1u64 << width)), width),
                    ));
                    t += rng.gen_range(1..5u64);
                }
                s = s.drive(n, sched);
            }
            s
        })
        .collect()
}

fn config(end: u64, watch: &[NodeId]) -> SimConfig {
    SimConfig::new(Time(end))
        .watch_all(watch.to_vec())
        .threads(2)
        .with_lane_width(256)
        .with_batch_sync(BatchSync::Neighbor)
}

/// Cut + resume reproduces the uncut run exactly: stitched per-lane
/// waveforms and the final snapshots are both identical.
#[test]
fn cut_and_resume_roundtrip_is_exact() {
    let (netlist, watch, _) = circuit();
    let end = 80u64;
    let cut = 37u64;
    // One 256-bit chunk (4 plane words), ragged: lanes 150..256 are dead
    // and must stay invisible to events, waveforms, and snapshots.
    let lanes = 150usize;
    let stim = stimuli(lanes, end);
    let cfg = config(end, &watch);

    let (whole, final_snaps) =
        CompiledMode::run_batch_segment(&netlist, &cfg, &stim, None, Time(end)).unwrap();
    assert_eq!(whole.metrics.lane_width, 256);
    assert_eq!(final_snaps.len(), lanes);

    let (head, mid_snaps) =
        CompiledMode::run_batch_segment(&netlist, &cfg, &stim, None, Time(cut)).unwrap();
    assert_eq!(mid_snaps.len(), lanes);
    assert!(mid_snaps.iter().all(|s| s.time == cut));
    let (tail, resumed_snaps) =
        CompiledMode::run_batch_segment(&netlist, &cfg, &stim, Some(&mid_snaps), Time(end))
            .unwrap();

    // Final snapshots: bit-identical whether or not the run was cut.
    assert_eq!(final_snaps, resumed_snaps);

    // Waveforms: head ++ tail == whole, per lane, per watched node.
    for l in 0..lanes {
        for &n in &watch {
            let mut stitched = head.lanes[l].waveform(n).unwrap().changes().to_vec();
            stitched.extend_from_slice(tail.lanes[l].waveform(n).unwrap().changes());
            let whole_changes = whole.lanes[l].waveform(n).unwrap().changes();
            assert_eq!(
                stitched, whole_changes,
                "lane {l} node {n:?}: stitched segments diverge from uncut run"
            );
            assert!(stitched
                .windows(2)
                .all(|w| w[0].0 < w[1].0 || (w[0].0 == w[1].0 && w[0].1 != w[1].1)));
        }
    }
    // The head's changes all precede the cut boundary; the tail's follow it.
    for l in 0..lanes {
        for &n in &watch {
            assert!(head.lanes[l]
                .waveform(n)
                .unwrap()
                .changes()
                .iter()
                .all(|(t, _)| t.ticks() <= cut));
            assert!(tail.lanes[l]
                .waveform(n)
                .unwrap()
                .changes()
                .iter()
                .all(|(t, _)| t.ticks() > cut));
        }
    }
}

/// Multi-cut chains (several segments in a row, across chunk-count
/// changes) still land on the straight-through snapshots.
#[test]
fn multi_cut_chain_matches_single_segment() {
    let (netlist, watch, _) = circuit();
    let end = 60u64;
    let lanes = 67usize; // two chunks at width 64: exercises per-chunk capture
    let stim = stimuli(lanes, end);
    let cfg = config(end, &watch).with_lane_width(64);

    let (_, straight) =
        CompiledMode::run_batch_segment(&netlist, &cfg, &stim, None, Time(end)).unwrap();
    let mut snaps = None;
    for cut in [13u64, 29, 44, end] {
        let (_, s) =
            CompiledMode::run_batch_segment(&netlist, &cfg, &stim, snaps.as_deref(), Time(cut))
                .unwrap();
        snaps = Some(s);
    }
    assert_eq!(snaps.unwrap(), straight);
}

/// Resume validation: wrong snapshot count, mismatched times, and a cut
/// not after the snapshot time are all rejected.
#[test]
fn resume_validation_rejects_bad_snapshots() {
    let (netlist, watch, _) = circuit();
    let stim = stimuli(3, 40);
    let cfg = config(40, &watch);
    let (_, snaps) =
        CompiledMode::run_batch_segment(&netlist, &cfg, &stim, None, Time(20)).unwrap();

    let err = CompiledMode::run_batch_segment(&netlist, &cfg, &stim, Some(&snaps[..2]), Time(40));
    assert!(matches!(err, Err(parsim_core::SimError::InvalidConfig { .. })));

    let mut skewed = snaps.clone();
    skewed[1].time = 19;
    let err = CompiledMode::run_batch_segment(&netlist, &cfg, &stim, Some(&skewed), Time(40));
    assert!(matches!(err, Err(parsim_core::SimError::InvalidConfig { .. })));

    let err = CompiledMode::run_batch_segment(&netlist, &cfg, &stim, Some(&snaps), Time(20));
    assert!(matches!(err, Err(parsim_core::SimError::InvalidConfig { .. })));
}

/// `Arc` is used by `LaneStimulus` docs' `Vector` form; keep the import
/// exercised for the override-vs-vector equivalence below.
#[test]
fn override_matches_vector_driver_through_a_cut() {
    // One lane, driven two ways: as a batch override cut at t=25, and as
    // a netlist-baked Vector generator run straight through. The stitched
    // override waveform must match the baked one.
    let end = 50u64;
    let sched: Vec<(Time, Value)> = vec![
        (Time(0), Value::bit(false)),
        (Time(7), Value::bit(true)),
        (Time(19), Value::x(1)),
        (Time(30), Value::bit(true)),
        (Time(41), Value::bit(false)),
    ];
    let build = |bake: bool| {
        let mut b = Builder::new();
        let d = b.node("d", 1);
        let q = b.node("q", 1);
        if bake {
            let changes: Arc<[(u64, Value)]> = sched
                .iter()
                .map(|&(t, v)| (t.ticks(), v))
                .collect::<Vec<_>>()
                .into();
            b.element("vec", ElementKind::Vector { changes }, Delay(1), &[], &[d])
                .unwrap();
        }
        b.element("inv", ElementKind::Not, Delay(1), &[d], &[q])
            .unwrap();
        (b.finish().unwrap(), d, q)
    };

    let (baked, _, q) = build(true);
    let cfg = SimConfig::new(Time(end)).watch(q);
    let oracle = CompiledMode::run(&baked, &cfg).unwrap();

    let (floating, d, q) = build(false);
    let cfg = SimConfig::new(Time(end)).watch(q).with_lane_width(64);
    let stim = vec![LaneStimulus::base().drive(d, sched.clone())];
    let (head, snaps) =
        CompiledMode::run_batch_segment(&floating, &cfg, &stim, None, Time(25)).unwrap();
    let (tail, _) =
        CompiledMode::run_batch_segment(&floating, &cfg, &stim, Some(&snaps), Time(end)).unwrap();
    let mut stitched = head.lanes[0].waveform(q).unwrap().changes().to_vec();
    stitched.extend_from_slice(tail.lanes[0].waveform(q).unwrap().changes());
    assert_eq!(stitched, oracle.waveform(q).unwrap().changes());
}
