//! The timing-wheel calendar produces waveforms identical to the
//! `BTreeMap` calendar on every circuit class.

use parsim_circuits::{
    feedback_chain, functional_multiplier, inverter_array, random_circuit, RandomCircuitParams,
};
use parsim_core::{assert_equivalent, equivalence_report, EventDriven, SimConfig};
use parsim_logic::Time;
use proptest::prelude::*;

#[test]
fn wheel_matches_map_on_paper_circuits() {
    let arr = inverter_array(8, 8, 3).unwrap();
    let func = functional_multiplier(&[(9, 9), (40_000, 2)], 64).unwrap();
    let fb = feedback_chain(2, 8).unwrap();
    for (name, netlist, end) in [
        ("array", &arr.netlist, Time(200)),
        ("functional", &func.netlist, Time(128)),
        ("feedback", &fb.netlist, Time(150)),
    ] {
        let watch: Vec<_> = netlist.iter_nodes().map(|(id, _)| id).collect();
        let cfg = SimConfig::new(end).watch_all(watch);
        let map = EventDriven::run(netlist, &cfg).unwrap();
        let wheel = EventDriven::run(netlist, &cfg.clone().with_timing_wheel()).unwrap();
        assert_equivalent(&map, &wheel, name);
        assert_eq!(
            map.metrics.events_processed, wheel.metrics.events_processed,
            "{name}: event counts"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn wheel_matches_map_on_random_circuits(
        elements in 5usize..80,
        max_delay in 1u64..5,
        seed in any::<u64>(),
    ) {
        let c = random_circuit(&RandomCircuitParams {
            elements,
            max_delay,
            seed,
            ..Default::default()
        })
        .unwrap();
        let cfg = SimConfig::new(Time(150)).watch_all(c.watch.clone());
        let map = EventDriven::run(&c.netlist, &cfg).unwrap();
        let wheel = EventDriven::run(&c.netlist, &cfg.clone().with_timing_wheel()).unwrap();
        let rep = equivalence_report(&map, &wheel);
        prop_assert!(rep.is_equivalent(), "seed {seed}: {rep}");
    }
}
