//! Golden waveform hashes: locks the exact simulation semantics of the
//! paper circuits against accidental drift.
//!
//! If one of these hashes changes, a code change altered observable
//! simulation behavior. That may be intentional (e.g. a semantics fix) —
//! update the constant *after* confirming the new waveforms are correct
//! and that all engines still agree.

use parsim_circuits::{functional_multiplier, gate_multiplier, inverter_array, pipelined_cpu};
use parsim_core::{EventDriven, SimConfig, SimResult};
use parsim_logic::Time;
use parsim_netlist::Netlist;

/// FNV-1a over every watched waveform's `(name, time, value)` stream.
fn waveform_hash(result: &SimResult) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for w in result.waveforms() {
        eat(w.name().as_bytes());
        for &(t, v) in w.changes() {
            eat(&t.ticks().to_le_bytes());
            eat(v.to_binary_string().as_bytes());
        }
    }
    h
}

fn run_all_nodes(netlist: &Netlist, end: Time) -> u64 {
    let watch: Vec<_> = netlist.iter_nodes().map(|(id, _)| id).collect();
    let r = EventDriven::run(netlist, &SimConfig::new(end).watch_all(watch)).unwrap();
    waveform_hash(&r)
}

#[test]
fn golden_inverter_array() {
    let arr = inverter_array(8, 8, 2).unwrap();
    assert_eq!(run_all_nodes(&arr.netlist, Time(200)), 0x63e4f517dc844695);
}

#[test]
fn golden_gate_multiplier() {
    let m = gate_multiplier(8, &[(123, 231), (255, 255)], 160).unwrap();
    assert_eq!(run_all_nodes(&m.netlist, m.schedule_end()), 0x34b280cc288ca34e);
}

#[test]
fn golden_functional_multiplier() {
    let m = functional_multiplier(&[(40_000, 50_000), (7, 9)], 64).unwrap();
    assert_eq!(run_all_nodes(&m.netlist, m.schedule_end()), 0x2205beee247635);
}

#[test]
fn golden_pipelined_cpu() {
    let cpu = pipelined_cpu(8, 48).unwrap();
    assert_eq!(run_all_nodes(&cpu.netlist, Time(800)), 0x65a71b7032ebc60b);
}
