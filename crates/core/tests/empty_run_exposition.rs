//! Zero-step and pre-publish exposition edges: a run that never advances
//! time (end = 0) and a registry snapshotted before the engine publishes
//! anything must still render lint-clean Prometheus text and valid
//! series JSON — no NaN, no negative utilization, no histogram whose
//! `_count` disagrees with its `+Inf` bucket.

use parsim_core::{ChaoticAsync, CompiledMode, EventDriven, SimConfig, SyncEventDriven};
use parsim_logic::{Delay, ElementKind, Time};
use parsim_netlist::{Builder, Netlist};
use parsim_telemetry::{prometheus, series, Hub};

fn tiny() -> Netlist {
    let mut b = Builder::new();
    let clk = b.node("clk", 1);
    let q = b.node("q", 1);
    b.element("osc", ElementKind::Clock { half_period: 2, offset: 2 }, Delay(1), &[], &[clk])
        .unwrap();
    b.element("inv", ElementKind::Not, Delay(1), &[clk], &[q]).unwrap();
    b.finish().unwrap()
}

/// Every sample value in the exposition must be a finite, non-negative
/// number (the registry has no legitimately negative family).
fn assert_values_sane(prom: &str) {
    for line in prom.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let value = line.rsplit(' ').next().unwrap();
        let parsed: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparseable sample value {value:?} in line {line:?}"));
        assert!(parsed.is_finite(), "non-finite value in {line:?}");
        assert!(parsed >= 0.0, "negative value in {line:?}");
    }
    assert!(!prom.contains("NaN"), "exposition must never print NaN");
}

/// Histogram `_count` must equal the `+Inf` cumulative bucket.
fn assert_histograms_consistent(prom: &str) {
    let inf_of = |name: &str| -> Option<f64> {
        prom.lines()
            .find(|l| l.starts_with(name) && l.contains("le=\"+Inf\""))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
    };
    for line in prom.lines() {
        if let Some((name, value)) = line.split_once("_count ") {
            let count: f64 = value.trim().parse().unwrap();
            if let Some(inf) = inf_of(&format!("{name}_bucket")) {
                assert_eq!(count, inf, "histogram {name}: _count vs +Inf bucket");
            }
        }
    }
}

fn check_run(engine: &str, run: impl FnOnce(&Netlist, &SimConfig) -> bool) {
    let netlist = tiny();
    let hub = Hub::new();
    // end = 0: the engine starts, publishes its registry, and retires
    // without a single step of simulated time.
    let cfg = SimConfig::new(Time(0)).threads(2).with_telemetry_hub(hub.clone());
    assert!(run(&netlist, &cfg), "{engine}: zero-step run must succeed");
    let ctx = hub.get().unwrap_or_else(|| panic!("{engine}: engine installed no telemetry"));
    let prom = prometheus::render(&ctx.registry);
    prometheus::lint(&prom).unwrap_or_else(|e| panic!("{engine}: lint: {e}\n{prom}"));
    assert_values_sane(&prom);
    assert_histograms_consistent(&prom);
    // The series document of the (sample-free) run is still valid JSON
    // whose final totals match the registry.
    let doc = series::render_json(&ctx.finish());
    parsim_trace::json::lint(&doc).unwrap_or_else(|e| panic!("{engine}: series json: {e}\n{doc}"));
    assert!(!doc.contains("NaN"), "{engine}: series must never print NaN");
}

#[test]
fn zero_step_runs_render_lint_clean_expositions() {
    check_run("seq", |n, c| EventDriven::run(n, c).is_ok());
    check_run("sync", |n, c| SyncEventDriven::run(n, c).is_ok());
    check_run("compiled", |n, c| CompiledMode::run(n, c).is_ok());
    check_run("async", |n, c| ChaoticAsync::run(n, c).is_ok());
}

#[test]
fn pre_publish_snapshot_renders_lint_clean() {
    // The in-run sampler (and /metrics scrapes) can observe the registry
    // before any worker publishes — and, worse, mid-publish. A fresh
    // registry must already render lint-clean with sane values.
    let hub = Hub::new();
    let netlist = tiny();
    let cfg = SimConfig::new(Time(0)).with_telemetry_hub(hub.clone());
    EventDriven::run(&netlist, &cfg).unwrap();
    let ctx = hub.get().unwrap();
    // Snapshot-then-render, the same path the sampler takes.
    let snap = ctx.registry.snapshot();
    let _ = snap; // the snapshot itself must not panic on an empty run
    let prom = prometheus::render(&ctx.registry);
    prometheus::lint(&prom).expect("pre-publish exposition lints");
    assert_values_sane(&prom);
    assert_histograms_consistent(&prom);
}

#[test]
fn empty_series_document_is_valid_json() {
    // A hub whose run ends before the first sampler tick yields a
    // RunTelemetry with zero samples; its JSON must still lint.
    let hub = Hub::new();
    let cfg = SimConfig::new(Time(0)).with_telemetry_hub(hub.clone());
    EventDriven::run(&tiny(), &cfg).unwrap();
    let run = hub.get().unwrap().finish();
    assert!(run.samples.is_empty(), "no sampler armed, no samples");
    let doc = series::render_json(&run);
    parsim_trace::json::lint(&doc).expect("sample-free series document lints");
}
