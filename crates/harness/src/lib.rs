//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation.
//!
//! Each `fig*`/`ablation*` function returns a [`Table`] whose rows come
//! from the virtual-Multimax models (the host has one core, so speed-up
//! *curves* are modeled; see `DESIGN.md`), plus a list of the paper's
//! reported values for side-by-side comparison. The [`uniproc_ratio`]
//! experiment additionally measures *real wall-clock* ratios with the
//! actual engines, which is meaningful on a single core.
//!
//! The `figures` binary prints everything as markdown — the source of the
//! numbers recorded in `EXPERIMENTS.md`:
//!
//! ```text
//! cargo run --release -p parsim-harness --bin figures
//! ```

mod bench_circuits;
pub mod cli;
mod figures;
pub mod json;
mod table;

pub use bench_circuits::{
    paper_cpu, paper_functional_multiplier, paper_gate_multiplier, paper_inverter_array,
    PROC_SWEEP,
};
pub use figures::{
    ablation_lookahead, ablation_os_interrupts, ablation_queues, ablation_stealing,
    all_experiments, bus_experiment, chandy_misra_ablation, event_stats,
    feedback_experiment, fig1_event_driven,
    fig2_event_density, fig3_compiled, fig4_async, fig5_comparison, gc_effectiveness,
    hypercube_experiment, levels_experiment, uniproc_ratio, wallclock_matrix,
};
pub use cli::parse_threads_list;
pub use table::Table;
