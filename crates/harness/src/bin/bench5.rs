//! `bench5` — arena memory architecture ablation (BENCH_5).
//!
//! Runs the asynchronous chaotic engine with the per-worker slab arenas
//! on (the default) and off (`without_arena`, every behavior chunk and
//! ring segment a direct global-allocator call) at 1/2/4/8 worker
//! threads on the BENCH_3 circuits — the paper's 32×16 inverter array
//! and the 16-bit gate-level multiplier. Every run is checked
//! bit-identical against the sequential event-driven oracle; the
//! headline number is the reduction in steady-state global-allocator
//! calls ([`global_allocs`]: slab-span grows with the arena on, one
//! `malloc` per chunk with it off). A second section sweeps the machine
//! cost model's remote-memory penalty ([`CostModel::remote_mem_cost`])
//! to show what non-uniform memory would cost a simulator that ignored
//! allocation placement. Writes `BENCH_5.json` in the current directory
//! (override with `--out PATH`).
//!
//! ```text
//! cargo run --release -p parsim-harness --bin bench5 [-- --quick] [--out BENCH_5.json] [--threads N,N,..]
//! ```
//!
//! `--quick` (or the `PARSIM_BENCH_QUICK` env var) shortens simulated
//! time so CI can smoke-test the harness; `--threads` overrides the
//! default 1,2,4,8 sweep.
//!
//! [`global_allocs`]: parsim_core::ArenaCounters::global_allocs
//! [`CostModel::remote_mem_cost`]: parsim_machine::CostModel

use std::process::ExitCode;
use std::time::Instant;

use parsim_core::{equivalence_report, ChaoticAsync, EventDriven, SimConfig, SimResult};
use parsim_harness::{json, paper_gate_multiplier, paper_inverter_array};
use parsim_logic::Time;
use parsim_machine::{model_async, MachineConfig};
use parsim_netlist::Netlist;

/// Default worker-thread sweep (matches bench3).
const DEFAULT_THREADS: &[usize] = &[1, 2, 4, 8];

/// Remote-memory penalties swept by the machine-model section, in
/// inverter-event cost units on top of a fixed 1-unit local charge.
const REMOTE_COSTS: [u64; 4] = [1, 25, 100, 400];

/// One engine × thread-count × arena-mode measurement.
struct RunRow {
    threads: usize,
    wall_secs: f64,
    events: u64,
    global_allocs: u64,
    chunk_allocs: u64,
    chunk_frees: u64,
    slab_allocs: u64,
    slab_bytes: u64,
    recycled: u64,
    fresh: u64,
    reclaimed: u64,
    quarantine_peak: u64,
    recycle_ratio: f64,
    /// Worker busy/idle nanoseconds from the run's telemetry registry —
    /// shows whether the ablation's extra mallocs cost busy time or
    /// just shift the busy/idle split.
    busy_ns: u64,
    idle_ns: u64,
    oracle_match: bool,
}

impl RunRow {
    fn from_result(threads: usize, wall_secs: f64, r: &SimResult, oracle: &SimResult) -> RunRow {
        let a = &r.metrics.arena;
        let finals = r.telemetry.as_ref().map(|t| &t.finals);
        let counter = |c| finals.map_or(0, |f| f.counter(c));
        RunRow {
            threads,
            wall_secs,
            events: r.metrics.events_processed,
            global_allocs: a.global_allocs(),
            chunk_allocs: a.chunk_allocs,
            chunk_frees: a.chunk_frees,
            slab_allocs: a.slab.slab_allocs,
            slab_bytes: a.slab.slab_bytes,
            recycled: a.slab.recycled,
            fresh: a.slab.fresh,
            reclaimed: a.slab.reclaimed,
            quarantine_peak: a.slab.quarantine_peak,
            recycle_ratio: a.recycle_ratio(),
            busy_ns: counter(parsim_telemetry::Counter::BusyNs),
            idle_ns: counter(parsim_telemetry::Counter::IdleNs),
            oracle_match: equivalence_report(oracle, r).is_equivalent(),
        }
    }

    /// Worker-time utilization, `busy / (busy + idle)`; 0.0 when neither
    /// accrued (0/0 would be NaN — `json_f` must never see one).
    fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// One remote-memory-penalty point from the machine cost model.
struct CostPoint {
    remote_mem_cost: u64,
    virtual_time: u64,
    remote_fraction: f64,
    slowdown: f64,
}

struct CircuitReport {
    name: &'static str,
    elements: usize,
    end_time: u64,
    /// Chaotic engine, per-worker slab arenas (the default).
    arena_on: Vec<RunRow>,
    /// Chaotic engine, `without_arena` global-allocator ablation.
    arena_off: Vec<RunRow>,
}

/// Best-of-`reps` wall time per thread count; allocator counters come
/// from the fastest repetition (chunk traffic is deterministic per run
/// length, slab-span counts vary slightly with scheduling).
fn sweep<F>(threads: &[usize], reps: usize, oracle: &SimResult, mut run: F) -> Vec<RunRow>
where
    F: FnMut(usize) -> SimResult,
{
    threads
        .iter()
        .map(|&t| {
            let mut best: Option<RunRow> = None;
            for _ in 0..reps {
                let t0 = Instant::now();
                let r = run(t);
                let wall = t0.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|b| wall < b.wall_secs) {
                    best = Some(RunRow::from_result(t, wall, &r, oracle));
                }
            }
            best.expect("reps >= 1")
        })
        .collect()
}

fn measure(
    netlist: &Netlist,
    name: &'static str,
    watch: Vec<parsim_netlist::NodeId>,
    end: u64,
    threads: &[usize],
    reps: usize,
) -> CircuitReport {
    let cfg = SimConfig::new(Time(end)).watch_all(watch);
    let oracle = EventDriven::run(netlist, &cfg).expect("seq oracle run");
    let arena_on = sweep(threads, reps, &oracle, |t| {
        // Force the arena on even under PARSIM_NO_ARENA so the two legs
        // always measure what their names claim.
        let mut c = cfg.clone().threads(t);
        c.arena = true;
        ChaoticAsync::run(netlist, &c).expect("arena run")
    });
    let arena_off = sweep(threads, reps, &oracle, |t| {
        ChaoticAsync::run(netlist, &cfg.clone().threads(t).without_arena())
            .expect("ablation run")
    });
    CircuitReport {
        name,
        elements: netlist.num_elements(),
        end_time: end,
        arena_on,
        arena_off,
    }
}

/// Machine-model section: the same netlist under the DAC-machine cost
/// executor, charging `local_mem_cost`/`remote_mem_cost` per committed
/// event depending on whether the executing processor owns the target
/// element's arena home. Slowdowns are relative to the uniform-memory
/// point (remote == local == 1).
fn cost_curve(netlist: &Netlist, end: Time, procs: usize) -> Vec<CostPoint> {
    let base: Option<u64> = None;
    let mut baseline = base;
    REMOTE_COSTS
        .iter()
        .map(|&remote| {
            let mut m = MachineConfig::multimax(procs);
            m.cost.local_mem_cost = 1;
            m.cost.remote_mem_cost = remote;
            let r = model_async(netlist, end, &m);
            let b = *baseline.get_or_insert(r.virtual_time);
            CostPoint {
                remote_mem_cost: remote,
                virtual_time: r.virtual_time,
                remote_fraction: r.remote_fraction(),
                slowdown: if b == 0 {
                    0.0
                } else {
                    r.virtual_time as f64 / b as f64
                },
            }
        })
        .collect()
}

fn json_f(v: f64) -> String {
    json::num(v)
}

fn rows_json(out: &mut String, indent: &str, rows: &[RunRow]) {
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!("{indent}{{\n"));
        out.push_str(&format!("{indent}  \"threads\": {},\n", r.threads));
        out.push_str(&format!("{indent}  \"wall_secs\": {},\n", json_f(r.wall_secs)));
        out.push_str(&format!("{indent}  \"events\": {},\n", r.events));
        out.push_str(&format!("{indent}  \"global_allocs\": {},\n", r.global_allocs));
        out.push_str(&format!("{indent}  \"chunk_allocs\": {},\n", r.chunk_allocs));
        out.push_str(&format!("{indent}  \"chunk_frees\": {},\n", r.chunk_frees));
        out.push_str(&format!("{indent}  \"slab_allocs\": {},\n", r.slab_allocs));
        out.push_str(&format!("{indent}  \"slab_bytes\": {},\n", r.slab_bytes));
        out.push_str(&format!("{indent}  \"recycled\": {},\n", r.recycled));
        out.push_str(&format!("{indent}  \"fresh\": {},\n", r.fresh));
        out.push_str(&format!("{indent}  \"reclaimed\": {},\n", r.reclaimed));
        out.push_str(&format!(
            "{indent}  \"quarantine_peak\": {},\n",
            r.quarantine_peak
        ));
        out.push_str(&format!(
            "{indent}  \"recycle_ratio\": {},\n",
            json_f(r.recycle_ratio)
        ));
        out.push_str(&format!("{indent}  \"busy_ns\": {},\n", r.busy_ns));
        out.push_str(&format!("{indent}  \"idle_ns\": {},\n", r.idle_ns));
        out.push_str(&format!(
            "{indent}  \"utilization\": {},\n",
            json_f(r.utilization())
        ));
        out.push_str(&format!("{indent}  \"oracle_match\": {}\n", r.oracle_match));
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!("{indent}}}{sep}\n"));
    }
}

/// Global-allocator-call reduction of the arena leg over the ablation
/// at sweep row `i` (0.0 when the arena leg recorded none — vacuous
/// runs must fail the criterion, not divide by zero).
fn alloc_reduction(rep: &CircuitReport, i: usize) -> f64 {
    let on = rep.arena_on[i].global_allocs;
    let off = rep.arena_off[i].global_allocs;
    if on == 0 {
        0.0
    } else {
        off as f64 / on as f64
    }
}

fn render(
    reports: &[CircuitReport],
    curve: &[CostPoint],
    curve_procs: usize,
    threads: &[usize],
    quick: bool,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"arena-allocator-ablation\",\n");
    out.push_str("  \"generated_by\": \"parsim-harness bench5\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!(
        "  \"threads\": [{}],\n",
        threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(
        "  \"accounting\": \"global_allocs = slab spans (arena on) vs per-chunk mallocs (arena off)\",\n",
    );
    out.push_str("  \"circuits\": [\n");
    for (ci, rep) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", rep.name));
        out.push_str(&format!("      \"elements\": {},\n", rep.elements));
        out.push_str(&format!("      \"end_time\": {},\n", rep.end_time));
        out.push_str("      \"arena_on\": [\n");
        rows_json(&mut out, "        ", &rep.arena_on);
        out.push_str("      ],\n");
        out.push_str("      \"arena_off\": [\n");
        rows_json(&mut out, "        ", &rep.arena_off);
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"alloc_reduction_per_row\": [{}]\n",
            (0..rep.arena_on.len())
                .map(|i| json_f(alloc_reduction(rep, i)))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str(if ci + 1 == reports.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n");

    out.push_str("  \"memory_cost_model\": {\n");
    out.push_str(&format!("    \"procs\": {curve_procs},\n"));
    out.push_str("    \"local_mem_cost\": 1,\n");
    out.push_str("    \"circuit\": \"gate_multiplier\",\n");
    out.push_str("    \"points\": [\n");
    for (i, p) in curve.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"remote_mem_cost\": {}, \"virtual_time\": {}, \"remote_fraction\": {}, \"slowdown\": {}}}{}\n",
            p.remote_mem_cost,
            p.virtual_time,
            json_f(p.remote_fraction),
            json_f(p.slowdown),
            if i + 1 == curve.len() { "" } else { "," }
        ));
    }
    out.push_str("    ]\n");
    out.push_str("  },\n");

    // Acceptance: the arena must cut steady-state global-allocator calls
    // by >= 10x on the gate-level multiplier at the widest parallel sweep
    // point (4 threads when present), and every parallel run — both legs
    // — must reproduce the sequential oracle's waveforms bit-identically.
    let gate = reports
        .iter()
        .find(|r| r.name == "gate_multiplier")
        .expect("gate_multiplier report present");
    let judged = threads
        .iter()
        .position(|&t| t == 4)
        .unwrap_or(gate.arena_on.len() - 1);
    let reduction = alloc_reduction(gate, judged);
    let min_reduction = reports
        .iter()
        .flat_map(|r| (0..r.arena_on.len()).map(|i| alloc_reduction(r, i)))
        .fold(f64::INFINITY, f64::min);
    let all_match = reports
        .iter()
        .flat_map(|r| r.arena_on.iter().chain(&r.arena_off))
        .all(|row| row.oracle_match);
    let reduction_ok = reduction >= 10.0;
    out.push_str("  \"acceptance\": {\n");
    out.push_str(
        "    \"criterion\": \"gate_multiplier arena cuts global-allocator calls >= 10x and all waveforms match the sequential oracle\",\n",
    );
    out.push_str(&format!(
        "    \"alloc_reduction_judged\": {},\n",
        json_f(reduction)
    ));
    out.push_str(&format!(
        "    \"judged_at_threads\": {},\n",
        gate.arena_on[judged].threads
    ));
    out.push_str(&format!(
        "    \"min_alloc_reduction_all_rows\": {},\n",
        json_f(min_reduction)
    ));
    out.push_str(&format!("    \"reduction_pass\": {reduction_ok},\n"));
    out.push_str(&format!("    \"oracle_pass\": {all_match},\n"));
    out.push_str(&format!("    \"pass\": {}\n", reduction_ok && all_match));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

fn print_table(rep: &CircuitReport) {
    println!(
        "{} ({} elements, end {}):",
        rep.name, rep.elements, rep.end_time
    );
    println!(
        "  {:>7}  {:>24}  {:>24}  {:>9}  {:>7}",
        "threads", "arena-on (wall/allocs)", "arena-off (wall/allocs)", "reduction", "recycle"
    );
    for i in 0..rep.arena_on.len() {
        let on = &rep.arena_on[i];
        let off = &rep.arena_off[i];
        println!(
            "  {:>7}  {:>12.4}s {:>9}  {:>12.4}s {:>9}  {:>8.1}x  {:>6.1}%{}",
            on.threads,
            on.wall_secs,
            on.global_allocs,
            off.wall_secs,
            off.global_allocs,
            alloc_reduction(rep, i),
            100.0 * on.recycle_ratio,
            if on.oracle_match && off.oracle_match {
                ""
            } else {
                "  ORACLE MISMATCH"
            }
        );
    }
}

fn main() -> ExitCode {
    let mut quick = std::env::var_os("PARSIM_BENCH_QUICK").is_some();
    let mut out_path = "BENCH_5.json".to_string();
    let mut threads: Vec<usize> = DEFAULT_THREADS.to_vec();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a value");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => {
                let Some(list) = args.next() else {
                    eprintln!("--threads requires a comma list (e.g. 1,2,4)");
                    return ExitCode::FAILURE;
                };
                match parsim_harness::parse_threads_list(&list, false) {
                    Ok(list) => threads = list,
                    Err(e) => {
                        eprintln!("--threads: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench5 [--quick] [--out PATH] [--threads 1,2,4,8]");
                return ExitCode::FAILURE;
            }
        }
    }

    let (vectors, arr_end, reps) = if quick { (1, 60, 1) } else { (4, 200, 3) };

    let arr = paper_inverter_array(2);
    let gate = paper_gate_multiplier(vectors);
    let gate_end = gate.schedule_end();
    let reports = vec![
        measure(
            &arr.netlist,
            "inverter_array",
            arr.taps.clone(),
            arr_end,
            &threads,
            reps,
        ),
        measure(
            &gate.netlist,
            "gate_multiplier",
            gate.product.clone(),
            gate_end.ticks(),
            &threads,
            reps,
        ),
    ];

    let curve_procs = 8;
    let curve_end = if quick { Time(gate_end.ticks().min(64)) } else { gate_end };
    let curve = cost_curve(&gate.netlist, curve_end, curve_procs);

    for rep in &reports {
        print_table(rep);
    }
    println!("memory cost model (gate_multiplier, {curve_procs} procs, local=1):");
    for p in &curve {
        println!(
            "  remote={:>4}: vt {:>12}, remote events {:>5.1}%, slowdown {:>5.2}x",
            p.remote_mem_cost,
            p.virtual_time,
            100.0 * p.remote_fraction,
            p.slowdown
        );
    }

    let json = render(&reports, &curve, curve_procs, &threads, quick);
    if let Err(e) = json::lint(&json) {
        eprintln!("internal error: rendered bench JSON does not parse: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(threads: usize, global_allocs: u64) -> RunRow {
        RunRow {
            threads,
            wall_secs: 0.5,
            events: 100,
            global_allocs,
            chunk_allocs: 100,
            chunk_frees: 90,
            slab_allocs: global_allocs,
            slab_bytes: 1 << 20,
            recycled: 80,
            fresh: 20,
            reclaimed: 70,
            quarantine_peak: 4,
            recycle_ratio: 0.8,
            busy_ns: 0,
            idle_ns: 0,
            oracle_match: true,
        }
    }

    /// Regression: the telemetry-derived `utilization` field is 0/0 for
    /// rows whose run never flushed busy/idle; it must render `0.000000`
    /// through the NaN-safe `json` layer, never `NaN`/`null` (the
    /// full-document assertion rides `vacuous_runs_fail_cleanly_without_nan`).
    #[test]
    fn zero_worker_time_utilization_stays_serializable() {
        let r = row(1, 10);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(json_f(r.utilization()), "0.000000");
        let busy = RunRow {
            busy_ns: 300,
            idle_ns: 100,
            ..row(2, 10)
        };
        assert_eq!(json_f(busy.utilization()), "0.750000");
    }

    /// The rendered document must parse as JSON with no NaN/null, even
    /// when the arena leg records zero allocator calls (vacuous run) —
    /// that case reports reduction 0.0 and fails acceptance rather than
    /// dividing by zero.
    #[test]
    fn vacuous_runs_fail_cleanly_without_nan() {
        let rep = CircuitReport {
            name: "gate_multiplier",
            elements: 100,
            end_time: 50,
            arena_on: vec![row(1, 0), row(4, 0)],
            arena_off: vec![row(1, 500), row(4, 500)],
        };
        assert_eq!(alloc_reduction(&rep, 0), 0.0);
        let curve = vec![CostPoint {
            remote_mem_cost: 1,
            virtual_time: 0,
            remote_fraction: f64::NAN,
            slowdown: f64::NAN,
        }];
        let json = render(&[rep], &curve, 8, &[1, 4], true);
        parsim_harness::json::lint(&json).expect("bench JSON must parse");
        assert!(!json.contains("NaN"), "NaN leaked:\n{json}");
        assert!(!json.contains("null"), "null leaked:\n{json}");
        assert!(json.contains("\"pass\": false"));
    }

    #[test]
    fn reduction_judges_off_over_on() {
        let rep = CircuitReport {
            name: "gate_multiplier",
            elements: 100,
            end_time: 50,
            arena_on: vec![row(4, 10)],
            arena_off: vec![row(4, 250)],
        };
        assert_eq!(alloc_reduction(&rep, 0), 25.0);
    }
}
