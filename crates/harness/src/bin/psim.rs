//! `psim` — simulate a text-format netlist from the command line.
//!
//! ```text
//! psim CIRCUIT.net --end 1000 --engine async --threads 4 \
//!      --watch out0 --watch out1 --vcd dump.vcd
//! ```
//!
//! Engines: `seq` (default), `sync`, `compiled`, `async`. Files ending
//! in `.bench` are parsed as ISCAS benchmarks (LFSR stimulus attached);
//! anything else uses the native text format. The special input `@c17`
//! uses the built-in ISCAS-85 c17 benchmark (no file needed). With no
//! `--watch` flags, every named node that is not auto-generated (`_t...`)
//! is watched. `--stats` prints netlist statistics and exits.
//!
//! `--trace OUT.json` (requires building with `--features trace`) records
//! a per-worker event trace and writes it in Chrome `trace_events` format
//! — load it at <https://ui.perfetto.dev>. Adding `--report` also prints
//! a run report (per-phase utilization, barrier imbalance, queue
//! occupancy, hottest elements, checkpoint latency) and writes it as
//! `OUT.report.json`.
//!
//! `--checkpoint-dir DIR --checkpoint-every N` snapshots the run every N
//! simulated ticks (crash-consistently: temp file + fsync + atomic
//! rename, keeping the last few). After a crash, the same command with
//! `--resume` scans DIR, restores the newest valid snapshot (falling
//! back past torn files), and continues — producing waveforms
//! bit-identical to an uninterrupted run.
//!
//! `--lanes N` (with `--engine compiled`) runs the SIMD batch kernel
//! with N copies of the base stimulus — a lane-throughput measurement
//! mode. `--force-lane-width {64,128,256,512}` pins the word-group
//! width instead of auto-detecting it from the CPU (64 forces the
//! portable scalar path); it also applies to plain batch runs driven
//! through the library. The chosen width is reported in the metrics
//! line and, with `--trace --report`, in the run report.
//!
//! Telemetry (always on, no feature flag): `--metrics-out OUT.prom`
//! writes the final registry as Prometheus text-format 0.0.4 (self-
//! linted) plus a sibling `OUT.series.json` time-series document whose
//! final sample equals the run's metrics totals. `--sample-every MS`
//! arms the in-run sampler (the watchdog thread snapshots the registry
//! every MS milliseconds into a bounded ring). `--live-stats` prints a
//! one-line stderr progress ticker (events/s, utilization, queue depth,
//! arena occupancy, last checkpoint) while the run is in flight.
//! `--report` no longer requires `--trace`: without a trace it prints
//! the metrics-derived per-worker utilization report (busy/idle/parks),
//! so scheduling imbalance is visible on every build.

use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parsim_core::{
    checkpoint, ChaoticAsync, CheckpointReport, CompiledMode, EngineKind, EventDriven, Metrics,
    RunReport, SimConfig, SyncEventDriven, ThreadSummary, TimeSeriesPoint, TimeSeriesReport,
    TraceConfig,
};
use parsim_harness::Table;
use parsim_logic::Time;
use parsim_netlist::bench_fmt::{from_bench, BenchOptions, C17};
use parsim_netlist::{Netlist, NetlistStats};
use parsim_telemetry::{prometheus, series, Counter, Gauge, Hub, RunTelemetry};

const USAGE: &str = "usage: psim CIRCUIT.net|@c17 [--engine seq|sync|compiled|async] \
[--end N] [--threads N] [--watch NODE]... [--vcd FILE] [--stats] \
[--trace OUT.json] [--report] \
[--checkpoint-dir DIR --checkpoint-every N [--resume]] \
[--lanes N [--force-lane-width 64|128|256|512]] [--no-arena] \
[--metrics-out OUT.prom] [--sample-every MS] [--live-stats]";

/// What the command line asked for: a run, or just the usage text
/// (`--help` is a success, not an error).
enum Cli {
    Run(Box<Options>),
    Help,
}

struct Options {
    input: String,
    engine: String,
    end: u64,
    threads: usize,
    watch: Vec<String>,
    vcd: Option<String>,
    stats: bool,
    trace: Option<String>,
    report: bool,
    checkpoint_dir: Option<String>,
    checkpoint_every: u64,
    resume: bool,
    lanes: usize,
    force_lane_width: Option<usize>,
    no_arena: bool,
    metrics_out: Option<String>,
    sample_every_ms: u64,
    live_stats: bool,
}

fn parse_args() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        engine: "seq".to_string(),
        end: 1000,
        threads: 1,
        watch: Vec::new(),
        vcd: None,
        stats: false,
        trace: None,
        report: false,
        checkpoint_dir: None,
        checkpoint_every: 0,
        resume: false,
        lanes: 0,
        force_lane_width: None,
        no_arena: false,
        metrics_out: None,
        sample_every_ms: 0,
        live_stats: false,
    };
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--engine" => opts.engine = value("--engine")?,
            "--end" => {
                opts.end = value("--end")?
                    .parse()
                    .map_err(|_| "--end must be an integer".to_string())?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?;
                if opts.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--watch" => opts.watch.push(value("--watch")?),
            "--vcd" => opts.vcd = Some(value("--vcd")?),
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--report" => opts.report = true,
            "--checkpoint-dir" => opts.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "--checkpoint-every must be an integer".to_string())?
            }
            "--resume" => opts.resume = true,
            "--no-arena" => opts.no_arena = true,
            "--metrics-out" => opts.metrics_out = Some(value("--metrics-out")?),
            "--sample-every" => {
                opts.sample_every_ms = value("--sample-every")?
                    .parse()
                    .map_err(|_| "--sample-every must be an integer (milliseconds)".to_string())?;
                if opts.sample_every_ms == 0 {
                    return Err("--sample-every must be at least 1 ms".to_string());
                }
            }
            "--live-stats" => opts.live_stats = true,
            "--lanes" => {
                opts.lanes = value("--lanes")?
                    .parse()
                    .map_err(|_| "--lanes must be an integer".to_string())?;
                if opts.lanes == 0 {
                    return Err("--lanes must be at least 1".to_string());
                }
            }
            "--force-lane-width" => {
                let w: usize = value("--force-lane-width")?
                    .parse()
                    .map_err(|_| "--force-lane-width must be an integer".to_string())?;
                if ![64, 128, 256, 512].contains(&w) {
                    return Err(format!(
                        "--force-lane-width must be one of 64, 128, 256, 512 (got {w})"
                    ));
                }
                opts.force_lane_width = Some(w);
            }
            "--help" | "-h" => return Ok(Cli::Help),
            other if !other.starts_with('-') && opts.input.is_empty() => {
                opts.input = other.to_string()
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.input.is_empty() {
        return Err("missing input netlist (try --help)".to_string());
    }
    Ok(Cli::Run(Box::new(opts)))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(Cli::Help) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(Cli::Run(opts)) => opts,
        // Bad flags are usage errors: name the offense, show the usage
        // line, exit nonzero.
        Err(msg) => {
            eprintln!("psim: {msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("psim: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(opts: &Options) -> Result<(), String> {
    if opts.trace.is_some() && !parsim_trace::recording_compiled() {
        return Err(
            "--trace requires the `trace` cargo feature; rebuild with \
             `cargo build --release -p parsim-harness --features trace`"
                .to_string(),
        );
    }
    // `@c17` uses the built-in ISCAS-85 c17 benchmark; `.bench` files use
    // the ISCAS format (with default LFSR stimulus); everything else is
    // the native text format.
    let netlist = if opts.input == "@c17" {
        from_bench(C17, &BenchOptions::default())
            .map_err(|e| e.to_string())?
            .netlist
    } else {
        let text = std::fs::read_to_string(&opts.input)
            .map_err(|e| format!("cannot read {}: {e}", opts.input))?;
        if opts.input.ends_with(".bench") {
            from_bench(&text, &BenchOptions::default())
                .map_err(|e| e.to_string())?
                .netlist
        } else {
            Netlist::from_text(&text).map_err(|e| e.to_string())?
        }
    };

    if opts.stats {
        print!("{}", NetlistStats::compute(&netlist));
        return Ok(());
    }

    let watch: Vec<_> = if opts.watch.is_empty() {
        netlist
            .iter_nodes()
            .filter(|(_, n)| !n.name().starts_with("_t"))
            .map(|(id, _)| id)
            .collect()
    } else {
        opts.watch
            .iter()
            .map(|name| {
                netlist
                    .node_by_name(name)
                    .ok_or_else(|| format!("unknown node `{name}`"))
            })
            .collect::<Result<_, _>>()?
    };

    let mut config = SimConfig::new(Time(opts.end))
        .watch_all(watch.iter().copied())
        .threads(opts.threads);
    if opts.trace.is_some() {
        config = config.with_trace(TraceConfig::default());
    }
    if let Some(w) = opts.force_lane_width {
        config = config.with_lane_width(w);
    }
    if opts.no_arena {
        config = config.without_arena();
    }
    if opts.sample_every_ms > 0 {
        config = config.sample_every(Duration::from_millis(opts.sample_every_ms));
    }
    // The hub is the live window into the running engine's registry; the
    // engine installs its telemetry context there at run start.
    let hub = (opts.live_stats || opts.metrics_out.is_some()).then(Hub::new);
    if let Some(h) = &hub {
        config = config.with_telemetry_hub(h.clone());
    }
    let kind = match opts.engine.as_str() {
        "seq" => EngineKind::Sequential,
        "sync" => EngineKind::Synchronous,
        "compiled" => EngineKind::Compiled,
        "async" => EngineKind::Chaotic,
        other => return Err(format!("unknown engine `{other}`")),
    };
    // `--lanes N` runs the SIMD batch kernel with N copies of the base
    // stimulus — a throughput-measurement mode (lanes see identical
    // inputs; per-lane stimulus files are the testbench API's job).
    if opts.lanes > 0 {
        if opts.engine != "compiled" {
            return Err("--lanes requires --engine compiled".to_string());
        }
        if opts.checkpoint_dir.is_some() || opts.resume || opts.trace.is_some() {
            return Err("--lanes is incompatible with --checkpoint-dir/--resume/--trace"
                .to_string());
        }
        let stimuli = vec![parsim_core::LaneStimulus::base(); opts.lanes];
        let ticker = match (&hub, opts.live_stats) {
            (Some(h), true) => Some(LiveTicker::start(h.clone())),
            _ => None,
        };
        let batch = CompiledMode::run_batch(&netlist, &config, &stimuli);
        if let Some(t) = ticker {
            t.finish();
        }
        let batch = batch.map_err(|e| e.to_string())?;
        let mut t = Table::new(
            &format!(
                "{} — compiled batch, {} lanes ({}-bit groups), end={}",
                opts.input, opts.lanes, batch.metrics.lane_width, opts.end
            ),
            &["node", "changes", "final value"],
        );
        for w in batch.lanes[0].waveforms() {
            t.row(vec![
                w.name().to_string(),
                w.num_changes().to_string(),
                w.final_value().to_string(),
            ]);
        }
        t.note(&format!("{}", batch.metrics));
        print!("{t}");
        if let Some(path) = &opts.metrics_out {
            let h = hub.as_ref().expect("--metrics-out always sets the hub");
            write_metrics(path, h, batch.telemetry.as_ref())?;
        }
        return Ok(());
    }

    let ticker = match (&hub, opts.live_stats) {
        (Some(h), true) => Some(LiveTicker::start(h.clone())),
        _ => None,
    };
    let result = if let Some(dir) = &opts.checkpoint_dir {
        if opts.checkpoint_every == 0 {
            return Err("--checkpoint-dir requires --checkpoint-every N (ticks)".to_string());
        }
        config = config
            .with_checkpoint_dir(dir)
            .with_checkpoint_every(opts.checkpoint_every);
        if opts.resume {
            checkpoint::resume(kind, &netlist, &config)
        } else {
            checkpoint::run(kind, &netlist, &config)
        }
    } else if opts.resume {
        return Err("--resume requires --checkpoint-dir DIR".to_string());
    } else {
        match kind {
            EngineKind::Sequential => EventDriven::run(&netlist, &config),
            EngineKind::Synchronous => SyncEventDriven::run(&netlist, &config),
            EngineKind::Compiled => CompiledMode::run(&netlist, &config),
            EngineKind::Chaotic => ChaoticAsync::run(&netlist, &config),
        }
    };
    if let Some(t) = ticker {
        t.finish();
    }
    let result = result.map_err(|e| e.to_string())?;

    let mut t = Table::new(
        &format!("{} — {} engine, end={}", opts.input, opts.engine, opts.end),
        &["node", "changes", "final value"],
    );
    for w in result.waveforms() {
        t.row(vec![
            w.name().to_string(),
            w.num_changes().to_string(),
            w.final_value().to_string(),
        ]);
    }
    t.note(&format!("{}", result.metrics));
    print!("{t}");

    if opts.checkpoint_dir.is_some() {
        let c = &result.metrics.checkpoint;
        println!(
            "\ncheckpoints: {} written ({} bytes) in {:.3} ms; restore {:.3} ms",
            c.writes,
            c.bytes,
            c.write_ns as f64 / 1e6,
            c.restore_ns as f64 / 1e6
        );
    }

    if let Some(path) = &opts.vcd {
        std::fs::write(path, result.to_vcd())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("\nwrote {path}");
    }

    if let Some(trace_path) = &opts.trace {
        let trace = result
            .trace
            .as_ref()
            .ok_or("engine returned no trace despite --trace (bug)")?;
        let json = trace.to_chrome_json();
        // Self-validate before writing: the export must parse as JSON and
        // carry at least one span from every worker, or the run fails.
        parsim_trace::json::lint(&json)
            .map_err(|e| format!("internal error: chrome trace is not valid JSON: {e}"))?;
        for w in &trace.workers {
            if w.span_count() == 0 {
                return Err(format!(
                    "internal error: worker {} recorded no spans",
                    w.worker
                ));
            }
        }
        std::fs::write(trace_path, &json)
            .map_err(|e| format!("cannot write {trace_path}: {e}"))?;
        println!(
            "\nwrote {trace_path} ({} workers, {} events, {} dropped) — load at ui.perfetto.dev",
            trace.num_workers(),
            trace.num_events(),
            trace.dropped()
        );

        if opts.report {
            let report = attach_metrics(
                RunReport::from_trace(trace),
                &result.metrics,
                result.telemetry.as_ref(),
                opts.checkpoint_dir.is_some(),
            );
            let report_path = format!("{}.report.json", trace_path.trim_end_matches(".json"));
            let report_json = report.to_json();
            parsim_trace::json::lint(&report_json)
                .map_err(|e| format!("internal error: run report is not valid JSON: {e}"))?;
            std::fs::write(&report_path, &report_json)
                .map_err(|e| format!("cannot write {report_path}: {e}"))?;
            println!("\n{report}");
            println!("wrote {report_path}");
        }
    }

    // `--report` without `--trace`: the metrics-derived utilization
    // report. Coarser than the trace analyzer (no phase breakdown, no
    // hottest elements) but available on every build — per-worker
    // busy/idle imbalance and backoff parks come from engine metrics.
    if opts.report && opts.trace.is_none() {
        let report = attach_metrics(
            RunReport::from_thread_summaries(
                result.metrics.wall.as_nanos() as u64,
                &thread_summaries(&result.metrics),
            ),
            &result.metrics,
            result.telemetry.as_ref(),
            opts.checkpoint_dir.is_some(),
        );
        println!("\n{report}");
    }

    if let Some(path) = &opts.metrics_out {
        let h = hub.as_ref().expect("--metrics-out always sets the hub");
        write_metrics(path, h, result.telemetry.as_ref())?;
    }
    Ok(())
}

/// Per-worker scheduling/timing summaries from engine metrics, in the
/// trace crate's cycle-free vocabulary.
fn thread_summaries(m: &Metrics) -> Vec<ThreadSummary> {
    if m.per_thread.is_empty() {
        // Sequential engine: one implicit worker, busy for the whole run.
        return vec![ThreadSummary {
            busy_ns: m.wall.as_nanos() as u64,
            evals: m.evaluations,
            ..ThreadSummary::default()
        }];
    }
    m.per_thread
        .iter()
        .map(|t| ThreadSummary {
            busy_ns: t.busy.as_nanos() as u64,
            idle_ns: t.idle.as_nanos() as u64,
            evals: t.evaluations,
            local_hits: t.sched.local_hits,
            grid_sends: t.sched.grid_sends,
            steals: t.sched.steals,
            backoff_parks: t.sched.backoff_parks,
        })
        .collect()
}

/// Reduces the telemetry sample ring to the report's time-series shape.
fn to_timeseries(run: &RunTelemetry) -> TimeSeriesReport {
    TimeSeriesReport {
        sample_every_ns: run.sampled_every_ns.unwrap_or(0),
        points: run
            .samples
            .iter()
            .map(|s| TimeSeriesPoint {
                t_ns: s.t_ns,
                events: s.snap.counter(Counter::EventsProcessed),
                evaluations: s.snap.counter(Counter::Evaluations),
                sim_time: s.snap.gauge(Gauge::SimTime),
                queue_depth: s.snap.gauge(Gauge::QueueDepth),
                busy_ns: s.snap.counter(Counter::BusyNs),
                idle_ns: s.snap.counter(Counter::IdleNs),
            })
            .collect(),
    }
}

/// Folds engine metrics (checkpoint/arena/lane-width/idle/parks) and the
/// sampled time series into a report, trace-derived or metrics-only.
fn attach_metrics(
    mut report: RunReport,
    m: &Metrics,
    telemetry: Option<&RunTelemetry>,
    with_ckpt: bool,
) -> RunReport {
    report = report
        .with_lane_width(m.lane_width)
        .with_thread_summaries(&thread_summaries(m));
    if with_ckpt {
        let c = &m.checkpoint;
        report = report.with_checkpoint(CheckpointReport {
            writes: c.writes,
            bytes: c.bytes,
            write_ns: c.write_ns,
            restore_ns: c.restore_ns,
        });
    }
    let a = &m.arena;
    if !a.is_empty() {
        report = report.with_arena(parsim_trace::ArenaReport {
            enabled: a.enabled,
            chunk_allocs: a.chunk_allocs,
            chunk_frees: a.chunk_frees,
            mailbox_recycled: a.mailbox_recycled,
            slab_allocs: a.slab.slab_allocs,
            slab_bytes: a.slab.slab_bytes,
            recycled: a.slab.recycled,
            fresh: a.slab.fresh,
            reclaimed: a.slab.reclaimed,
            quarantine_peak: a.slab.quarantine_peak,
        });
    }
    if let Some(ts) = telemetry.map(to_timeseries) {
        if !ts.points.is_empty() {
            report = report.with_timeseries(ts);
        }
    }
    report
}

/// Writes the final registry as Prometheus text-format 0.0.4 (self-
/// linted before the write) plus the sibling time-series JSON document.
fn write_metrics(
    path: &str,
    hub: &Arc<Hub>,
    telemetry: Option<&RunTelemetry>,
) -> Result<(), String> {
    let ctx = hub
        .get()
        .ok_or("internal error: engine installed no telemetry context")?;
    let prom = prometheus::render(&ctx.registry);
    prometheus::lint(&prom)
        .map_err(|e| format!("internal error: prometheus exposition failed format check: {e}"))?;
    std::fs::write(path, &prom).map_err(|e| format!("cannot write {path}: {e}"))?;
    let owned;
    let run = match telemetry {
        Some(t) => t,
        None => {
            owned = ctx.finish();
            &owned
        }
    };
    let series_path = format!(
        "{}.series.json",
        path.trim_end_matches(".prom").trim_end_matches(".txt")
    );
    let doc = series::render_json(run);
    parsim_trace::json::lint(&doc)
        .map_err(|e| format!("internal error: series document is not valid JSON: {e}"))?;
    std::fs::write(&series_path, &doc).map_err(|e| format!("cannot write {series_path}: {e}"))?;
    println!("\nwrote {path} (prometheus) and {series_path} (time series)");
    Ok(())
}

/// Background stderr ticker for `--live-stats`: polls the running
/// engine's registry through the [`Hub`] at ~2 Hz and rewrites one
/// status line with throughput, utilization, and occupancy.
struct LiveTicker {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

impl LiveTicker {
    fn start(hub: Arc<Hub>) -> LiveTicker {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || {
            let mut prev: Option<(std::time::Instant, u64)> = None;
            let mut printed = false;
            let mut naps = 0u32;
            while !flag.load(Ordering::Acquire) {
                // Nap in 100 ms slices so shutdown is prompt, print at 2 Hz.
                std::thread::sleep(Duration::from_millis(100));
                naps += 1;
                if !naps.is_multiple_of(5) {
                    continue;
                }
                let Some(ctx) = hub.get() else { continue };
                let snap = ctx.registry.snapshot();
                let events = snap.counter(Counter::EventsProcessed);
                let now = std::time::Instant::now();
                let rate = match prev {
                    Some((t0, e0)) => {
                        let dt = now.duration_since(t0).as_secs_f64();
                        if dt > 0.0 {
                            events.saturating_sub(e0) as f64 / dt
                        } else {
                            0.0
                        }
                    }
                    None => 0.0,
                };
                prev = Some((now, events));
                let busy = snap.counter(Counter::BusyNs);
                let idle = snap.counter(Counter::IdleNs);
                let util = if busy + idle > 0 {
                    format!("{:.0}%", 100.0 * busy as f64 / (busy + idle) as f64)
                } else {
                    // Engines publish busy/idle at coarse flush points;
                    // early in a run there may be nothing yet.
                    "--".to_string()
                };
                let mut line = format!(
                    "[psim] t={} | {} ev/s | util {} | depth {} | arena {} blk",
                    snap.gauge(Gauge::SimTime),
                    fmt_rate(rate),
                    util,
                    snap.gauge(Gauge::QueueDepth),
                    snap.gauge(Gauge::ArenaLiveBlocks),
                );
                if snap.counter(Counter::CheckpointWrites) > 0 {
                    line.push_str(&format!(
                        " | ckpt @t={}",
                        snap.gauge(Gauge::LastCheckpointTime)
                    ));
                }
                eprint!("\r{line:<78}");
                printed = true;
            }
            if printed {
                eprintln!();
            }
        });
        LiveTicker { stop, handle }
    }

    fn finish(self) {
        self.stop.store(true, Ordering::Release);
        let _ = self.handle.join();
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.1}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}
