//! `psim` — simulate a text-format netlist from the command line.
//!
//! ```text
//! psim CIRCUIT.net --end 1000 --engine async --threads 4 \
//!      --watch out0 --watch out1 --vcd dump.vcd
//! ```
//!
//! Engines: `seq` (default), `sync`, `compiled`, `async`. Files ending
//! in `.bench` are parsed as ISCAS benchmarks (LFSR stimulus attached);
//! anything else uses the native text format. The special input `@c17`
//! uses the built-in ISCAS-85 c17 benchmark (no file needed). With no
//! `--watch` flags, every named node that is not auto-generated (`_t...`)
//! is watched. `--stats` prints netlist statistics and exits.
//!
//! `--trace OUT.json` (requires building with `--features trace`) records
//! a per-worker event trace and writes it in Chrome `trace_events` format
//! — load it at <https://ui.perfetto.dev>. Adding `--report` also prints
//! a run report (per-phase utilization, barrier imbalance, queue
//! occupancy, hottest elements, checkpoint latency) and writes it as
//! `OUT.report.json`.
//!
//! `--checkpoint-dir DIR --checkpoint-every N` snapshots the run every N
//! simulated ticks (crash-consistently: temp file + fsync + atomic
//! rename, keeping the last few). After a crash, the same command with
//! `--resume` scans DIR, restores the newest valid snapshot (falling
//! back past torn files), and continues — producing waveforms
//! bit-identical to an uninterrupted run.
//!
//! `--lanes N` (with `--engine compiled`) runs the SIMD batch kernel
//! with N copies of the base stimulus — a lane-throughput measurement
//! mode. `--force-lane-width {64,128,256,512}` pins the word-group
//! width instead of auto-detecting it from the CPU (64 forces the
//! portable scalar path); it also applies to plain batch runs driven
//! through the library. The chosen width is reported in the metrics
//! line and, with `--trace --report`, in the run report.

use std::process::ExitCode;

use parsim_core::{
    checkpoint, ChaoticAsync, CheckpointReport, CompiledMode, EngineKind, EventDriven, RunReport,
    SimConfig, SyncEventDriven, TraceConfig,
};
use parsim_harness::Table;
use parsim_logic::Time;
use parsim_netlist::bench_fmt::{from_bench, BenchOptions, C17};
use parsim_netlist::{Netlist, NetlistStats};

struct Options {
    input: String,
    engine: String,
    end: u64,
    threads: usize,
    watch: Vec<String>,
    vcd: Option<String>,
    stats: bool,
    trace: Option<String>,
    report: bool,
    checkpoint_dir: Option<String>,
    checkpoint_every: u64,
    resume: bool,
    lanes: usize,
    force_lane_width: Option<usize>,
    no_arena: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        engine: "seq".to_string(),
        end: 1000,
        threads: 1,
        watch: Vec::new(),
        vcd: None,
        stats: false,
        trace: None,
        report: false,
        checkpoint_dir: None,
        checkpoint_every: 0,
        resume: false,
        lanes: 0,
        force_lane_width: None,
        no_arena: false,
    };
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--engine" => opts.engine = value("--engine")?,
            "--end" => {
                opts.end = value("--end")?
                    .parse()
                    .map_err(|_| "--end must be an integer".to_string())?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?
            }
            "--watch" => opts.watch.push(value("--watch")?),
            "--vcd" => opts.vcd = Some(value("--vcd")?),
            "--stats" => opts.stats = true,
            "--trace" => opts.trace = Some(value("--trace")?),
            "--report" => opts.report = true,
            "--checkpoint-dir" => opts.checkpoint_dir = Some(value("--checkpoint-dir")?),
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every")?
                    .parse()
                    .map_err(|_| "--checkpoint-every must be an integer".to_string())?
            }
            "--resume" => opts.resume = true,
            "--no-arena" => opts.no_arena = true,
            "--lanes" => {
                opts.lanes = value("--lanes")?
                    .parse()
                    .map_err(|_| "--lanes must be an integer".to_string())?
            }
            "--force-lane-width" => {
                let w: usize = value("--force-lane-width")?
                    .parse()
                    .map_err(|_| "--force-lane-width must be an integer".to_string())?;
                if ![64, 128, 256, 512].contains(&w) {
                    return Err(format!(
                        "--force-lane-width must be one of 64, 128, 256, 512 (got {w})"
                    ));
                }
                opts.force_lane_width = Some(w);
            }
            "--help" | "-h" => {
                return Err("usage: psim CIRCUIT.net|@c17 [--engine seq|sync|compiled|async] \
                     [--end N] [--threads N] [--watch NODE]... [--vcd FILE] [--stats] \
                     [--trace OUT.json [--report]] \
                     [--checkpoint-dir DIR --checkpoint-every N [--resume]] \
                     [--lanes N [--force-lane-width 64|128|256|512]] [--no-arena]"
                    .to_string())
            }
            other if !other.starts_with('-') && opts.input.is_empty() => {
                opts.input = other.to_string()
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.input.is_empty() {
        return Err("missing input netlist (try --help)".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("psim: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    if opts.report && opts.trace.is_none() {
        return Err("--report requires --trace OUT.json".to_string());
    }
    if opts.trace.is_some() && !parsim_trace::recording_compiled() {
        return Err(
            "--trace requires the `trace` cargo feature; rebuild with \
             `cargo build --release -p parsim-harness --features trace`"
                .to_string(),
        );
    }
    // `@c17` uses the built-in ISCAS-85 c17 benchmark; `.bench` files use
    // the ISCAS format (with default LFSR stimulus); everything else is
    // the native text format.
    let netlist = if opts.input == "@c17" {
        from_bench(C17, &BenchOptions::default())
            .map_err(|e| e.to_string())?
            .netlist
    } else {
        let text = std::fs::read_to_string(&opts.input)
            .map_err(|e| format!("cannot read {}: {e}", opts.input))?;
        if opts.input.ends_with(".bench") {
            from_bench(&text, &BenchOptions::default())
                .map_err(|e| e.to_string())?
                .netlist
        } else {
            Netlist::from_text(&text).map_err(|e| e.to_string())?
        }
    };

    if opts.stats {
        print!("{}", NetlistStats::compute(&netlist));
        return Ok(());
    }

    let watch: Vec<_> = if opts.watch.is_empty() {
        netlist
            .iter_nodes()
            .filter(|(_, n)| !n.name().starts_with("_t"))
            .map(|(id, _)| id)
            .collect()
    } else {
        opts.watch
            .iter()
            .map(|name| {
                netlist
                    .node_by_name(name)
                    .ok_or_else(|| format!("unknown node `{name}`"))
            })
            .collect::<Result<_, _>>()?
    };

    let mut config = SimConfig::new(Time(opts.end))
        .watch_all(watch.iter().copied())
        .threads(opts.threads);
    if opts.trace.is_some() {
        config = config.with_trace(TraceConfig::default());
    }
    if let Some(w) = opts.force_lane_width {
        config = config.with_lane_width(w);
    }
    if opts.no_arena {
        config = config.without_arena();
    }
    let kind = match opts.engine.as_str() {
        "seq" => EngineKind::Sequential,
        "sync" => EngineKind::Synchronous,
        "compiled" => EngineKind::Compiled,
        "async" => EngineKind::Chaotic,
        other => return Err(format!("unknown engine `{other}`")),
    };
    // `--lanes N` runs the SIMD batch kernel with N copies of the base
    // stimulus — a throughput-measurement mode (lanes see identical
    // inputs; per-lane stimulus files are the testbench API's job).
    if opts.lanes > 0 {
        if opts.engine != "compiled" {
            return Err("--lanes requires --engine compiled".to_string());
        }
        if opts.checkpoint_dir.is_some() || opts.resume || opts.trace.is_some() {
            return Err("--lanes is incompatible with --checkpoint-dir/--resume/--trace"
                .to_string());
        }
        let stimuli = vec![parsim_core::LaneStimulus::base(); opts.lanes];
        let batch =
            CompiledMode::run_batch(&netlist, &config, &stimuli).map_err(|e| e.to_string())?;
        let mut t = Table::new(
            &format!(
                "{} — compiled batch, {} lanes ({}-bit groups), end={}",
                opts.input, opts.lanes, batch.metrics.lane_width, opts.end
            ),
            &["node", "changes", "final value"],
        );
        for w in batch.lanes[0].waveforms() {
            t.row(vec![
                w.name().to_string(),
                w.num_changes().to_string(),
                w.final_value().to_string(),
            ]);
        }
        t.note(&format!("{}", batch.metrics));
        print!("{t}");
        return Ok(());
    }

    let result = if let Some(dir) = &opts.checkpoint_dir {
        if opts.checkpoint_every == 0 {
            return Err("--checkpoint-dir requires --checkpoint-every N (ticks)".to_string());
        }
        config = config
            .with_checkpoint_dir(dir)
            .with_checkpoint_every(opts.checkpoint_every);
        if opts.resume {
            checkpoint::resume(kind, &netlist, &config)
        } else {
            checkpoint::run(kind, &netlist, &config)
        }
    } else if opts.resume {
        return Err("--resume requires --checkpoint-dir DIR".to_string());
    } else {
        match kind {
            EngineKind::Sequential => EventDriven::run(&netlist, &config),
            EngineKind::Synchronous => SyncEventDriven::run(&netlist, &config),
            EngineKind::Compiled => CompiledMode::run(&netlist, &config),
            EngineKind::Chaotic => ChaoticAsync::run(&netlist, &config),
        }
    }
    .map_err(|e| e.to_string())?;

    let mut t = Table::new(
        &format!("{} — {} engine, end={}", opts.input, opts.engine, opts.end),
        &["node", "changes", "final value"],
    );
    for w in result.waveforms() {
        t.row(vec![
            w.name().to_string(),
            w.num_changes().to_string(),
            w.final_value().to_string(),
        ]);
    }
    t.note(&format!("{}", result.metrics));
    print!("{t}");

    if opts.checkpoint_dir.is_some() {
        let c = &result.metrics.checkpoint;
        println!(
            "\ncheckpoints: {} written ({} bytes) in {:.3} ms; restore {:.3} ms",
            c.writes,
            c.bytes,
            c.write_ns as f64 / 1e6,
            c.restore_ns as f64 / 1e6
        );
    }

    if let Some(path) = opts.vcd {
        std::fs::write(&path, result.to_vcd())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("\nwrote {path}");
    }

    if let Some(trace_path) = &opts.trace {
        let trace = result
            .trace
            .as_ref()
            .ok_or("engine returned no trace despite --trace (bug)")?;
        let json = trace.to_chrome_json();
        // Self-validate before writing: the export must parse as JSON and
        // carry at least one span from every worker, or the run fails.
        parsim_trace::json::lint(&json)
            .map_err(|e| format!("internal error: chrome trace is not valid JSON: {e}"))?;
        for w in &trace.workers {
            if w.span_count() == 0 {
                return Err(format!(
                    "internal error: worker {} recorded no spans",
                    w.worker
                ));
            }
        }
        std::fs::write(trace_path, &json)
            .map_err(|e| format!("cannot write {trace_path}: {e}"))?;
        println!(
            "\nwrote {trace_path} ({} workers, {} events, {} dropped) — load at ui.perfetto.dev",
            trace.num_workers(),
            trace.num_events(),
            trace.dropped()
        );

        if opts.report {
            let mut report =
                RunReport::from_trace(trace).with_lane_width(result.metrics.lane_width);
            if opts.checkpoint_dir.is_some() {
                let c = &result.metrics.checkpoint;
                report = report.with_checkpoint(CheckpointReport {
                    writes: c.writes,
                    bytes: c.bytes,
                    write_ns: c.write_ns,
                    restore_ns: c.restore_ns,
                });
            }
            let a = &result.metrics.arena;
            if !a.is_empty() {
                report = report.with_arena(parsim_trace::ArenaReport {
                    enabled: a.enabled,
                    chunk_allocs: a.chunk_allocs,
                    chunk_frees: a.chunk_frees,
                    mailbox_recycled: a.mailbox_recycled,
                    slab_allocs: a.slab.slab_allocs,
                    slab_bytes: a.slab.slab_bytes,
                    recycled: a.slab.recycled,
                    fresh: a.slab.fresh,
                    reclaimed: a.slab.reclaimed,
                    quarantine_peak: a.slab.quarantine_peak,
                });
            }
            let report_path = format!("{}.report.json", trace_path.trim_end_matches(".json"));
            let report_json = report.to_json();
            parsim_trace::json::lint(&report_json)
                .map_err(|e| format!("internal error: run report is not valid JSON: {e}"))?;
            std::fs::write(&report_path, &report_json)
                .map_err(|e| format!("cannot write {report_path}: {e}"))?;
            println!("\n{report}");
            println!("wrote {report_path}");
        }
    }
    Ok(())
}
