//! `psim` — simulate a text-format netlist from the command line.
//!
//! ```text
//! psim CIRCUIT.net --end 1000 --engine async --threads 4 \
//!      --watch out0 --watch out1 --vcd dump.vcd
//! ```
//!
//! Engines: `seq` (default), `sync`, `compiled`, `async`. Files ending
//! in `.bench` are parsed as ISCAS benchmarks (LFSR stimulus attached);
//! anything else uses the native text format. With no `--watch` flags,
//! every named node that is not auto-generated (`_t...`) is watched.
//! `--stats` prints netlist statistics and exits.

use std::process::ExitCode;

use parsim_core::{ChaoticAsync, CompiledMode, EventDriven, SimConfig, SyncEventDriven};
use parsim_harness::Table;
use parsim_logic::Time;
use parsim_netlist::bench_fmt::{from_bench, BenchOptions};
use parsim_netlist::{Netlist, NetlistStats};

struct Options {
    input: String,
    engine: String,
    end: u64,
    threads: usize,
    watch: Vec<String>,
    vcd: Option<String>,
    stats: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        engine: "seq".to_string(),
        end: 1000,
        threads: 1,
        watch: Vec::new(),
        vcd: None,
        stats: false,
    };
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--engine" => opts.engine = value("--engine")?,
            "--end" => {
                opts.end = value("--end")?
                    .parse()
                    .map_err(|_| "--end must be an integer".to_string())?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be an integer".to_string())?
            }
            "--watch" => opts.watch.push(value("--watch")?),
            "--vcd" => opts.vcd = Some(value("--vcd")?),
            "--stats" => opts.stats = true,
            "--help" | "-h" => {
                return Err("usage: psim CIRCUIT.net [--engine seq|sync|compiled|async] \
                     [--end N] [--threads N] [--watch NODE]... [--vcd FILE] [--stats]"
                    .to_string())
            }
            other if !other.starts_with('-') && opts.input.is_empty() => {
                opts.input = other.to_string()
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if opts.input.is_empty() {
        return Err("missing input netlist (try --help)".to_string());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("psim: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let opts = parse_args()?;
    let text = std::fs::read_to_string(&opts.input)
        .map_err(|e| format!("cannot read {}: {e}", opts.input))?;
    // `.bench` files use the ISCAS format (with default LFSR stimulus);
    // everything else is the native text format.
    let netlist = if opts.input.ends_with(".bench") {
        from_bench(&text, &BenchOptions::default())
            .map_err(|e| e.to_string())?
            .netlist
    } else {
        Netlist::from_text(&text).map_err(|e| e.to_string())?
    };

    if opts.stats {
        print!("{}", NetlistStats::compute(&netlist));
        return Ok(());
    }

    let watch: Vec<_> = if opts.watch.is_empty() {
        netlist
            .iter_nodes()
            .filter(|(_, n)| !n.name().starts_with("_t"))
            .map(|(id, _)| id)
            .collect()
    } else {
        opts.watch
            .iter()
            .map(|name| {
                netlist
                    .node_by_name(name)
                    .ok_or_else(|| format!("unknown node `{name}`"))
            })
            .collect::<Result<_, _>>()?
    };

    let config = SimConfig::new(Time(opts.end))
        .watch_all(watch.iter().copied())
        .threads(opts.threads);
    let result = match opts.engine.as_str() {
        "seq" => EventDriven::run(&netlist, &config),
        "sync" => SyncEventDriven::run(&netlist, &config),
        "compiled" => CompiledMode::run(&netlist, &config),
        "async" => ChaoticAsync::run(&netlist, &config),
        other => return Err(format!("unknown engine `{other}`")),
    }
    .map_err(|e| e.to_string())?;

    let mut t = Table::new(
        &format!("{} — {} engine, end={}", opts.input, opts.engine, opts.end),
        &["node", "changes", "final value"],
    );
    for w in result.waveforms() {
        t.row(vec![
            w.name().to_string(),
            w.num_changes().to_string(),
            w.final_value().to_string(),
        ]);
    }
    t.note(&format!("{}", result.metrics));
    print!("{t}");

    if let Some(path) = opts.vcd {
        std::fs::write(&path, result.to_vcd())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("\nwrote {path}");
    }
    Ok(())
}
