//! Regenerates every table and figure of the paper's evaluation.
//!
//! Usage:
//!
//! ```text
//! figures            # run everything
//! figures fig1 fig5  # run selected experiments
//! figures --list     # list experiment names
//! ```

use parsim_harness::{
    ablation_lookahead, ablation_os_interrupts, ablation_queues, ablation_stealing,
    bus_experiment, chandy_misra_ablation, event_stats, feedback_experiment,
    fig1_event_driven,
    fig2_event_density, fig3_compiled, fig4_async, fig5_comparison, gc_effectiveness,
    hypercube_experiment, levels_experiment, uniproc_ratio, wallclock_matrix, Table,
};

type Experiment = (&'static str, fn() -> Table);

const EXPERIMENTS: &[Experiment] = &[
    ("fig1", fig1_event_driven),
    ("fig2", fig2_event_density),
    ("fig3", fig3_compiled),
    ("fig4", fig4_async),
    ("fig5", fig5_comparison),
    ("uniproc", uniproc_ratio),
    ("stats", event_stats),
    ("queues", ablation_queues),
    ("stealing", ablation_stealing),
    ("os", ablation_os_interrupts),
    ("lookahead", ablation_lookahead),
    ("gc", gc_effectiveness),
    ("feedback", feedback_experiment),
    ("bus", bus_experiment),
    ("levels", levels_experiment),
    ("hypercube", hypercube_experiment),
    ("wallclock", wallclock_matrix),
    ("chandy-misra", chandy_misra_ablation),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for (name, _) in EXPERIMENTS {
            println!("{name}");
        }
        return;
    }
    let selected: Vec<&Experiment> = if args.is_empty() {
        EXPERIMENTS.iter().collect()
    } else {
        EXPERIMENTS
            .iter()
            .filter(|(name, _)| args.iter().any(|a| a == name))
            .collect()
    };
    if selected.is_empty() {
        eprintln!("no matching experiments; try --list");
        std::process::exit(1);
    }
    println!("# parsim — regenerated evaluation of Soule & Blank, DAC 1988\n");
    for (name, run) in selected {
        let started = std::time::Instant::now();
        let table = run();
        println!("{table}");
        println!("_({name} regenerated in {:.1?})_\n", started.elapsed());
    }
}
