//! `psim-server` — serve simulations over HTTP.
//!
//! ```text
//! psim-server --addr 127.0.0.1:9090 --threads 2 --max-lanes 64
//! ```
//!
//! Tenants POST netlist text to `/v1/jobs` and poll
//! `/v1/jobs/{id}/result`; jobs whose netlists share a structural digest
//! are packed into one word-parallel batch pass (see the `parsim-server`
//! crate docs and `DESIGN.md` §14). `GET /metrics` exposes the
//! `parsim_server_*` Prometheus families.

use std::process::ExitCode;
use std::sync::Arc;

use parsim_server::{HttpServer, InProcTransport, Server, ServerConfig, Transport};

const USAGE: &str = "usage: psim-server [--addr HOST:PORT] [--threads N] [--max-lanes N] \
[--segment-ticks N] [--cache-capacity N] [--quota N] [--force-lane-width 64|128|256|512]";

struct Options {
    addr: String,
    config: ServerConfig,
}

fn parse_args() -> Result<Option<Options>, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options { addr: "127.0.0.1:9090".to_string(), config: ServerConfig::default() };
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().ok_or_else(|| format!("{name} requires a value"))
        };
        let parse = |name: &str, v: String| -> Result<usize, String> {
            v.parse().map_err(|_| format!("{name} must be an integer, got `{v}`"))
        };
        match arg.as_str() {
            "--addr" => opts.addr = value("--addr")?,
            "--threads" => {
                opts.config.threads = parse("--threads", value("--threads")?)?;
                if opts.config.threads == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
            }
            "--max-lanes" => {
                opts.config.max_lanes_per_batch = parse("--max-lanes", value("--max-lanes")?)?;
                if opts.config.max_lanes_per_batch == 0 {
                    return Err("--max-lanes must be at least 1".to_string());
                }
            }
            "--segment-ticks" => {
                opts.config.segment_ticks =
                    parse("--segment-ticks", value("--segment-ticks")?)? as u64
            }
            "--cache-capacity" => {
                opts.config.cache_capacity = parse("--cache-capacity", value("--cache-capacity")?)?
            }
            "--quota" => {
                opts.config.tenant_quota = parse("--quota", value("--quota")?)?;
                if opts.config.tenant_quota == 0 {
                    return Err("--quota must be at least 1".to_string());
                }
            }
            "--force-lane-width" => {
                let w = parse("--force-lane-width", value("--force-lane-width")?)?;
                if ![64, 128, 256, 512].contains(&w) {
                    return Err(format!(
                        "--force-lane-width must be one of 64, 128, 256, 512 (got {w})"
                    ));
                }
                opts.config.lane_width = Some(w);
            }
            "--help" | "-h" => return Ok(None),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(None) => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Ok(Some(opts)) => opts,
        Err(msg) => {
            eprintln!("psim-server: {msg}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let server = Arc::new(Server::start(opts.config));
    let transport: Arc<dyn Transport> = Arc::new(InProcTransport::new(server));
    let listener = match HttpServer::bind(&opts.addr, transport) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("psim-server: cannot bind {}: {e}", opts.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("psim-server listening on http://{}", listener.addr());
    println!("  POST /v1/jobs?tenant=T&end=N&watch=a,b[&drive=node@t:v;t:v]  (body: netlist text)");
    println!("  GET  /v1/jobs/{{id}}/result?wait_ms=N   GET /metrics");
    // Serve until the process is killed; the accept loop owns the work.
    loop {
        std::thread::park();
    }
}
