//! `bench3` — thread-scaling of the locality-aware chaotic engine.
//!
//! Runs the asynchronous chaotic engine with locality-aware scheduling on
//! (cone partition + local deques + batched sends, the default) and off
//! (`without_local_queue`, the pure-grid ablation), plus the synchronous
//! event-driven engine for reference, at 1/2/4/8 worker threads on two
//! gate-level circuits: the paper's 32×16 inverter array and the 16-bit
//! gate-level multiplier. Writes the paper-style speedup table as JSON to
//! `BENCH_3.json` in the current directory (override with `--out PATH`).
//!
//! ```text
//! cargo run --release -p parsim-harness --bin bench3 [-- --quick] [--out BENCH_3.json] [--threads N,N,..]
//! ```
//!
//! `--quick` (or the `PARSIM_BENCH_QUICK` env var) shortens simulated
//! time so CI can smoke-test the harness; `--threads` overrides the
//! default 1,2,4,8 sweep.
//!
//! Speedups are wall-clock relative to the same engine at one thread, the
//! paper's Figure 1 convention (it reports 6–9× at 15 processors for the
//! gate-level multiplier). On machines with fewer hardware CPUs than
//! worker threads the speedup column measures oversubscription, not
//! scaling, so the acceptance block records `available_cpus` and gates
//! the wall-clock criterion on `thread_scaling_measurable`; the locality
//! criterion (local-deque hits vs grid sends) is scheduling-counter based
//! and holds at any CPU count.

use std::process::ExitCode;
use std::time::Instant;

use parsim_core::{ChaoticAsync, EventDriven, SimConfig, SimResult, SyncEventDriven};
use parsim_harness::{json, paper_gate_multiplier, paper_inverter_array};
use parsim_logic::Time;
use parsim_netlist::Netlist;

/// Default worker-thread sweep (paper Figure 1 plots 1–16 processors).
const DEFAULT_THREADS: &[usize] = &[1, 2, 4, 8];

/// One engine × thread-count measurement.
struct RunRow {
    threads: usize,
    wall_secs: f64,
    events: u64,
    evals: u64,
    activations: u64,
    local_hits: u64,
    grid_sends: u64,
    grid_batches: u64,
    steals: u64,
    backoff_parks: u64,
    /// Worker busy/idle nanoseconds from the run's telemetry registry
    /// (oracle-tested equal to the `Metrics` per-thread sums).
    busy_ns: u64,
    idle_ns: u64,
}

impl RunRow {
    fn from_result(threads: usize, wall_secs: f64, r: &SimResult) -> RunRow {
        let l = &r.metrics.locality;
        let finals = r.telemetry.as_ref().map(|t| &t.finals);
        let counter = |c| finals.map_or(0, |f| f.counter(c));
        RunRow {
            threads,
            wall_secs,
            events: r.metrics.events_processed,
            evals: r.metrics.evaluations,
            activations: r.metrics.activations,
            local_hits: l.local_hits,
            grid_sends: l.grid_sends,
            grid_batches: l.grid_batches,
            steals: l.steals,
            backoff_parks: l.backoff_parks,
            busy_ns: counter(parsim_telemetry::Counter::BusyNs),
            idle_ns: counter(parsim_telemetry::Counter::IdleNs),
        }
    }

    /// Worker-time utilization, `busy / (busy + idle)`. A run too short
    /// to accrue either (or a 1-thread sequential row) would make this
    /// NaN (0/0); it reports 0.0, which `json_f` keeps serializable.
    fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }

    fn locality_ratio(&self) -> f64 {
        let total = self.local_hits + self.grid_sends;
        if total == 0 {
            0.0
        } else {
            self.local_hits as f64 / total as f64
        }
    }

    fn batch_occupancy(&self) -> f64 {
        if self.grid_batches == 0 {
            0.0
        } else {
            self.grid_sends as f64 / self.grid_batches as f64
        }
    }
}

/// Wall-clock speedup of each row over the 1-thread row of the same mode.
///
/// A sub-timer-resolution wall time would make the ratio NaN (0/0) or
/// infinite; both are unserializable as JSON and meaningless as a scaling
/// claim, so they report 0.0 ("unmeasurable"), which conservatively fails
/// the acceptance criterion instead of poisoning the bench file.
fn speedup(rows: &[RunRow], i: usize) -> f64 {
    let s = rows[0].wall_secs / rows[i].wall_secs;
    if s.is_finite() {
        s
    } else {
        0.0
    }
}

/// Events-per-active-step distribution summary (bucket resolution), from
/// one sequential reference run — the paper's §4 event-density argument.
struct StepStats {
    p50: u64,
    p95: u64,
    p99: u64,
    mean: f64,
}

struct CircuitReport {
    name: &'static str,
    elements: usize,
    end_time: u64,
    /// Chaotic engine, locality-aware scheduling (the default).
    chaotic_local: Vec<RunRow>,
    /// Chaotic engine, `without_local_queue` pure-grid ablation.
    chaotic_grid: Vec<RunRow>,
    /// Synchronous event-driven reference.
    sync: Vec<RunRow>,
    /// Events-per-step percentiles from a sequential reference run.
    step_stats: StepStats,
}

/// Best-of-`reps` wall time per thread count; counters come from the
/// fastest repetition (scheduling counters vary run to run under true
/// concurrency, so they are a representative sample, not a constant).
fn sweep<F>(threads: &[usize], reps: usize, mut run: F) -> Vec<RunRow>
where
    F: FnMut(usize) -> SimResult,
{
    threads
        .iter()
        .map(|&t| {
            let mut best: Option<RunRow> = None;
            for _ in 0..reps {
                let t0 = Instant::now();
                let r = run(t);
                let wall = t0.elapsed().as_secs_f64();
                if best.as_ref().is_none_or(|b| wall < b.wall_secs) {
                    best = Some(RunRow::from_result(t, wall, &r));
                }
            }
            best.expect("reps >= 1")
        })
        .collect()
}

fn measure(
    netlist: &Netlist,
    name: &'static str,
    end: u64,
    threads: &[usize],
    reps: usize,
) -> CircuitReport {
    let cfg = SimConfig::new(Time(end));
    let chaotic_local = sweep(threads, reps, |t| {
        ChaoticAsync::run(netlist, &cfg.clone().threads(t)).expect("chaotic local run")
    });
    let chaotic_grid = sweep(threads, reps, |t| {
        ChaoticAsync::run(netlist, &cfg.clone().threads(t).without_local_queue())
            .expect("chaotic grid run")
    });
    let sync = sweep(threads, reps, |t| {
        SyncEventDriven::run(netlist, &cfg.clone().threads(t)).expect("sync run")
    });
    // One sequential run fills the events-per-step histogram. The sync
    // engine populates it too (leader-merged per step), but the sequential
    // run is the oracle and has no barrier skew in its step boundaries.
    let seq = EventDriven::run(netlist, &cfg).expect("seq reference run");
    let h = &seq.metrics.events_per_step;
    CircuitReport {
        name,
        elements: netlist.num_elements(),
        end_time: end,
        chaotic_local,
        chaotic_grid,
        sync,
        step_stats: StepStats {
            p50: h.p50(),
            p95: h.p95(),
            p99: h.p99(),
            mean: h.mean(),
        },
    }
}

/// NaN-safe number rendering (shared with the trace exporters): non-finite
/// values serialize as `0.000000`, never `NaN` or `null`.
fn json_f(v: f64) -> String {
    json::num(v)
}

fn rows_json(out: &mut String, indent: &str, rows: &[RunRow]) {
    for (i, r) in rows.iter().enumerate() {
        out.push_str(&format!("{indent}{{\n"));
        out.push_str(&format!("{indent}  \"threads\": {},\n", r.threads));
        out.push_str(&format!("{indent}  \"wall_secs\": {},\n", json_f(r.wall_secs)));
        out.push_str(&format!("{indent}  \"speedup_vs_1t\": {},\n", json_f(speedup(rows, i))));
        out.push_str(&format!("{indent}  \"events\": {},\n", r.events));
        out.push_str(&format!("{indent}  \"element_evals\": {},\n", r.evals));
        out.push_str(&format!("{indent}  \"activations\": {},\n", r.activations));
        out.push_str(&format!("{indent}  \"local_hits\": {},\n", r.local_hits));
        out.push_str(&format!("{indent}  \"grid_sends\": {},\n", r.grid_sends));
        out.push_str(&format!("{indent}  \"grid_batches\": {},\n", r.grid_batches));
        out.push_str(&format!("{indent}  \"steals\": {},\n", r.steals));
        out.push_str(&format!("{indent}  \"backoff_parks\": {},\n", r.backoff_parks));
        out.push_str(&format!("{indent}  \"busy_ns\": {},\n", r.busy_ns));
        out.push_str(&format!("{indent}  \"idle_ns\": {},\n", r.idle_ns));
        out.push_str(&format!(
            "{indent}  \"utilization\": {},\n",
            json_f(r.utilization())
        ));
        out.push_str(&format!(
            "{indent}  \"locality_ratio\": {},\n",
            json_f(r.locality_ratio())
        ));
        out.push_str(&format!(
            "{indent}  \"batch_occupancy\": {}\n",
            json_f(r.batch_occupancy())
        ));
        let sep = if i + 1 == rows.len() { "" } else { "," };
        out.push_str(&format!("{indent}}}{sep}\n"));
    }
}

fn render(
    reports: &[CircuitReport],
    threads: &[usize],
    quick: bool,
    available_cpus: usize,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"chaotic-locality-thread-scaling\",\n");
    out.push_str("  \"generated_by\": \"parsim-harness bench3\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"available_cpus\": {available_cpus},\n"));
    out.push_str(&format!(
        "  \"threads\": [{}],\n",
        threads
            .iter()
            .map(|t| t.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str("  \"paper_reference\": \"gate-level multiplier: 6-9x speedup at 15 CPUs (Fig. 1)\",\n");
    out.push_str("  \"circuits\": [\n");
    for (ci, rep) in reports.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", rep.name));
        out.push_str(&format!("      \"elements\": {},\n", rep.elements));
        out.push_str(&format!("      \"end_time\": {},\n", rep.end_time));
        out.push_str(&format!(
            "      \"events_per_step\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"mean\": {}}},\n",
            rep.step_stats.p50,
            rep.step_stats.p95,
            rep.step_stats.p99,
            json_f(rep.step_stats.mean)
        ));
        out.push_str("      \"chaotic_locality\": [\n");
        rows_json(&mut out, "        ", &rep.chaotic_local);
        out.push_str("      ],\n");
        out.push_str("      \"chaotic_pure_grid\": [\n");
        rows_json(&mut out, "        ", &rep.chaotic_grid);
        out.push_str("      ],\n");
        out.push_str("      \"sync_event_driven\": [\n");
        rows_json(&mut out, "        ", &rep.sync);
        out.push_str("      ]\n");
        out.push_str(if ci + 1 == reports.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n");

    // Acceptance: the wall-clock criterion only means "thread scaling"
    // when the hardware can actually run the workers in parallel; the
    // locality criterion is counter-based and CPU-independent.
    let gate = reports
        .iter()
        .find(|r| r.name == "gate_multiplier")
        .expect("gate_multiplier report present");
    let four = threads.iter().position(|&t| t == 4);
    let speedup_4t = four.map(|i| speedup(&gate.chaotic_local, i));
    // Locality is judged at 4 threads, falling back to the widest sweep
    // point when a custom --threads list omits 4 (e.g. the CI smoke run).
    let locality_at = four.unwrap_or(gate.chaotic_local.len() - 1);
    let locality_judged = gate.chaotic_local[locality_at].locality_ratio();
    let min_locality = reports
        .iter()
        .flat_map(|r| r.chaotic_local.iter())
        .map(RunRow::locality_ratio)
        .fold(f64::INFINITY, f64::min);
    let measurable = available_cpus >= 4;
    // The wall-clock criterion only applies when the 4-thread row exists
    // and the hardware can actually run 4 workers in parallel.
    let speedup_required = measurable && four.is_some();
    let speedup_ok = speedup_4t.is_some_and(|s| s >= 2.0);
    let locality_ok = locality_judged >= 0.5;
    out.push_str("  \"acceptance\": {\n");
    out.push_str(
        "    \"criterion\": \"gate_multiplier chaotic @4 threads >= 2x over 1 thread and local-queue hits >= 50% of scheduled activations\",\n",
    );
    // A missing 4-thread row reports 0.0 (conservative fail), never
    // `null`: every numeric field in the bench file stays a number.
    out.push_str(&format!(
        "    \"chaotic_speedup_at_4_threads\": {},\n",
        json_f(speedup_4t.unwrap_or(0.0))
    ));
    out.push_str(&format!(
        "    \"locality_ratio_judged\": {},\n",
        json_f(locality_judged)
    ));
    out.push_str(&format!(
        "    \"locality_judged_at_threads\": {},\n",
        gate.chaotic_local[locality_at].threads
    ));
    out.push_str(&format!(
        "    \"min_locality_ratio_all_runs\": {},\n",
        json_f(min_locality)
    ));
    out.push_str(&format!("    \"available_cpus\": {available_cpus},\n"));
    out.push_str(&format!(
        "    \"thread_scaling_measurable\": {measurable},\n"
    ));
    out.push_str(&format!("    \"speedup_pass\": {speedup_ok},\n"));
    out.push_str(&format!("    \"locality_pass\": {locality_ok},\n"));
    out.push_str(&format!(
        "    \"pass\": {}\n",
        locality_ok && (speedup_ok || !speedup_required)
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

fn print_table(rep: &CircuitReport) {
    println!(
        "{} ({} elements, end {}):",
        rep.name, rep.elements, rep.end_time
    );
    println!(
        "  {:>7}  {:>18}  {:>18}  {:>18}  {:>8}  {:>6}",
        "threads", "chaotic-local", "chaotic-grid", "sync", "locality", "occ"
    );
    for i in 0..rep.chaotic_local.len() {
        println!(
            "  {:>7}  {:>10.4}s {:>5.2}x  {:>10.4}s {:>5.2}x  {:>10.4}s {:>5.2}x  {:>7.1}%  {:>6.2}",
            rep.chaotic_local[i].threads,
            rep.chaotic_local[i].wall_secs,
            speedup(&rep.chaotic_local, i),
            rep.chaotic_grid[i].wall_secs,
            speedup(&rep.chaotic_grid, i),
            rep.sync[i].wall_secs,
            speedup(&rep.sync, i),
            100.0 * rep.chaotic_local[i].locality_ratio(),
            rep.chaotic_local[i].batch_occupancy(),
        );
    }
    println!(
        "  events/step: p50 {}, p95 {}, p99 {}, mean {:.1}",
        rep.step_stats.p50, rep.step_stats.p95, rep.step_stats.p99, rep.step_stats.mean
    );
}

fn main() -> ExitCode {
    let mut quick = std::env::var_os("PARSIM_BENCH_QUICK").is_some();
    let mut out_path = "BENCH_3.json".to_string();
    let mut threads: Vec<usize> = DEFAULT_THREADS.to_vec();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a value");
                    return ExitCode::FAILURE;
                }
            },
            "--threads" => {
                let Some(list) = args.next() else {
                    eprintln!("--threads requires a comma list starting with 1 (e.g. 1,2,4)");
                    return ExitCode::FAILURE;
                };
                match parsim_harness::parse_threads_list(&list, true) {
                    Ok(list) => threads = list,
                    Err(e) => {
                        eprintln!("--threads: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench3 [--quick] [--out PATH] [--threads 1,2,4,8]");
                return ExitCode::FAILURE;
            }
        }
    }

    let available_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (vectors, arr_end, reps) = if quick { (1, 60, 1) } else { (4, 200, 3) };

    let arr = paper_inverter_array(2);
    let gate = paper_gate_multiplier(vectors);
    let reports = vec![
        measure(&arr.netlist, "inverter_array", arr_end, &threads, reps),
        measure(
            &gate.netlist,
            "gate_multiplier",
            gate.schedule_end().ticks(),
            &threads,
            reps,
        ),
    ];

    for rep in &reports {
        print_table(rep);
    }
    println!("available CPUs: {available_cpus}");

    let json = render(&reports, &threads, quick, available_cpus);
    if let Err(e) = json::lint(&json) {
        eprintln!("internal error: rendered bench JSON does not parse: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(threads: usize, wall_secs: f64) -> RunRow {
        RunRow {
            threads,
            wall_secs,
            events: 10,
            evals: 10,
            activations: 5,
            local_hits: 8,
            grid_sends: 2,
            grid_batches: 1,
            steals: 0,
            backoff_parks: 0,
            busy_ns: 0,
            idle_ns: 0,
        }
    }

    /// Regression: the telemetry-derived `utilization` field divides two
    /// counters that are both legitimately zero (sequential rows, runs
    /// shorter than a publish flush); the 0/0 must surface as `0.000000`
    /// through the NaN-safe `json` layer, never as `NaN`/`null`.
    #[test]
    fn zero_worker_time_utilization_stays_serializable() {
        let r = row(1, 0.5);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(json_f(r.utilization()), "0.000000");
        let busy = RunRow {
            busy_ns: 750,
            idle_ns: 250,
            ..row(2, 0.5)
        };
        assert_eq!(json_f(busy.utilization()), "0.750000");
    }

    /// Regression: zero wall times used to turn `speedup` into NaN/Inf,
    /// which `json_f` then serialized as `null` — poisoning every numeric
    /// consumer of BENCH_3.json. The rendered document must parse as JSON
    /// and contain no NaN and no null, even in this worst case.
    #[test]
    fn zero_wall_times_never_leak_nan_or_null() {
        let rows = |walls: &[f64]| -> Vec<RunRow> {
            walls
                .iter()
                .enumerate()
                .map(|(i, &w)| row(1 << i, w))
                .collect()
        };
        let rep = CircuitReport {
            name: "gate_multiplier",
            elements: 100,
            end_time: 50,
            chaotic_local: rows(&[0.0, 0.0, 0.5]),
            chaotic_grid: rows(&[0.0, 1.0]),
            sync: rows(&[1.0, 0.0]),
            step_stats: StepStats {
                p50: 1,
                p95: 10,
                p99: 20,
                mean: f64::NAN,
            },
        };
        let json = render(&[rep], &[1, 2, 4], true, 1);
        parsim_harness::json::lint(&json).expect("bench JSON must parse");
        assert!(!json.contains("NaN"), "NaN leaked:\n{json}");
        assert!(!json.contains("null"), "null leaked:\n{json}");
    }

    #[test]
    fn speedup_guards_division() {
        let rows = vec![row(1, 0.0), row(2, 0.0), row(4, 2.0)];
        assert_eq!(speedup(&rows, 0), 0.0, "0/0 reports unmeasurable");
        assert_eq!(speedup(&rows, 1), 0.0);
        assert_eq!(speedup(&rows, 2), 0.0, "0/2 is a real (zero) ratio");
        let rows = vec![row(1, 2.0), row(2, 0.0)];
        assert_eq!(speedup(&rows, 1), 0.0, "x/0 reports unmeasurable, not inf");
        let rows = vec![row(1, 2.0), row(2, 1.0)];
        assert_eq!(speedup(&rows, 1), 2.0);
    }
}
