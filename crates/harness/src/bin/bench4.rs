//! `bench4` — record the SIMD-wide lane kernel numbers (BENCH_4).
//!
//! Sweeps the batch kernel's word-group width (64/128/256/512 bits, i.e.
//! the portable scalar path up through the CPU's widest SIMD tier) over a
//! fixed 512-lane batch, and the step-synchronization mode (global
//! barrier vs per-edge neighbor handoff) at the native width, on the
//! BENCH_2 circuits. Lane-throughput is `events_per_sec`: per-lane value
//! changes per wall second. Writes `BENCH_4.json` in the current
//! directory (override with `--out PATH`).
//!
//! ```text
//! cargo run --release -p parsim-harness --bin bench4 [-- --quick] [--out BENCH_4.json]
//! ```
//!
//! `--quick` (or the `PARSIM_BENCH_QUICK` env var) shortens simulated
//! time and the lane count so CI can smoke-test the harness.
//!
//! The acceptance criterion (256-bit groups ≥ 2x the 64-bit scalar leg
//! on `random_gates`) is CPU-aware: it is only *required* on hosts whose
//! detected SIMD tier reaches 256 bits — the 256-bit leg otherwise runs
//! the portable word-group code, which does the same scalar work in a
//! different loop shape.

use std::process::ExitCode;
use std::time::Instant;

use parsim_circuits::{inverter_array, random_circuit, RandomCircuitParams};
use parsim_core::{BatchSync, CompiledMode, LaneStimulus, SimConfig};
use parsim_logic::wide;
use parsim_logic::Time;
use parsim_netlist::bench_fmt::{from_bench, BenchOptions, C17};
use parsim_netlist::Netlist;

const WIDTHS: [usize; 4] = [64, 128, 256, 512];

struct Leg {
    wall_secs: f64,
    events: u64,
    evals: u64,
    lane_width: u64,
}

impl Leg {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }
}

/// Best-of-`reps` wall time for one batch configuration.
fn measure(netlist: &Netlist, cfg: &SimConfig, lanes: usize, reps: usize) -> Leg {
    let stimuli: Vec<LaneStimulus> = (0..lanes).map(|_| LaneStimulus::base()).collect();
    let mut best = Leg {
        wall_secs: f64::INFINITY,
        events: 0,
        evals: 0,
        lane_width: 0,
    };
    for _ in 0..reps {
        let t0 = Instant::now();
        let r = CompiledMode::run_batch(netlist, cfg, &stimuli).expect("batch run");
        let wall = t0.elapsed().as_secs_f64();
        if wall < best.wall_secs {
            best = Leg {
                wall_secs: wall,
                events: r.metrics.events_processed,
                evals: r.metrics.evaluations,
                lane_width: r.metrics.lane_width,
            };
        }
    }
    best
}

struct CircuitSweep {
    name: &'static str,
    elements: usize,
    end_time: u64,
    /// One leg per entry of [`WIDTHS`], forced width, neighbor sync.
    widths: Vec<Leg>,
    /// (sync name, leg) at native width.
    syncs: Vec<(&'static str, Leg)>,
}

impl CircuitSweep {
    fn width_leg(&self, width: usize) -> &Leg {
        &self.widths[WIDTHS.iter().position(|&w| w == width).unwrap()]
    }

    /// Lane-throughput of `width`-bit groups over the 64-bit scalar leg.
    fn speedup_over_scalar(&self, width: usize) -> f64 {
        self.width_leg(width).events_per_sec() / self.width_leg(64).events_per_sec()
    }
}

fn sweep(
    netlist: &Netlist,
    name: &'static str,
    end: u64,
    lanes: usize,
    threads: usize,
    reps: usize,
) -> CircuitSweep {
    let widths = WIDTHS
        .iter()
        .map(|&w| {
            let cfg = SimConfig::new(Time(end)).with_lane_width(w);
            measure(netlist, &cfg, lanes, reps)
        })
        .collect();
    let syncs = [BatchSync::Barrier, BatchSync::Neighbor]
        .into_iter()
        .map(|sync| {
            let cfg = SimConfig::new(Time(end))
                .threads(threads)
                .with_batch_sync(sync);
            (sync.name(), measure(netlist, &cfg, lanes, reps))
        })
        .collect();
    CircuitSweep {
        name,
        elements: netlist.num_elements(),
        end_time: end,
        widths,
        syncs,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn leg_json(out: &mut String, indent: &str, leg: &Leg) {
    out.push_str(&format!("{indent}\"lane_width\": {},\n", leg.lane_width));
    out.push_str(&format!("{indent}\"wall_secs\": {},\n", json_f(leg.wall_secs)));
    out.push_str(&format!("{indent}\"events\": {},\n", leg.events));
    out.push_str(&format!("{indent}\"word_group_evals\": {},\n", leg.evals));
    out.push_str(&format!(
        "{indent}\"events_per_sec\": {}\n",
        json_f(leg.events_per_sec())
    ));
}

fn render(rows: &[CircuitSweep], quick: bool, lanes: usize, threads: usize) -> String {
    let native = wide::native_lane_width();
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"simd-wide-lane-kernels\",\n");
    out.push_str("  \"generated_by\": \"parsim-harness bench4\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"lanes\": {lanes},\n"));
    out.push_str(&format!("  \"sync_threads\": {threads},\n"));
    out.push_str(&format!(
        "  \"cpu\": {{\"simd_tier\": \"{}\", \"native_lane_width\": {native}, \"cores\": {}}},\n",
        wide::simd_level().name(),
        std::thread::available_parallelism().map_or(1, |n| n.get())
    ));
    out.push_str("  \"circuits\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", row.name));
        out.push_str(&format!("      \"elements\": {},\n", row.elements));
        out.push_str(&format!("      \"end_time\": {},\n", row.end_time));
        out.push_str("      \"width_ablation\": [\n");
        for (j, leg) in row.widths.iter().enumerate() {
            out.push_str("        {\n");
            leg_json(&mut out, "          ", leg);
            out.push_str(if j + 1 == row.widths.len() {
                "        }\n"
            } else {
                "        },\n"
            });
        }
        out.push_str("      ],\n");
        out.push_str("      \"sync_ablation\": [\n");
        for (j, (sync, leg)) in row.syncs.iter().enumerate() {
            out.push_str("        {\n");
            out.push_str(&format!("          \"sync\": \"{sync}\",\n"));
            leg_json(&mut out, "          ", leg);
            out.push_str(if j + 1 == row.syncs.len() {
                "        }\n"
            } else {
                "        },\n"
            });
        }
        out.push_str("      ],\n");
        out.push_str(&format!(
            "      \"speedup_256_vs_64\": {},\n",
            json_f(row.speedup_over_scalar(256))
        ));
        out.push_str(&format!(
            "      \"speedup_512_vs_64\": {}\n",
            json_f(row.speedup_over_scalar(512))
        ));
        out.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n");
    let rand = rows
        .iter()
        .find(|r| r.name == "random_gates")
        .expect("random_gates row present");
    let speedup = rand.speedup_over_scalar(256);
    let required = native >= 256;
    out.push_str("  \"acceptance\": {\n");
    out.push_str(
        "    \"criterion\": \"random_gates lane-throughput at 256-bit groups >= 2x the \
         64-bit scalar leg (required only when the CPU's SIMD tier reaches 256 bits)\",\n",
    );
    out.push_str(&format!(
        "    \"random_gates_speedup_256_vs_64\": {},\n",
        json_f(speedup)
    ));
    out.push_str("    \"required_speedup\": 2.0,\n");
    out.push_str(&format!("    \"required_on_this_cpu\": {required},\n"));
    out.push_str(&format!(
        "    \"pass\": {}\n",
        !required || speedup >= 2.0
    ));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

fn main() -> ExitCode {
    let mut quick = std::env::var_os("PARSIM_BENCH_QUICK").is_some();
    let mut out_path = "BENCH_4.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench4 [--quick] [--out PATH]");
                return ExitCode::FAILURE;
            }
        }
    }

    // The lane count stays at 512 even in quick mode: fewer lanes would
    // let the kernel narrow the forced word group (a 96-lane batch runs
    // 128-wide no matter what), voiding the width ablation.
    let (scale, lanes, reps) = if quick { (1u64, 512usize, 1usize) } else { (10, 512, 3) };
    // The sync ablation wants real cross-thread edges when the host has
    // them; a single-core host still runs it (threads=2 would only
    // measure scheduler thrash on 1 cpu, so stay at the core count).
    let threads = std::thread::available_parallelism().map_or(1, |n| n.get().min(4));

    let c17 = from_bench(C17, &BenchOptions::default()).expect("c17 parses");
    let arr = inverter_array(16, 8, 2).expect("generator is self-consistent");
    let rand = random_circuit(&RandomCircuitParams {
        elements: 300,
        inputs: 12,
        seq_fraction: 0.1,
        max_delay: 3,
        seed: 42,
    })
    .expect("generator is self-consistent");

    let rows = vec![
        sweep(&c17.netlist, "iscas_c17", 200 * scale, lanes, threads, reps),
        sweep(&arr.netlist, "inverter_array", 40 * scale, lanes, threads, reps),
        sweep(&rand.netlist, "random_gates", 50 * scale, lanes, threads, reps),
    ];

    for row in &rows {
        print!("{:<16} {:>7} elems ", row.name, row.elements);
        for (w, leg) in WIDTHS.iter().zip(&row.widths) {
            print!(" {w}b {:>9.3e}/s", leg.events_per_sec());
        }
        println!("  256b/64b {:>5.2}x", row.speedup_over_scalar(256));
    }

    let json = render(&rows, quick, lanes, threads);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
