//! `bench2` — record the PR 2 word-parallel kernel numbers.
//!
//! Times 64 sequential scalar `CompiledMode::run` passes against one
//! 64-lane `CompiledMode::run_batch` pass (both at one worker thread, so
//! the comparison isolates word-level parallelism from thread-level) on
//! three circuits: ISCAS c17, the inverter array, and a random gate
//! netlist. Writes the throughput table as JSON to `BENCH_2.json` in the
//! current directory (override with `--out PATH`).
//!
//! ```text
//! cargo run --release -p parsim-harness --bin bench2 [-- --quick] [--out BENCH_2.json]
//! ```
//!
//! `--quick` (or the `PARSIM_BENCH_QUICK` env var) shortens simulated
//! time so CI can smoke-test the harness.

use std::process::ExitCode;
use std::time::Instant;

use parsim_circuits::{inverter_array, random_circuit, RandomCircuitParams};
use parsim_core::{CompiledMode, LaneStimulus, Metrics, SimConfig};
use parsim_logic::Time;
use parsim_netlist::bench_fmt::{from_bench, BenchOptions, C17};
use parsim_netlist::Netlist;

const LANES: usize = 64;

struct ModeRow {
    wall_secs: f64,
    events: u64,
    evals: u64,
    evals_skipped: u64,
}

impl ModeRow {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.wall_secs
    }

    fn evals_per_sec(&self) -> f64 {
        self.evals as f64 / self.wall_secs
    }
}

struct CircuitRow {
    name: &'static str,
    elements: usize,
    end_time: u64,
    scalar: ModeRow,
    packed: ModeRow,
}

impl CircuitRow {
    /// Wall-clock speedup of one 64-lane batch pass over 64 scalar passes.
    fn speedup(&self) -> f64 {
        self.scalar.wall_secs / self.packed.wall_secs
    }
}

fn accumulate(row: &mut ModeRow, m: &Metrics) {
    row.events += m.events_processed;
    row.evals += m.evaluations;
    row.evals_skipped += m.evals_skipped;
}

/// Best-of-`reps` wall time; metrics come from the timed runs of the
/// fastest repetition (all repetitions are deterministic, so any one is
/// representative).
fn measure(netlist: &Netlist, name: &'static str, end: u64, reps: usize) -> CircuitRow {
    let cfg = SimConfig::new(Time(end));
    let lanes: Vec<LaneStimulus> = (0..LANES).map(|_| LaneStimulus::base()).collect();

    let mut scalar = ModeRow {
        wall_secs: f64::INFINITY,
        events: 0,
        evals: 0,
        evals_skipped: 0,
    };
    for _ in 0..reps {
        let mut trial = ModeRow {
            wall_secs: 0.0,
            events: 0,
            evals: 0,
            evals_skipped: 0,
        };
        let t0 = Instant::now();
        for _ in 0..LANES {
            let r = CompiledMode::run(netlist, &cfg).expect("scalar run");
            accumulate(&mut trial, &r.metrics);
        }
        trial.wall_secs = t0.elapsed().as_secs_f64();
        if trial.wall_secs < scalar.wall_secs {
            scalar = trial;
        }
    }

    let mut packed = ModeRow {
        wall_secs: f64::INFINITY,
        events: 0,
        evals: 0,
        evals_skipped: 0,
    };
    for _ in 0..reps {
        let mut trial = ModeRow {
            wall_secs: 0.0,
            events: 0,
            evals: 0,
            evals_skipped: 0,
        };
        let t0 = Instant::now();
        let r = CompiledMode::run_batch(netlist, &cfg, &lanes).expect("batch run");
        trial.wall_secs = t0.elapsed().as_secs_f64();
        accumulate(&mut trial, &r.metrics);
        if trial.wall_secs < packed.wall_secs {
            packed = trial;
        }
    }

    CircuitRow {
        name,
        elements: netlist.num_elements(),
        end_time: end,
        scalar,
        packed,
    }
}

fn json_f(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.6}")
    } else {
        "null".to_string()
    }
}

fn mode_json(out: &mut String, indent: &str, row: &ModeRow, runs: usize) {
    out.push_str(&format!("{indent}\"runs\": {runs},\n"));
    out.push_str(&format!("{indent}\"wall_secs\": {},\n", json_f(row.wall_secs)));
    out.push_str(&format!("{indent}\"events\": {},\n", row.events));
    out.push_str(&format!("{indent}\"element_evals\": {},\n", row.evals));
    out.push_str(&format!("{indent}\"evals_skipped\": {},\n", row.evals_skipped));
    out.push_str(&format!(
        "{indent}\"events_per_sec\": {},\n",
        json_f(row.events_per_sec())
    ));
    out.push_str(&format!(
        "{indent}\"element_evals_per_sec\": {}\n",
        json_f(row.evals_per_sec())
    ));
}

fn render(rows: &[CircuitRow], quick: bool) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"compiled-kernel-word-parallel\",\n");
    out.push_str("  \"generated_by\": \"parsim-harness bench2\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str("  \"threads\": 1,\n");
    out.push_str(&format!("  \"lanes\": {LANES},\n"));
    out.push_str("  \"circuits\": [\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", row.name));
        out.push_str(&format!("      \"elements\": {},\n", row.elements));
        out.push_str(&format!("      \"end_time\": {},\n", row.end_time));
        out.push_str("      \"scalar_sequential\": {\n");
        mode_json(&mut out, "        ", &row.scalar, LANES);
        out.push_str("      },\n");
        out.push_str("      \"packed_batch\": {\n");
        mode_json(&mut out, "        ", &row.packed, 1);
        out.push_str("      },\n");
        out.push_str(&format!(
            "      \"speedup_vs_64_scalar\": {}\n",
            json_f(row.speedup())
        ));
        out.push_str(if i + 1 == rows.len() { "    }\n" } else { "    },\n" });
    }
    out.push_str("  ],\n");
    let rand = rows
        .iter()
        .find(|r| r.name == "random_gates")
        .expect("random_gates row present");
    out.push_str("  \"acceptance\": {\n");
    out.push_str("    \"criterion\": \"random_gates 64-lane batch >= 8x of 64 scalar runs\",\n");
    out.push_str(&format!(
        "    \"random_gates_speedup\": {},\n",
        json_f(rand.speedup())
    ));
    out.push_str("    \"required_speedup\": 8.0,\n");
    out.push_str(&format!("    \"pass\": {}\n", rand.speedup() >= 8.0));
    out.push_str("  }\n");
    out.push_str("}\n");
    out
}

fn main() -> ExitCode {
    let mut quick = std::env::var_os("PARSIM_BENCH_QUICK").is_some();
    let mut out_path = "BENCH_2.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a value");
                    return ExitCode::FAILURE;
                }
            },
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: bench2 [--quick] [--out PATH]");
                return ExitCode::FAILURE;
            }
        }
    }

    let (scale, reps) = if quick { (1u64, 1usize) } else { (10, 3) };

    let c17 = from_bench(C17, &BenchOptions::default()).expect("c17 parses");
    let arr = inverter_array(16, 8, 2).expect("generator is self-consistent");
    let rand = random_circuit(&RandomCircuitParams {
        elements: 300,
        inputs: 12,
        seq_fraction: 0.1,
        max_delay: 3,
        seed: 42,
    })
    .expect("generator is self-consistent");

    let rows = vec![
        measure(&c17.netlist, "iscas_c17", 200 * scale, reps),
        measure(&arr.netlist, "inverter_array", 40 * scale, reps),
        measure(&rand.netlist, "random_gates", 50 * scale, reps),
    ];

    for row in &rows {
        println!(
            "{:<16} {:>7} elems  scalar x64 {:>9.4}s  packed x1 {:>9.4}s  speedup {:>6.2}x",
            row.name,
            row.elements,
            row.scalar.wall_secs,
            row.packed.wall_secs,
            row.speedup()
        );
    }

    let json = render(&rows, quick);
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("failed to write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("wrote {out_path}");
    ExitCode::SUCCESS
}
