//! Canonical experiment circuits at the paper's scales.

use parsim_circuits::{
    functional_multiplier, gate_multiplier, inverter_array, pipelined_cpu, FunctionalMultiplier,
    GateMultiplier, InverterArray, PipelinedCpu,
};

/// The processor counts the figures sweep (the paper plots 1–16).
pub const PROC_SWEEP: &[usize] = &[1, 2, 4, 6, 8, 9, 10, 12, 14, 15, 16];

/// The paper's 32×16 inverter array with inputs toggling every
/// `toggle_period` ticks (Fig. 2's event-density knob: toggle 1 ⇒ 512
/// events/tick down to toggle 8 ⇒ 64 events/tick).
///
/// # Panics
///
/// Panics only on internal generator inconsistency.
pub fn paper_inverter_array(toggle_period: u64) -> InverterArray {
    inverter_array(32, 16, toggle_period).expect("generator is self-consistent")
}

/// A deterministic pseudo-random operand schedule.
fn operand_schedule(n: usize, bits: u32) -> Vec<(u64, u64)> {
    let mask = (1u64 << bits) - 1;
    let mut x = 0x243f_6a88_85a3_08d3u64;
    let mut next = || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n).map(|_| (next() & mask, next() & mask)).collect()
}

/// The paper's 16-bit gate-level multiplier (thousands of primitive
/// gates) exercised by `vectors` pseudo-random operand pairs.
///
/// # Panics
///
/// Panics only on internal generator inconsistency.
pub fn paper_gate_multiplier(vectors: usize) -> GateMultiplier {
    gate_multiplier(16, &operand_schedule(vectors, 16), 256)
        .expect("generator is self-consistent")
}

/// The paper's ~100-element functional-level 16-bit multiplier exercised
/// by `vectors` pseudo-random operand pairs.
///
/// # Panics
///
/// Panics only on internal generator inconsistency.
pub fn paper_functional_multiplier(vectors: usize) -> FunctionalMultiplier {
    functional_multiplier(&operand_schedule(vectors, 16), 64)
        .expect("generator is self-consistent")
}

/// The paper's pipelined microprocessor (~3000 non-memory gates;
/// 16-bit datapath, clock half-period 128 ticks).
///
/// # Panics
///
/// Panics only on internal generator inconsistency.
pub fn paper_cpu() -> PipelinedCpu {
    pipelined_cpu(16, 128).expect("generator is self-consistent")
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_netlist::NetlistStats;

    #[test]
    fn circuit_scales_match_paper() {
        let arr = paper_inverter_array(1);
        assert_eq!(
            NetlistStats::compute(&arr.netlist).kind_counts["not"],
            512,
            "32x16 array"
        );
        let gm = paper_gate_multiplier(2);
        assert!(gm.netlist.num_elements() > 2000, "thousands of gates");
        let fm = paper_functional_multiplier(2);
        assert!(fm.netlist.num_elements() < 200, "~100 functional elements");
        let cpu = paper_cpu();
        assert!(cpu.netlist.num_elements() > 2000, "~3000 gates");
    }

    #[test]
    fn operand_schedules_are_deterministic() {
        assert_eq!(operand_schedule(5, 16), operand_schedule(5, 16));
        assert!(operand_schedule(50, 16).iter().all(|&(a, b)| a <= 0xffff && b <= 0xffff));
    }
}
