//! Shared command-line parsing helpers for the harness binaries.

/// Parses a `--threads` comma list (`"1,2,4"`) into worker counts.
///
/// Every token must be a positive integer — zero workers cannot run a
/// sweep leg and would otherwise surface as an engine panic deep in the
/// run. With `require_one_first`, the list must start with `1` (speedup
/// sweeps normalize against the single-worker leg). Errors name the
/// offending token so a typo in a long list is findable.
pub fn parse_threads_list(s: &str, require_one_first: bool) -> Result<Vec<usize>, String> {
    let mut threads = Vec::new();
    for token in s.split(',') {
        let token = token.trim();
        if token.is_empty() {
            return Err(format!("empty entry in threads list `{s}`"));
        }
        let n: usize = token
            .parse()
            .map_err(|_| format!("`{token}` is not a thread count (in `{s}`)"))?;
        if n == 0 {
            return Err(format!("thread count must be at least 1, got `{token}` (in `{s}`)"));
        }
        threads.push(n);
    }
    if require_one_first && threads.first() != Some(&1) {
        return Err(format!(
            "threads list must start with 1 (the speedup baseline), got `{s}`"
        ));
    }
    Ok(threads)
}

#[cfg(test)]
mod tests {
    use super::parse_threads_list;

    #[test]
    fn well_formed_lists_parse() {
        assert_eq!(parse_threads_list("1,2,4,8", true), Ok(vec![1, 2, 4, 8]));
        assert_eq!(parse_threads_list(" 1 , 2 ", true), Ok(vec![1, 2]));
        assert_eq!(parse_threads_list("4,2", false), Ok(vec![4, 2]));
        assert_eq!(parse_threads_list("1", true), Ok(vec![1]));
    }

    #[test]
    fn malformed_lists_name_the_offender() {
        let err = parse_threads_list("1,two,4", false).unwrap_err();
        assert!(err.contains("`two`"), "{err}");
        let err = parse_threads_list("1,,4", false).unwrap_err();
        assert!(err.contains("empty entry"), "{err}");
        let err = parse_threads_list("", false).unwrap_err();
        assert!(err.contains("empty entry"), "{err}");
    }

    #[test]
    fn zero_workers_are_rejected() {
        let err = parse_threads_list("1,0,4", false).unwrap_err();
        assert!(err.contains("at least 1"), "{err}");
        assert!(err.contains("`0`"), "{err}");
    }

    #[test]
    fn baseline_requirement_is_optional() {
        assert!(parse_threads_list("2,4", true).unwrap_err().contains("start with 1"));
        assert_eq!(parse_threads_list("2,4", false), Ok(vec![2, 4]));
    }
}
