//! Markdown result tables.

use std::fmt;

/// A result table with a title, a note block (paper-reported values), and
/// markdown rendering.
///
/// # Examples
///
/// ```
/// use parsim_harness::Table;
///
/// let mut t = Table::new("Demo", &["procs", "speedup"]);
/// t.row(vec!["4".into(), "3.2".into()]);
/// t.note("paper reports ~3");
/// let md = t.to_string();
/// assert!(md.contains("| procs | speedup |"));
/// assert!(md.contains("paper reports"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Table {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line (rendered beneath the table).
    pub fn note(&mut self, text: &str) {
        self.notes.push(text.to_string());
    }

    /// The table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Looks up a cell by row index and column header.
    pub fn cell(&self, row: usize, header: &str) -> Option<&str> {
        let col = self.headers.iter().position(|h| h == header)?;
        self.rows.get(row).map(|r| r[col].as_str())
    }

    /// Parses a cell as `f64`.
    pub fn cell_f64(&self, row: usize, header: &str) -> Option<f64> {
        self.cell(row, header)?.parse().ok()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "### {}\n", self.title)?;
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                self.rows
                    .iter()
                    .map(|r| r[i].len())
                    .chain([h.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let render = |cells: &[String], f: &mut fmt::Formatter<'_>| -> fmt::Result {
            write!(f, "|")?;
            for (c, w) in cells.iter().zip(&widths) {
                write!(f, " {c:>w$} |")?;
            }
            writeln!(f)
        };
        render(&self.headers, f)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for r in &self.rows {
            render(r, f)?;
        }
        for n in &self.notes {
            writeln!(f, "\n> {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown() {
        let mut t = Table::new("T", &["a", "bb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["10".into(), "20".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.starts_with("### T"));
        assert!(s.contains("|  a | bb |"));
        assert!(s.contains("| 10 | 20 |"));
        assert!(s.contains("> hello"));
    }

    #[test]
    fn cell_lookup() {
        let mut t = Table::new("T", &["p", "s"]);
        t.row(vec!["8".into(), "5.50".into()]);
        assert_eq!(t.cell(0, "p"), Some("8"));
        assert_eq!(t.cell_f64(0, "s"), Some(5.5));
        assert_eq!(t.cell(0, "zz"), None);
        assert_eq!(t.cell(5, "p"), None);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("T", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }
}
