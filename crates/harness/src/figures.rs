//! The experiments: one function per figure/claim of the paper.

use parsim_core::{ChaoticAsync, EventDriven, SimConfig};
use parsim_logic::Time;
use parsim_machine::{
    model_async, model_compiled, model_seq, model_sync, MachineConfig, OsInterrupts,
    PartitionStrategy,
};
use parsim_netlist::Netlist;

use crate::bench_circuits::{
    paper_cpu, paper_functional_multiplier, paper_gate_multiplier, paper_inverter_array,
    PROC_SWEEP,
};
use crate::table::Table;

fn fmt2(x: f64) -> String {
    format!("{x:.2}")
}

fn pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

/// Speed-up sweep of one modeled algorithm over the processor list,
/// normalized to its own one-processor run (the paper's normalization).
fn sync_speedups(netlist: &Netlist, end: Time) -> Vec<(usize, f64, f64)> {
    let uni = model_seq(netlist, end, &MachineConfig::multimax(1).cost);
    PROC_SWEEP
        .iter()
        .map(|&p| {
            let r = model_sync(netlist, end, &MachineConfig::multimax(p));
            (p, r.speedup(&uni), r.utilization())
        })
        .collect()
}

/// Figure 1: speed-up of the synchronous event-driven algorithm on the
/// paper's four circuits.
pub fn fig1_event_driven() -> Table {
    let gate = paper_gate_multiplier(4);
    let func = paper_functional_multiplier(8);
    let cpu = paper_cpu();
    let arr = paper_inverter_array(2);
    let runs = [
        ("gate-mult", sync_speedups(&gate.netlist, gate.schedule_end())),
        ("func-mult", sync_speedups(&func.netlist, func.schedule_end())),
        ("cpu", sync_speedups(&cpu.netlist, Time(2048))),
        ("inv-array", sync_speedups(&arr.netlist, Time(200))),
    ];
    let mut t = Table::new(
        "Figure 1 — synchronous event-driven speed-up vs processors",
        &["procs", "gate-mult", "func-mult", "cpu", "inv-array"],
    );
    for (i, &p) in PROC_SWEEP.iter().enumerate() {
        t.row(vec![
            p.to_string(),
            fmt2(runs[0].1[i].1),
            fmt2(runs[1].1[i].1),
            fmt2(runs[2].1[i].1),
            fmt2(runs[3].1[i].1),
        ]);
    }
    t.note("paper: gate-level multiplier reaches 6-9 at 15 processors; the RTL multiplier scales poorly; a dip/knee appears past 8 processors (cache sharing).");
    t
}

/// Figure 2: speed-up vs processors at controlled event densities
/// (512/256/128/64 events per tick on the 32×16 inverter array).
pub fn fig2_event_density() -> Table {
    let mut t = Table::new(
        "Figure 2 — events per time step vs achievable speed-up (inverter array)",
        &["procs", "512 ev/tick", "256 ev/tick", "128 ev/tick", "64 ev/tick"],
    );
    let sweeps: Vec<Vec<(usize, f64, f64)>> = [1u64, 2, 4, 8]
        .iter()
        .map(|&tp| {
            let arr = paper_inverter_array(tp);
            sync_speedups(&arr.netlist, Time(200))
        })
        .collect();
    for (i, &p) in PROC_SWEEP.iter().enumerate() {
        t.row(vec![
            p.to_string(),
            fmt2(sweeps[0][i].1),
            fmt2(sweeps[1][i].1),
            fmt2(sweeps[2][i].1),
            fmt2(sweeps[3][i].1),
        ]);
    }
    t.note("paper: the denser the event supply, the later the speed-up saturates; ~1000 events/step are needed to use more than 16 processors efficiently.");
    t
}

/// Figure 3: compiled-mode speed-ups.
pub fn fig3_compiled() -> Table {
    let arr = paper_inverter_array(1);
    let gate = paper_gate_multiplier(1);
    let func = paper_functional_multiplier(2);
    let sweep = |netlist: &Netlist, end: Time| -> Vec<f64> {
        let uni = model_compiled(
            netlist,
            end,
            &MachineConfig::multimax(1),
            PartitionStrategy::RoundRobin,
        );
        PROC_SWEEP
            .iter()
            .map(|&p| {
                model_compiled(
                    netlist,
                    end,
                    &MachineConfig::multimax(p),
                    PartitionStrategy::RoundRobin,
                )
                .speedup(&uni)
            })
            .collect()
    };
    let a = sweep(&arr.netlist, Time(128));
    let g = sweep(&gate.netlist, Time(128));
    let f = sweep(&func.netlist, Time(128));
    let mut t = Table::new(
        "Figure 3 — compiled-mode speed-up vs processors",
        &["procs", "inv-array", "gate-mult", "func-mult"],
    );
    for (i, &p) in PROC_SWEEP.iter().enumerate() {
        t.row(vec![p.to_string(), fmt2(a[i]), fmt2(g[i]), fmt2(f[i])]);
    }
    t.note("paper: 10-13 at 15 processors for gate-level circuits; the ~100-element functional multiplier balances poorly and trails.");
    t
}

/// Figure 4: asynchronous algorithm speed-ups (and utilizations).
pub fn fig4_async() -> Table {
    let arr = paper_inverter_array(1);
    let gate = paper_gate_multiplier(4);
    let func = paper_functional_multiplier(8);
    let sweep = |netlist: &Netlist, end: Time| -> Vec<(f64, f64)> {
        let uni = model_async(netlist, end, &MachineConfig::multimax(1));
        PROC_SWEEP
            .iter()
            .map(|&p| {
                let r = model_async(netlist, end, &MachineConfig::multimax(p));
                (r.speedup(&uni), r.utilization())
            })
            .collect()
    };
    let a = sweep(&arr.netlist, Time(200));
    let g = sweep(&gate.netlist, gate.schedule_end());
    let f = sweep(&func.netlist, func.schedule_end());
    let mut t = Table::new(
        "Figure 4 — asynchronous algorithm speed-up (utilization) vs processors",
        &[
            "procs",
            "inv-array",
            "util",
            "gate-mult",
            "util",
            "func-mult",
            "util",
        ],
    );
    for (i, &p) in PROC_SWEEP.iter().enumerate() {
        t.row(vec![
            p.to_string(),
            fmt2(a[i].0),
            pct(a[i].1),
            fmt2(g[i].0),
            pct(g[i].1),
            fmt2(f[i].0),
            pct(f[i].1),
        ]);
    }
    t.note("paper: inverter array best (91% utilization at 8 processors); the gate-level multiplier suffers most from cache sharing; the functional multiplier pipelines with reduced events-per-evaluation.");
    t
}

/// Figure 5: asynchronous versus event-driven on the inverter array.
pub fn fig5_comparison() -> Table {
    let arr = paper_inverter_array(4);
    let end = Time(300);
    let uni = model_seq(&arr.netlist, end, &MachineConfig::multimax(1).cost);
    let mut t = Table::new(
        "Figure 5 — comparative speeds on the inverter array (normalized to uniprocessor event-driven)",
        &["procs", "event-driven", "ed util", "async", "async util"],
    );
    for &p in PROC_SWEEP {
        let s = model_sync(&arr.netlist, end, &MachineConfig::multimax(p));
        let a = model_async(&arr.netlist, end, &MachineConfig::multimax(p));
        t.row(vec![
            p.to_string(),
            fmt2(s.speedup(&uni)),
            pct(s.utilization()),
            fmt2(a.speedup(&uni)),
            pct(a.utilization()),
        ]);
    }
    t.note("paper: at 16 processors the asynchronous algorithm reaches 68% utilization, 10-20 points above the event-driven algorithm, and is absolutely faster throughout.");
    t
}

/// §5's uniprocessor claim, measured two ways: modeled virtual cycles and
/// *real wall-clock* of the actual engines (meaningful on one core).
pub fn uniproc_ratio() -> Table {
    let mut t = Table::new(
        "§5 — uniprocessor asynchronous vs event-driven (ratio > 1 means async faster)",
        &["circuit", "modeled ratio", "wall-clock ratio", "events/eval (async)"],
    );
    let arr = paper_inverter_array(2);
    let func = paper_functional_multiplier(16);
    let gate = paper_gate_multiplier(4);
    let cases: Vec<(&str, &Netlist, Time)> = vec![
        ("inv-array", &arr.netlist, Time(2000)),
        ("func-mult", &func.netlist, func.schedule_end()),
        ("gate-mult", &gate.netlist, gate.schedule_end()),
    ];
    for (name, netlist, end) in cases {
        let m_seq = model_seq(netlist, end, &MachineConfig::multimax(1).cost);
        let m_asy = model_async(netlist, end, &MachineConfig::multimax(1));
        let modeled = m_seq.virtual_time as f64 / m_asy.virtual_time as f64;
        // Real engines, wall clock, best of 3.
        let cfg = SimConfig::new(end);
        let wall = |f: &dyn Fn() -> std::time::Duration| -> f64 {
            (0..3).map(|_| f()).min().expect("3 runs").as_secs_f64()
        };
        let t_seq = wall(&|| EventDriven::run(netlist, &cfg).unwrap().metrics.wall);
        let t_asy = wall(&|| ChaoticAsync::run(netlist, &cfg).unwrap().metrics.wall);
        let real = t_seq / t_asy;
        let batching = m_asy.evaluations as f64 / m_asy.activations.max(1) as f64;
        t.row(vec![
            name.to_string(),
            fmt2(modeled),
            fmt2(real),
            fmt2(batching),
        ]);
    }
    t.note("paper: the uniprocessor asynchronous algorithm is 1-3x faster than the event-driven algorithm (batching amortizes scheduling overhead).");
    t
}

/// §4's event-availability statistic on large circuits.
pub fn event_stats() -> Table {
    let gate = paper_gate_multiplier(4);
    let cpu = paper_cpu();
    let mut t = Table::new(
        "§4 — events available per time step (sequential reference engine)",
        &["circuit", "elements", "active steps", "mean ev/step", "steps with <=5 ev", "activity/step"],
    );
    for (name, netlist, end) in [
        ("gate-mult", &gate.netlist, gate.schedule_end()),
        ("cpu", &cpu.netlist, Time(4096)),
    ] {
        let r = EventDriven::run(netlist, &SimConfig::new(end)).unwrap();
        let h = &r.metrics.events_per_step;
        t.row(vec![
            name.to_string(),
            netlist.num_elements().to_string(),
            h.steps().to_string(),
            format!("{:.1}", h.mean()),
            pct(h.fraction_at_most(5)),
            format!("{:.2}%", r.metrics.activity(netlist.num_elements()) * 100.0),
        ]);
    }
    t.note("paper (citing Soule & Blank 1987, Wong & Franklin 1986): even 5000-gate circuits can have fewer than 5 events available ~50% of the time; gate-level element activity is typically 0.1-0.5% per step.");
    t
}

/// §2 ablation: one central queue versus distributed per-processor queues.
pub fn ablation_queues() -> Table {
    let arr = paper_inverter_array(1);
    let end = Time(150);
    let uni = model_seq(&arr.netlist, end, &MachineConfig::multimax(1).cost);
    let mut t = Table::new(
        "§2 ablation — central vs distributed queues (inverter array)",
        &["procs", "central", "distributed"],
    );
    for &p in &[1usize, 2, 4, 8, 12, 16] {
        let mut central = MachineConfig::multimax(p);
        central.distributed_queues = false;
        let c = model_sync(&arr.netlist, end, &central).speedup(&uni);
        let d = model_sync(&arr.netlist, end, &MachineConfig::multimax(p)).speedup(&uni);
        t.row(vec![p.to_string(), fmt2(c), fmt2(d)]);
    }
    t.note("paper: the initial centralized implementation achieved at most ~2x with 8 processors; distributing the queues fixed it.");
    t
}

/// §2 ablation: end-of-phase work stealing on/off.
pub fn ablation_stealing() -> Table {
    // The CPU's bursty clock-edge steps carry hundreds of events with
    // data-dependent evaluation times — the load-imbalance regime where
    // end-of-phase stealing pays off.
    let cpu = paper_cpu();
    let end = Time(3072);
    let mut t = Table::new(
        "§2 ablation — work stealing (pipelined CPU)",
        &["procs", "static util", "stealing util", "static speedup", "stealing speedup"],
    );
    let uni = model_seq(&cpu.netlist, end, &MachineConfig::multimax(1).cost);
    for &p in &[4usize, 8, 15] {
        let mut no_steal = MachineConfig::multimax(p);
        no_steal.work_stealing = false;
        let s0 = model_sync(&cpu.netlist, end, &no_steal);
        let s1 = model_sync(&cpu.netlist, end, &MachineConfig::multimax(p));
        t.row(vec![
            p.to_string(),
            pct(s0.utilization()),
            pct(s1.utilization()),
            fmt2(s0.speedup(&uni)),
            fmt2(s1.speedup(&uni)),
        ]);
    }
    t.note("paper: stealing at the end of each phase gave 15-20% better utilization than static balancing.");
    t
}

/// §2 ablation: the unpatched OS's working-set scans.
pub fn ablation_os_interrupts() -> Table {
    let arr = paper_inverter_array(2);
    let end = Time(200);
    let uni = model_seq(&arr.netlist, end, &MachineConfig::multimax(1).cost);
    let mut t = Table::new(
        "§2 ablation — OS working-set-scan interference (inverter array)",
        &["procs", "patched OS", "unpatched OS"],
    );
    for &p in &[4usize, 8, 16] {
        let clean = model_sync(&arr.netlist, end, &MachineConfig::multimax(p)).speedup(&uni);
        let mut noisy_cfg = MachineConfig::multimax(p);
        // Interrupt stalls comparable to a simulation step every ~20 steps.
        noisy_cfg.os_interrupts = Some(OsInterrupts {
            period: 20_000,
            duration: 2_000,
        });
        let noisy = model_sync(&arr.netlist, end, &noisy_cfg).speedup(&uni);
        t.row(vec![p.to_string(), fmt2(clean), fmt2(noisy)]);
    }
    t.note("paper: a working-set scan froze one process for 0.1-0.25s every 2s, stalling every barrier-synchronized peer, until the kernel was modified.");
    t
}

/// §4 ablation: the controlling-value lookahead.
pub fn ablation_lookahead() -> Table {
    let gate = paper_gate_multiplier(4);
    let end = gate.schedule_end();
    let mut t = Table::new(
        "§4 ablation — controlling-value lookahead (gate-level multiplier)",
        &["procs", "with lookahead", "without", "time ratio"],
    );
    for &p in &[1usize, 8, 16] {
        let with = model_async(&gate.netlist, end, &MachineConfig::multimax(p));
        let mut cfg = MachineConfig::multimax(p);
        cfg.lookahead = false;
        let without = model_async(&gate.netlist, end, &cfg);
        t.row(vec![
            p.to_string(),
            with.virtual_time.to_string(),
            without.virtual_time.to_string(),
            fmt2(without.virtual_time as f64 / with.virtual_time as f64),
        ]);
    }
    t.note("paper: knowledge of an AND gate's controlling value lets events on other inputs be ignored while the output is pinned.");
    t
}

/// §4's storage claim: concurrent garbage collection of consumed events,
/// measured on the real lock-free engine.
pub fn gc_effectiveness() -> Table {
    let arr = paper_inverter_array(1);
    let end = Time(4000);
    let mut t = Table::new(
        "§4 — asynchronous garbage collection (real engine, inverter array, 4000 ticks)",
        &["threads", "events", "chunks freed (gc on)", "chunks freed (gc off)"],
    );
    for threads in [1usize, 2] {
        let cfg = SimConfig::new(end).threads(threads);
        let on = ChaoticAsync::run(&arr.netlist, &cfg).unwrap();
        let off = ChaoticAsync::run(&arr.netlist, &cfg.clone().without_gc()).unwrap();
        t.row(vec![
            threads.to_string(),
            on.metrics.events_processed.to_string(),
            on.metrics.gc_chunks_freed.to_string(),
            off.metrics.gc_chunks_freed.to_string(),
        ]);
    }
    t.note("paper: storage for events is freed once all fan-out elements have consumed them — eliminating Time-Warp-style state explosion.");
    t
}

/// §5/§6 — long feedback chains: the asynchronous algorithm's advantage
/// collapses as feedback locks the circuit into event-at-a-time
/// processing.
pub fn feedback_experiment() -> Table {
    let mut t = Table::new(
        "§5/§6 — feedback-chain length vs algorithm choice (8 virtual processors)",
        &["rings x length", "ed speedup", "async speedup", "async/ed time", "async batching"],
    );
    // Same total element count (~256), different feedback structure:
    // many short rings pipeline; one long ring serializes.
    for (rings, length) in [(32usize, 8usize), (8, 32), (2, 128), (1, 256)] {
        let fb = parsim_circuits::feedback_chain(rings, length).expect("valid circuit");
        let end = Time(600);
        let uni = model_seq(&fb.netlist, end, &MachineConfig::multimax(1).cost);
        let m8 = MachineConfig::multimax(8);
        let s = model_sync(&fb.netlist, end, &m8);
        let a = model_async(&fb.netlist, end, &m8);
        t.row(vec![
            format!("{rings} x {length}"),
            fmt2(s.speedup(&uni)),
            fmt2(a.speedup(&uni)),
            fmt2(a.virtual_time as f64 / s.virtual_time as f64),
            fmt2(a.evaluations as f64 / a.activations.max(1) as f64),
        ]);
    }
    t.note("paper (§5): 'for circuits with long feed-back chains, it looks like the event-driven algorithm will be faster especially with a large number of processors.' A time ratio above 1 means event-driven wins.");
    t
}

/// §6 — tristate-bus circuits: the resolver is a serialization hub.
pub fn bus_experiment() -> Table {
    let mut t = Table::new(
        "§6 — shared tristate bus (speed-ups at 8 virtual processors)",
        &["drivers", "ed speedup", "async speedup", "async util"],
    );
    for drivers in [4usize, 16, 64] {
        let bus = parsim_circuits::shared_bus(drivers, 16, 16).expect("valid circuit");
        let end = Time(600);
        let uni = model_seq(&bus.netlist, end, &MachineConfig::multimax(1).cost);
        let m8 = MachineConfig::multimax(8);
        let s = model_sync(&bus.netlist, end, &m8);
        let a = model_async(&bus.netlist, end, &m8);
        t.row(vec![
            drivers.to_string(),
            fmt2(s.speedup(&uni)),
            fmt2(a.speedup(&uni)),
            pct(a.utilization()),
        ]);
    }
    t.note("paper (§6 future work): 'the effects of circuits with very large feedback chains and large busses on the algorithm's performance.' The resolver funnels every driver's events through one element.");
    t
}

/// §6 — representation levels: the same 16x16 multiply workload at gate
/// level versus functional level, under both parallel algorithms.
pub fn levels_experiment() -> Table {
    let gate = paper_gate_multiplier(4);
    let func = paper_functional_multiplier(4);
    let mut t = Table::new(
        "§6 — abstraction level (same 16x16 multiply workload, 8 virtual processors)",
        &["level", "elements", "events", "evals", "async batching", "ed speedup", "async speedup"],
    );
    for (name, netlist, end) in [
        ("gate", &gate.netlist, gate.schedule_end()),
        ("functional", &func.netlist, func.schedule_end()),
    ] {
        let uni = model_seq(netlist, end, &MachineConfig::multimax(1).cost);
        let m8 = MachineConfig::multimax(8);
        let s = model_sync(netlist, end, &m8);
        let a = model_async(netlist, end, &m8);
        t.row(vec![
            name.to_string(),
            netlist.num_elements().to_string(),
            a.events.to_string(),
            a.evaluations.to_string(),
            fmt2(a.evaluations as f64 / a.activations.max(1) as f64),
            fmt2(s.speedup(&uni)),
            fmt2(a.speedup(&uni)),
        ]);
    }
    t.note("paper (§6 future work): 'investigating the effects of simulating circuits at different representation levels.' One functional evaluation replaces dozens of gate events; the asynchronous algorithm keeps its advantage at both levels.");
    t
}

/// §6 — the hypercube port: how well does each algorithm tolerate
/// message latency? (The paper lists "porting these algorithms to a
/// hypercube architecture" as future work.)
pub fn hypercube_experiment() -> Table {
    let arr = paper_inverter_array(1);
    let end = Time(200);
    let uni = model_seq(&arr.netlist, end, &MachineConfig::multimax(1).cost);
    let mut t = Table::new(
        "§6 — 16-node hypercube vs shared memory (inverter array, speed-ups vs uniprocessor event-driven)",
        &["interconnect", "ed speedup", "async speedup", "async util"],
    );
    let shared = MachineConfig::multimax(16);
    let s = model_sync(&arr.netlist, end, &shared);
    let a = model_async(&arr.netlist, end, &shared);
    t.row(vec![
        "shared memory".to_string(),
        fmt2(s.speedup(&uni)),
        fmt2(a.speedup(&uni)),
        pct(a.utilization()),
    ]);
    for hop in [5u64, 20, 80] {
        let cube = MachineConfig::hypercube(16, hop);
        let s = model_sync(&arr.netlist, end, &cube);
        let a = model_async(&arr.netlist, end, &cube);
        t.row(vec![
            format!("hypercube hop={hop}"),
            fmt2(s.speedup(&uni)),
            fmt2(a.speedup(&uni)),
            pct(a.utilization()),
        ]);
    }
    t.note("paper (§6 future work): 'porting these algorithms to a hypercube architecture.' Event batching makes the asynchronous algorithm latency-tolerant; the barrier-bound event-driven algorithm pays the network on every phase.");
    t
}

/// Real-engine wall-clock matrix on this host (single core: absolute
/// times, not speed-ups).
pub fn wallclock_matrix() -> Table {
    let arr = paper_inverter_array(2);
    let func = paper_functional_multiplier(8);
    let gate = paper_gate_multiplier(2);
    let mut t = Table::new(
        "Wall-clock of the real engines on this host (1 thread, best of 3)",
        &["circuit", "event-driven", "wheel", "sync", "compiled", "async"],
    );
    let cases: Vec<(&str, &parsim_netlist::Netlist, Time)> = vec![
        ("inv-array", &arr.netlist, Time(1000)),
        ("func-mult", &func.netlist, func.schedule_end()),
        ("gate-mult", &gate.netlist, gate.schedule_end()),
    ];
    for (name, netlist, end) in cases {
        let cfg = SimConfig::new(end);
        let best = |f: &dyn Fn() -> std::time::Duration| {
            (0..3).map(|_| f()).min().expect("three runs")
        };
        let seq = best(&|| EventDriven::run(netlist, &cfg).unwrap().metrics.wall);
        let wheel = {
            let cfg = cfg.clone().with_timing_wheel();
            best(&|| EventDriven::run(netlist, &cfg).unwrap().metrics.wall)
        };
        let sync = best(&|| parsim_core::SyncEventDriven::run(netlist, &cfg).unwrap().metrics.wall);
        let compiled =
            best(&|| parsim_core::CompiledMode::run(netlist, &cfg).unwrap().metrics.wall);
        let asy = best(&|| ChaoticAsync::run(netlist, &cfg).unwrap().metrics.wall);
        let ms = |d: std::time::Duration| format!("{:.2}ms", d.as_secs_f64() * 1e3);
        t.row(vec![
            name.to_string(),
            ms(seq),
            ms(wheel),
            ms(sync),
            ms(compiled),
            ms(asy),
        ]);
    }
    t.note("absolute single-core times; multiprocessor scaling lives in the virtual-Multimax figures above.");
    t
}

/// §1/§4 — the ablation against Chandy–Misra: incremental valid-time
/// updates versus event-carried knowledge with global deadlock
/// detection and recovery.
pub fn chandy_misra_ablation() -> Table {
    let mut t = Table::new(
        "§1/§4 ablation — incremental validity vs Chandy-Misra deadlock recovery (8 virtual processors)",
        &["circuit", "incremental time", "cm time", "cm recoveries", "cm/incr ratio"],
    );
    let fb = parsim_circuits::feedback_chain(4, 16).expect("valid circuit");
    let cpu = paper_cpu();
    let arr = paper_inverter_array(2);
    let cases: Vec<(&str, &parsim_netlist::Netlist, Time)> = vec![
        ("feedback 4x16", &fb.netlist, Time(400)),
        ("cpu", &cpu.netlist, Time(1536)),
        ("inv-array", &arr.netlist, Time(200)),
    ];
    for (name, netlist, end) in cases {
        let incr = model_async(netlist, end, &MachineConfig::multimax(8));
        let mut cm_cfg = MachineConfig::multimax(8);
        cm_cfg.incremental_validity = false;
        let cm = model_async(netlist, end, &cm_cfg);
        t.row(vec![
            name.to_string(),
            incr.virtual_time.to_string(),
            cm.virtual_time.to_string(),
            cm.deadlock_recoveries.to_string(),
            fmt2(cm.virtual_time as f64 / incr.virtual_time.max(1) as f64),
        ]);
    }
    t.note("paper (§1): Chandy-Misra runs 'until no more elements have events on all their inputs (i.e. deadlock)', then globally updates clock values and restarts; 'our algorithm is very similar but the clock-values are updated incrementally so deadlock does not occur.' Incremental validity always reports zero recoveries.");
    t
}

/// Runs every experiment, in paper order.
pub fn all_experiments() -> Vec<Table> {
    vec![
        fig1_event_driven(),
        fig2_event_density(),
        fig3_compiled(),
        fig4_async(),
        fig5_comparison(),
        uniproc_ratio(),
        event_stats(),
        ablation_queues(),
        ablation_stealing(),
        ablation_os_interrupts(),
        ablation_lookahead(),
        gc_effectiveness(),
        feedback_experiment(),
        bus_experiment(),
        levels_experiment(),
        hypercube_experiment(),
        chandy_misra_ablation(),
        wallclock_matrix(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_density_orders_speedups_at_16_procs() {
        let t = fig2_event_density();
        let last = t.rows().len() - 1;
        let dense = t.cell_f64(last, "512 ev/tick").unwrap();
        let sparse = t.cell_f64(last, "64 ev/tick").unwrap();
        assert!(
            dense > sparse,
            "denser events must sustain more processors: {dense} vs {sparse}"
        );
    }

    #[test]
    fn fig5_async_beats_event_driven_at_16() {
        let t = fig5_comparison();
        let last = t.rows().len() - 1;
        let ed = t.cell_f64(last, "event-driven").unwrap();
        let asy = t.cell_f64(last, "async").unwrap();
        assert!(asy > ed, "async {asy} should beat event-driven {ed} at 16");
    }

    #[test]
    fn ablation_queues_shows_central_cap() {
        let t = ablation_queues();
        // Central at 8 procs (row index 3) stays near the paper's ~2.
        let central8 = t.cell_f64(3, "central").unwrap();
        let dist8 = t.cell_f64(3, "distributed").unwrap();
        assert!(central8 < 3.5, "central queue should cap: {central8}");
        assert!(dist8 > 2.0 * central8, "distributed should far exceed central");
    }

    #[test]
    fn feedback_collapses_batching_and_async_advantage() {
        let t = feedback_experiment();
        let first_batch = t.cell_f64(0, "async batching").unwrap();
        let last_batch = t.cell_f64(t.rows().len() - 1, "async batching").unwrap();
        assert!(
            last_batch < first_batch / 3.0,
            "one long ring should collapse batching: {first_batch} -> {last_batch}"
        );
        let first = t.cell_f64(0, "async speedup").unwrap();
        let last = t.cell_f64(t.rows().len() - 1, "async speedup").unwrap();
        assert!(
            last < first / 2.0,
            "async speedup should collapse with feedback: {first} -> {last}"
        );
    }

    #[test]
    fn functional_level_favors_async_over_event_driven() {
        // §5: "the asynchronous algorithm does far better" on the
        // ~100-element functional multiplier.
        let t = levels_experiment();
        let ed = t.cell_f64(1, "ed speedup").unwrap();
        let asy = t.cell_f64(1, "async speedup").unwrap();
        assert!(
            asy > 2.0 * ed,
            "functional level: async {asy} should dwarf event-driven {ed}"
        );
    }

    #[test]
    fn async_tolerates_hypercube_latency_better_than_event_driven() {
        let t = hypercube_experiment();
        // Compare shared memory (row 0) against the costliest hop (last).
        let last = t.rows().len() - 1;
        let ed_drop = t.cell_f64(0, "ed speedup").unwrap() / t.cell_f64(last, "ed speedup").unwrap();
        let asy_drop =
            t.cell_f64(0, "async speedup").unwrap() / t.cell_f64(last, "async speedup").unwrap();
        assert!(
            asy_drop < ed_drop,
            "async should degrade less: async x{asy_drop:.2} vs ed x{ed_drop:.2}"
        );
    }

    #[test]
    fn chandy_misra_needs_recovery_storms_on_control_logic() {
        // Self-sustaining rings barely deadlock (events carry knowledge),
        // but the CPU's multi-input logic with bursty activity deadlocks
        // repeatedly and pays for every recovery round.
        let t = chandy_misra_ablation();
        let feedback_recoveries: u64 =
            t.cell(0, "cm recoveries").unwrap().parse().unwrap();
        assert!(feedback_recoveries > 0, "the kick-start phase deadlocks");
        let cpu_recoveries: u64 = t.cell(1, "cm recoveries").unwrap().parse().unwrap();
        assert!(
            cpu_recoveries > 50,
            "control logic should deadlock repeatedly: {cpu_recoveries}"
        );
        let ratio = t.cell_f64(1, "cm/incr ratio").unwrap();
        assert!(
            ratio > 1.2,
            "recovery storms must cost time on the cpu: ratio {ratio}"
        );
    }

    #[test]
    fn fig1_shapes_hold() {
        let t = fig1_event_driven();
        let last = t.rows().len() - 1;
        // The gate-level multiplier saturates well below ideal and shows
        // the knee: its peak is near 8 procs, not 16.
        let gate8 = t.cell_f64(4, "gate-mult").unwrap(); // row 4 = 8 procs
        let gate16 = t.cell_f64(last, "gate-mult").unwrap();
        assert!(gate8 >= gate16 * 0.95, "knee: {gate8} vs {gate16}");
        // The functional multiplier is always the worst of the four.
        for (i, &p) in crate::bench_circuits::PROC_SWEEP.iter().enumerate() {
            if p < 4 {
                continue;
            }
            let func = t.cell_f64(i, "func-mult").unwrap();
            for col in ["gate-mult", "cpu", "inv-array"] {
                let other = t.cell_f64(i, col).unwrap();
                assert!(
                    func <= other,
                    "functional should trail {col} at {p} procs: {func} vs {other}"
                );
            }
        }
    }

    #[test]
    fn fig3_compiled_beats_event_driven_on_gate_level() {
        // The whole point of compiled mode: on gate-level circuits it
        // outruns the event-driven algorithm's parallel ceiling.
        let f3 = fig3_compiled();
        let f1 = fig1_event_driven();
        let last = f3.rows().len() - 1;
        let compiled_gate = f3.cell_f64(last, "gate-mult").unwrap();
        let ed_gate = f1.cell_f64(last, "gate-mult").unwrap();
        assert!(
            compiled_gate > 1.5 * ed_gate,
            "compiled {compiled_gate} should beat event-driven {ed_gate} on gates"
        );
    }

    #[test]
    fn gc_frees_chunks() {
        let t = gc_effectiveness();
        let freed_on: u64 = t.cell(0, "chunks freed (gc on)").unwrap().parse().unwrap();
        let freed_off: u64 = t.cell(0, "chunks freed (gc off)").unwrap().parse().unwrap();
        assert!(freed_on > 0, "gc should reclaim chunks");
        assert_eq!(freed_off, 0);
    }
}
