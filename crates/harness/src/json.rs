//! NaN-safe JSON rendering helpers shared by the harness binaries.
//!
//! Thin façade over [`parsim_trace::json`] so every hand-rendered bench
//! document goes through the same escaping, non-finite-float handling,
//! and well-formedness lint. Serialized bench output must never contain
//! `NaN` (invalid JSON) or `null` where a number is expected (breaks
//! numeric consumers like plotting scripts): non-finite floats render as
//! `0.0`.

pub use parsim_trace::json::{escape, fmt_f64, lint};

/// Formats a float as a JSON number with 6-digit fixed precision, the
/// bench-file convention. Non-finite values render as `0.000000`.
pub fn num(v: f64) -> String {
    parsim_trace::json::fmt_f64_prec(v, 6)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_is_always_a_json_number() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, 0.0, 1.25] {
            let s = num(v);
            assert!(lint(&s).is_ok(), "{s} must lint as JSON");
            assert!(!s.contains("NaN") && !s.contains("null") && !s.contains("inf"));
        }
        assert_eq!(num(f64::NAN), "0.000000");
        assert_eq!(num(1.5), "1.500000");
    }
}
