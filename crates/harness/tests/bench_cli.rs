//! Bench binaries' `--threads` handling: malformed lists fail loudly
//! (naming the offending token) in both bench3 and bench5, which share
//! one parser instead of drifting copies.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().expect("spawn bench bin")
}

fn assert_threads_error(out: &Output, expect: &str) {
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success(), "must exit nonzero; stderr: {err}");
    assert!(err.contains("--threads"), "error names the flag: {err}");
    assert!(err.contains(expect), "error names the offense ({expect:?}): {err}");
}

const BENCH3: &str = env!("CARGO_BIN_EXE_bench3");
const BENCH5: &str = env!("CARGO_BIN_EXE_bench5");

#[test]
fn malformed_threads_lists_fail_loudly_in_both_bins() {
    for bin in [BENCH3, BENCH5] {
        assert_threads_error(&run(bin, &["--threads", "1,two,4"]), "`two`");
        assert_threads_error(&run(bin, &["--threads", "1,,4"]), "empty entry");
        assert_threads_error(&run(bin, &["--threads", "1,0,2"]), "at least 1");
        assert_threads_error(&run(bin, &["--threads"]), "comma list");
    }
}

#[test]
fn bench3_requires_the_unit_baseline_bench5_does_not() {
    // bench3 normalizes speedups against the 1-thread leg; bench5 sweeps
    // arbitrary lists. The shared parser keeps both contracts.
    assert_threads_error(&run(BENCH3, &["--threads", "2,4"]), "start with 1");
    // bench5 accepts 2,4 — prove it by checking the failure is NOT the
    // parser (use a flag error to stop before the actual sweep runs).
    let out = run(BENCH5, &["--threads", "2,4", "--bogus"]);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(!out.status.success());
    assert!(err.contains("unknown argument"), "died on --bogus, not --threads: {err}");
}
