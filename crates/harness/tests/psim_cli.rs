//! `psim` flag-handling contract: bad flags are usage errors (named
//! offense + usage line + nonzero exit), never panics or silent ignores;
//! `--help` is a success.

use std::process::{Command, Output};

fn psim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_psim"))
        .args(args)
        .output()
        .expect("spawn psim")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Nonzero exit, the named offense and the usage line on stderr, and no
/// panic backtrace.
fn assert_usage_error(out: &Output, expect: &str) {
    let err = stderr(out);
    assert!(!out.status.success(), "must exit nonzero; stderr: {err}");
    assert!(err.contains(expect), "stderr must name the offense ({expect:?}): {err}");
    assert!(err.contains("usage: psim"), "stderr must carry the usage line: {err}");
    assert!(!err.contains("panicked"), "usage errors must not panic: {err}");
}

#[test]
fn unknown_flag_is_a_usage_error() {
    assert_usage_error(&psim(&["@c17", "--frobnicate"]), "unknown argument `--frobnicate`");
}

#[test]
fn missing_value_is_a_usage_error() {
    assert_usage_error(&psim(&["@c17", "--end"]), "--end requires a value");
    assert_usage_error(&psim(&["@c17", "--threads"]), "--threads requires a value");
    assert_usage_error(&psim(&["@c17", "--watch"]), "--watch requires a value");
}

#[test]
fn non_numeric_value_is_a_usage_error() {
    assert_usage_error(&psim(&["@c17", "--end", "soon"]), "--end must be an integer");
    assert_usage_error(&psim(&["@c17", "--threads", "many"]), "--threads must be an integer");
    assert_usage_error(&psim(&["@c17", "--lanes", "wide"]), "--lanes must be an integer");
    assert_usage_error(
        &psim(&["@c17", "--sample-every", "fast"]),
        "--sample-every must be an integer",
    );
}

#[test]
fn zero_threads_is_a_usage_error_not_a_panic() {
    // Regression: `--threads 0` used to reach SimConfig::threads and trip
    // its `threads > 0` assertion — a panic, not a usage error.
    assert_usage_error(&psim(&["@c17", "--threads", "0"]), "--threads must be at least 1");
}

#[test]
fn zero_lanes_is_a_usage_error_not_silently_ignored() {
    // Regression: `--lanes 0` used to collide with the "flag absent"
    // sentinel and silently run a plain (non-batch) simulation.
    assert_usage_error(
        &psim(&["@c17", "--engine", "compiled", "--lanes", "0"]),
        "--lanes must be at least 1",
    );
}

#[test]
fn out_of_range_lane_width_is_a_usage_error() {
    assert_usage_error(
        &psim(&["@c17", "--engine", "compiled", "--lanes", "2", "--force-lane-width", "100"]),
        "--force-lane-width must be one of 64, 128, 256, 512",
    );
}

#[test]
fn missing_input_is_a_usage_error() {
    assert_usage_error(&psim(&[]), "missing input netlist");
}

#[test]
fn help_prints_usage_and_exits_zero() {
    // Regression: `--help` used to route through the error path (usage on
    // stderr, exit 1).
    for flag in ["--help", "-h"] {
        let out = psim(&[flag]);
        assert!(out.status.success(), "{flag} is a success, not an error");
        assert!(stdout(&out).contains("usage: psim"), "{flag} prints usage on stdout");
    }
}

#[test]
fn good_invocations_still_run() {
    let out = psim(&["@c17", "--end", "50"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("c17"), "prints the result table");

    let out = psim(&["@c17", "--engine", "compiled", "--lanes", "2", "--end", "50"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("compiled batch, 2 lanes"), "batch mode banner");
}

#[test]
fn runtime_errors_exit_nonzero_without_usage_noise() {
    // Semantic errors (bad engine name, unreadable file) are not flag
    //-syntax errors: they report cleanly but skip the usage dump.
    let out = psim(&["@c17", "--engine", "warp"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown engine `warp`"));

    let out = psim(&["/no/such/circuit.net"]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read /no/such/circuit.net"));
}
