//! The `parsim` text netlist format.
//!
//! A line-oriented format sufficient to round-trip every circuit the
//! generators produce:
//!
//! ```text
//! # comment
//! node <name> <width>
//! elem <name> <kindspec> delay=<ticks> in=<n1,n2,...> out=<m1,...>
//! ```
//!
//! `kindspec` is a mnemonic, optionally with `:`-separated parameters —
//! `and`, `mux:4`, `add:8`, `clock:5:0`, `lfsr:8:3:42`,
//! `const:4'b1010`, `pattern:10:1'b0;1'b1`. Generators omit `in=`.

use std::error::Error;
use std::fmt;
use std::fmt::Write as _;
use std::sync::Arc;

use parsim_logic::{Delay, ElementKind, Value};

use crate::build::Builder;
use crate::graph::Netlist;
use crate::ids::NodeId;

/// Error produced when parsing the text netlist format fails.
///
/// Carries the 1-based line number of the offending line.
///
/// # Examples
///
/// ```
/// use parsim_netlist::Netlist;
///
/// let err = Netlist::from_text("node a 1\nfrob x").unwrap_err();
/// assert_eq!(err.line(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct ParseNetlistError {
    line: usize,
    msg: String,
}

impl ParseNetlistError {
    fn new(line: usize, msg: impl Into<String>) -> ParseNetlistError {
        ParseNetlistError {
            line,
            msg: msg.into(),
        }
    }

    /// Constructs an error for other in-crate parsers (the `.bench`
    /// reader).
    pub(crate) fn new_public(line: usize, msg: String) -> ParseNetlistError {
        ParseNetlistError::new(line, msg)
    }

    /// The 1-based line number where parsing failed.
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseNetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist parse error at line {}: {}", self.line, self.msg)
    }
}

impl Error for ParseNetlistError {}

impl Netlist {
    /// Parses the text netlist format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseNetlistError`] with the offending line on any syntax
    /// or semantic (builder validation) failure.
    pub fn from_text(text: &str) -> Result<Netlist, ParseNetlistError> {
        let mut b = Builder::new();
        let mut last_line = 0;
        for (i, raw) in text.lines().enumerate() {
            let lineno = i + 1;
            last_line = lineno;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut tok = line.split_whitespace();
            match tok.next() {
                Some("node") => {
                    let name = tok
                        .next()
                        .ok_or_else(|| ParseNetlistError::new(lineno, "missing node name"))?;
                    let width: u8 = tok
                        .next()
                        .ok_or_else(|| ParseNetlistError::new(lineno, "missing node width"))?
                        .parse()
                        .map_err(|_| ParseNetlistError::new(lineno, "bad node width"))?;
                    if width == 0 || width > 64 {
                        return Err(ParseNetlistError::new(lineno, "width must be 1..=64"));
                    }
                    b.node(name, width);
                }
                Some("elem") => {
                    let name = tok
                        .next()
                        .ok_or_else(|| ParseNetlistError::new(lineno, "missing element name"))?;
                    let kindspec = tok
                        .next()
                        .ok_or_else(|| ParseNetlistError::new(lineno, "missing kind"))?;
                    let kind = parse_kind(kindspec)
                        .map_err(|m| ParseNetlistError::new(lineno, m))?;
                    let mut delay = Delay::UNIT;
                    let mut fall: Option<Delay> = None;
                    let mut inputs: Vec<NodeId> = Vec::new();
                    let mut outputs: Vec<NodeId> = Vec::new();
                    let lookup = |b: &Builder, names: &str, lineno: usize| {
                        names
                            .split(',')
                            .filter(|s| !s.is_empty())
                            .map(|n| {
                                node_id_by_name(b, n).ok_or_else(|| {
                                    ParseNetlistError::new(lineno, format!("unknown node `{n}`"))
                                })
                            })
                            .collect::<Result<Vec<NodeId>, _>>()
                    };
                    for field in tok {
                        if let Some(d) = field.strip_prefix("delay=") {
                            // `delay=R` or `delay=R/F` (rise/fall).
                            let (r, f) = match d.split_once('/') {
                                Some((r, f)) => (r, Some(f)),
                                None => (d, None),
                            };
                            delay = Delay(r.parse().map_err(|_| {
                                ParseNetlistError::new(lineno, "bad delay")
                            })?);
                            if let Some(f) = f {
                                fall = Some(Delay(f.parse().map_err(|_| {
                                    ParseNetlistError::new(lineno, "bad fall delay")
                                })?));
                            }
                        } else if let Some(ns) = field.strip_prefix("in=") {
                            inputs = lookup(&b, ns, lineno)?;
                        } else if let Some(ns) = field.strip_prefix("out=") {
                            outputs = lookup(&b, ns, lineno)?;
                        } else {
                            return Err(ParseNetlistError::new(
                                lineno,
                                format!("unknown field `{field}`"),
                            ));
                        }
                    }
                    b.element_with_delays(
                        name,
                        kind,
                        delay,
                        fall.unwrap_or(delay),
                        &inputs,
                        &outputs,
                    )
                    .map_err(|e| ParseNetlistError::new(lineno, e.to_string()))?;
                }
                Some(other) => {
                    return Err(ParseNetlistError::new(
                        lineno,
                        format!("unknown directive `{other}`"),
                    ))
                }
                None => {}
            }
        }
        b.finish()
            .map_err(|e| ParseNetlistError::new(last_line, e.to_string()))
    }

    /// Writes the text netlist format. [`Netlist::from_text`] of the result
    /// reproduces an equivalent netlist.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# parsim netlist: {} nodes, {} elements", self.num_nodes(), self.num_elements());
        for n in self.nodes() {
            let _ = writeln!(out, "node {} {}", n.name(), n.width());
        }
        for e in self.elements() {
            if e.rise_delay() == e.fall_delay() {
                let _ = write!(out, "elem {} {} delay={}", e.name(), kind_spec(e.kind()), e.delay());
            } else {
                let _ = write!(
                    out,
                    "elem {} {} delay={}/{}",
                    e.name(),
                    kind_spec(e.kind()),
                    e.rise_delay(),
                    e.fall_delay()
                );
            }
            if !e.inputs().is_empty() {
                let names: Vec<&str> = e
                    .inputs()
                    .iter()
                    .map(|&n| self.node(n).name())
                    .collect();
                let _ = write!(out, " in={}", names.join(","));
            }
            let names: Vec<&str> = e
                .outputs()
                .iter()
                .map(|&n| self.node(n).name())
                .collect();
            let _ = writeln!(out, " out={}", names.join(","));
        }
        out
    }
}

fn node_id_by_name(b: &Builder, name: &str) -> Option<NodeId> {
    b.node_id(name)
}

fn parse_kind(spec: &str) -> Result<ElementKind, String> {
    let mut parts = spec.splitn(2, ':');
    let mnemonic = parts.next().expect("splitn yields at least one");
    let rest = parts.next();
    let no_params = |kind: ElementKind| -> Result<ElementKind, String> {
        if rest.is_some() {
            Err(format!("kind `{mnemonic}` takes no parameters"))
        } else {
            Ok(kind)
        }
    };
    let width_param = || -> Result<u8, String> {
        rest.ok_or_else(|| format!("kind `{mnemonic}` needs a width parameter"))?
            .parse()
            .map_err(|_| format!("bad width in `{spec}`"))
    };
    match mnemonic {
        "and" => no_params(ElementKind::And),
        "or" => no_params(ElementKind::Or),
        "nand" => no_params(ElementKind::Nand),
        "nor" => no_params(ElementKind::Nor),
        "xor" => no_params(ElementKind::Xor),
        "xnor" => no_params(ElementKind::Xnor),
        "not" => no_params(ElementKind::Not),
        "buf" => no_params(ElementKind::Buf),
        "mux" => Ok(ElementKind::Mux {
            width: width_param()?,
        }),
        "dff" => Ok(ElementKind::Dff {
            width: width_param()?,
        }),
        "dffr" => Ok(ElementKind::DffR {
            width: width_param()?,
        }),
        "latch" => Ok(ElementKind::Latch {
            width: width_param()?,
        }),
        "mem" => {
            let ps = params(rest, 2, spec)?;
            Ok(ElementKind::Memory {
                addr_bits: ps[0].parse().map_err(|_| bad(spec))?,
                width: ps[1].parse().map_err(|_| bad(spec))?,
            })
        }
        "tribuf" => Ok(ElementKind::TriBuf {
            width: width_param()?,
        }),
        "res" => Ok(ElementKind::Resolver {
            width: width_param()?,
        }),
        "add" => Ok(ElementKind::Adder {
            width: width_param()?,
        }),
        "sub" => Ok(ElementKind::Subtractor {
            width: width_param()?,
        }),
        "mul" => Ok(ElementKind::Multiplier {
            width: width_param()?,
        }),
        "cmp" => Ok(ElementKind::Comparator {
            width: width_param()?,
        }),
        "slice" => {
            let ps = params(rest, 3, spec)?;
            Ok(ElementKind::Slice {
                in_width: ps[0].parse().map_err(|_| bad(spec))?,
                lo: ps[1].parse().map_err(|_| bad(spec))?,
                width: ps[2].parse().map_err(|_| bad(spec))?,
            })
        }
        "zext" => {
            let ps = params(rest, 2, spec)?;
            Ok(ElementKind::ZeroExt {
                in_width: ps[0].parse().map_err(|_| bad(spec))?,
                out_width: ps[1].parse().map_err(|_| bad(spec))?,
            })
        }
        "shl" => {
            let ps = params(rest, 3, spec)?;
            Ok(ElementKind::Shl {
                in_width: ps[0].parse().map_err(|_| bad(spec))?,
                out_width: ps[1].parse().map_err(|_| bad(spec))?,
                amount: ps[2].parse().map_err(|_| bad(spec))?,
            })
        }
        "clock" => {
            let ps = params(rest, 2, spec)?;
            Ok(ElementKind::Clock {
                half_period: ps[0].parse().map_err(|_| bad(spec))?,
                offset: ps[1].parse().map_err(|_| bad(spec))?,
            })
        }
        "pulse" => {
            let ps = params(rest, 2, spec)?;
            Ok(ElementKind::Pulse {
                at: ps[0].parse().map_err(|_| bad(spec))?,
                width: ps[1].parse().map_err(|_| bad(spec))?,
            })
        }
        "lfsr" => {
            let ps = params(rest, 3, spec)?;
            Ok(ElementKind::Lfsr {
                width: ps[0].parse().map_err(|_| bad(spec))?,
                period: ps[1].parse().map_err(|_| bad(spec))?,
                seed: ps[2].parse().map_err(|_| bad(spec))?,
            })
        }
        "const" => {
            let lit = rest.ok_or_else(|| bad(spec))?;
            let value: Value = lit.parse().map_err(|_| bad(spec))?;
            Ok(ElementKind::Const { value })
        }
        "vector" => {
            let rest = rest.ok_or_else(|| bad(spec))?;
            let changes: Result<Vec<(u64, Value)>, String> = rest
                .split(';')
                .map(|pair| {
                    let (t, v) = pair.split_once('@').ok_or_else(|| bad(spec))?;
                    Ok((
                        t.parse::<u64>().map_err(|_| bad(spec))?,
                        v.parse::<Value>().map_err(|_| bad(spec))?,
                    ))
                })
                .collect();
            let changes = changes?;
            if changes.is_empty() {
                return Err(bad(spec));
            }
            Ok(ElementKind::Vector {
                changes: changes.into(),
            })
        }
        "pattern" => {
            let ps = params(rest, 2, spec)?;
            let period: u64 = ps[0].parse().map_err(|_| bad(spec))?;
            let values: Result<Vec<Value>, _> =
                ps[1].split(';').map(|v| v.parse::<Value>()).collect();
            let values = values.map_err(|_| bad(spec))?;
            if values.is_empty() {
                return Err(bad(spec));
            }
            let values: Arc<[Value]> = values.into();
            Ok(ElementKind::Pattern { period, values })
        }
        _ => Err(format!("unknown kind `{mnemonic}`")),
    }
}

fn params(rest: Option<&str>, n: usize, spec: &str) -> Result<Vec<String>, String> {
    let rest = rest.ok_or_else(|| bad(spec))?;
    let ps: Vec<String> = rest.splitn(n, ':').map(str::to_string).collect();
    if ps.len() != n {
        Err(bad(spec))
    } else {
        Ok(ps)
    }
}

fn bad(spec: &str) -> String {
    format!("bad kind spec `{spec}`")
}

fn kind_spec(kind: &ElementKind) -> String {
    match kind {
        ElementKind::Mux { width }
        | ElementKind::Dff { width }
        | ElementKind::DffR { width }
        | ElementKind::Latch { width }
        | ElementKind::TriBuf { width }
        | ElementKind::Resolver { width }
        | ElementKind::Adder { width }
        | ElementKind::Subtractor { width }
        | ElementKind::Multiplier { width }
        | ElementKind::Comparator { width } => format!("{}:{width}", kind.mnemonic()),
        ElementKind::Memory { addr_bits, width } => format!("mem:{addr_bits}:{width}"),
        ElementKind::Slice {
            in_width,
            lo,
            width,
        } => format!("slice:{in_width}:{lo}:{width}"),
        ElementKind::ZeroExt {
            in_width,
            out_width,
        } => format!("zext:{in_width}:{out_width}"),
        ElementKind::Shl {
            in_width,
            out_width,
            amount,
        } => format!("shl:{in_width}:{out_width}:{amount}"),
        ElementKind::Clock {
            half_period,
            offset,
        } => format!("clock:{half_period}:{offset}"),
        ElementKind::Pulse { at, width } => format!("pulse:{at}:{width}"),
        ElementKind::Lfsr {
            width,
            period,
            seed,
        } => format!("lfsr:{width}:{period}:{seed}"),
        ElementKind::Const { value } => format!("const:{value}"),
        ElementKind::Pattern { period, values } => {
            let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            format!("pattern:{period}:{}", vals.join(";"))
        }
        ElementKind::Vector { changes } => {
            let vals: Vec<String> = changes
                .iter()
                .map(|(t, v)| format!("{t}@{v}"))
                .collect();
            format!("vector:{}", vals.join(";"))
        }
        _ => kind.mnemonic().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Time;

    const SAMPLE: &str = "\
# a tiny clocked circuit
node clk 1
node d 1
node q 1

elem osc clock:5:5 delay=1 out=clk
elem ff dff:1 delay=2 in=clk,d out=q
elem inv not delay=1 in=q out=d
";

    #[test]
    fn parses_sample() {
        let n = Netlist::from_text(SAMPLE).unwrap();
        assert_eq!(n.num_nodes(), 3);
        assert_eq!(n.num_elements(), 3);
        let ff = n.element_by_name("ff").unwrap();
        assert_eq!(n.element(ff).delay(), Delay(2));
        assert!(matches!(
            n.element(ff).kind(),
            ElementKind::Dff { width: 1 }
        ));
    }

    #[test]
    fn round_trips() {
        let n = Netlist::from_text(SAMPLE).unwrap();
        let text = n.to_text();
        let n2 = Netlist::from_text(&text).unwrap();
        assert_eq!(n.num_nodes(), n2.num_nodes());
        assert_eq!(n.num_elements(), n2.num_elements());
        assert_eq!(n.to_text(), n2.to_text());
    }

    #[test]
    fn kind_specs_round_trip() {
        let kinds = vec![
            ElementKind::And,
            ElementKind::Mux { width: 4 },
            ElementKind::Adder { width: 8 },
            ElementKind::Multiplier { width: 3 },
            ElementKind::TriBuf { width: 8 },
            ElementKind::Memory {
                addr_bits: 6,
                width: 16,
            },
            ElementKind::Resolver { width: 8 },
            ElementKind::Slice {
                in_width: 16,
                lo: 3,
                width: 3,
            },
            ElementKind::ZeroExt {
                in_width: 6,
                out_width: 32,
            },
            ElementKind::Shl {
                in_width: 6,
                out_width: 32,
                amount: 9,
            },
            ElementKind::Clock {
                half_period: 7,
                offset: 2,
            },
            ElementKind::Pulse { at: 3, width: 9 },
            ElementKind::Lfsr {
                width: 5,
                period: 11,
                seed: 99,
            },
            ElementKind::Const {
                value: "4'b10x1".parse().unwrap(),
            },
            ElementKind::Pattern {
                period: 6,
                values: vec![Value::bit(false), Value::bit(true)].into(),
            },
            ElementKind::Vector {
                changes: vec![(0, Value::bit(false)), (7, Value::bit(true))].into(),
            },
        ];
        for k in kinds {
            let spec = kind_spec(&k);
            let parsed = parse_kind(&spec).unwrap();
            assert_eq!(parsed, k, "spec `{spec}`");
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Netlist::from_text("node a 1\nnode b\n").unwrap_err();
        assert_eq!(err.line(), 2);
        let err = Netlist::from_text("elem g and delay=1 in=a,b out=c\n").unwrap_err();
        assert_eq!(err.line(), 1);
        assert!(err.to_string().contains("unknown node"));
    }

    #[test]
    fn rejects_unknown_kind_and_directive() {
        assert!(Netlist::from_text("weird x\n").is_err());
        assert!(Netlist::from_text("node a 1\nnode y 1\nelem g frobnicate delay=1 in=a out=y\n").is_err());
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let n = Netlist::from_text("# nothing\n\n   \nnode a 1 # trailing\n").unwrap();
        assert_eq!(n.num_nodes(), 1);
    }

    #[test]
    fn parsed_generator_expands() {
        let n = Netlist::from_text("node c 1\nelem osc clock:3:0 delay=1 out=c\n").unwrap();
        let gen = n.generators();
        assert_eq!(gen.len(), 1);
        let ev = parsim_logic::expand_generator(n.element(gen[0]).kind(), Time(10));
        assert!(!ev.is_empty());
    }
}
