//! Typed indices into a [`Netlist`](crate::Netlist).

use std::fmt;

/// Identifier of a node (a net) within one netlist.
///
/// `NodeId`s are dense indices assigned in creation order; they are only
/// meaningful for the netlist that produced them.
///
/// # Examples
///
/// ```
/// use parsim_netlist::NodeId;
///
/// let id = NodeId::from_index(3);
/// assert_eq!(id.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Wraps a raw dense index.
    #[inline]
    pub fn from_index(i: usize) -> NodeId {
        NodeId(i as u32)
    }

    /// The dense index, suitable for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an element (gate, block, or generator) within one netlist.
///
/// # Examples
///
/// ```
/// use parsim_netlist::ElemId;
///
/// assert_eq!(ElemId::from_index(7).to_string(), "e7");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElemId(u32);

impl ElemId {
    /// Wraps a raw dense index.
    #[inline]
    pub fn from_index(i: usize) -> ElemId {
        ElemId(i as u32)
    }

    /// The dense index, suitable for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_index() {
        assert_eq!(NodeId::from_index(42).index(), 42);
        assert_eq!(ElemId::from_index(0).index(), 0);
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
    }
}
