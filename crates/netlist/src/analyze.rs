//! Structural analyses: levelization, strongly connected components, and
//! feedback detection.
//!
//! The paper's §4 observes that feedback paths "prevent complete processing
//! of each node for all time" and serialize the asynchronous algorithm into
//! event-at-a-time pipelining. These analyses let experiments quantify how
//! much of a circuit sits on feedback paths.

use crate::graph::Netlist;
use crate::ids::ElemId;

/// Combinational levelization.
///
/// Returns, for each element, its level: generators and sequential elements
/// are level 0 sources; each combinational element is one more than the
/// deepest combinational input. Elements on purely combinational cycles
/// (which the builder does not forbid — some oscillators are legitimate)
/// are reported in `cyclic` and given level `u32::MAX`.
///
/// # Examples
///
/// ```
/// use parsim_logic::{Delay, ElementKind, Value};
/// use parsim_netlist::{analyze::levelize, Builder};
///
/// # fn main() -> Result<(), parsim_netlist::BuildError> {
/// let mut b = Builder::new();
/// let a = b.node("a", 1);
/// let m = b.node("m", 1);
/// let y = b.node("y", 1);
/// b.element("c", ElementKind::Const { value: Value::bit(true) }, Delay(1), &[], &[a])?;
/// b.element("g1", ElementKind::Not, Delay(1), &[a], &[m])?;
/// b.element("g2", ElementKind::Not, Delay(1), &[m], &[y])?;
/// let n = b.finish()?;
/// let lv = levelize(&n);
/// assert_eq!(lv.max_level, 2);
/// assert!(lv.cyclic.is_empty());
/// # Ok(())
/// # }
/// ```
pub fn levelize(netlist: &Netlist) -> Levelization {
    let n = netlist.num_elements();
    let mut level = vec![0u32; n];
    let mut indegree = vec![0u32; n];
    // Combinational dependency edges: driver -> consumer, skipping edges
    // out of sequential/generator elements (they break timing paths).
    let mut ready: Vec<usize> = Vec::new();
    let mut max_level_init = 0u32;
    for (i, e) in netlist.elements().iter().enumerate() {
        if e.kind().is_generator() || e.kind().is_sequential() {
            ready.push(i);
            continue;
        }
        level[i] = 1; // combinational elements sit at least one level deep
        let mut deg = 0;
        for &inp in e.inputs() {
            if let Some((drv, _)) = netlist.node(inp).driver() {
                let dk = netlist.element(drv).kind();
                if !dk.is_generator() && !dk.is_sequential() {
                    deg += 1;
                }
            }
        }
        indegree[i] = deg;
        if deg == 0 {
            ready.push(i);
            max_level_init = max_level_init.max(1);
        }
    }
    let mut seen = 0usize;
    let mut max_level = max_level_init;
    while let Some(i) = ready.pop() {
        seen += 1;
        let e = &netlist.elements()[i];
        let is_source = e.kind().is_generator() || e.kind().is_sequential();
        for &out in e.outputs() {
            for &(consumer, _) in netlist.node(out).fanout() {
                let c = consumer.index();
                let ck = netlist.element(consumer).kind();
                if ck.is_generator() || ck.is_sequential() || is_source {
                    continue;
                }
                level[c] = level[c].max(level[i] + 1);
                max_level = max_level.max(level[c]);
                indegree[c] -= 1;
                if indegree[c] == 0 {
                    ready.push(c);
                }
            }
        }
    }
    let cyclic: Vec<ElemId> = (0..n)
        .filter(|&i| indegree[i] > 0)
        .map(ElemId::from_index)
        .collect();
    for c in &cyclic {
        level[c.index()] = u32::MAX;
    }
    debug_assert_eq!(seen + cyclic.len(), n);
    Levelization {
        level,
        max_level,
        cyclic,
    }
}

/// Result of [`levelize`].
#[derive(Debug, Clone)]
pub struct Levelization {
    /// Per-element level, indexed by `ElemId::index()`; `u32::MAX` for
    /// elements on combinational cycles.
    pub level: Vec<u32>,
    /// The deepest acyclic combinational level.
    pub max_level: u32,
    /// Elements on purely combinational cycles.
    pub cyclic: Vec<ElemId>,
}

/// Computes the strongly connected components of the element graph
/// (iterative Tarjan), including edges through sequential elements — this
/// is the *feedback* structure the paper's §4 worries about, where a DFF in
/// a loop still forces event-at-a-time processing.
///
/// Returns components in reverse topological order; singleton components
/// without self-loops are included.
pub fn strongly_connected_components(netlist: &Netlist) -> Vec<Vec<ElemId>> {
    let n = netlist.num_elements();
    // Adjacency: element -> elements fed by its outputs.
    let succ = |i: usize| {
        let e = &netlist.elements()[i];
        e.outputs().iter().flat_map(move |&out| {
            netlist
                .node(out)
                .fanout()
                .iter()
                .map(|&(consumer, _)| consumer.index())
        })
    };
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<ElemId>> = Vec::new();
    // Iterative Tarjan with an explicit work stack of (node, child iterator
    // position).
    for start in 0..n {
        if index[start] != usize::MAX {
            continue;
        }
        let mut work: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(&mut (v, ref mut ci)) = work.last_mut() {
            if *ci == 0 {
                index[v] = next_index;
                low[v] = next_index;
                next_index += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            let children: Vec<usize> = succ(v).collect();
            if *ci < children.len() {
                let w = children[*ci];
                *ci += 1;
                if index[w] == usize::MAX {
                    work.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                work.pop();
                if let Some(&mut (parent, _)) = work.last_mut() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w] = false;
                        comp.push(ElemId::from_index(w));
                        if w == v {
                            break;
                        }
                    }
                    comp.sort();
                    comps.push(comp);
                }
            }
        }
    }
    comps
}

/// The longest combinational path through the netlist, weighted by each
/// element's worst-case (max of rise/fall) delay.
///
/// Returns the total delay in ticks and the elements along the path, from
/// source to sink. Elements on combinational cycles are excluded (their
/// "depth" is unbounded); sequential elements and generators bound the
/// path at both ends. Returns `(0, vec![])` for circuits with no
/// combinational logic.
///
/// This is the settling-time bound circuit generators need when choosing
/// stimulus periods and clock half-periods.
///
/// # Examples
///
/// ```
/// use parsim_logic::{Delay, ElementKind, Value};
/// use parsim_netlist::{analyze::critical_path, Builder};
///
/// # fn main() -> Result<(), parsim_netlist::BuildError> {
/// let mut b = Builder::new();
/// let a = b.node("a", 1);
/// let m = b.node("m", 1);
/// let y = b.node("y", 1);
/// b.element("c", ElementKind::Const { value: Value::bit(true) }, Delay(1), &[], &[a])?;
/// b.element("g1", ElementKind::Not, Delay(3), &[a], &[m])?;
/// b.element("g2", ElementKind::Not, Delay(5), &[m], &[y])?;
/// let n = b.finish()?;
/// let (ticks, path) = critical_path(&n);
/// assert_eq!(ticks, 8);
/// assert_eq!(path.len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn critical_path(netlist: &Netlist) -> (u64, Vec<ElemId>) {
    let n = netlist.num_elements();
    let lv = levelize(netlist);
    // Process combinational elements in level order (acyclic by
    // construction; cyclic ones carry level u32::MAX and are skipped).
    let mut order: Vec<usize> = (0..n)
        .filter(|&i| {
            let k = netlist.elements()[i].kind();
            !k.is_generator() && !k.is_sequential() && lv.level[i] != u32::MAX
        })
        .collect();
    order.sort_by_key(|&i| lv.level[i]);
    // arrival[i] = delay-weighted longest path ending at element i
    // (inclusive of i's own delay); pred[i] = previous element on it.
    let mut arrival = vec![0u64; n];
    let mut pred = vec![usize::MAX; n];
    let mut best = (0u64, usize::MAX);
    for &i in &order {
        let e = &netlist.elements()[i];
        let own = e.rise_delay().max(e.fall_delay()).ticks();
        let mut in_arrival = 0u64;
        let mut in_pred = usize::MAX;
        for &inp in e.inputs() {
            if let Some((drv, _)) = netlist.node(inp).driver() {
                let d = drv.index();
                let dk = netlist.element(drv).kind();
                if !dk.is_generator()
                    && !dk.is_sequential()
                    && lv.level[d] != u32::MAX
                    && arrival[d] > in_arrival
                {
                    in_arrival = arrival[d];
                    in_pred = d;
                }
            }
        }
        arrival[i] = in_arrival + own;
        pred[i] = in_pred;
        if arrival[i] > best.0 {
            best = (arrival[i], i);
        }
    }
    if best.1 == usize::MAX {
        return (0, Vec::new());
    }
    let mut path = Vec::new();
    let mut cur = best.1;
    while cur != usize::MAX {
        path.push(ElemId::from_index(cur));
        cur = pred[cur];
    }
    path.reverse();
    (best.0, path)
}

/// Elements that participate in feedback: members of any SCC with more than
/// one element, or with a self-loop.
///
/// # Examples
///
/// ```
/// use parsim_logic::{Delay, ElementKind};
/// use parsim_netlist::{analyze::feedback_elements, Builder};
///
/// # fn main() -> Result<(), parsim_netlist::BuildError> {
/// let mut b = Builder::new();
/// let q = b.node("q", 1);
/// let qn = b.node("qn", 1);
/// b.element("i1", ElementKind::Not, Delay(1), &[q], &[qn])?;
/// b.element("i2", ElementKind::Not, Delay(1), &[qn], &[q])?;
/// let n = b.finish()?;
/// assert_eq!(feedback_elements(&n).len(), 2); // ring oscillator
/// # Ok(())
/// # }
/// ```
pub fn feedback_elements(netlist: &Netlist) -> Vec<ElemId> {
    let mut out = Vec::new();
    for comp in strongly_connected_components(netlist) {
        if comp.len() > 1 {
            out.extend(comp);
        } else {
            let e = comp[0];
            // Self-loop: one of its outputs feeds one of its inputs.
            let elem = netlist.element(e);
            let self_loop = elem.outputs().iter().any(|&o| {
                netlist
                    .node(o)
                    .fanout()
                    .iter()
                    .any(|&(consumer, _)| consumer == e)
            });
            if self_loop {
                out.push(e);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;
    use parsim_logic::{Delay, ElementKind, Value};

    fn chain(len: usize) -> Netlist {
        let mut b = Builder::new();
        let mut prev = b.node("in", 1);
        b.element(
            "src",
            ElementKind::Const {
                value: Value::bit(false),
            },
            Delay(1),
            &[],
            &[prev],
        )
        .unwrap();
        for i in 0..len {
            let next = b.node(&format!("n{i}"), 1);
            b.element(&format!("inv{i}"), ElementKind::Not, Delay(1), &[prev], &[next])
                .unwrap();
            prev = next;
        }
        b.finish().unwrap()
    }

    #[test]
    fn chain_levels_are_depth() {
        let n = chain(5);
        let lv = levelize(&n);
        assert_eq!(lv.max_level, 5);
        assert!(lv.cyclic.is_empty());
    }

    #[test]
    fn ring_oscillator_is_cyclic() {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let c = b.node("c", 1);
        b.element("i1", ElementKind::Not, Delay(1), &[a], &[c])
            .unwrap();
        b.element("i2", ElementKind::Not, Delay(1), &[c], &[a])
            .unwrap();
        let n = b.finish().unwrap();
        let lv = levelize(&n);
        assert_eq!(lv.cyclic.len(), 2);
        let fb = feedback_elements(&n);
        assert_eq!(fb.len(), 2);
    }

    #[test]
    fn dff_breaks_levelization_but_not_feedback() {
        // clk -> dff -> inv -> back to dff.d : sequential loop.
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let q = b.node("q", 1);
        let d = b.node("d", 1);
        b.element(
            "c",
            ElementKind::Clock {
                half_period: 5,
                offset: 5,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        b.element("ff", ElementKind::Dff { width: 1 }, Delay(1), &[clk, d], &[q])
            .unwrap();
        b.element("inv", ElementKind::Not, Delay(1), &[q], &[d])
            .unwrap();
        let n = b.finish().unwrap();
        // Levelization treats the DFF as a source: no combinational cycle.
        let lv = levelize(&n);
        assert!(lv.cyclic.is_empty());
        // But the SCC analysis sees the sequential feedback loop.
        let fb = feedback_elements(&n);
        assert_eq!(fb.len(), 2, "dff and inverter form the loop");
    }

    #[test]
    fn scc_covers_all_elements_once() {
        let n = chain(10);
        let comps = strongly_connected_components(&n);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, n.num_elements());
        let mut ids: Vec<_> = comps.into_iter().flatten().collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), n.num_elements());
    }

    #[test]
    fn acyclic_circuit_has_no_feedback() {
        let n = chain(4);
        assert!(feedback_elements(&n).is_empty());
    }

    #[test]
    fn critical_path_weights_by_delay() {
        // Two parallel paths: 3 cheap gates vs 1 expensive gate.
        let mut b = Builder::new();
        let a = b.node("a", 1);
        b.element(
            "src",
            ElementKind::Const {
                value: Value::bit(false),
            },
            Delay(1),
            &[],
            &[a],
        )
        .unwrap();
        let x1 = b.node("x1", 1);
        let x2 = b.node("x2", 1);
        let x3 = b.node("x3", 1);
        b.element("c1", ElementKind::Not, Delay(2), &[a], &[x1]).unwrap();
        b.element("c2", ElementKind::Not, Delay(2), &[x1], &[x2]).unwrap();
        b.element("c3", ElementKind::Not, Delay(2), &[x2], &[x3]).unwrap();
        let y = b.node("y", 1);
        b.element("big", ElementKind::Buf, Delay(100), &[a], &[y]).unwrap();
        let n = b.finish().unwrap();
        let (ticks, path) = critical_path(&n);
        assert_eq!(ticks, 100, "the single slow gate dominates");
        assert_eq!(path.len(), 1);
        assert_eq!(n.element(path[0]).name(), "big");
    }

    #[test]
    fn critical_path_uses_worst_of_rise_fall() {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let y = b.node("y", 1);
        b.element_with_delays("g", ElementKind::Not, Delay(2), Delay(9), &[a], &[y])
            .unwrap();
        let n = b.finish().unwrap();
        assert_eq!(critical_path(&n).0, 9);
    }

    #[test]
    fn cyclic_and_empty_circuits() {
        let empty = Builder::new().finish().unwrap();
        assert_eq!(critical_path(&empty), (0, vec![]));
        // A ring oscillator: every element cyclic, so no path.
        let mut b = Builder::new();
        let x = b.node("x", 1);
        let yv = b.node("y", 1);
        b.element("i1", ElementKind::Not, Delay(1), &[x], &[yv]).unwrap();
        b.element("i2", ElementKind::Not, Delay(1), &[yv], &[x]).unwrap();
        let ring = b.finish().unwrap();
        assert_eq!(critical_path(&ring).0, 0);
    }
}
