//! Static element partitioning for the compiled-mode algorithm.
//!
//! The paper's compiled-mode simulator statically assigns every element to
//! a processor (§3). Gate-level circuits with many similar elements balance
//! easily; the functional multiplier's ~100 heterogeneous elements do not —
//! which is exactly what these strategies let the experiments demonstrate.

use crate::graph::Netlist;

/// A static assignment of elements to `parts` processors.
///
/// `assignment[e]` is the processor owning element `e`.
///
/// # Examples
///
/// ```
/// use parsim_netlist::partition::{round_robin, Partition};
///
/// let p = round_robin(10, 4);
/// assert_eq!(p.parts(), 4);
/// assert_eq!(p.assignment()[0], 0);
/// assert_eq!(p.assignment()[5], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    parts: usize,
    assignment: Vec<u32>,
}

impl Partition {
    /// Builds a partition from an explicit per-element assignment.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero or any assignment entry is out of range.
    pub fn from_assignment(parts: usize, assignment: Vec<u32>) -> Partition {
        assert!(parts > 0, "parts must be nonzero");
        assert!(
            assignment.iter().all(|&p| (p as usize) < parts),
            "assignment entry out of range"
        );
        Partition { parts, assignment }
    }

    /// The number of parts (processors).
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The per-element processor assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The elements assigned to `part`.
    pub fn members(&self, part: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p as usize == part)
            .map(|(i, _)| i)
            .collect()
    }

    /// The summed cost per part under the given per-element costs.
    ///
    /// # Panics
    ///
    /// Panics if `costs.len()` differs from the number of elements.
    pub fn loads(&self, costs: &[u64]) -> Vec<u64> {
        assert_eq!(costs.len(), self.assignment.len());
        let mut loads = vec![0u64; self.parts];
        for (e, &p) in self.assignment.iter().enumerate() {
            loads[p as usize] += costs[e];
        }
        loads
    }

    /// Load imbalance: `max_load / mean_load` (1.0 is perfect).
    ///
    /// Returns 1.0 for empty partitions.
    pub fn imbalance(&self, costs: &[u64]) -> f64 {
        let loads = self.loads(costs);
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.parts as f64;
        let max = *loads.iter().max().expect("at least one part") as f64;
        max / mean
    }
}

/// Cyclic assignment: element `e` goes to processor `e % parts`.
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn round_robin(num_elements: usize, parts: usize) -> Partition {
    assert!(parts > 0, "parts must be nonzero");
    Partition {
        parts,
        assignment: (0..num_elements).map(|e| (e % parts) as u32).collect(),
    }
}

/// Contiguous block assignment: the first `n/parts` elements to processor
/// 0, and so on. Preserves locality of generated circuits (rows of the
/// inverter array stay together).
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn block(num_elements: usize, parts: usize) -> Partition {
    assert!(parts > 0, "parts must be nonzero");
    let per = num_elements.div_ceil(parts).max(1);
    Partition {
        parts,
        assignment: (0..num_elements)
            .map(|e| ((e / per).min(parts - 1)) as u32)
            .collect(),
    }
}

/// Longest-processing-time greedy balance over per-element evaluation
/// costs. This is the "load-balancing is easy [for homogeneous gates]"
/// versus "dissimilar evaluation times make load-balancing hard" knob from
/// §3 of the paper.
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn lpt(costs: &[u64], parts: usize) -> Partition {
    assert!(parts > 0, "parts must be nonzero");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&e| std::cmp::Reverse(costs[e]));
    let mut loads = vec![0u64; parts];
    let mut assignment = vec![0u32; costs.len()];
    for e in order {
        let (best, _) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .expect("parts > 0");
        assignment[e] = best as u32;
        loads[best] += costs[e];
    }
    Partition { parts, assignment }
}

/// Per-element evaluation costs in inverter-event units (see
/// [`parsim_logic::ElementKind::eval_cost`]).
pub fn element_costs(netlist: &Netlist) -> Vec<u64> {
    netlist
        .elements()
        .iter()
        .map(|e| e.kind().eval_cost())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let p = round_robin(7, 3);
        assert_eq!(p.assignment(), &[0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(p.members(0), vec![0, 3, 6]);
    }

    #[test]
    fn block_is_contiguous() {
        let p = block(10, 3);
        assert_eq!(p.assignment(), &[0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn block_handles_more_parts_than_elements() {
        let p = block(2, 8);
        assert_eq!(p.assignment().len(), 2);
        assert!(p.assignment().iter().all(|&x| (x as usize) < 8));
    }

    #[test]
    fn lpt_balances_heterogeneous_costs() {
        // One expensive element and many cheap ones.
        let mut costs = vec![1u64; 20];
        costs[0] = 20;
        let p = lpt(&costs, 2);
        let loads = p.loads(&costs);
        // LPT puts the big one alone-ish: imbalance stays near 1.
        assert!(p.imbalance(&costs) <= 1.05, "loads: {loads:?}");
    }

    #[test]
    fn lpt_beats_round_robin_on_skewed_costs() {
        let mut costs = vec![1u64; 16];
        for c in costs.iter_mut().step_by(2) {
            *c = 50;
        }
        costs[0] = 400;
        let rr = round_robin(costs.len(), 4).imbalance(&costs);
        let lp = lpt(&costs, 4).imbalance(&costs);
        assert!(lp <= rr, "lpt {lp} vs rr {rr}");
    }

    #[test]
    fn loads_sum_to_total() {
        let costs = vec![3u64, 5, 7, 11];
        for p in [round_robin(4, 2), block(4, 2), lpt(&costs, 2)] {
            assert_eq!(p.loads(&costs).iter().sum::<u64>(), 26);
        }
    }

    #[test]
    fn imbalance_of_perfect_split_is_one() {
        let costs = vec![2u64, 2, 2, 2];
        let p = round_robin(4, 2);
        assert!((p.imbalance(&costs) - 1.0).abs() < 1e-9);
    }
}
