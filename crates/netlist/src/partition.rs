//! Static element partitioning for the compiled-mode and asynchronous
//! engines.
//!
//! The paper's compiled-mode simulator statically assigns every element to
//! a processor (§3). Gate-level circuits with many similar elements balance
//! easily; the functional multiplier's ~100 heterogeneous elements do not —
//! which is exactly what these strategies let the experiments demonstrate.
//!
//! [`cone_cluster`] additionally serves the asynchronous engine's
//! locality-aware scheduler: it clusters elements along fan-out chains so
//! a producer and its consumers share an owner processor, turning the
//! common activation hop into a processor-local push instead of a
//! cross-core grid message.

use crate::graph::Netlist;

/// A static assignment of elements to `parts` processors.
///
/// `assignment[e]` is the processor owning element `e`.
///
/// # Examples
///
/// ```
/// use parsim_netlist::partition::{round_robin, Partition};
///
/// let p = round_robin(10, 4);
/// assert_eq!(p.parts(), 4);
/// assert_eq!(p.assignment()[0], 0);
/// assert_eq!(p.assignment()[5], 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    parts: usize,
    assignment: Vec<u32>,
}

impl Partition {
    /// Builds a partition from an explicit per-element assignment.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero or any assignment entry is out of range.
    pub fn from_assignment(parts: usize, assignment: Vec<u32>) -> Partition {
        assert!(parts > 0, "parts must be nonzero");
        assert!(
            assignment.iter().all(|&p| (p as usize) < parts),
            "assignment entry out of range"
        );
        Partition { parts, assignment }
    }

    /// The number of parts (processors).
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The per-element processor assignment.
    pub fn assignment(&self) -> &[u32] {
        &self.assignment
    }

    /// The elements assigned to `part`.
    pub fn members(&self, part: usize) -> Vec<usize> {
        self.assignment
            .iter()
            .enumerate()
            .filter(|&(_, &p)| p as usize == part)
            .map(|(i, _)| i)
            .collect()
    }

    /// The summed cost per part under the given per-element costs.
    ///
    /// # Panics
    ///
    /// Panics if `costs.len()` differs from the number of elements.
    pub fn loads(&self, costs: &[u64]) -> Vec<u64> {
        assert_eq!(costs.len(), self.assignment.len());
        let mut loads = vec![0u64; self.parts];
        for (e, &p) in self.assignment.iter().enumerate() {
            loads[p as usize] += costs[e];
        }
        loads
    }

    /// Load imbalance: `max_load / mean_load` (1.0 is perfect).
    ///
    /// Returns 1.0 for empty partitions.
    pub fn imbalance(&self, costs: &[u64]) -> f64 {
        let loads = self.loads(costs);
        let total: u64 = loads.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let mean = total as f64 / self.parts as f64;
        let max = *loads.iter().max().expect("at least one part") as f64;
        max / mean
    }
}

/// Cyclic assignment: element `e` goes to processor `e % parts`.
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn round_robin(num_elements: usize, parts: usize) -> Partition {
    assert!(parts > 0, "parts must be nonzero");
    Partition {
        parts,
        assignment: (0..num_elements).map(|e| (e % parts) as u32).collect(),
    }
}

/// Contiguous block assignment: the first `n/parts` elements to processor
/// 0, and so on. Preserves locality of generated circuits (rows of the
/// inverter array stay together).
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn block(num_elements: usize, parts: usize) -> Partition {
    assert!(parts > 0, "parts must be nonzero");
    let per = num_elements.div_ceil(parts).max(1);
    Partition {
        parts,
        assignment: (0..num_elements)
            .map(|e| ((e / per).min(parts - 1)) as u32)
            .collect(),
    }
}

/// Longest-processing-time greedy balance over per-element evaluation
/// costs. This is the "load-balancing is easy [for homogeneous gates]"
/// versus "dissimilar evaluation times make load-balancing hard" knob from
/// §3 of the paper.
///
/// # Panics
///
/// Panics if `parts` is zero.
pub fn lpt(costs: &[u64], parts: usize) -> Partition {
    assert!(parts > 0, "parts must be nonzero");
    let mut order: Vec<usize> = (0..costs.len()).collect();
    order.sort_by_key(|&e| std::cmp::Reverse(costs[e]));
    let mut loads = vec![0u64; parts];
    let mut assignment = vec![0u32; costs.len()];
    for e in order {
        let (best, _) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .expect("parts > 0");
        assignment[e] = best as u32;
        loads[best] += costs[e];
    }
    Partition { parts, assignment }
}

/// Clusters per processor targeted by [`cone_cluster`]: coarse enough
/// that fan-out chains stay whole, fine enough that LPT over the clusters
/// bounds the load imbalance at roughly `1 + 1/GRAIN` of the mean.
const CONE_GRAIN: u64 = 4;

/// Fan-out cone clustering with LPT-balanced cluster weights.
///
/// Grows clusters depth-first along fan-out edges — a producer pulls its
/// consumers into its own cluster — until the cluster reaches a weight cap
/// of about `total_cost / (parts * CONE_GRAIN)`, then LPT-assigns whole
/// clusters to processors by summed evaluation cost. Seeds are taken in
/// topological order (generator-fed elements first) so clusters grow
/// downstream from the stimulus, following the direction activations flow
/// at run time.
///
/// Compared to a hash or round-robin scatter this keeps the common
/// producer→consumer activation hop on one processor (the asynchronous
/// engine turns it into a local-deque push), while the weight cap keeps
/// the per-processor load within `~(1 + 1/CONE_GRAIN)` of perfect balance.
///
/// # Panics
///
/// Panics if `parts` is zero.
///
/// # Examples
///
/// ```
/// use parsim_logic::{Delay, ElementKind};
/// use parsim_netlist::partition::cone_cluster;
/// use parsim_netlist::Builder;
///
/// let mut b = Builder::new();
/// let mut prev = b.node("n0", 1);
/// for i in 0..8 {
///     let next = b.node(&format!("n{}", i + 1), 1);
///     b.element(&format!("inv{i}"), ElementKind::Not, Delay(1), &[prev], &[next]).unwrap();
///     prev = next;
/// }
/// let n = b.finish().unwrap();
/// let p = cone_cluster(&n, 2);
/// assert_eq!(p.parts(), 2);
/// assert_eq!(p.assignment().len(), n.num_elements());
/// ```
pub fn cone_cluster(netlist: &Netlist, parts: usize) -> Partition {
    assert!(parts > 0, "parts must be nonzero");
    let n = netlist.num_elements();
    if parts == 1 || n == 0 {
        return Partition {
            parts,
            assignment: vec![0; n],
        };
    }

    let costs = element_costs(netlist);
    let total: u64 = costs.iter().sum::<u64>().max(1);
    let cap = (total / (parts as u64 * CONE_GRAIN)).max(1);

    // Successor adjacency: e -> every element on the fan-out of e's
    // output nodes. CSR layout to avoid per-element Vecs.
    let mut succ_off = vec![0usize; n + 1];
    for (id, e) in netlist.iter_elements() {
        let deg: usize = e
            .outputs()
            .iter()
            .map(|&o| netlist.node(o).fanout().len())
            .sum();
        succ_off[id.index() + 1] = deg;
    }
    for i in 0..n {
        succ_off[i + 1] += succ_off[i];
    }
    let mut succ = vec![0u32; succ_off[n]];
    {
        let mut cursor = succ_off.clone();
        for (id, e) in netlist.iter_elements() {
            for &o in e.outputs() {
                for &(consumer, _) in netlist.node(o).fanout() {
                    succ[cursor[id.index()]] = consumer.index() as u32;
                    cursor[id.index()] += 1;
                }
            }
        }
    }

    // Seed order: generators and primary (undriven-input) elements first,
    // remaining elements by index — clusters grow downstream from the
    // stimulus, the direction activations travel.
    let mut is_root = vec![true; n];
    for (id, e) in netlist.iter_elements() {
        if !e.kind().is_generator()
            && e.inputs().iter().any(|&i| {
                netlist
                    .node(i)
                    .driver()
                    .is_some_and(|(d, _)| !netlist.element(d).kind().is_generator())
            })
        {
            is_root[id.index()] = false;
        }
    }
    let seeds = (0..n).filter(|&e| is_root[e]).chain((0..n).filter(|&e| !is_root[e]));

    let mut cluster = vec![u32::MAX; n];
    let mut weights: Vec<u64> = Vec::new();
    let mut stack: Vec<usize> = Vec::new();
    for seed in seeds {
        if cluster[seed] != u32::MAX {
            continue;
        }
        let cid = weights.len() as u32;
        weights.push(0);
        stack.clear();
        stack.push(seed);
        while let Some(e) = stack.pop() {
            if cluster[e] != u32::MAX {
                continue;
            }
            cluster[e] = cid;
            weights[cid as usize] += costs[e];
            if weights[cid as usize] >= cap {
                // Cluster is full; unvisited stack residue reseeds later.
                break;
            }
            for &s in &succ[succ_off[e]..succ_off[e + 1]] {
                if cluster[s as usize] == u32::MAX {
                    stack.push(s as usize);
                }
            }
        }
    }

    // LPT over whole clusters.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&c| std::cmp::Reverse(weights[c]));
    let mut loads = vec![0u64; parts];
    let mut cluster_part = vec![0u32; weights.len()];
    for c in order {
        let (best, _) = loads
            .iter()
            .enumerate()
            .min_by_key(|&(_, &l)| l)
            .expect("parts > 0");
        cluster_part[c] = best as u32;
        loads[best] += weights[c];
    }

    Partition {
        parts,
        assignment: cluster.into_iter().map(|c| cluster_part[c as usize]).collect(),
    }
}

/// Per-element evaluation costs in inverter-event units (see
/// [`parsim_logic::ElementKind::eval_cost`]).
pub fn element_costs(netlist: &Netlist) -> Vec<u64> {
    netlist
        .elements()
        .iter()
        .map(|e| e.kind().eval_cost())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles() {
        let p = round_robin(7, 3);
        assert_eq!(p.assignment(), &[0, 1, 2, 0, 1, 2, 0]);
        assert_eq!(p.members(0), vec![0, 3, 6]);
    }

    #[test]
    fn block_is_contiguous() {
        let p = block(10, 3);
        assert_eq!(p.assignment(), &[0, 0, 0, 0, 1, 1, 1, 1, 2, 2]);
    }

    #[test]
    fn block_handles_more_parts_than_elements() {
        let p = block(2, 8);
        assert_eq!(p.assignment().len(), 2);
        assert!(p.assignment().iter().all(|&x| (x as usize) < 8));
    }

    #[test]
    fn lpt_balances_heterogeneous_costs() {
        // One expensive element and many cheap ones.
        let mut costs = vec![1u64; 20];
        costs[0] = 20;
        let p = lpt(&costs, 2);
        let loads = p.loads(&costs);
        // LPT puts the big one alone-ish: imbalance stays near 1.
        assert!(p.imbalance(&costs) <= 1.05, "loads: {loads:?}");
    }

    #[test]
    fn lpt_beats_round_robin_on_skewed_costs() {
        let mut costs = vec![1u64; 16];
        for c in costs.iter_mut().step_by(2) {
            *c = 50;
        }
        costs[0] = 400;
        let rr = round_robin(costs.len(), 4).imbalance(&costs);
        let lp = lpt(&costs, 4).imbalance(&costs);
        assert!(lp <= rr, "lpt {lp} vs rr {rr}");
    }

    #[test]
    fn loads_sum_to_total() {
        let costs = vec![3u64, 5, 7, 11];
        for p in [round_robin(4, 2), block(4, 2), lpt(&costs, 2)] {
            assert_eq!(p.loads(&costs).iter().sum::<u64>(), 26);
        }
    }

    #[test]
    fn imbalance_of_perfect_split_is_one() {
        let costs = vec![2u64, 2, 2, 2];
        let p = round_robin(4, 2);
        assert!((p.imbalance(&costs) - 1.0).abs() < 1e-9);
    }

    use crate::build::Builder;
    use parsim_logic::{Delay, ElementKind};

    /// `chains` independent clock-fed inverter chains of `depth` stages.
    fn chain_circuit(chains: usize, depth: usize) -> Netlist {
        let mut b = Builder::new();
        for c in 0..chains {
            let mut prev = b.node(&format!("clk{c}"), 1);
            b.element(
                &format!("osc{c}"),
                ElementKind::Clock {
                    half_period: 4,
                    offset: 4,
                },
                Delay(1),
                &[],
                &[prev],
            )
            .unwrap();
            for d in 0..depth {
                let next = b.node(&format!("n{c}_{d}"), 1);
                b.element(
                    &format!("inv{c}_{d}"),
                    ElementKind::Not,
                    Delay(1),
                    &[prev],
                    &[next],
                )
                .unwrap();
                prev = next;
            }
        }
        b.finish().unwrap()
    }

    /// Fraction of producer→consumer fan-out edges whose endpoints share
    /// an owner under `p`.
    fn edge_locality(netlist: &Netlist, p: &Partition) -> f64 {
        let a = p.assignment();
        let (mut local, mut total) = (0u64, 0u64);
        for (id, e) in netlist.iter_elements() {
            for &o in e.outputs() {
                for &(consumer, _) in netlist.node(o).fanout() {
                    total += 1;
                    if a[id.index()] == a[consumer.index()] {
                        local += 1;
                    }
                }
            }
        }
        if total == 0 {
            1.0
        } else {
            local as f64 / total as f64
        }
    }

    #[test]
    fn cone_cluster_keeps_whole_chains_on_one_processor() {
        // 8 chains of 8 at 2 parts: cluster cap equals one chain's weight,
        // so every chain becomes one cluster and LPT spreads whole chains.
        let n = chain_circuit(8, 8);
        let p = cone_cluster(&n, 2);
        for c in 0..8 {
            let osc = n.element_by_name(&format!("osc{c}")).unwrap();
            let owner = p.assignment()[osc.index()];
            for d in 0..8 {
                let inv = n.element_by_name(&format!("inv{c}_{d}")).unwrap();
                assert_eq!(
                    p.assignment()[inv.index()],
                    owner,
                    "chain {c} split across processors"
                );
            }
        }
        assert!((edge_locality(&n, &p) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cone_cluster_beats_scatter_on_edge_locality() {
        let n = chain_circuit(6, 10);
        for parts in [2, 4] {
            let cone = cone_cluster(&n, parts);
            let rr = round_robin(n.num_elements(), parts);
            let cone_loc = edge_locality(&n, &cone);
            let rr_loc = edge_locality(&n, &rr);
            assert!(
                cone_loc > rr_loc,
                "{parts} parts: cone {cone_loc:.2} vs rr {rr_loc:.2}"
            );
            assert!(cone_loc >= 0.7, "{parts} parts: locality {cone_loc:.2}");
        }
    }

    #[test]
    fn cone_cluster_balances_loads() {
        let n = chain_circuit(16, 6);
        let costs = element_costs(&n);
        for parts in [2, 3, 4, 8] {
            let p = cone_cluster(&n, parts);
            assert_eq!(p.parts(), parts);
            assert_eq!(p.assignment().len(), n.num_elements());
            let imb = p.imbalance(&costs);
            assert!(
                imb <= 1.0 + 1.0 / CONE_GRAIN as f64 + 0.2,
                "{parts} parts: imbalance {imb:.2}"
            );
        }
    }

    #[test]
    fn cone_cluster_is_deterministic_and_total() {
        let n = chain_circuit(5, 7);
        let a = cone_cluster(&n, 3);
        let b = cone_cluster(&n, 3);
        assert_eq!(a, b);
        assert!(a.assignment().iter().all(|&p| (p as usize) < 3));
    }

    #[test]
    fn cone_cluster_single_part_and_empty() {
        let n = chain_circuit(2, 3);
        let p = cone_cluster(&n, 1);
        assert!(p.assignment().iter().all(|&x| x == 0));
        let empty = Builder::new().finish().unwrap();
        let p = cone_cluster(&empty, 4);
        assert_eq!(p.parts(), 4);
        assert!(p.assignment().is_empty());
    }

    #[test]
    fn cone_cluster_more_parts_than_elements() {
        let n = chain_circuit(1, 2);
        let p = cone_cluster(&n, 16);
        assert_eq!(p.assignment().len(), 3);
        assert!(p.assignment().iter().all(|&x| (x as usize) < 16));
    }
}
