//! Netlist graph, validating builder, text format, and structural analyses.
//!
//! A [`Netlist`] is the circuit representation shared by all four `parsim`
//! simulation engines: a bipartite graph of *nodes* (nets carrying
//! four-state values) and *elements* (gates, functional blocks, and
//! generators from [`parsim_logic::ElementKind`]). Construction goes through
//! the validating [`Builder`]; circuits can also be round-tripped through a
//! small text format ([`Netlist::to_text`] / [`Netlist::from_text`]).
//!
//! Circuits can also be read from the ISCAS `.bench` benchmark format via
//! [`bench_fmt::from_bench`].
//!
//! Structural analyses used by the engines and by the paper's experiments
//! live here too: combinational [`levelize`](analyze::levelize), feedback
//! detection via [`feedback_elements`](analyze::feedback_elements)
//! (§4 discusses how feedback chains serialize the asynchronous algorithm),
//! and the static [`partition`] strategies the compiled-mode algorithm
//! needs.
//!
//! # Examples
//!
//! ```
//! use parsim_logic::{Delay, ElementKind};
//! use parsim_netlist::Builder;
//!
//! # fn main() -> Result<(), parsim_netlist::BuildError> {
//! let mut b = Builder::new();
//! let clk = b.node("clk", 1);
//! let q = b.node("q", 1);
//! let qn = b.node("qn", 1);
//! b.element(
//!     "osc",
//!     ElementKind::Clock { half_period: 5, offset: 5 },
//!     Delay(1),
//!     &[],
//!     &[clk],
//! )?;
//! b.element("ff", ElementKind::Dff { width: 1 }, Delay(1), &[clk, qn], &[q])?;
//! b.element("inv", ElementKind::Not, Delay(1), &[q], &[qn])?;
//! let netlist = b.finish()?;
//! assert_eq!(netlist.num_elements(), 3);
//! # Ok(())
//! # }
//! ```

pub mod analyze;
pub mod bench_fmt;
mod build;
pub mod compile;
pub mod optimize;
mod graph;
mod ids;
mod parse;
pub mod partition;
mod stats;

pub use build::{BuildError, Builder, NetlistError};
pub use graph::{Element, Netlist, Node};
pub use ids::{ElemId, NodeId};
pub use parse::ParseNetlistError;
pub use stats::NetlistStats;
