//! Structural netlist statistics.

use std::collections::BTreeMap;
use std::fmt;

use crate::analyze::feedback_elements;
use crate::graph::Netlist;

/// Structural statistics of a netlist, in the spirit of the authors'
/// companion paper *"Statistics for Parallelism and Abstraction Level in
/// Digital Simulation"* (DAC 1987), which this paper leans on for element
/// activity and event-availability arguments.
///
/// # Examples
///
/// ```
/// use parsim_logic::{Delay, ElementKind, Value};
/// use parsim_netlist::{Builder, NetlistStats};
///
/// # fn main() -> Result<(), parsim_netlist::BuildError> {
/// let mut b = Builder::new();
/// let a = b.node("a", 1);
/// let y = b.node("y", 1);
/// b.element("c", ElementKind::Const { value: Value::bit(true) }, Delay(1), &[], &[a])?;
/// b.element("g", ElementKind::Not, Delay(1), &[a], &[y])?;
/// let stats = NetlistStats::compute(&b.finish()?);
/// assert_eq!(stats.num_elements, 2);
/// assert_eq!(stats.num_generators, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetlistStats {
    /// Total node count.
    pub num_nodes: usize,
    /// Total element count.
    pub num_elements: usize,
    /// Generator elements.
    pub num_generators: usize,
    /// Sequential elements (flip-flops, latches).
    pub num_sequential: usize,
    /// Elements on feedback paths (SCCs of size > 1 or self-loops).
    pub num_feedback: usize,
    /// Instance count per element mnemonic.
    pub kind_counts: BTreeMap<String, usize>,
    /// Mean fan-out over driven nodes.
    pub avg_fanout: f64,
    /// Largest fan-out.
    pub max_fanout: usize,
    /// Total evaluation cost in inverter-event units.
    pub total_cost: u64,
    /// Nodes with no driver (float at X).
    pub undriven_nodes: usize,
}

impl NetlistStats {
    /// Computes statistics for a netlist.
    pub fn compute(netlist: &Netlist) -> NetlistStats {
        let mut kind_counts: BTreeMap<String, usize> = BTreeMap::new();
        let mut num_generators = 0;
        let mut num_sequential = 0;
        let mut total_cost = 0;
        for e in netlist.elements() {
            *kind_counts.entry(e.kind().mnemonic().to_string()).or_insert(0) += 1;
            if e.kind().is_generator() {
                num_generators += 1;
            }
            if e.kind().is_sequential() {
                num_sequential += 1;
            }
            total_cost += e.kind().eval_cost();
        }
        let mut fanout_sum = 0usize;
        let mut max_fanout = 0usize;
        let mut undriven_nodes = 0usize;
        for n in netlist.nodes() {
            fanout_sum += n.fanout().len();
            max_fanout = max_fanout.max(n.fanout().len());
            if n.driver().is_none() {
                undriven_nodes += 1;
            }
        }
        NetlistStats {
            num_nodes: netlist.num_nodes(),
            num_elements: netlist.num_elements(),
            num_generators,
            num_sequential,
            num_feedback: feedback_elements(netlist).len(),
            kind_counts,
            avg_fanout: if netlist.num_nodes() == 0 {
                0.0
            } else {
                fanout_sum as f64 / netlist.num_nodes() as f64
            },
            max_fanout,
            total_cost,
            undriven_nodes,
        }
    }
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} elements, {} nodes ({} undriven)",
            self.num_elements, self.num_nodes, self.undriven_nodes
        )?;
        writeln!(
            f,
            "  generators: {}, sequential: {}, on feedback: {}",
            self.num_generators, self.num_sequential, self.num_feedback
        )?;
        writeln!(
            f,
            "  fanout avg {:.2} max {}, total cost {} inverter-events",
            self.avg_fanout, self.max_fanout, self.total_cost
        )?;
        for (kind, count) in &self.kind_counts {
            writeln!(f, "  {kind:>8}: {count}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;
    use parsim_logic::{Delay, ElementKind};

    #[test]
    fn counts_are_consistent() {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let d = b.node("d", 1);
        let q = b.node("q", 1);
        let floating = b.node("float", 1);
        let _ = floating;
        b.element(
            "c",
            ElementKind::Clock {
                half_period: 2,
                offset: 2,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        b.element("ff", ElementKind::Dff { width: 1 }, Delay(1), &[clk, d], &[q])
            .unwrap();
        b.element("inv", ElementKind::Not, Delay(1), &[q], &[d])
            .unwrap();
        let stats = NetlistStats::compute(&b.finish().unwrap());
        assert_eq!(stats.num_elements, 3);
        assert_eq!(stats.num_generators, 1);
        assert_eq!(stats.num_sequential, 1);
        assert_eq!(stats.num_feedback, 2);
        assert_eq!(stats.undriven_nodes, 1);
        assert_eq!(stats.kind_counts["not"], 1);
        assert!(stats.total_cost >= 4);
        let rendered = stats.to_string();
        assert!(rendered.contains("3 elements"));
    }
}
