//! Netlist → instruction-stream compile pass for the compiled-mode kernel.
//!
//! The paper's §3 engine walks the element graph every step through dynamic
//! dispatch. This pass lowers a [`Netlist`] once, ahead of time, into a
//! flat struct-of-arrays instruction stream that the `parsim-core` kernel
//! executors (scalar and 64-lane packed) iterate directly:
//!
//! - elements are **levelized** (via [`levelize`](crate::analyze::levelize))
//!   and sorted level-major: sequential elements first (level 0), then each
//!   combinational rank, then any combinational-cycle elements last;
//! - node ids are renumbered into **dense value slots** in first-use order
//!   along the stream, so a level's reads and writes stay cache-adjacent;
//! - per instruction the stream stores an [`Opcode`], the input/output slot
//!   lists (CSR layout), the port-0 width, the level bucket, and the
//!   evaluation cost used for LPT balancing.
//!
//! Generators are *not* instructions — the engines replay their expanded
//! schedules directly — but their output nodes still receive slots.

use parsim_logic::ElementKind;

use crate::analyze::levelize;
use crate::graph::Netlist;
use crate::ids::NodeId;
use crate::partition::{lpt, Partition};

/// Dense operation code for one compiled instruction.
///
/// The first block of variants has native word-parallel (64-lane bit-plane)
/// kernels; the rest evaluate through the scalar per-lane fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Opcode {
    /// Multi-input AND.
    And,
    /// Multi-input OR.
    Or,
    /// Multi-input NAND.
    Nand,
    /// Multi-input NOR.
    Nor,
    /// Multi-input XOR.
    Xor,
    /// Multi-input XNOR.
    Xnor,
    /// Inverter.
    Not,
    /// Buffer.
    Buf,
    /// 2:1 multiplexer.
    Mux,
    /// D flip-flop.
    Dff,
    /// D flip-flop with synchronous reset.
    DffR,
    /// Transparent latch.
    Latch,
    /// Tri-state buffer.
    TriBuf,
    /// Ripple-carry adder (two outputs).
    Adder,
    /// Subtractor.
    Subtractor,
    /// Multiplier.
    Multiplier,
    /// Comparator (two outputs).
    Comparator,
    /// Synchronous memory.
    Memory,
    /// Multi-driver resolver.
    Resolver,
    /// Bit-slice extract.
    Slice,
    /// Zero extension.
    ZeroExt,
    /// Constant left shift.
    Shl,
}

impl Opcode {
    /// The opcode for `kind`, or `None` for generators (which compile to
    /// replayed schedules, not instructions).
    pub fn of(kind: &ElementKind) -> Option<Opcode> {
        Some(match kind {
            ElementKind::And => Opcode::And,
            ElementKind::Or => Opcode::Or,
            ElementKind::Nand => Opcode::Nand,
            ElementKind::Nor => Opcode::Nor,
            ElementKind::Xor => Opcode::Xor,
            ElementKind::Xnor => Opcode::Xnor,
            ElementKind::Not => Opcode::Not,
            ElementKind::Buf => Opcode::Buf,
            ElementKind::Mux { .. } => Opcode::Mux,
            ElementKind::Dff { .. } => Opcode::Dff,
            ElementKind::DffR { .. } => Opcode::DffR,
            ElementKind::Latch { .. } => Opcode::Latch,
            ElementKind::TriBuf { .. } => Opcode::TriBuf,
            ElementKind::Adder { .. } => Opcode::Adder,
            ElementKind::Subtractor { .. } => Opcode::Subtractor,
            ElementKind::Multiplier { .. } => Opcode::Multiplier,
            ElementKind::Comparator { .. } => Opcode::Comparator,
            ElementKind::Memory { .. } => Opcode::Memory,
            ElementKind::Resolver { .. } => Opcode::Resolver,
            ElementKind::Slice { .. } => Opcode::Slice,
            ElementKind::ZeroExt { .. } => Opcode::ZeroExt,
            ElementKind::Shl { .. } => Opcode::Shl,
            _ => return None,
        })
    }

    /// True when a native 64-lane bit-plane kernel exists for this op.
    pub fn has_packed_kernel(self) -> bool {
        matches!(
            self,
            Opcode::And
                | Opcode::Or
                | Opcode::Nand
                | Opcode::Nor
                | Opcode::Xor
                | Opcode::Xnor
                | Opcode::Not
                | Opcode::Buf
                | Opcode::Mux
                | Opcode::Dff
                | Opcode::DffR
                | Opcode::Latch
                | Opcode::TriBuf
        )
    }
}

/// A levelized, slot-renumbered struct-of-arrays instruction stream.
///
/// Instruction indices are stream order: level bucket 0 holds the
/// sequential elements, buckets `1..=max_level` the combinational ranks,
/// and a final bucket any elements on combinational cycles. Within a
/// bucket, instructions keep ascending element order, so the stream is
/// deterministic for a given netlist.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    num_elements: usize,
    opcodes: Vec<Opcode>,
    elems: Vec<u32>,
    widths: Vec<u8>,
    costs: Vec<u64>,
    insn_level: Vec<u32>,
    input_start: Vec<u32>,
    inputs: Vec<u32>,
    output_start: Vec<u32>,
    outputs: Vec<u32>,
    levels: Vec<(u32, u32)>,
    slot_of: Vec<u32>,
    node_of: Vec<u32>,
    slot_width: Vec<u8>,
    slot_offset: Vec<u32>,
}

impl CompiledProgram {
    /// Lowers `netlist` into an instruction stream.
    pub fn compile(netlist: &Netlist) -> CompiledProgram {
        let lv = levelize(netlist);
        let has_cyclic = !lv.cyclic.is_empty();
        let num_buckets = lv.max_level as usize + 1 + usize::from(has_cyclic);
        let cyclic_bucket = (num_buckets - 1) as u32;

        // Bucket the non-generator elements level-major, ascending element
        // order within a bucket.
        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); num_buckets];
        for (i, e) in netlist.elements().iter().enumerate() {
            if e.kind().is_generator() {
                continue;
            }
            let b = if lv.level[i] == u32::MAX {
                cyclic_bucket
            } else {
                lv.level[i]
            };
            buckets[b as usize].push(i);
        }

        // Dense slot renumbering: nodes gain slots in first-use order along
        // the stream (inputs then outputs per instruction), then generator
        // outputs, then any untouched nodes.
        let mut slot_of = vec![u32::MAX; netlist.num_nodes()];
        let mut node_of: Vec<u32> = Vec::with_capacity(netlist.num_nodes());
        let assign = |node: NodeId, slot_of: &mut Vec<u32>, node_of: &mut Vec<u32>| {
            let n = node.index();
            if slot_of[n] == u32::MAX {
                slot_of[n] = node_of.len() as u32;
                node_of.push(n as u32);
            }
        };

        let mut opcodes = Vec::new();
        let mut elems = Vec::new();
        let mut widths = Vec::new();
        let mut costs = Vec::new();
        let mut insn_level = Vec::new();
        let mut input_start = vec![0u32];
        let mut inputs = Vec::new();
        let mut output_start = vec![0u32];
        let mut outputs = Vec::new();
        let mut levels = Vec::with_capacity(num_buckets);
        for (b, bucket) in buckets.iter().enumerate() {
            let lo = opcodes.len() as u32;
            for &i in bucket {
                let e = &netlist.elements()[i];
                let op = Opcode::of(e.kind()).expect("generators are not instructions");
                opcodes.push(op);
                elems.push(i as u32);
                widths.push(netlist.node(e.outputs()[0]).width());
                costs.push(e.kind().eval_cost());
                insn_level.push(b as u32);
                for &inp in e.inputs() {
                    assign(inp, &mut slot_of, &mut node_of);
                    inputs.push(slot_of[inp.index()]);
                }
                input_start.push(inputs.len() as u32);
                for &out in e.outputs() {
                    assign(out, &mut slot_of, &mut node_of);
                    outputs.push(slot_of[out.index()]);
                }
                output_start.push(outputs.len() as u32);
            }
            levels.push((lo, opcodes.len() as u32));
        }
        for (id, _) in netlist.iter_nodes() {
            assign(id, &mut slot_of, &mut node_of);
        }

        let slot_width: Vec<u8> = node_of
            .iter()
            .map(|&n| netlist.nodes()[n as usize].width())
            .collect();
        let mut slot_offset = Vec::with_capacity(slot_width.len() + 1);
        let mut off = 0u32;
        for &w in &slot_width {
            slot_offset.push(off);
            off += u32::from(w);
        }
        slot_offset.push(off);

        CompiledProgram {
            num_elements: netlist.num_elements(),
            opcodes,
            elems,
            widths,
            costs,
            insn_level,
            input_start,
            inputs,
            output_start,
            outputs,
            levels,
            slot_of,
            node_of,
            slot_width,
            slot_offset,
        }
    }

    /// Number of instructions (non-generator elements).
    pub fn num_insns(&self) -> usize {
        self.opcodes.len()
    }

    /// Number of elements in the source netlist (including generators).
    pub fn num_elements(&self) -> usize {
        self.num_elements
    }

    /// Number of value slots (== number of nodes).
    pub fn num_slots(&self) -> usize {
        self.node_of.len()
    }

    /// Number of level buckets (sequential + combinational ranks + cyclic).
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The instruction index span of level bucket `b`.
    pub fn level_span(&self, b: usize) -> std::ops::Range<usize> {
        let (lo, hi) = self.levels[b];
        lo as usize..hi as usize
    }

    /// The opcode of instruction `i`.
    pub fn opcode(&self, i: usize) -> Opcode {
        self.opcodes[i]
    }

    /// The source element index of instruction `i`.
    pub fn elem(&self, i: usize) -> usize {
        self.elems[i] as usize
    }

    /// The port-0 output width of instruction `i`.
    pub fn width(&self, i: usize) -> u8 {
        self.widths[i]
    }

    /// The LPT cost of instruction `i` (inverter-event units).
    pub fn cost(&self, i: usize) -> u64 {
        self.costs[i]
    }

    /// The level bucket of instruction `i`.
    pub fn level_of(&self, i: usize) -> u32 {
        self.insn_level[i]
    }

    /// Input slots of instruction `i`, in port order.
    pub fn inputs(&self, i: usize) -> &[u32] {
        &self.inputs[self.input_start[i] as usize..self.input_start[i + 1] as usize]
    }

    /// Output slots of instruction `i`, in port order.
    pub fn outputs(&self, i: usize) -> &[u32] {
        &self.outputs[self.output_start[i] as usize..self.output_start[i + 1] as usize]
    }

    /// The dense slot of `node`.
    pub fn slot_of(&self, node: NodeId) -> u32 {
        self.slot_of[node.index()]
    }

    /// The node behind `slot`.
    pub fn node_of(&self, slot: u32) -> NodeId {
        NodeId::from_index(self.node_of[slot as usize] as usize)
    }

    /// The width of `slot` in bits.
    pub fn slot_width(&self, slot: u32) -> u8 {
        self.slot_width[slot as usize]
    }

    /// Offset of `slot` in a flat per-bit arena (prefix sums of widths).
    pub fn slot_offset(&self, slot: u32) -> usize {
        self.slot_offset[slot as usize] as usize
    }

    /// Total per-bit arena length (sum of all slot widths).
    pub fn total_bits(&self) -> usize {
        *self.slot_offset.last().expect("sentinel") as usize
    }

    /// A static element partition that LPT-balances *within each level
    /// bucket*, so every barrier-separated rank spreads evenly across
    /// `threads` processors. Generators (never evaluated in compiled mode)
    /// go to part 0.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn level_partition(&self, threads: usize) -> Partition {
        assert!(threads > 0, "threads must be nonzero");
        let mut assignment = vec![0u32; self.num_elements];
        for b in 0..self.num_levels() {
            let span = self.level_span(b);
            if span.is_empty() {
                continue;
            }
            let costs: Vec<u64> = span.clone().map(|i| self.cost(i)).collect();
            let sub = lpt(&costs, threads);
            for (k, i) in span.enumerate() {
                assignment[self.elem(i)] = sub.assignment()[k];
            }
        }
        Partition::from_assignment(threads, assignment)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;
    use parsim_logic::{Delay, Value};

    fn diamond() -> Netlist {
        let mut b = Builder::new();
        let clk = b.node("clk", 1);
        let a = b.node("a", 1);
        let x = b.node("x", 1);
        let y = b.node("y", 1);
        let z = b.node("z", 1);
        let q = b.node("q", 1);
        b.element(
            "osc",
            ElementKind::Clock {
                half_period: 2,
                offset: 0,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .unwrap();
        b.element(
            "c",
            ElementKind::Const {
                value: Value::bit(true),
            },
            Delay(1),
            &[],
            &[a],
        )
        .unwrap();
        b.element("g1", ElementKind::Not, Delay(1), &[a], &[x]).unwrap();
        b.element("g2", ElementKind::Not, Delay(1), &[a], &[y]).unwrap();
        b.element("g3", ElementKind::And, Delay(1), &[x, y], &[z]).unwrap();
        b.element(
            "ff",
            ElementKind::Dff { width: 1 },
            Delay(1),
            &[clk, z],
            &[q],
        )
        .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn stream_is_level_major_and_complete() {
        let n = diamond();
        let p = CompiledProgram::compile(&n);
        // 4 non-generator elements become instructions.
        assert_eq!(p.num_insns(), 4);
        assert_eq!(p.num_slots(), n.num_nodes());
        // Levels are monotone along the stream.
        for i in 1..p.num_insns() {
            assert!(p.level_of(i) >= p.level_of(i - 1));
        }
        // The flip-flop sits in bucket 0, ahead of its combinational cone.
        assert_eq!(p.opcode(0), Opcode::Dff);
        assert_eq!(p.level_of(0), 0);
        // g3 depends on g1/g2 and lands in a later bucket.
        let g3 = (0..p.num_insns())
            .find(|&i| p.opcode(i) == Opcode::And)
            .unwrap();
        let g1 = (0..p.num_insns())
            .find(|&i| p.opcode(i) == Opcode::Not)
            .unwrap();
        assert!(p.level_of(g3) > p.level_of(g1));
    }

    #[test]
    fn slots_are_dense_and_invertible() {
        let n = diamond();
        let p = CompiledProgram::compile(&n);
        let mut seen = vec![false; p.num_slots()];
        for (id, _) in n.iter_nodes() {
            let s = p.slot_of(id);
            assert_eq!(p.node_of(s), id);
            assert_eq!(p.slot_width(s), n.node(id).width());
            assert!(!seen[s as usize], "duplicate slot");
            seen[s as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(p.total_bits(), {
            let mut t = 0usize;
            for node in n.nodes() {
                t += node.width() as usize;
            }
            t
        });
    }

    #[test]
    fn instruction_ports_mirror_elements() {
        let n = diamond();
        let p = CompiledProgram::compile(&n);
        for i in 0..p.num_insns() {
            let e = &n.elements()[p.elem(i)];
            assert_eq!(Opcode::of(e.kind()), Some(p.opcode(i)));
            let want_in: Vec<u32> = e.inputs().iter().map(|&x| p.slot_of(x)).collect();
            let want_out: Vec<u32> = e.outputs().iter().map(|&x| p.slot_of(x)).collect();
            assert_eq!(p.inputs(i), &want_in[..]);
            assert_eq!(p.outputs(i), &want_out[..]);
            assert_eq!(p.width(i), n.node(e.outputs()[0]).width());
        }
    }

    #[test]
    fn level_partition_balances_each_rank() {
        let n = diamond();
        let p = CompiledProgram::compile(&n);
        let part = p.level_partition(2);
        assert_eq!(part.parts(), 2);
        assert_eq!(part.assignment().len(), n.num_elements());
        // The two same-level inverters split across the two parts.
        let g1 = n.element_by_name("g1").unwrap().index();
        let g2 = n.element_by_name("g2").unwrap().index();
        assert_ne!(part.assignment()[g1], part.assignment()[g2]);
    }

    #[test]
    fn cyclic_elements_land_in_the_final_bucket() {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let x = b.node("x", 1);
        let y = b.node("y", 1);
        b.element(
            "c",
            ElementKind::Const {
                value: Value::bit(true),
            },
            Delay(1),
            &[],
            &[a],
        )
        .unwrap();
        // A combinational loop: n1 and n2 feed each other.
        b.element("n1", ElementKind::Nand, Delay(1), &[a, y], &[x])
            .unwrap();
        b.element("n2", ElementKind::Nand, Delay(1), &[a, x], &[y])
            .unwrap();
        let n = b.finish().unwrap();
        let p = CompiledProgram::compile(&n);
        assert_eq!(p.num_insns(), 2);
        let last = p.num_levels() - 1;
        assert_eq!(p.level_span(last).len(), 2);
    }
}
