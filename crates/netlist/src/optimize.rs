//! Netlist transforms: dead-logic sweeping.
//!
//! Generated and parsed circuits often carry cones of logic that no
//! observed output depends on (dangling carry-outs, unused decoder
//! terms). [`sweep`] removes every element with no path to a kept node —
//! less work for all four engines.

use std::collections::VecDeque;

use crate::build::Builder;
use crate::graph::Netlist;
use crate::ids::NodeId;

/// The outcome of a [`sweep`].
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The swept netlist.
    pub netlist: Netlist,
    /// Kept-node ids translated into the new netlist, in input order.
    pub kept: Vec<NodeId>,
    /// Elements removed.
    pub removed_elements: usize,
    /// Nodes removed.
    pub removed_nodes: usize,
}

/// Removes every element (and node) with no path to any of the `keep`
/// nodes. Generators survive only if something kept consumes them.
///
/// # Panics
///
/// Panics if any `keep` id is out of range for `netlist`.
///
/// # Examples
///
/// ```
/// use parsim_logic::{Delay, ElementKind, Value};
/// use parsim_netlist::{optimize::sweep, Builder};
///
/// # fn main() -> Result<(), parsim_netlist::BuildError> {
/// let mut b = Builder::new();
/// let a = b.node("a", 1);
/// let used = b.node("used", 1);
/// let dead = b.node("dead", 1);
/// b.element("c", ElementKind::Const { value: Value::bit(true) }, Delay(1), &[], &[a])?;
/// b.element("keepme", ElementKind::Not, Delay(1), &[a], &[used])?;
/// b.element("deadwood", ElementKind::Not, Delay(1), &[a], &[dead])?;
/// let n = b.finish()?;
/// let swept = sweep(&n, &[used]);
/// assert_eq!(swept.removed_elements, 1);
/// assert_eq!(swept.netlist.num_elements(), 2); // const + keepme
/// # Ok(())
/// # }
/// ```
pub fn sweep(netlist: &Netlist, keep: &[NodeId]) -> SweepResult {
    // Reverse reachability over elements: an element is live if any of
    // its outputs is a kept node or feeds a live element.
    let mut live_elem = vec![false; netlist.num_elements()];
    let mut live_node = vec![false; netlist.num_nodes()];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &k in keep {
        assert!(k.index() < netlist.num_nodes(), "keep id out of range");
        if !live_node[k.index()] {
            live_node[k.index()] = true;
            queue.push_back(k);
        }
    }
    while let Some(n) = queue.pop_front() {
        if let Some((drv, _)) = netlist.node(n).driver() {
            if !live_elem[drv.index()] {
                live_elem[drv.index()] = true;
                let e = netlist.element(drv);
                // All outputs of a live element stay (a node cannot lose
                // its driver), and all inputs become live.
                for &out in e.outputs() {
                    live_node[out.index()] = true;
                }
                for &inp in e.inputs() {
                    if !live_node[inp.index()] {
                        live_node[inp.index()] = true;
                        queue.push_back(inp);
                    }
                }
            }
        }
    }

    // Rebuild.
    let mut b = Builder::new();
    let mut map = vec![None::<NodeId>; netlist.num_nodes()];
    for (id, node) in netlist.iter_nodes() {
        if live_node[id.index()] {
            map[id.index()] = Some(b.node(node.name(), node.width()));
        }
    }
    for (id, e) in netlist.iter_elements() {
        if !live_elem[id.index()] {
            continue;
        }
        let inputs: Vec<NodeId> = e
            .inputs()
            .iter()
            .map(|&n| map[n.index()].expect("live element input is live"))
            .collect();
        let outputs: Vec<NodeId> = e
            .outputs()
            .iter()
            .map(|&n| map[n.index()].expect("live element output is live"))
            .collect();
        b.element_with_delays(
            e.name(),
            e.kind().clone(),
            e.rise_delay(),
            e.fall_delay(),
            &inputs,
            &outputs,
        )
        .expect("swept netlist preserves validity");
    }
    let swept = b.finish().expect("swept netlist is valid");
    let kept = keep
        .iter()
        .map(|&k| map[k.index()].expect("kept nodes are live"))
        .collect();
    SweepResult {
        removed_elements: netlist.num_elements()
            - live_elem.iter().filter(|&&l| l).count(),
        removed_nodes: netlist.num_nodes() - live_node.iter().filter(|&&l| l).count(),
        netlist: swept,
        kept,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::{Delay, ElementKind, Value};

    #[test]
    fn keeps_transitive_cone() {
        // chain: const -> g1 -> g2 -> out, plus a dead side branch.
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let m = b.node("m", 1);
        let out = b.node("out", 1);
        let side = b.node("side", 1);
        b.element(
            "c",
            ElementKind::Const {
                value: Value::bit(false),
            },
            Delay(1),
            &[],
            &[a],
        )
        .unwrap();
        b.element("g1", ElementKind::Not, Delay(1), &[a], &[m]).unwrap();
        b.element("g2", ElementKind::Not, Delay(1), &[m], &[out]).unwrap();
        b.element("g3", ElementKind::Not, Delay(1), &[m], &[side]).unwrap();
        let n = b.finish().unwrap();
        let swept = sweep(&n, &[out]);
        assert_eq!(swept.removed_elements, 1);
        assert_eq!(swept.removed_nodes, 1);
        assert_eq!(swept.netlist.num_elements(), 3);
        assert!(swept.netlist.element_by_name("g3").is_none());
        // The kept handle points at the same logical node.
        assert_eq!(swept.netlist.node(swept.kept[0]).name(), "out");
    }

    #[test]
    fn feedback_loops_survive_whole() {
        let mut b = Builder::new();
        let q = b.node("q", 1);
        let qn = b.node("qn", 1);
        b.element("i1", ElementKind::Not, Delay(1), &[q], &[qn]).unwrap();
        b.element("i2", ElementKind::Not, Delay(1), &[qn], &[q]).unwrap();
        let n = b.finish().unwrap();
        let swept = sweep(&n, &[q]);
        assert_eq!(swept.removed_elements, 0);
    }

    #[test]
    fn keeping_nothing_removes_everything() {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let y = b.node("y", 1);
        b.element(
            "c",
            ElementKind::Const {
                value: Value::bit(false),
            },
            Delay(1),
            &[],
            &[a],
        )
        .unwrap();
        b.element("g", ElementKind::Not, Delay(1), &[a], &[y]).unwrap();
        let n = b.finish().unwrap();
        let swept = sweep(&n, &[]);
        assert_eq!(swept.netlist.num_elements(), 0);
        assert_eq!(swept.netlist.num_nodes(), 0);
    }

    #[test]
    fn delays_survive_sweep() {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let y = b.node("y", 1);
        b.element_with_delays("g", ElementKind::Not, Delay(3), Delay(7), &[a], &[y])
            .unwrap();
        let n = b.finish().unwrap();
        let swept = sweep(&n, &[y]);
        let g = swept.netlist.element_by_name("g").unwrap();
        assert_eq!(swept.netlist.element(g).rise_delay(), Delay(3));
        assert_eq!(swept.netlist.element(g).fall_delay(), Delay(7));
    }
}
