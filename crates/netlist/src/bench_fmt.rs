//! The ISCAS `.bench` netlist format.
//!
//! The de-facto benchmark format of 1980s gate-level simulation (ISCAS-85
//! combinational and ISCAS-89 sequential suites):
//!
//! ```text
//! # c17
//! INPUT(1)
//! INPUT(2)
//! OUTPUT(22)
//! 10 = NAND(1, 3)
//! 22 = NAND(10, 16)
//! ```
//!
//! Supported gates: `AND`, `NAND`, `OR`, `NOR`, `XOR`, `XNOR`, `NOT`,
//! `BUF`/`BUFF`, and `DFF` (single-input, clocked by a global clock the
//! options supply). Primary inputs can be left floating or driven by
//! per-input LFSR stimulus.

use std::fmt::Write as _;

use parsim_logic::{Delay, ElementKind};

use crate::build::Builder;
use crate::graph::Netlist;
use crate::ids::NodeId;
use crate::parse::ParseNetlistError;

/// How to treat a `.bench` circuit's primary inputs and flip-flops.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Drive each primary input with an LFSR of this period (`None`
    /// leaves the inputs floating at `X` for the caller to bind).
    pub input_period: Option<u64>,
    /// Base seed for the input LFSRs (each input adds its index).
    pub seed: u64,
    /// Half-period of the global clock generated for `DFF`s.
    pub clock_half_period: u64,
    /// Gate delay applied to every gate.
    pub delay: Delay,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            input_period: Some(16),
            seed: 1,
            clock_half_period: 16,
            delay: Delay(1),
        }
    }
}

/// A parsed `.bench` circuit plus its port lists.
#[derive(Debug, Clone)]
pub struct BenchCircuit {
    /// The constructed netlist.
    pub netlist: Netlist,
    /// Primary inputs, in declaration order.
    pub inputs: Vec<NodeId>,
    /// Primary outputs, in declaration order.
    pub outputs: Vec<NodeId>,
}

/// Parses the ISCAS `.bench` format.
///
/// # Errors
///
/// Returns [`ParseNetlistError`] with the offending 1-based line for
/// syntax errors, unknown gate types, undefined signals, or builder
/// violations.
///
/// # Examples
///
/// ```
/// use parsim_netlist::bench_fmt::{from_bench, BenchOptions};
///
/// let c17 = "\
/// INPUT(1)\nINPUT(2)\nINPUT(3)\nINPUT(6)\nINPUT(7)\n\
/// OUTPUT(22)\nOUTPUT(23)\n\
/// 10 = NAND(1, 3)\n11 = NAND(3, 6)\n16 = NAND(2, 11)\n\
/// 19 = NAND(11, 7)\n22 = NAND(10, 16)\n23 = NAND(16, 19)\n";
/// let c = from_bench(c17, &BenchOptions::default())?;
/// assert_eq!(c.inputs.len(), 5);
/// assert_eq!(c.outputs.len(), 2);
/// assert_eq!(c.netlist.num_elements(), 6 + 5); // gates + input LFSRs
/// # Ok::<(), parsim_netlist::ParseNetlistError>(())
/// ```
pub fn from_bench(text: &str, options: &BenchOptions) -> Result<BenchCircuit, ParseNetlistError> {
    let mut b = Builder::new();
    let mut inputs: Vec<(String, NodeId)> = Vec::new();
    let mut output_names: Vec<(usize, String)> = Vec::new();
    let mut gates: Vec<(usize, String, String, Vec<String>)> = Vec::new();
    let mut needs_clock = false;

    let err = |line: usize, msg: String| ParseNetlistError::new_public(line, msg);

    // Pass 1: collect declarations; create every defined node.
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = strip_call(line, "INPUT") {
            let name = rest.trim();
            if name.is_empty() {
                return Err(err(lineno, "empty INPUT name".to_string()));
            }
            let id = b.node(name, 1);
            inputs.push((name.to_string(), id));
        } else if let Some(rest) = strip_call(line, "OUTPUT") {
            output_names.push((lineno, rest.trim().to_string()));
        } else if let Some((lhs, rhs)) = line.split_once('=') {
            let target = lhs.trim().to_string();
            let rhs = rhs.trim();
            let open = rhs
                .find('(')
                .ok_or_else(|| err(lineno, format!("expected GATE(...) in `{rhs}`")))?;
            if !rhs.ends_with(')') {
                return Err(err(lineno, format!("missing `)` in `{rhs}`")));
            }
            let gate = rhs[..open].trim().to_ascii_uppercase();
            let args: Vec<String> = rhs[open + 1..rhs.len() - 1]
                .split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect();
            if gate == "DFF" {
                needs_clock = true;
            }
            b.node(&target, 1);
            gates.push((lineno, target, gate, args));
        } else {
            return Err(err(lineno, format!("unrecognized line `{line}`")));
        }
    }

    // Optional global clock for DFFs.
    let clock = if needs_clock {
        let clk = b.node("__bench_clk", 1);
        b.element(
            "__bench_clkgen",
            ElementKind::Clock {
                half_period: options.clock_half_period,
                offset: options.clock_half_period,
            },
            Delay(1),
            &[],
            &[clk],
        )
        .map_err(|e| err(0, e.to_string()))?;
        Some(clk)
    } else {
        None
    };

    // Optional input stimulus.
    if let Some(period) = options.input_period {
        for (i, (name, id)) in inputs.iter().enumerate() {
            b.element(
                &format!("__stim_{name}"),
                ElementKind::Lfsr {
                    width: 1,
                    period,
                    seed: options.seed.wrapping_add(i as u64 * 0x9e37),
                },
                Delay(1),
                &[],
                &[*id],
            )
            .map_err(|e| err(0, e.to_string()))?;
        }
    }

    // Pass 2: instantiate gates.
    for (lineno, target, gate, args) in gates {
        let out = b
            .node_id(&target)
            .expect("created in pass 1");
        let resolve = |b: &Builder, name: &str| {
            b.node_id(name)
                .ok_or_else(|| err(lineno, format!("undefined signal `{name}`")))
        };
        let kind = match gate.as_str() {
            "AND" => ElementKind::And,
            "NAND" => ElementKind::Nand,
            "OR" => ElementKind::Or,
            "NOR" => ElementKind::Nor,
            "XOR" => ElementKind::Xor,
            "XNOR" => ElementKind::Xnor,
            "NOT" => ElementKind::Not,
            "BUF" | "BUFF" => ElementKind::Buf,
            "DFF" => {
                if args.len() != 1 {
                    return Err(err(lineno, "DFF takes exactly one input".to_string()));
                }
                let d = resolve(&b, &args[0])?;
                let clk = clock.expect("clock created for DFFs");
                b.element(
                    &format!("g_{target}"),
                    ElementKind::Dff { width: 1 },
                    options.delay,
                    &[clk, d],
                    &[out],
                )
                .map_err(|e| err(lineno, e.to_string()))?;
                continue;
            }
            other => return Err(err(lineno, format!("unknown gate `{other}`"))),
        };
        let ins: Vec<NodeId> = args
            .iter()
            .map(|a| resolve(&b, a))
            .collect::<Result<_, _>>()?;
        b.element(&format!("g_{target}"), kind, options.delay, &ins, &[out])
            .map_err(|e| err(lineno, e.to_string()))?;
    }

    let outputs: Vec<NodeId> = output_names
        .into_iter()
        .map(|(lineno, name)| {
            b.node_id(&name)
                .ok_or_else(|| err(lineno, format!("OUTPUT names undefined signal `{name}`")))
        })
        .collect::<Result<_, _>>()?;
    let netlist = b.finish().map_err(|e| err(0, e.to_string()))?;
    Ok(BenchCircuit {
        netlist,
        inputs: inputs.into_iter().map(|(_, id)| id).collect(),
        outputs,
    })
}

/// Writes a gate-level netlist in `.bench` form.
///
/// # Errors
///
/// Returns the offending element's name if the netlist contains anything
/// the format cannot express (multi-bit nodes, functional blocks, or
/// non-generator elements other than plain gates and `DFF`s). Generators
/// and the `DFF` clock input are dropped — `.bench` has no stimulus.
pub fn to_bench(netlist: &Netlist) -> Result<String, String> {
    let mut out = String::new();
    let _ = writeln!(out, "# exported by parsim");
    // Inputs: generator-driven or undriven 1-bit nodes feeding logic.
    for node in netlist.nodes() {
        if node.width() != 1 {
            return Err(format!("node `{}` is not single-bit", node.name()));
        }
        let generatorish = match node.driver() {
            None => true,
            Some((drv, _)) => netlist.element(drv).kind().is_generator(),
        };
        if generatorish && !node.fanout().is_empty() && !node.name().starts_with("__bench_clk")
        {
            let _ = writeln!(out, "INPUT({})", node.name());
        }
    }
    for node in netlist.nodes() {
        if node.fanout().is_empty() && node.driver().is_some() {
            let drv = node.driver().expect("checked").0;
            if !netlist.element(drv).kind().is_generator() {
                let _ = writeln!(out, "OUTPUT({})", node.name());
            }
        }
    }
    for e in netlist.elements() {
        let gate = match e.kind() {
            ElementKind::And => "AND",
            ElementKind::Nand => "NAND",
            ElementKind::Or => "OR",
            ElementKind::Nor => "NOR",
            ElementKind::Xor => "XOR",
            ElementKind::Xnor => "XNOR",
            ElementKind::Not => "NOT",
            ElementKind::Buf => "BUFF",
            ElementKind::Dff { width: 1 } => "DFF",
            k if k.is_generator() => continue,
            other => return Err(format!("element `{}` ({other}) not expressible", e.name())),
        };
        let target = netlist.node(e.outputs()[0]).name();
        // DFF: drop the clock input (bench DFFs are implicitly clocked).
        let args: Vec<&str> = if gate == "DFF" {
            vec![netlist.node(e.inputs()[1]).name()]
        } else {
            e.inputs().iter().map(|&n| netlist.node(n).name()).collect()
        };
        let _ = writeln!(out, "{target} = {gate}({})", args.join(", "));
    }
    Ok(out)
}

fn strip_call<'a>(line: &'a str, keyword: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(keyword)?.trim_start();
    rest.strip_prefix('(')?.strip_suffix(')')
}

/// The ISCAS-85 `c17` benchmark, the suite's canonical smoke test.
pub const C17: &str = "\
# c17 (ISCAS-85)
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_c17() {
        let c = from_bench(C17, &BenchOptions::default()).unwrap();
        assert_eq!(c.inputs.len(), 5);
        assert_eq!(c.outputs.len(), 2);
        let stats = crate::NetlistStats::compute(&c.netlist);
        assert_eq!(stats.kind_counts["nand"], 6);
        assert_eq!(stats.kind_counts["lfsr"], 5);
    }

    #[test]
    fn floating_inputs_mode() {
        let opts = BenchOptions {
            input_period: None,
            ..Default::default()
        };
        let c = from_bench(C17, &opts).unwrap();
        for &i in &c.inputs {
            assert!(c.netlist.node(i).driver().is_none());
        }
    }

    #[test]
    fn sequential_bench_gets_a_clock() {
        let text = "INPUT(a)\nOUTPUT(q)\nq = DFF(a)\n";
        let c = from_bench(text, &BenchOptions::default()).unwrap();
        assert!(c.netlist.node_by_name("__bench_clk").is_some());
        let q = c.outputs[0];
        let (drv, _) = c.netlist.node(q).driver().unwrap();
        assert!(matches!(
            c.netlist.element(drv).kind(),
            ElementKind::Dff { width: 1 }
        ));
    }

    #[test]
    fn error_reporting() {
        assert!(from_bench("banana\n", &BenchOptions::default()).is_err());
        assert!(from_bench("x = FROB(a)\n", &BenchOptions::default()).is_err());
        let undefined = from_bench("x = NAND(a, b)\n", &BenchOptions::default());
        assert!(undefined.is_err());
        let out_undef = from_bench("OUTPUT(zz)\n", &BenchOptions::default());
        assert!(out_undef.is_err());
    }

    #[test]
    fn round_trips_through_bench_writer() {
        let opts = BenchOptions {
            input_period: None,
            ..Default::default()
        };
        let c = from_bench(C17, &opts).unwrap();
        let text = to_bench(&c.netlist).unwrap();
        let again = from_bench(&text, &opts).unwrap();
        assert_eq!(again.netlist.num_elements(), c.netlist.num_elements());
        assert_eq!(again.inputs.len(), c.inputs.len());
        assert_eq!(again.outputs.len(), c.outputs.len());
    }

    #[test]
    fn rejects_inexpressible_netlists() {
        let mut b = Builder::new();
        let a = b.node("a", 8);
        let y = b.node("y", 8);
        b.element("g", ElementKind::Buf, Delay(1), &[a], &[y])
            .unwrap();
        let n = b.finish().unwrap();
        assert!(to_bench(&n).is_err());
    }
}
