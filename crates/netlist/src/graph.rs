//! The netlist graph: nodes, elements, and fan-out adjacency.

use parsim_logic::{Delay, ElementKind};
use std::collections::HashMap;

use crate::ids::{ElemId, NodeId};

/// A net: a named, width-carrying wire driven by at most one element port.
///
/// Fan-out lists `(element, input port)` pairs; both engines use them to
/// activate downstream elements when the node changes.
#[derive(Debug, Clone)]
pub struct Node {
    pub(crate) name: String,
    pub(crate) width: u8,
    pub(crate) driver: Option<(ElemId, u8)>,
    pub(crate) fanout: Vec<(ElemId, u16)>,
}

impl Node {
    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The node's width in bits.
    pub fn width(&self) -> u8 {
        self.width
    }

    /// The driving `(element, output port)`, if any. Undriven nodes float
    /// at `X` forever.
    pub fn driver(&self) -> Option<(ElemId, u8)> {
        self.driver
    }

    /// The `(element, input port)` pairs this node feeds.
    pub fn fanout(&self) -> &[(ElemId, u16)] {
        &self.fanout
    }
}

/// An instantiated element: a kind, a propagation delay, and its port
/// connections.
#[derive(Debug, Clone)]
pub struct Element {
    pub(crate) name: String,
    pub(crate) kind: ElementKind,
    pub(crate) delay: Delay,
    pub(crate) fall: Delay,
    pub(crate) inputs: Vec<NodeId>,
    pub(crate) outputs: Vec<NodeId>,
}

impl Element {
    /// The element's instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The element's model.
    pub fn kind(&self) -> &ElementKind {
        &self.kind
    }

    /// The rise propagation delay (and the fall delay too, for elements
    /// built with a single symmetric delay).
    pub fn delay(&self) -> Delay {
        self.delay
    }

    /// The rise propagation delay (output transitions toward 1).
    pub fn rise_delay(&self) -> Delay {
        self.delay
    }

    /// The fall propagation delay (output transitions toward 0).
    pub fn fall_delay(&self) -> Delay {
        self.fall
    }

    /// The smaller of the rise and fall delays — the engines' conservative
    /// bound for validity propagation.
    pub fn min_delay(&self) -> Delay {
        self.delay.min(self.fall)
    }

    /// Input nodes in port order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Output nodes in port order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }
}

/// An immutable, validated circuit graph.
///
/// Create one with [`Builder`](crate::Builder) or parse the text format via
/// [`Netlist::from_text`]. All four simulation engines take a `&Netlist`
/// and never mutate it, so one netlist can back many concurrent
/// simulations.
///
/// # Examples
///
/// ```
/// use parsim_logic::{Delay, ElementKind};
/// use parsim_netlist::Builder;
///
/// # fn main() -> Result<(), parsim_netlist::BuildError> {
/// let mut b = Builder::new();
/// let a = b.node("a", 1);
/// let y = b.node("y", 1);
/// b.element("inv", ElementKind::Not, Delay(1), &[a], &[y])?;
/// let n = b.finish()?;
/// assert_eq!(n.node_by_name("y").map(|id| n.node(id).width()), Some(1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) nodes: Vec<Node>,
    pub(crate) elements: Vec<Element>,
    pub(crate) node_names: HashMap<String, NodeId>,
    pub(crate) elem_names: HashMap<String, ElemId>,
}

impl Netlist {
    /// The number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// The number of elements.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Looks up an element.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this netlist.
    pub fn element(&self, id: ElemId) -> &Element {
        &self.elements[id.index()]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// All elements in id order.
    pub fn elements(&self) -> &[Element] {
        &self.elements
    }

    /// Iterates over `(id, node)` pairs.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_index(i), n))
    }

    /// Iterates over `(id, element)` pairs.
    pub fn iter_elements(&self) -> impl Iterator<Item = (ElemId, &Element)> {
        self.elements
            .iter()
            .enumerate()
            .map(|(i, e)| (ElemId::from_index(i), e))
    }

    /// Finds a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.node_names.get(name).copied()
    }

    /// Finds an element by name.
    pub fn element_by_name(&self, name: &str) -> Option<ElemId> {
        self.elem_names.get(name).copied()
    }

    /// Ids of all generator elements (the paper's "gen" elements).
    pub fn generators(&self) -> Vec<ElemId> {
        self.iter_elements()
            .filter(|(_, e)| e.kind.is_generator())
            .map(|(id, _)| id)
            .collect()
    }

    /// The largest element delay, used by engines sizing timing wheels.
    pub fn max_delay(&self) -> Delay {
        self.elements
            .iter()
            .map(|e| e.delay.max(e.fall))
            .max()
            .unwrap_or(Delay(0))
    }

    /// The smallest element delay.
    pub fn min_delay(&self) -> Delay {
        self.elements
            .iter()
            .map(|e| e.delay.min(e.fall))
            .min()
            .unwrap_or(Delay(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::Builder;
    use parsim_logic::Value;

    fn tiny() -> Netlist {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let y = b.node("y", 1);
        b.element(
            "src",
            ElementKind::Const {
                value: Value::bit(true),
            },
            Delay(1),
            &[],
            &[a],
        )
        .unwrap();
        b.element("inv", ElementKind::Not, Delay(2), &[a], &[y])
            .unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn lookups_work() {
        let n = tiny();
        let a = n.node_by_name("a").unwrap();
        assert_eq!(n.node(a).name(), "a");
        assert_eq!(n.node(a).fanout().len(), 1);
        let inv = n.element_by_name("inv").unwrap();
        assert_eq!(n.element(inv).inputs(), &[a]);
        assert_eq!(n.element(inv).delay(), Delay(2));
        assert!(n.node_by_name("zzz").is_none());
    }

    #[test]
    fn generators_and_delays() {
        let n = tiny();
        assert_eq!(n.generators().len(), 1);
        assert_eq!(n.max_delay(), Delay(2));
        assert_eq!(n.min_delay(), Delay(1));
    }

    #[test]
    fn driver_tracking() {
        let n = tiny();
        let y = n.node_by_name("y").unwrap();
        let (drv, port) = n.node(y).driver().unwrap();
        assert_eq!(n.element(drv).name(), "inv");
        assert_eq!(port, 0);
    }
}
