//! Validating netlist construction.

use std::collections::HashMap;
use std::error::Error;
use std::fmt;

use parsim_logic::{Delay, ElementKind};

use crate::graph::{Element, Netlist, Node};
use crate::ids::{ElemId, NodeId};

/// Errors detected while building a netlist.
///
/// # Examples
///
/// ```
/// use parsim_logic::{Delay, ElementKind};
/// use parsim_netlist::{BuildError, Builder};
///
/// let mut b = Builder::new();
/// let a = b.node("a", 1);
/// let err = b
///     .element("bad", ElementKind::Not, Delay(1), &[a, a], &[a])
///     .unwrap_err();
/// assert!(matches!(err, BuildError::Arity { .. }));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// An element was connected to the wrong number of inputs.
    Arity { element: String, detail: String },
    /// An element was connected to the wrong number of outputs.
    OutputCount {
        element: String,
        expected: usize,
        got: usize,
    },
    /// A port was connected to a node of the wrong width.
    Width {
        element: String,
        port: String,
        expected: u8,
        got: u8,
    },
    /// Two elements drive the same node.
    MultipleDrivers { node: String },
    /// Two nodes or two elements share a name.
    DuplicateName { name: String },
    /// An element delay of zero, which the asynchronous engine cannot
    /// accept (valid times must strictly advance around feedback loops).
    ZeroDelay { element: String },
    /// A node id from a different builder.
    UnknownNode { element: String },
    /// A node width outside `1..=64`.
    InvalidWidth { name: String, width: u8 },
    /// A fan-out or driver entry that does not cross-reference an actual
    /// element port — the graph invariant every engine's unchecked indexing
    /// relies on. Unreachable through [`Builder`]; guards netlists
    /// assembled or transformed by other code.
    DanglingFanout { node: String, detail: String },
    /// A zero-delay element on a feedback path, around which valid times
    /// could not strictly advance (the asynchronous engine would livelock).
    ZeroDelayCycle { element: String },
}

/// The full netlist construction/validation error type.
///
/// Alias of [`BuildError`]: eager per-element checks and the global
/// [`Netlist::validate`](crate::Netlist::validate) pass report through the
/// same enum.
pub type NetlistError = BuildError;

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Arity { element, detail } => {
                write!(f, "element `{element}`: {detail}")
            }
            BuildError::OutputCount {
                element,
                expected,
                got,
            } => write!(
                f,
                "element `{element}` expects {expected} outputs, got {got}"
            ),
            BuildError::Width {
                element,
                port,
                expected,
                got,
            } => write!(
                f,
                "element `{element}` port {port} expects width {expected}, got {got}"
            ),
            BuildError::MultipleDrivers { node } => {
                write!(f, "node `{node}` has multiple drivers")
            }
            BuildError::DuplicateName { name } => write!(f, "duplicate name `{name}`"),
            BuildError::ZeroDelay { element } => write!(
                f,
                "element `{element}` has zero delay; all delays must be >= 1 tick"
            ),
            BuildError::UnknownNode { element } => {
                write!(f, "element `{element}` references an unknown node")
            }
            BuildError::InvalidWidth { name, width } => {
                write!(f, "node `{name}` has width {width}; widths must be 1..=64")
            }
            BuildError::DanglingFanout { node, detail } => {
                write!(f, "node `{node}` has a dangling connection: {detail}")
            }
            BuildError::ZeroDelayCycle { element } => write!(
                f,
                "element `{element}` sits on a feedback path with zero delay; \
                 valid times cannot advance around the loop"
            ),
        }
    }
}

impl Error for BuildError {}

/// Incrementally constructs a validated [`Netlist`].
///
/// Nodes are created first with [`Builder::node`]; elements connect them
/// with [`Builder::element`]. Every connection is checked eagerly — arity,
/// port widths, single-driver rule, nonzero delay — so a successful
/// [`Builder::finish`] yields a netlist every engine can run without
/// further checks.
///
/// # Examples
///
/// ```
/// use parsim_logic::{Delay, ElementKind, Value};
/// use parsim_netlist::Builder;
///
/// # fn main() -> Result<(), parsim_netlist::BuildError> {
/// let mut b = Builder::new();
/// let a = b.node("a", 1);
/// let y = b.node("y", 1);
/// b.element(
///     "c",
///     ElementKind::Const { value: Value::bit(true) },
///     Delay(1),
///     &[],
///     &[a],
/// )?;
/// b.element("g", ElementKind::Buf, Delay(1), &[a], &[y])?;
/// let netlist = b.finish()?;
/// assert_eq!(netlist.num_nodes(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Builder {
    nodes: Vec<Node>,
    elements: Vec<Element>,
    node_names: HashMap<String, NodeId>,
    elem_names: HashMap<String, ElemId>,
    auto_node: u64,
}

impl Builder {
    /// Creates an empty builder.
    pub fn new() -> Builder {
        Builder::default()
    }

    /// Declares a node.
    ///
    /// If `name` is already taken, a unique suffix is appended (duplicate
    /// declarations are common in generated circuits; the final netlist
    /// still has unique names). Returns the node's id.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64. Use
    /// [`Builder::try_node`] to get a typed error instead.
    pub fn node(&mut self, name: &str, width: u8) -> NodeId {
        match self.try_node(name, width) {
            Ok(id) => id,
            Err(e) => panic!("node width must be 1..=64: {e}"),
        }
    }

    /// Declares a node, reporting an invalid width as a typed error
    /// instead of panicking (the non-panicking form of [`Builder::node`]).
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::InvalidWidth`] if `width` is 0 or greater
    /// than 64.
    pub fn try_node(&mut self, name: &str, width: u8) -> Result<NodeId, BuildError> {
        if !(1..=64).contains(&width) {
            return Err(BuildError::InvalidWidth {
                name: name.to_string(),
                width,
            });
        }
        let id = NodeId::from_index(self.nodes.len());
        let mut unique = name.to_string();
        while self.node_names.contains_key(&unique) {
            self.auto_node += 1;
            unique = format!("{name}__{}", self.auto_node);
        }
        self.node_names.insert(unique.clone(), id);
        self.nodes.push(Node {
            name: unique,
            width,
            driver: None,
            fanout: Vec::new(),
        });
        Ok(id)
    }

    /// Looks up a previously declared node by name.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.node_names.get(name).copied()
    }

    /// Declares a fresh anonymous node.
    pub fn fresh(&mut self, width: u8) -> NodeId {
        self.auto_node += 1;
        let name = format!("_t{}", self.auto_node);
        self.node(&name, width)
    }

    /// Instantiates an element connecting `inputs` to `outputs`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if the arity, output count, any port width,
    /// the single-driver rule, or the nonzero-delay rule is violated.
    pub fn element(
        &mut self,
        name: &str,
        kind: ElementKind,
        delay: Delay,
        inputs: &[NodeId],
        outputs: &[NodeId],
    ) -> Result<ElemId, BuildError> {
        self.element_with_delays(name, kind, delay, delay, inputs, outputs)
    }

    /// Instantiates an element with an asymmetric rise/fall delay pair:
    /// output transitions toward 1 take `rise` ticks, toward 0 take
    /// `fall` ticks; vector or unknown transitions take the larger. A
    /// pulse shorter than the delay difference is stretched rather than
    /// cancelled (the engines keep each node's event times monotone), a
    /// transport-delay approximation all four engines apply identically.
    ///
    /// # Errors
    ///
    /// Same as [`Builder::element`], with the zero-delay rule applied to
    /// both delays.
    pub fn element_with_delays(
        &mut self,
        name: &str,
        kind: ElementKind,
        rise: Delay,
        fall: Delay,
        inputs: &[NodeId],
        outputs: &[NodeId],
    ) -> Result<ElemId, BuildError> {
        let delay = rise;
        let ename = name.to_string();
        if self.elem_names.contains_key(&ename) {
            return Err(BuildError::DuplicateName { name: ename });
        }
        if (delay.ticks() == 0 || fall.ticks() == 0) && !kind.is_generator() {
            return Err(BuildError::ZeroDelay { element: ename });
        }
        kind.check_arity(inputs.len())
            .map_err(|e| BuildError::Arity {
                element: ename.clone(),
                detail: e.to_string(),
            })?;
        if outputs.len() != kind.num_outputs() {
            return Err(BuildError::OutputCount {
                element: ename,
                expected: kind.num_outputs(),
                got: outputs.len(),
            });
        }
        for &n in inputs.iter().chain(outputs) {
            if n.index() >= self.nodes.len() {
                return Err(BuildError::UnknownNode { element: ename });
            }
        }
        self.check_widths(&ename, &kind, inputs, outputs)?;
        // Single-driver rule.
        for &out in outputs {
            if self.nodes[out.index()].driver.is_some() {
                return Err(BuildError::MultipleDrivers {
                    node: self.nodes[out.index()].name.clone(),
                });
            }
        }
        let id = ElemId::from_index(self.elements.len());
        for (port, &inp) in inputs.iter().enumerate() {
            self.nodes[inp.index()].fanout.push((id, port as u16));
        }
        for (port, &out) in outputs.iter().enumerate() {
            self.nodes[out.index()].driver = Some((id, port as u8));
        }
        self.elem_names.insert(ename.clone(), id);
        self.elements.push(Element {
            name: ename,
            kind,
            delay,
            fall,
            inputs: inputs.to_vec(),
            outputs: outputs.to_vec(),
        });
        Ok(id)
    }

    fn check_widths(
        &self,
        ename: &str,
        kind: &ElementKind,
        inputs: &[NodeId],
        outputs: &[NodeId],
    ) -> Result<(), BuildError> {
        let w = |n: NodeId| self.nodes[n.index()].width;
        let expect = |port: &str, expected: u8, got: u8| -> Result<(), BuildError> {
            if expected == got {
                Ok(())
            } else {
                Err(BuildError::Width {
                    element: ename.to_string(),
                    port: port.to_string(),
                    expected,
                    got,
                })
            }
        };
        if kind.is_width_generic() {
            // All inputs and the output share the first input's width.
            let base = w(inputs[0]);
            for (i, &inp) in inputs.iter().enumerate() {
                expect(&format!("in{i}"), base, w(inp))?;
            }
            expect("out0", base, w(outputs[0]))?;
            return Ok(());
        }
        match kind {
            ElementKind::Mux { width } => {
                expect("sel", 1, w(inputs[0]))?;
                expect("a", *width, w(inputs[1]))?;
                expect("b", *width, w(inputs[2]))?;
                expect("out", *width, w(outputs[0]))?;
            }
            ElementKind::Dff { width }
            | ElementKind::Latch { width }
            | ElementKind::TriBuf { width } => {
                expect("clk/en", 1, w(inputs[0]))?;
                expect("d", *width, w(inputs[1]))?;
                expect("q", *width, w(outputs[0]))?;
            }
            ElementKind::Memory { addr_bits, width } => {
                if *addr_bits == 0 || *addr_bits > 12 {
                    return Err(BuildError::Arity {
                        element: ename.to_string(),
                        detail: "memory addr_bits must be 1..=12".to_string(),
                    });
                }
                expect("clk", 1, w(inputs[0]))?;
                expect("we", 1, w(inputs[1]))?;
                expect("addr", *addr_bits, w(inputs[2]))?;
                expect("wdata", *width, w(inputs[3]))?;
                expect("rdata", *width, w(outputs[0]))?;
            }
            ElementKind::Resolver { width } => {
                for (i, &inp) in inputs.iter().enumerate() {
                    expect(&format!("in{i}"), *width, w(inp))?;
                }
                expect("out", *width, w(outputs[0]))?;
            }
            ElementKind::DffR { width } => {
                expect("clk", 1, w(inputs[0]))?;
                expect("d", *width, w(inputs[1]))?;
                expect("rst", 1, w(inputs[2]))?;
                expect("q", *width, w(outputs[0]))?;
            }
            ElementKind::Adder { width } => {
                expect("a", *width, w(inputs[0]))?;
                expect("b", *width, w(inputs[1]))?;
                expect("cin", 1, w(inputs[2]))?;
                expect("sum", *width, w(outputs[0]))?;
                expect("cout", 1, w(outputs[1]))?;
            }
            ElementKind::Subtractor { width } => {
                expect("a", *width, w(inputs[0]))?;
                expect("b", *width, w(inputs[1]))?;
                expect("diff", *width, w(outputs[0]))?;
            }
            ElementKind::Multiplier { width } => {
                expect("a", *width, w(inputs[0]))?;
                expect("b", *width, w(inputs[1]))?;
                expect("p", kind.output_width(0), w(outputs[0]))?;
            }
            ElementKind::Comparator { width } => {
                expect("a", *width, w(inputs[0]))?;
                expect("b", *width, w(inputs[1]))?;
                expect("eq", 1, w(outputs[0]))?;
                expect("lt", 1, w(outputs[1]))?;
            }
            ElementKind::Slice {
                in_width,
                lo,
                width,
            } => {
                if *lo as u16 + *width as u16 > *in_width as u16 {
                    return Err(BuildError::Arity {
                        element: ename.to_string(),
                        detail: "slice range exceeds input width".to_string(),
                    });
                }
                expect("in", *in_width, w(inputs[0]))?;
                expect("out", *width, w(outputs[0]))?;
            }
            ElementKind::ZeroExt {
                in_width,
                out_width,
            } => {
                if out_width < in_width {
                    return Err(BuildError::Arity {
                        element: ename.to_string(),
                        detail: "zero-extension must not narrow".to_string(),
                    });
                }
                expect("in", *in_width, w(inputs[0]))?;
                expect("out", *out_width, w(outputs[0]))?;
            }
            ElementKind::Shl {
                in_width,
                out_width,
                amount,
            } => {
                if *amount as u16 + *in_width as u16 > 64 {
                    return Err(BuildError::Arity {
                        element: ename.to_string(),
                        detail: "shift amount plus input width exceeds 64".to_string(),
                    });
                }
                expect("in", *in_width, w(inputs[0]))?;
                expect("out", *out_width, w(outputs[0]))?;
            }
            // Generators: output width fixed by the kind.
            k if k.is_generator() => {
                expect("out", k.output_width(0), w(outputs[0]))?;
            }
            _ => {}
        }
        Ok(())
    }

    /// Instantiates `sub` as a subcircuit.
    ///
    /// Every node and element of `sub` is copied with its name prefixed
    /// `"{prefix}."`, except nodes listed in `bindings`, which are
    /// redirected to existing nodes of this builder (the instance's
    /// ports). Returns the mapping from `sub`'s node names to the node
    /// ids used in this builder.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if a binding names an unknown node of
    /// `sub`, a bound node's width differs, or copying an element violates
    /// the usual rules (e.g. binding an internally driven node to a node
    /// that already has a driver).
    ///
    /// # Examples
    ///
    /// ```
    /// use parsim_logic::{Delay, ElementKind};
    /// use parsim_netlist::Builder;
    ///
    /// # fn main() -> Result<(), parsim_netlist::BuildError> {
    /// // A reusable inverter cell.
    /// let mut cell = Builder::new();
    /// let a = cell.node("a", 1);
    /// let y = cell.node("y", 1);
    /// cell.element("inv", ElementKind::Not, Delay(1), &[a], &[y])?;
    /// let cell = cell.finish()?;
    ///
    /// // Two chained instances.
    /// let mut top = Builder::new();
    /// let input = top.node("in", 1);
    /// let mid = top.node("mid", 1);
    /// let out = top.node("out", 1);
    /// top.instantiate(&cell, "u0", &[("a", input), ("y", mid)])?;
    /// top.instantiate(&cell, "u1", &[("a", mid), ("y", out)])?;
    /// let n = top.finish()?;
    /// assert_eq!(n.num_elements(), 2);
    /// assert!(n.element_by_name("u0.inv").is_some());
    /// # Ok(())
    /// # }
    /// ```
    pub fn instantiate(
        &mut self,
        sub: &Netlist,
        prefix: &str,
        bindings: &[(&str, NodeId)],
    ) -> Result<HashMap<String, NodeId>, BuildError> {
        // Resolve bindings against the subcircuit.
        let mut map: HashMap<String, NodeId> = HashMap::new();
        for &(name, target) in bindings {
            let sub_node = sub.node_by_name(name).ok_or_else(|| BuildError::Arity {
                element: format!("{prefix}.{name}"),
                detail: "binding names a node the subcircuit does not have".to_string(),
            })?;
            let expected = sub.node(sub_node).width();
            let got = self.nodes[target.index()].width;
            if expected != got {
                return Err(BuildError::Width {
                    element: format!("{prefix} (instance)"),
                    port: name.to_string(),
                    expected,
                    got,
                });
            }
            map.insert(name.to_string(), target);
        }
        // Copy unbound nodes with prefixed names.
        for (_, node) in sub.iter_nodes() {
            if !map.contains_key(node.name()) {
                let id = self.node(&format!("{prefix}.{}", node.name()), node.width());
                map.insert(node.name().to_string(), id);
            }
        }
        // Copy elements, rewiring through the map.
        for (_, e) in sub.iter_elements() {
            let inputs: Vec<NodeId> = e
                .inputs()
                .iter()
                .map(|&n| map[sub.node(n).name()])
                .collect();
            let outputs: Vec<NodeId> = e
                .outputs()
                .iter()
                .map(|&n| map[sub.node(n).name()])
                .collect();
            self.element_with_delays(
                &format!("{prefix}.{}", e.name()),
                e.kind().clone(),
                e.rise_delay(),
                e.fall_delay(),
                &inputs,
                &outputs,
            )?;
        }
        Ok(map)
    }

    /// Finalizes the netlist, running the global [`Netlist::validate`]
    /// pass over the assembled graph.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DanglingFanout`] or
    /// [`BuildError::ZeroDelayCycle`] if a global invariant is violated.
    /// Unreachable for graphs built purely through this builder's checked
    /// methods (the eager checks subsume the global ones), but load-bearing
    /// for netlists assembled by transformation passes.
    pub fn finish(self) -> Result<Netlist, BuildError> {
        let netlist = Netlist {
            nodes: self.nodes,
            elements: self.elements,
            node_names: self.node_names,
            elem_names: self.elem_names,
        };
        netlist.validate()?;
        Ok(netlist)
    }
}

impl Netlist {
    /// Checks the global graph invariants every engine's unchecked indexing
    /// relies on: fan-out/driver cross-references must name real element
    /// ports, and no zero-delay element may sit on a feedback path.
    ///
    /// [`Builder::finish`] runs this automatically; call it directly after
    /// hand-assembling or transforming a netlist outside the builder.
    ///
    /// # Errors
    ///
    /// Returns [`BuildError::DanglingFanout`] for a fan-out entry whose
    /// element does not read the node at that port (or a driver entry whose
    /// element does not write it), and [`BuildError::ZeroDelayCycle`] for a
    /// zero-delay element inside a strongly connected component, around
    /// which valid times could not strictly advance.
    pub fn validate(&self) -> Result<(), NetlistError> {
        for (id, node) in self.iter_nodes() {
            for &(elem, port) in node.fanout() {
                let ok = elem.index() < self.num_elements()
                    && self.element(elem).inputs().get(port as usize) == Some(&id);
                if !ok {
                    return Err(BuildError::DanglingFanout {
                        node: node.name().to_string(),
                        detail: format!(
                            "fan-out entry names element #{} input port {port}, \
                             which does not read this node",
                            elem.index()
                        ),
                    });
                }
            }
            if let Some((elem, port)) = node.driver() {
                let ok = elem.index() < self.num_elements()
                    && self.element(elem).outputs().get(port as usize) == Some(&id);
                if !ok {
                    return Err(BuildError::DanglingFanout {
                        node: node.name().to_string(),
                        detail: format!(
                            "driver entry names element #{} output port {port}, \
                             which does not write this node",
                            elem.index()
                        ),
                    });
                }
            }
        }
        // Feedback requires strictly advancing valid times: every element
        // on a cycle (through any mix of combinational and sequential
        // elements) must have nonzero delay. The per-element eager check
        // already forbids zero-delay non-generators, so this only fires on
        // hand-assembled graphs — but those are exactly the ones that would
        // otherwise livelock the asynchronous engine.
        let mut on_cycle = vec![false; self.num_elements()];
        for comp in crate::analyze::strongly_connected_components(self) {
            if comp.len() > 1 {
                for e in comp {
                    on_cycle[e.index()] = true;
                }
            } else {
                let e = comp[0];
                let elem = self.element(e);
                let self_loop = elem.outputs().iter().any(|&o| {
                    self.node(o).fanout().iter().any(|&(c, _)| c == e)
                });
                on_cycle[e.index()] = self_loop;
            }
        }
        for (id, e) in self.iter_elements() {
            if on_cycle[id.index()] && e.rise_delay().max(e.fall_delay()).ticks() == 0 {
                return Err(BuildError::ZeroDelayCycle {
                    element: e.name().to_string(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parsim_logic::Value;

    #[test]
    fn rejects_zero_delay_on_logic() {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let y = b.node("y", 1);
        let err = b
            .element("g", ElementKind::Not, Delay(0), &[a], &[y])
            .unwrap_err();
        assert!(matches!(err, BuildError::ZeroDelay { .. }));
    }

    #[test]
    fn rejects_multiple_drivers() {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let y = b.node("y", 1);
        b.element("g1", ElementKind::Not, Delay(1), &[a], &[y])
            .unwrap();
        let err = b
            .element("g2", ElementKind::Buf, Delay(1), &[a], &[y])
            .unwrap_err();
        assert!(matches!(err, BuildError::MultipleDrivers { .. }));
    }

    #[test]
    fn rejects_width_mismatch() {
        let mut b = Builder::new();
        let a = b.node("a", 4);
        let bb = b.node("b", 8);
        let y = b.node("y", 4);
        let err = b
            .element("g", ElementKind::And, Delay(1), &[a, bb], &[y])
            .unwrap_err();
        assert!(matches!(err, BuildError::Width { .. }));
    }

    #[test]
    fn rejects_adder_port_widths() {
        let mut b = Builder::new();
        let a = b.node("a", 8);
        let c = b.node("b", 8);
        let cin = b.node("cin", 1);
        let sum = b.node("sum", 8);
        let cout = b.node("cout", 8); // wrong: must be 1
        let err = b
            .element(
                "add",
                ElementKind::Adder { width: 8 },
                Delay(1),
                &[a, c, cin],
                &[sum, cout],
            )
            .unwrap_err();
        assert!(matches!(err, BuildError::Width { .. }));
    }

    #[test]
    fn rejects_duplicate_element_names() {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let y = b.node("y", 1);
        let z = b.node("z", 1);
        b.element("g", ElementKind::Not, Delay(1), &[a], &[y])
            .unwrap();
        let err = b
            .element("g", ElementKind::Not, Delay(1), &[a], &[z])
            .unwrap_err();
        assert!(matches!(err, BuildError::DuplicateName { .. }));
    }

    #[test]
    fn duplicate_node_names_are_uniquified() {
        let mut b = Builder::new();
        let a1 = b.node("a", 1);
        let a2 = b.node("a", 1);
        assert_ne!(a1, a2);
        let n = b.finish().unwrap();
        assert_ne!(n.node(a1).name(), n.node(a2).name());
    }

    #[test]
    fn generator_width_checked() {
        let mut b = Builder::new();
        let out = b.node("out", 4);
        let err = b
            .element(
                "c",
                ElementKind::Const {
                    value: Value::bit(true),
                },
                Delay(1),
                &[],
                &[out],
            )
            .unwrap_err();
        assert!(matches!(err, BuildError::Width { .. }));
    }

    #[test]
    fn fanout_and_driver_recorded() {
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let y = b.node("y", 1);
        let z = b.node("z", 1);
        b.element("g1", ElementKind::Not, Delay(1), &[a], &[y])
            .unwrap();
        b.element("g2", ElementKind::Not, Delay(1), &[a], &[z])
            .unwrap();
        let n = b.finish().unwrap();
        assert_eq!(n.node(a).fanout().len(), 2);
        assert!(n.node(a).driver().is_none());
        assert!(n.node(y).driver().is_some());
    }

    #[test]
    fn fresh_nodes_are_unique() {
        let mut b = Builder::new();
        let t1 = b.fresh(1);
        let t2 = b.fresh(1);
        assert_ne!(t1, t2);
    }

    fn inverter_cell() -> crate::Netlist {
        let mut cell = Builder::new();
        let a = cell.node("a", 1);
        let y = cell.node("y", 1);
        cell.element("inv", ElementKind::Not, Delay(1), &[a], &[y])
            .unwrap();
        cell.finish().unwrap()
    }

    #[test]
    fn instantiate_copies_and_binds() {
        let cell = inverter_cell();
        let mut top = Builder::new();
        let input = top.node("in", 1);
        let out = top.node("out", 1);
        let map = top
            .instantiate(&cell, "u0", &[("a", input), ("y", out)])
            .unwrap();
        assert_eq!(map["a"], input);
        assert_eq!(map["y"], out);
        let n = top.finish().unwrap();
        assert_eq!(n.num_nodes(), 2, "fully bound: no copies");
        assert!(n.element_by_name("u0.inv").is_some());
        assert!(n.node(out).driver().is_some());
    }

    #[test]
    fn instantiate_copies_internal_nodes() {
        // Double-inverter cell with an internal node.
        let mut cell = Builder::new();
        let a = cell.node("a", 1);
        let mid = cell.node("mid", 1);
        let y = cell.node("y", 1);
        cell.element("i1", ElementKind::Not, Delay(1), &[a], &[mid])
            .unwrap();
        cell.element("i2", ElementKind::Not, Delay(1), &[mid], &[y])
            .unwrap();
        let cell = cell.finish().unwrap();

        let mut top = Builder::new();
        let input = top.node("in", 1);
        let out = top.node("out", 1);
        top.instantiate(&cell, "buf0", &[("a", input), ("y", out)])
            .unwrap();
        let n = top.finish().unwrap();
        assert!(n.node_by_name("buf0.mid").is_some());
        assert_eq!(n.num_elements(), 2);
    }

    #[test]
    fn instantiate_rejects_width_mismatch_and_unknown_port() {
        let cell = inverter_cell();
        let mut top = Builder::new();
        let wide = top.node("w", 4);
        let err = top.instantiate(&cell, "u0", &[("a", wide)]).unwrap_err();
        assert!(matches!(err, BuildError::Width { .. }));
        let ok = top.node("ok", 1);
        let err = top.instantiate(&cell, "u1", &[("zz", ok)]).unwrap_err();
        assert!(matches!(err, BuildError::Arity { .. }));
    }

    #[test]
    fn try_node_rejects_bad_widths_without_panicking() {
        let mut b = Builder::new();
        let err = b.try_node("z", 0).unwrap_err();
        assert!(matches!(err, BuildError::InvalidWidth { width: 0, .. }));
        let err = b.try_node("w", 65).unwrap_err();
        assert!(matches!(err, BuildError::InvalidWidth { width: 65, .. }));
        assert!(b.try_node("ok", 64).is_ok());
    }

    #[test]
    fn validate_accepts_builder_output() {
        let cell = inverter_cell();
        cell.validate().unwrap();
    }

    #[test]
    fn validate_catches_dangling_fanout() {
        // Hand-corrupt a netlist the way a buggy transformation pass
        // might: a fan-out entry pointing at an element that does not read
        // the node.
        let mut n = inverter_cell();
        let a = n.node_by_name("a").unwrap();
        n.nodes[a.index()].fanout.push((ElemId::from_index(7), 0));
        let err = n.validate().unwrap_err();
        assert!(matches!(err, BuildError::DanglingFanout { .. }));
        assert!(err.to_string().contains("dangling"));
    }

    #[test]
    fn validate_catches_dangling_driver() {
        let mut n = inverter_cell();
        let y = n.node_by_name("y").unwrap();
        n.nodes[y.index()].driver = Some((ElemId::from_index(0), 3));
        assert!(matches!(
            n.validate().unwrap_err(),
            BuildError::DanglingFanout { .. }
        ));
    }

    #[test]
    fn validate_catches_zero_delay_cycle() {
        // A two-inverter ring with a zero delay, assembled directly (the
        // builder's eager check would reject the element).
        let mut b = Builder::new();
        let q = b.node("q", 1);
        let qn = b.node("qn", 1);
        b.element("i1", ElementKind::Not, Delay(1), &[q], &[qn])
            .unwrap();
        b.element("i2", ElementKind::Not, Delay(1), &[qn], &[q])
            .unwrap();
        let mut n = b.finish().unwrap();
        n.elements[0].delay = Delay(0);
        n.elements[0].fall = Delay(0);
        let err = n.validate().unwrap_err();
        assert!(matches!(err, BuildError::ZeroDelayCycle { .. }));
        // The same zero delay off any cycle is not a cycle error.
        let mut b = Builder::new();
        let a = b.node("a", 1);
        let y = b.node("y", 1);
        b.element("g", ElementKind::Buf, Delay(1), &[a], &[y]).unwrap();
        let mut n = b.finish().unwrap();
        n.elements[0].delay = Delay(0);
        n.elements[0].fall = Delay(0);
        n.validate().unwrap();
    }

    #[test]
    fn instantiate_enforces_single_driver_across_boundary() {
        let cell = inverter_cell();
        let mut top = Builder::new();
        let input = top.node("in", 1);
        let out = top.node("out", 1);
        top.element("drv", ElementKind::Buf, Delay(1), &[input], &[out])
            .unwrap();
        // Binding the cell's driven output to an already-driven node must
        // fail.
        let err = top
            .instantiate(&cell, "u0", &[("a", input), ("y", out)])
            .unwrap_err();
        assert!(matches!(err, BuildError::MultipleDrivers { .. }));
    }
}
